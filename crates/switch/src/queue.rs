//! Open-loop latency sampling for the Figure 4/5 micro-benchmarks.
//!
//! The paper drives each hardware design with the Tofino packet generator
//! at a fraction of saturation load and plots the per-packet latency CDF.
//! We reproduce that with a deterministic-service FIFO queue (the pipeline
//! bottleneck) fed by a Poisson arrival process: per-packet latency =
//! pipeline latency + queue wait.

use crate::SequencerTiming;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Generates per-packet latency samples for a sequencer hardware model
/// under open-loop load.
pub struct LatencySampler<'a, T: SequencerTiming> {
    model: &'a T,
    group_size: usize,
}

impl<'a, T: SequencerTiming> LatencySampler<'a, T> {
    /// Sample latencies for `model` serving `group_size` receivers.
    pub fn new(model: &'a T, group_size: usize) -> Self {
        LatencySampler { model, group_size }
    }

    /// Draw `n` per-packet latencies (ns) at `load` fraction of saturation
    /// (0 < load ≤ 0.999…). Deterministic for a given `seed`.
    pub fn sample(&self, load: f64, n: usize, seed: u64) -> Vec<u64> {
        assert!(load > 0.0 && load < 1.0, "load must be in (0,1)");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let service = self.model.service_ns(self.group_size) as f64;
        let pipeline = self.model.pipeline_latency_ns(self.group_size);
        let mean_interarrival = service / load;

        let mut out = Vec::with_capacity(n);
        let mut now = 0.0f64;
        let mut server_free = 0.0f64;
        // Warm the queue past its transient before recording.
        let warmup = n / 4;
        for i in 0..n + warmup {
            // Exponential inter-arrival (Poisson process).
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            now += -mean_interarrival * u.ln();
            let start = now.max(server_free);
            server_free = start + service;
            let latency = (start - now) + service + pipeline as f64;
            if i >= warmup {
                out.push(latency as u64);
            }
        }
        out
    }
}

/// The `p`-th percentile (0–100) of a sample set. Sorts a copy.
pub fn percentile(samples: &[u64], p: f64) -> u64 {
    assert!(!samples.is_empty());
    let mut s = samples.to_vec();
    s.sort_unstable();
    let rank = ((p / 100.0) * (s.len() - 1) as f64).round() as usize;
    s[rank.min(s.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpga::FpgaModel;
    use crate::tofino::TofinoModel;

    #[test]
    fn percentile_basics() {
        let s: Vec<u64> = (0..=100).collect();
        assert_eq!(percentile(&s, 0.0), 0);
        assert_eq!(percentile(&s, 50.0), 50);
        assert_eq!(percentile(&s, 100.0), 100);
    }

    #[test]
    fn light_load_latency_is_near_pipeline_latency() {
        let m = TofinoModel::PAPER;
        let sampler = LatencySampler::new(&m, 4);
        let samples = sampler.sample(0.25, 20_000, 1);
        let p50 = percentile(&samples, 50.0);
        let base = m.pipeline_latency_ns(4);
        assert!(
            p50 >= base && p50 < base + 200,
            "median ~pipeline latency: {p50} vs {base}"
        );
    }

    #[test]
    fn near_saturation_has_a_longer_tail() {
        let m = TofinoModel::PAPER;
        let sampler = LatencySampler::new(&m, 4);
        let low = sampler.sample(0.25, 20_000, 1);
        let high = sampler.sample(0.99, 20_000, 1);
        let base = m.pipeline_latency_ns(4);
        let wait_low = percentile(&low, 99.9).saturating_sub(base);
        let wait_high = percentile(&high, 99.9).saturating_sub(base);
        assert!(
            wait_high > wait_low * 10,
            "99% load queueing tail ({wait_high}) ≫ 25% load tail ({wait_low})"
        );
    }

    #[test]
    fn moderate_load_latency_is_highly_consistent() {
        // Paper: "the 99.9% latency increases by only 0.7% compared to the
        // median" for aom-hm at sub-saturation load.
        let m = TofinoModel::PAPER;
        let sampler = LatencySampler::new(&m, 4);
        let s = sampler.sample(0.5, 50_000, 2);
        let p50 = percentile(&s, 50.0) as f64;
        let p999 = percentile(&s, 99.9) as f64;
        assert!(
            p999 / p50 < 1.05,
            "tight distribution below saturation: {p999}/{p50}"
        );
    }

    #[test]
    fn fpga_median_is_faster_than_tofino() {
        let hm = TofinoModel::PAPER;
        let pk = FpgaModel::PAPER;
        let hm50 = percentile(&LatencySampler::new(&hm, 4).sample(0.5, 10_000, 3), 50.0);
        let pk50 = percentile(&LatencySampler::new(&pk, 4).sample(0.5, 10_000, 3), 50.0);
        assert!(
            pk50 < hm50 / 2,
            "aom-pk (~3µs = {pk50}) beats aom-hm (~9µs = {hm50})"
        );
    }

    #[test]
    fn sampling_is_deterministic() {
        let m = FpgaModel::PAPER;
        let s1 = LatencySampler::new(&m, 4).sample(0.5, 1000, 9);
        let s2 = LatencySampler::new(&m, 4).sample(0.5, 1000, 9);
        assert_eq!(s1, s2);
    }
}
