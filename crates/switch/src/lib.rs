//! # neo-switch
//!
//! Timing and resource models of the two aom sequencer hardware designs,
//! plus the shared open-loop queueing sampler used by the Figure 4/5/6
//! micro-benchmarks.
//!
//! The paper prototypes aom on an Intel Tofino switch (aom-hm, §4.3) and
//! on a Tofino + Xilinx Alveo U50 FPGA coprocessor (aom-pk, §4.4). We do
//! not have that hardware; per the reproduction methodology (DESIGN.md §2)
//! we model the *structure* that determines the published numbers:
//!
//! * [`tofino`] — the folded-pipeline HMAC design: 12 recirculation passes
//!   per 4-HMAC subgroup, 16 loopback ports, per-pass latency, pass-slot
//!   capacity. This yields Figure 4's ~9 µs median latency and Figure 6's
//!   77 Mpps → 5.7 Mpps throughput fall-off with group size.
//! * [`fpga`] — the coprocessor: SHA-256 hash-chain unit, secp256k1 signer
//!   fed by a precomputed-point table, the signing-ratio controller that
//!   skips signatures when the table runs low. This yields Figure 5's
//!   ~3 µs latency and Figure 6's group-size-independent 1.1 Mpps.
//! * [`queue`] — a deterministic-service FIFO sampler that turns a
//!   (latency, capacity) model plus an arrival process into the latency
//!   distributions plotted in Figures 4 and 5.
//! * [`resources`] — structural resource accounting reproducing Table 2
//!   (switch stage/hash/VLIW usage) and Table 3 (FPGA LUT/REG/BRAM/DSP).
//!
//! The *protocol* behaviour of the sequencer (stamping, authentication,
//! multicast, failover) lives in `neo-aom`; these models only supply
//! timing and capacity.

pub mod fpga;
pub mod queue;
pub mod resources;
pub mod tofino;

pub use fpga::FpgaModel;
pub use queue::{percentile, LatencySampler};
pub use resources::{
    fpga_resource_table, switch_resource_table, FpgaResourceRow, SwitchResourceRow,
};
pub use tofino::TofinoModel;

/// Common timing interface both sequencer hardware models expose to the
/// aom sequencer node.
pub trait SequencerTiming {
    /// Fixed processing latency a packet experiences through the device
    /// for a given receiver-group size, in nanoseconds (excludes queueing).
    fn pipeline_latency_ns(&self, group_size: usize) -> u64;

    /// Time the device's bottleneck resource is occupied per packet, in
    /// nanoseconds (the reciprocal of maximum throughput).
    fn service_ns(&self, group_size: usize) -> u64;

    /// Maximum sustainable packets per second for the group size.
    fn max_throughput_pps(&self, group_size: usize) -> f64 {
        1e9 / self.service_ns(group_size) as f64
    }
}
