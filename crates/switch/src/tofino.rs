//! The folded-pipeline aom-hm data plane model (§4.3, Figure 2).
//!
//! Structure taken from the paper:
//!
//! * The reference HalfSipHash implementation uses all 12 stages of one
//!   pipeline for 6 passes per HMAC; the unrolled variant used here
//!   halves per-pass resources, doubling passes to **12 per HMAC** but
//!   fitting **4 parallel instances**, so one subgroup of 4 receivers
//!   costs 12 pass-slots total.
//! * Receivers are partitioned into ⌈group/4⌉ subgroups; the packet is
//!   multicast to one loopback port per subgroup; with 16 loopback ports
//!   the design scales to 64 receivers.
//! * Pipe 0 does ingress/sequencing/egress (7 stages); pipe 1 is dedicated
//!   to HMAC generation.

use crate::SequencerTiming;
use serde::{Deserialize, Serialize};

/// Parameters of the Tofino aom-hm design.
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
pub struct TofinoModel {
    /// Latency of one recirculation pass through the HMAC pipe (ns).
    pub pass_latency_ns: u64,
    /// Base forwarding latency through ingress + egress (ns).
    pub base_latency_ns: u64,
    /// Recirculation passes needed per HMAC (unrolled HalfSipHash).
    pub passes_per_hmac: u64,
    /// Parallel HalfSipHash instances per pass (subgroup width).
    pub subgroup_width: usize,
    /// Loopback ports available for subgroup fan-out.
    pub loopback_ports: usize,
    /// Aggregate pass-slot capacity of the HMAC pipe (pass-slots/sec).
    /// One aom packet consumes `passes_per_hmac × n_subgroups` slots.
    pub pass_slots_per_sec: u64,
}

impl TofinoModel {
    /// The paper's prototype: calibrated so that group-of-4 throughput is
    /// 77 Mpps and median latency ≈ 9 µs (Figures 4 and 6).
    pub const PAPER: TofinoModel = TofinoModel {
        pass_latency_ns: 683,
        base_latency_ns: 800,
        passes_per_hmac: 12,
        subgroup_width: 4,
        loopback_ports: 16,
        pass_slots_per_sec: 924_000_000,
    };

    /// Number of subgroups (and loopback ports engaged) for a group.
    pub fn subgroups(&self, group_size: usize) -> usize {
        group_size.div_ceil(self.subgroup_width).max(1)
    }

    /// Largest group size the design supports (§4.3: 64 with 16 ports).
    pub fn max_group_size(&self) -> usize {
        self.loopback_ports * self.subgroup_width
    }

    /// True if the group fits the hardware.
    pub fn supports(&self, group_size: usize) -> bool {
        group_size <= self.max_group_size()
    }
}

impl Default for TofinoModel {
    fn default() -> Self {
        TofinoModel::PAPER
    }
}

impl SequencerTiming for TofinoModel {
    fn pipeline_latency_ns(&self, _group_size: usize) -> u64 {
        // Subgroups recirculate in parallel on distinct loopback ports, so
        // latency is passes × per-pass regardless of group size.
        self.base_latency_ns + self.passes_per_hmac * self.pass_latency_ns
    }

    fn service_ns(&self, group_size: usize) -> u64 {
        // Each packet consumes passes_per_hmac pass-slots per subgroup of
        // the shared HMAC pipe.
        let slots = self.passes_per_hmac * self.subgroups(group_size) as u64;
        // ns per packet = slots / (slots_per_sec / 1e9)
        (slots * 1_000_000_000).div_ceil(self.pass_slots_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_matches_paper_median() {
        let m = TofinoModel::PAPER;
        let lat = m.pipeline_latency_ns(4);
        assert!(
            (8_500..9_500).contains(&lat),
            "≈9µs median for group of 4, got {lat}ns"
        );
        // Latency is group-size independent (parallel loopback ports).
        assert_eq!(lat, m.pipeline_latency_ns(64));
    }

    #[test]
    fn throughput_matches_figure6_endpoints() {
        let m = TofinoModel::PAPER;
        let t4 = m.max_throughput_pps(4) / 1e6;
        assert!((70.0..85.0).contains(&t4), "~77 Mpps at 4, got {t4:.1}");
        let t64 = m.max_throughput_pps(64) / 1e6;
        assert!((4.0..7.0).contains(&t64), "~5.7 Mpps at 64, got {t64:.1}");
        // The fall-off factor the paper quotes: 64-receiver throughput is
        // under 10% of the 4-receiver figure.
        assert!(t64 / t4 < 0.10);
    }

    #[test]
    fn throughput_is_monotone_in_group_size() {
        let m = TofinoModel::PAPER;
        let mut last = f64::INFINITY;
        for g in [4, 8, 16, 24, 32, 48, 64] {
            let t = m.max_throughput_pps(g);
            assert!(t <= last, "throughput cannot rise with group size");
            last = t;
        }
    }

    #[test]
    fn subgroup_partitioning() {
        let m = TofinoModel::PAPER;
        assert_eq!(m.subgroups(1), 1);
        assert_eq!(m.subgroups(4), 1);
        assert_eq!(m.subgroups(5), 2);
        assert_eq!(m.subgroups(64), 16);
        assert_eq!(m.max_group_size(), 64);
        assert!(m.supports(64));
        assert!(!m.supports(65));
    }

    #[test]
    fn same_capacity_within_a_subgroup_boundary() {
        let m = TofinoModel::PAPER;
        assert_eq!(m.service_ns(1), m.service_ns(4));
        assert!(m.service_ns(5) > m.service_ns(4));
    }
}
