//! The aom-pk FPGA coprocessor model (§4.4, Figure 3).
//!
//! The Alveo U50 pipeline: packet parser → SHA-256 hash-chain unit →
//! secp256k1 signer (fed by a precomputed-point table) → stream merger.
//! A *signing-ratio controller* watches the precompute table's stock
//! level and tells the signer to skip packets when it runs low; skipped
//! packets are still hash-chained, and receivers authenticate them in a
//! batch once the next signed packet arrives.
//!
//! The model tracks the precompute table as a token bucket refilled at the
//! pre-computer's rate and drained one entry per signature. Per-packet
//! output is `(signed, latency)`, which both the Figure 5 latency sampler
//! and the aom sequencer node consume.

use crate::SequencerTiming;
use serde::{Deserialize, Serialize};

/// Parameters of the coprocessor design.
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
pub struct FpgaModel {
    /// Wire + parse + merge latency through the QSFP28 path (ns).
    pub io_latency_ns: u64,
    /// SHA-256 hash-chain unit latency per packet (ns).
    pub hash_latency_ns: u64,
    /// Signer latency when a precomputed point is available (ns).
    pub sign_latency_ns: u64,
    /// Signer occupancy per signature — the signing-rate bottleneck (ns).
    pub sign_service_ns: u64,
    /// Rate at which the pre-computer refills the table (entries/sec).
    pub precompute_rate_per_sec: u64,
    /// Capacity of the precomputed-point table (block RAM bound).
    pub table_capacity: u64,
    /// Stock level below which the controller starts skipping signatures.
    pub skip_threshold: u64,
}

impl FpgaModel {
    /// The paper's prototype: ~3 µs median latency (Figure 5) and a
    /// constant 1.1 Mpps signing rate regardless of group size (Figure 6).
    pub const PAPER: FpgaModel = FpgaModel {
        io_latency_ns: 1_400,
        hash_latency_ns: 250,
        sign_latency_ns: 1_250,
        sign_service_ns: 909, // 1.1 Mpps
        precompute_rate_per_sec: 1_100_000,
        table_capacity: 4_096,
        skip_threshold: 256,
    };
}

impl Default for FpgaModel {
    fn default() -> Self {
        FpgaModel::PAPER
    }
}

impl SequencerTiming for FpgaModel {
    fn pipeline_latency_ns(&self, _group_size: usize) -> u64 {
        self.io_latency_ns + self.hash_latency_ns + self.sign_latency_ns
    }

    fn service_ns(&self, _group_size: usize) -> u64 {
        // A single signature per packet, independent of receivers.
        self.sign_service_ns
    }
}

/// Dynamic state of the signing path: precompute stock + controller.
#[derive(Clone, Debug)]
pub struct SigningRatioController {
    model: FpgaModel,
    /// Current precomputed entries in the table.
    stock: u64,
    /// Last virtual time the pre-computer was credited.
    last_refill_ns: u64,
    /// Signatures produced.
    pub signed: u64,
    /// Packets skipped (hash-chain only).
    pub skipped: u64,
}

impl SigningRatioController {
    /// Start with a full table at time zero.
    pub fn new(model: FpgaModel) -> Self {
        SigningRatioController {
            stock: model.table_capacity,
            last_refill_ns: 0,
            model,
            signed: 0,
            skipped: 0,
        }
    }

    /// Current stock level.
    pub fn stock(&self) -> u64 {
        self.stock
    }

    /// A packet arrives at virtual time `now_ns`. Returns `true` if the
    /// signer signs it, `false` if the controller skips it (hash-chain
    /// authentication only).
    pub fn on_packet(&mut self, now_ns: u64) -> bool {
        // Credit the pre-computer for elapsed time.
        if now_ns > self.last_refill_ns {
            let dt = now_ns - self.last_refill_ns;
            let credit = dt * self.model.precompute_rate_per_sec / 1_000_000_000;
            if credit > 0 {
                self.stock = (self.stock + credit).min(self.model.table_capacity);
                // Only advance by the time actually converted into credit,
                // so fractional refill accumulates across calls.
                self.last_refill_ns += credit * 1_000_000_000 / self.model.precompute_rate_per_sec;
            }
        }
        if self.stock > self.model.skip_threshold {
            self.stock -= 1;
            self.signed += 1;
            true
        } else {
            self.skipped += 1;
            false
        }
    }

    /// Fraction of packets signed so far.
    pub fn signing_ratio(&self) -> f64 {
        let total = self.signed + self.skipped;
        if total == 0 {
            1.0
        } else {
            self.signed as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_matches_figure5_median() {
        let m = FpgaModel::PAPER;
        let lat = m.pipeline_latency_ns(4);
        assert!((2_500..3_500).contains(&lat), "≈3µs median, got {lat}ns");
        assert_eq!(
            lat,
            m.pipeline_latency_ns(64),
            "latency is group-size agnostic"
        );
    }

    #[test]
    fn throughput_is_group_size_agnostic_1_1_mpps() {
        let m = FpgaModel::PAPER;
        for g in [4, 16, 64, 100] {
            let t = m.max_throughput_pps(g) / 1e6;
            assert!((1.0..1.2).contains(&t), "~1.1 Mpps, got {t:.2}");
        }
    }

    #[test]
    fn controller_signs_everything_below_precompute_rate() {
        let m = FpgaModel::PAPER;
        let mut c = SigningRatioController::new(m);
        // 0.5 Mpps for 100 ms: always below the 1.1 M/s refill rate.
        let mut now = 0;
        for _ in 0..50_000 {
            now += 2_000; // 0.5 Mpps
            assert!(c.on_packet(now), "no skips under light load");
        }
        assert_eq!(c.skipped, 0);
        assert!((c.signing_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn controller_skips_under_overload() {
        let m = FpgaModel::PAPER;
        let mut c = SigningRatioController::new(m);
        // 5 Mpps for 50 ms: far above the refill rate; the table drains
        // and the controller must start skipping.
        let mut now = 0;
        for _ in 0..250_000 {
            now += 200; // 5 Mpps
            c.on_packet(now);
        }
        assert!(c.skipped > 0, "controller engaged");
        // Steady-state signing rate equals the precompute rate: ~1.1M/s of
        // a 5M/s stream ≈ 22%.
        let ratio = c.signing_ratio();
        assert!(
            (0.15..0.35).contains(&ratio),
            "steady-state ratio ≈ precompute/arrival = 0.22, got {ratio:.3}"
        );
    }

    #[test]
    fn stock_never_exceeds_capacity() {
        let m = FpgaModel::PAPER;
        let mut c = SigningRatioController::new(m);
        c.on_packet(0);
        // A long idle period refills at most to capacity.
        c.on_packet(10_000_000_000);
        assert!(c.stock() <= m.table_capacity);
    }

    #[test]
    fn signing_resumes_after_overload_ends() {
        let m = FpgaModel::PAPER;
        let mut c = SigningRatioController::new(m);
        let mut now = 0;
        for _ in 0..100_000 {
            now += 150; // overload
            c.on_packet(now);
        }
        let skipped_before = c.skipped;
        assert!(skipped_before > 0);
        // Idle for 10 ms: the table refills above the threshold.
        now += 10_000_000;
        assert!(c.on_packet(now), "signing resumes after refill");
    }
}
