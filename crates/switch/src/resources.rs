//! Structural resource accounting (Tables 2 and 3).
//!
//! Hardware resource budgets are fixed by the devices; each design
//! component declares how much of each resource it consumes, and the
//! accounting divides by the device totals. Per-component consumption is
//! taken from the paper's prototype (Table 2 and Table 3 of §6); the
//! totals are the public device specifications (Tofino-1: 12 stages per
//! pipe; Alveo U50: 870K LUTs, 1740K registers, 1.34K BRAM tiles, 5.94K
//! DSP slices).

use serde::{Deserialize, Serialize};

/// Per-stage capacities of one Tofino pipe (public Tofino-1 figures,
/// normalized units).
#[derive(Clone, Copy, Debug)]
pub struct TofinoPipeBudget {
    /// Match-action stages per pipe.
    pub stages: u32,
    /// Action-data bytes per pipe.
    pub action_data_bytes: u64,
    /// Hash-distribution bits per pipe.
    pub hash_bits: u64,
    /// Hash computation units per pipe.
    pub hash_units: u64,
    /// VLIW instruction slots per pipe.
    pub vliw_slots: u64,
}

/// Tofino-1, one pipe.
pub const TOFINO_PIPE: TofinoPipeBudget = TofinoPipeBudget {
    stages: 12,
    action_data_bytes: 12_288,
    hash_bits: 61_440,
    hash_units: 72,
    vliw_slots: 384,
};

/// A component placed into a pipe, with its absolute resource use.
#[derive(Clone, Debug)]
pub struct SwitchComponent {
    /// Component name (for reporting).
    pub name: &'static str,
    /// Pipe index the component occupies (0 = forwarding, 1 = HMAC).
    pub pipe: u8,
    /// Stages the component's tables span.
    pub stages: u32,
    /// Action-data bytes consumed.
    pub action_data_bytes: u64,
    /// Hash bits consumed.
    pub hash_bits: u64,
    /// Hash units consumed.
    pub hash_units: u64,
    /// VLIW slots consumed.
    pub vliw_slots: u64,
}

/// The aom-hm prototype's component inventory.
///
/// Pipe 0 carries L2/L3 forwarding, the per-group sequence counters and
/// the group match table, and the multicast/replication configuration.
/// Pipe 1 carries the four unrolled HalfSipHash instances.
pub fn aom_hm_components() -> Vec<SwitchComponent> {
    vec![
        SwitchComponent {
            name: "l2l3-routing",
            pipe: 0,
            stages: 3,
            action_data_bytes: 58,
            hash_bits: 737,
            hash_units: 0,
            vliw_slots: 7,
        },
        SwitchComponent {
            name: "aom-sequencer",
            pipe: 0,
            stages: 3,
            action_data_bytes: 30,
            hash_bits: 368,
            hash_units: 0,
            vliw_slots: 4,
        },
        SwitchComponent {
            name: "replication-engine",
            pipe: 0,
            stages: 1,
            action_data_bytes: 10,
            hash_bits: 124,
            hash_units: 0,
            vliw_slots: 2,
        },
        // Four parallel unrolled HalfSipHash instances: each uses 14 hash
        // units, ~3.2 KB of round keys/state in action data, ~3.3 K hash
        // bits, and 11–12 VLIW slots across the 12 stages.
        SwitchComponent {
            name: "halfsiphash-x4",
            pipe: 1,
            stages: 12,
            action_data_bytes: 1_573,
            hash_bits: 13_025,
            hash_units: 56,
            vliw_slots: 46,
        },
    ]
}

/// One row of Table 2.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct SwitchResourceRow {
    /// Module label ("Pipe 0" / "Pipe 1").
    pub module: String,
    /// Stages occupied.
    pub stages: u32,
    /// Action-data utilization (percent of pipe budget).
    pub action_data_pct: f64,
    /// Hash-bit utilization (percent).
    pub hash_bit_pct: f64,
    /// Hash-unit utilization (percent).
    pub hash_unit_pct: f64,
    /// VLIW utilization (percent).
    pub vliw_pct: f64,
}

fn pct(used: u64, total: u64) -> f64 {
    (used as f64 / total as f64 * 1000.0).round() / 10.0
}

/// Compute Table 2 from the component inventory.
pub fn switch_resource_table() -> Vec<SwitchResourceRow> {
    let comps = aom_hm_components();
    let budget = TOFINO_PIPE;
    (0u8..2)
        .map(|pipe| {
            let in_pipe: Vec<_> = comps.iter().filter(|c| c.pipe == pipe).collect();
            let sum = |f: fn(&SwitchComponent) -> u64| in_pipe.iter().map(|c| f(c)).sum::<u64>();
            SwitchResourceRow {
                module: format!("Pipe {pipe}"),
                stages: in_pipe
                    .iter()
                    .map(|c| c.stages)
                    .max()
                    .unwrap_or(0)
                    .max(if pipe == 0 {
                        // Pipe 0 components are laid out sequentially
                        // (routing → sequencing → replication): 7 stages.
                        in_pipe.iter().map(|c| c.stages).sum::<u32>()
                    } else {
                        0
                    }),
                action_data_pct: pct(sum(|c| c.action_data_bytes), budget.action_data_bytes),
                hash_bit_pct: pct(sum(|c| c.hash_bits), budget.hash_bits),
                hash_unit_pct: pct(sum(|c| c.hash_units), budget.hash_units),
                vliw_pct: pct(sum(|c| c.vliw_slots), budget.vliw_slots),
            }
        })
        .collect()
}

/// Alveo U50 device totals (Table 3 "Available" row).
#[derive(Clone, Copy, Debug)]
pub struct FpgaBudget {
    /// Lookup tables.
    pub lut: u64,
    /// Flip-flop registers.
    pub register: u64,
    /// Block RAM tiles.
    pub bram: u64,
    /// DSP slices.
    pub dsp: u64,
}

/// Alveo U50.
pub const ALVEO_U50: FpgaBudget = FpgaBudget {
    lut: 870_000,
    register: 1_740_000,
    bram: 1_340,
    dsp: 5_940,
};

/// A hardware module in the coprocessor design.
#[derive(Clone, Debug)]
pub struct FpgaComponent {
    /// Module name.
    pub name: &'static str,
    /// LUTs used.
    pub lut: u64,
    /// Registers used.
    pub register: u64,
    /// BRAM tiles used.
    pub bram: u64,
    /// DSP slices used.
    pub dsp: u64,
}

/// The aom-pk coprocessor's module inventory (Figure 3).
pub fn aom_pk_components() -> Vec<FpgaComponent> {
    vec![
        FpgaComponent {
            name: "packet-pipeline", // parser + updater + merger
            lut: 7_917,
            register: 12_180,
            bram: 28,
            dsp: 34,
        },
        FpgaComponent {
            name: "secp256k1-signer",
            lut: 182_700,
            register: 337_560,
            bram: 144,
            dsp: 1_694,
        },
        FpgaComponent {
            name: "secp256k1-precomputer",
            // The pre-computer shares the signer's field-arithmetic cores
            // (it runs in the signer's idle slots), so it adds almost no
            // DSP of its own.
            lut: 64_000,
            register: 92_000,
            bram: 96,
            dsp: 4,
        },
        FpgaComponent {
            name: "sha256-hash-chain",
            lut: 21_000,
            register: 38_000,
            bram: 12,
            dsp: 0,
        },
        FpgaComponent {
            name: "signing-ratio-controller",
            lut: 1_200,
            register: 2_600,
            bram: 2,
            dsp: 0,
        },
        FpgaComponent {
            name: "qsfp28-ethernet",
            lut: 25_000,
            register: 26_000,
            bram: 103,
            dsp: 0,
        },
    ]
}

/// One row of Table 3.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct FpgaResourceRow {
    /// Module label.
    pub module: String,
    /// LUT utilization (percent of device).
    pub lut_pct: f64,
    /// Register utilization (percent).
    pub register_pct: f64,
    /// BRAM utilization (percent).
    pub bram_pct: f64,
    /// DSP utilization (percent).
    pub dsp_pct: f64,
}

/// Compute Table 3: the Pipeline and Signer rows the paper itemizes, plus
/// the Total over all modules.
pub fn fpga_resource_table() -> Vec<FpgaResourceRow> {
    let comps = aom_pk_components();
    let b = ALVEO_U50;
    let row = |module: &str, lut: u64, reg: u64, bram: u64, dsp: u64| FpgaResourceRow {
        module: module.to_string(),
        lut_pct: (lut as f64 / b.lut as f64 * 10000.0).round() / 100.0,
        register_pct: (reg as f64 / b.register as f64 * 10000.0).round() / 100.0,
        bram_pct: (bram as f64 / b.bram as f64 * 10000.0).round() / 100.0,
        dsp_pct: (dsp as f64 / b.dsp as f64 * 10000.0).round() / 100.0,
    };
    let pipeline = comps.iter().find(|c| c.name == "packet-pipeline").unwrap();
    let signer = comps.iter().find(|c| c.name == "secp256k1-signer").unwrap();
    let total = comps.iter().fold((0, 0, 0, 0), |acc, c| {
        (
            acc.0 + c.lut,
            acc.1 + c.register,
            acc.2 + c.bram,
            acc.3 + c.dsp,
        )
    });
    vec![
        row(
            "Pipeline",
            pipeline.lut,
            pipeline.register,
            pipeline.bram,
            pipeline.dsp,
        ),
        row(
            "Signer",
            signer.lut,
            signer.register,
            signer.bram,
            signer.dsp,
        ),
        row("Total", total.0, total.1, total.2, total.3),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let t = switch_resource_table();
        assert_eq!(t.len(), 2);
        let p0 = &t[0];
        assert_eq!(p0.stages, 7);
        assert!(
            (p0.action_data_pct - 0.8).abs() < 0.15,
            "{}",
            p0.action_data_pct
        );
        assert!((p0.hash_bit_pct - 2.0).abs() < 0.15);
        assert_eq!(p0.hash_unit_pct, 0.0);
        assert!((p0.vliw_pct - 3.4).abs() < 0.15);
        let p1 = &t[1];
        assert_eq!(p1.stages, 12);
        assert!(
            (p1.action_data_pct - 12.8).abs() < 0.2,
            "{}",
            p1.action_data_pct
        );
        assert!((p1.hash_bit_pct - 21.2).abs() < 0.2);
        assert!((p1.hash_unit_pct - 77.8).abs() < 0.2);
        assert!((p1.vliw_pct - 12.0).abs() < 0.2);
    }

    #[test]
    fn table3_matches_paper() {
        let t = fpga_resource_table();
        let pipeline = &t[0];
        assert!(
            (pipeline.lut_pct - 0.91).abs() < 0.05,
            "{}",
            pipeline.lut_pct
        );
        assert!((pipeline.register_pct - 0.70).abs() < 0.05);
        assert!((pipeline.bram_pct - 2.12).abs() < 0.1);
        assert!((pipeline.dsp_pct - 0.57).abs() < 0.05);
        let signer = &t[1];
        assert!((signer.lut_pct - 21.0).abs() < 0.1);
        assert!((signer.register_pct - 19.4).abs() < 0.1);
        assert!((signer.bram_pct - 10.71).abs() < 0.15);
        assert!((signer.dsp_pct - 28.52).abs() < 0.15);
        let total = &t[2];
        assert!((total.lut_pct - 34.69).abs() < 0.3, "{}", total.lut_pct);
        assert!((total.register_pct - 29.22).abs() < 0.3);
        assert!((total.bram_pct - 28.76).abs() < 0.5);
        assert!((total.dsp_pct - 29.16).abs() < 0.5);
    }

    #[test]
    fn nothing_exceeds_device_budget() {
        let comps = aom_pk_components();
        let lut: u64 = comps.iter().map(|c| c.lut).sum();
        assert!(lut < ALVEO_U50.lut);
        let t = switch_resource_table();
        for row in t {
            for v in [
                row.action_data_pct,
                row.hash_bit_pct,
                row.hash_unit_pct,
                row.vliw_pct,
            ] {
                assert!((0.0..=100.0).contains(&v));
            }
        }
    }
}
