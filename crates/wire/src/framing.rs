//! Length-prefixed framing for stream transports.
//!
//! The simulator delivers whole datagrams, but the tokio transport (and the
//! configuration service's TLS-like channels) run over streams and need
//! message boundaries. Frames are `u32` little-endian length followed by
//! that many payload bytes. The decoder is sans-IO: feed it arbitrary byte
//! chunks, pull out complete frames.

use bytes::{Buf, BufMut, BytesMut};
use thiserror::Error;

/// Upper bound on a single frame; anything larger is treated as a protocol
/// violation (a Byzantine peer trying to exhaust memory).
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Framing-layer error.
#[derive(Debug, Error, PartialEq, Eq)]
pub enum FramingError {
    /// Peer announced a frame longer than [`MAX_FRAME_LEN`].
    #[error("frame of {0} bytes exceeds the {MAX_FRAME_LEN}-byte limit")]
    Oversized(usize),
}

/// Encodes frames onto an output buffer.
#[derive(Debug, Default)]
pub struct FrameEncoder;

impl FrameEncoder {
    /// Append one framed payload to `out`.
    pub fn encode(&self, payload: &[u8], out: &mut BytesMut) -> Result<(), FramingError> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(FramingError::Oversized(payload.len()));
        }
        out.reserve(4 + payload.len());
        out.put_u32_le(payload.len() as u32);
        out.put_slice(payload);
        Ok(())
    }
}

/// Incremental frame decoder.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    /// Create an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed raw bytes received from the stream.
    pub fn feed(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes currently buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pull the next complete frame, if one is available.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FramingError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FramingError::Oversized(len));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        let frame = self.buf.split_to(len).to_vec();
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut out = BytesMut::new();
        FrameEncoder.encode(payload, &mut out).unwrap();
        out.to_vec()
    }

    #[test]
    fn roundtrip_single_frame() {
        let mut dec = FrameDecoder::new();
        dec.feed(&frame(b"hello"));
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"hello");
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn handles_split_delivery() {
        let bytes = frame(b"split across reads");
        let mut dec = FrameDecoder::new();
        for b in &bytes {
            dec.feed(std::slice::from_ref(b));
        }
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"split across reads");
    }

    #[test]
    fn handles_coalesced_frames() {
        let mut bytes = frame(b"one");
        bytes.extend(frame(b"two"));
        bytes.extend(frame(b""));
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"one");
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"two");
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"");
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn rejects_oversized_announcement() {
        let mut dec = FrameDecoder::new();
        dec.feed(&(u32::MAX).to_le_bytes());
        assert_eq!(
            dec.next_frame().unwrap_err(),
            FramingError::Oversized(u32::MAX as usize)
        );
    }

    #[test]
    fn encoder_rejects_oversized_payload() {
        let mut out = BytesMut::new();
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(FrameEncoder.encode(&huge, &mut out).is_err());
    }

    #[test]
    fn partial_header_waits() {
        let mut dec = FrameDecoder::new();
        dec.feed(&[5, 0]);
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.buffered(), 2);
    }
}
