//! The aom packet header (§4.1).
//!
//! "The sender-side library generates a custom packet header that follows
//! the UDP header. This custom header includes the group ID, a sequence
//! number, an epoch number, a message digest, and an authenticator."
//!
//! The sender fills in the group id and the digest; the sequencer fills in
//! everything else. The authenticator is either a vector of HMAC tags
//! (aom-hm, §4.3) or a single secp256k1 signature (aom-pk, §4.4), possibly
//! absent on hash-chained packets whose signature was skipped by the
//! signing-ratio controller.

use crate::id::{EpochNum, GroupId, SeqNum};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Length of the message digest (SHA-256).
pub const DIGEST_LEN: usize = 32;

/// Length of one HMAC tag. The in-switch design produces 64-bit SipHash
/// tags (HalfSipHash yields 32-bit words; the deployed vector entry is the
/// 8-byte tag that fits the Tofino PHV budget).
pub const HMAC_TAG_LEN: usize = 8;

/// One entry of the HMAC vector.
pub type HmacTag = [u8; HMAC_TAG_LEN];

/// Opaque signature bytes (DER-less fixed encoding, 64 bytes for both
/// secp256k1 ECDSA and Ed25519).
pub type SignatureBytes = Vec<u8>;

/// The authenticator carried in an aom header.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Authenticator {
    /// Not yet stamped by the sequencer (sender → sequencer leg).
    Unstamped,
    /// aom-hm: one HMAC tag per receiver, indexed by receiver position in
    /// the group membership. Transferable because the *whole* vector is in
    /// the header (§4.3).
    HmacVector(Vec<HmacTag>),
    /// aom-pk: a single secp256k1 signature over digest ‖ seq ‖ epoch
    /// (§4.4), plus the SHA-256 hash of the *previous* packet in the stream
    /// (the hash chain).
    Signature {
        /// Signature bytes; `None` when the signing-ratio controller
        /// skipped this packet (receivers authenticate it through the hash
        /// chain of the next signed packet).
        sig: Option<SignatureBytes>,
        /// Hash of the preceding packet in the sequence (all-zero for the
        /// first packet of an epoch).
        prev_hash: [u8; DIGEST_LEN],
    },
}

impl Authenticator {
    /// True if the sequencer has filled in this authenticator.
    pub fn is_stamped(&self) -> bool {
        !matches!(self, Authenticator::Unstamped)
    }

    /// Number of wire bytes this authenticator occupies (used by the
    /// switch model to account for PHV pressure and by the simulator for
    /// transmission delay).
    pub fn wire_len(&self) -> usize {
        match self {
            Authenticator::Unstamped => 0,
            Authenticator::HmacVector(v) => v.len() * HMAC_TAG_LEN,
            Authenticator::Signature { sig, .. } => {
                DIGEST_LEN + sig.as_ref().map_or(0, |s| s.len())
            }
        }
    }
}

/// The aom header, stamped by the sequencer and verified by receivers.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AomHeader {
    /// Destination aom group.
    pub group: GroupId,
    /// Epoch in which the sequencer stamped this packet.
    pub epoch: EpochNum,
    /// Sequence number within the epoch (1-based; 0 = unstamped).
    pub seq: SeqNum,
    /// Collision-resistant digest of the payload, computed by the sender.
    pub digest: [u8; DIGEST_LEN],
    /// Sequencer-generated authenticator.
    pub auth: Authenticator,
}

impl AomHeader {
    /// Header as a sender emits it: digest filled, everything else zeroed.
    pub fn unstamped(group: GroupId, digest: [u8; DIGEST_LEN]) -> Self {
        AomHeader {
            group,
            epoch: EpochNum(0),
            seq: SeqNum(0),
            digest,
            auth: Authenticator::Unstamped,
        }
    }

    /// True once the sequencer has stamped sequence number and
    /// authenticator.
    pub fn is_stamped(&self) -> bool {
        self.seq != SeqNum(0) && self.auth.is_stamped()
    }

    /// The byte string the sequencer authenticates: digest ‖ seq ‖ epoch
    /// (§4.1: "inputting the concatenated message digest and the sequence
    /// number").
    pub fn auth_input(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(DIGEST_LEN + 16);
        buf.extend_from_slice(&self.digest);
        buf.extend_from_slice(&self.seq.0.to_le_bytes());
        buf.extend_from_slice(&self.epoch.0.to_le_bytes());
        buf
    }

    /// Total wire length of the header (used for transmission-delay
    /// modelling).
    pub fn wire_len(&self) -> usize {
        // group(4) + epoch(8) + seq(8) + digest
        4 + 8 + 8 + DIGEST_LEN + self.auth.wire_len()
    }
}

impl fmt::Display for AomHeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aom[{} {} {}]", self.group, self.epoch, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(b: u8) -> [u8; DIGEST_LEN] {
        [b; DIGEST_LEN]
    }

    #[test]
    fn unstamped_header_is_not_stamped() {
        let h = AomHeader::unstamped(GroupId(1), digest(7));
        assert!(!h.is_stamped());
        assert_eq!(h.seq, SeqNum(0));
        assert_eq!(h.auth, Authenticator::Unstamped);
    }

    #[test]
    fn stamping_requires_both_seq_and_auth() {
        let mut h = AomHeader::unstamped(GroupId(1), digest(7));
        h.seq = SeqNum(1);
        assert!(!h.is_stamped(), "seq alone is not enough");
        h.auth = Authenticator::HmacVector(vec![[0u8; HMAC_TAG_LEN]; 4]);
        assert!(h.is_stamped());
    }

    #[test]
    fn auth_input_binds_digest_seq_epoch() {
        let mut h = AomHeader::unstamped(GroupId(1), digest(7));
        h.seq = SeqNum(5);
        h.epoch = EpochNum(2);
        let a = h.auth_input();
        h.seq = SeqNum(6);
        let b = h.auth_input();
        assert_ne!(a, b, "changing the seq changes the authenticated bytes");
        h.seq = SeqNum(5);
        h.epoch = EpochNum(3);
        let c = h.auth_input();
        assert_ne!(a, c, "changing the epoch changes the authenticated bytes");
        assert_eq!(a.len(), DIGEST_LEN + 16);
    }

    #[test]
    fn wire_len_grows_with_hmac_vector() {
        let mut h = AomHeader::unstamped(GroupId(1), digest(0));
        let base = h.wire_len();
        h.auth = Authenticator::HmacVector(vec![[0u8; HMAC_TAG_LEN]; 4]);
        assert_eq!(h.wire_len(), base + 4 * HMAC_TAG_LEN);
        h.auth = Authenticator::HmacVector(vec![[0u8; HMAC_TAG_LEN]; 64]);
        assert_eq!(h.wire_len(), base + 64 * HMAC_TAG_LEN);
    }

    #[test]
    fn signature_wire_len_counts_chain_hash() {
        let mut h = AomHeader::unstamped(GroupId(1), digest(0));
        h.auth = Authenticator::Signature {
            sig: None,
            prev_hash: [0; DIGEST_LEN],
        };
        let skipped = h.wire_len();
        h.auth = Authenticator::Signature {
            sig: Some(vec![0u8; 64]),
            prev_hash: [0; DIGEST_LEN],
        };
        assert_eq!(h.wire_len(), skipped + 64);
    }
}
