//! Strongly-typed identifiers used across the stack.
//!
//! Every identifier is a thin newtype over an integer so that the compiler
//! rejects, e.g., passing a sequence number where a log-slot number is
//! expected — a class of bug that plagues hand-rolled BFT implementations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a replica within a replication group (0-based, dense).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub struct ReplicaId(pub u32);

impl ReplicaId {
    /// Index usable for vector addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of a client process.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifier of an aom multicast group (§3.2: "each identified by a unique
/// group address").
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub struct GroupId(pub u32);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Epoch number: incremented on every sequencer failover (§5.2).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub struct EpochNum(pub u64);

impl EpochNum {
    /// The epoch installed when the group is first configured.
    pub const INITIAL: EpochNum = EpochNum(0);

    /// The next epoch (sequencer failover).
    pub fn next(self) -> EpochNum {
        EpochNum(self.0 + 1)
    }
}

impl fmt::Display for EpochNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Sequence number stamped by the aom sequencer. Starts at 1 within each
/// epoch; 0 means "unstamped".
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub struct SeqNum(pub u64);

impl SeqNum {
    /// First sequence number stamped in an epoch.
    pub const FIRST: SeqNum = SeqNum(1);

    /// Successor sequence number.
    pub fn next(self) -> SeqNum {
        SeqNum(self.0 + 1)
    }

    /// Predecessor, saturating at zero (the unstamped sentinel).
    pub fn prev(self) -> SeqNum {
        SeqNum(self.0.saturating_sub(1))
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Position in a replica's log (0-based).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub struct SlotNum(pub u64);

impl SlotNum {
    /// Index usable for vector addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Successor slot.
    pub fn next(self) -> SlotNum {
        SlotNum(self.0 + 1)
    }
}

impl fmt::Display for SlotNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Client-generated request identifier used to match replies (§5.3). The
/// pair (client id, request id) is unique; request ids increase per client,
/// which the at-most-once deduplication table relies on.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// View identifier: a ⟨epoch-num, leader-num⟩ 2-tuple (§5.2). Views are
/// totally ordered lexicographically: an epoch switch dominates any leader
/// change within an older epoch.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub struct ViewId {
    /// Epoch component: advanced on sequencer failover.
    pub epoch: EpochNum,
    /// Leader component: advanced on (suspected) leader failure.
    pub leader_num: u64,
}

impl ViewId {
    /// The first view of the first epoch.
    pub const INITIAL: ViewId = ViewId {
        epoch: EpochNum(0),
        leader_num: 0,
    };

    /// Construct a view id.
    pub fn new(epoch: EpochNum, leader_num: u64) -> Self {
        ViewId { epoch, leader_num }
    }

    /// The view that follows this one after a leader change (same epoch).
    pub fn next_leader(self) -> ViewId {
        ViewId {
            epoch: self.epoch,
            leader_num: self.leader_num + 1,
        }
    }

    /// The view that follows this one after a sequencer failover
    /// (new epoch, leader counter restarts from this view's leader so that
    /// the leadership rotation keeps moving forward).
    pub fn next_epoch(self) -> ViewId {
        ViewId {
            epoch: self.epoch.next(),
            leader_num: self.leader_num + 1,
        }
    }

    /// Which replica leads this view under round-robin rotation.
    pub fn leader(self, n: usize) -> ReplicaId {
        ReplicaId((self.leader_num % n as u64) as u32)
    }
}

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v({},{})", self.epoch, self.leader_num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_ordering_is_lexicographic() {
        let a = ViewId::new(EpochNum(0), 5);
        let b = ViewId::new(EpochNum(1), 0);
        assert!(a < b, "epoch switch dominates leader number");
        let c = ViewId::new(EpochNum(1), 1);
        assert!(b < c);
    }

    #[test]
    fn next_leader_and_epoch_advance() {
        let v = ViewId::INITIAL;
        assert_eq!(v.next_leader(), ViewId::new(EpochNum(0), 1));
        assert_eq!(v.next_epoch(), ViewId::new(EpochNum(1), 1));
        assert!(v < v.next_leader());
        assert!(v.next_leader() < v.next_epoch());
    }

    #[test]
    fn leader_rotation_round_robin() {
        let n = 4;
        for i in 0..8u64 {
            let v = ViewId::new(EpochNum(0), i);
            assert_eq!(v.leader(n), ReplicaId((i % 4) as u32));
        }
    }

    #[test]
    fn seq_num_successor_chain() {
        let s = SeqNum::FIRST;
        assert_eq!(s.next(), SeqNum(2));
        assert_eq!(s.next().prev(), s);
        assert_eq!(SeqNum(0).prev(), SeqNum(0), "saturates at sentinel");
    }

    #[test]
    fn display_forms_are_compact() {
        assert_eq!(ReplicaId(3).to_string(), "r3");
        assert_eq!(ClientId(7).to_string(), "c7");
        assert_eq!(GroupId(1).to_string(), "g1");
        assert_eq!(SeqNum(9).to_string(), "s9");
        assert_eq!(SlotNum(2).to_string(), "l2");
        assert_eq!(ViewId::new(EpochNum(1), 2).to_string(), "v(e1,2)");
    }

    #[test]
    fn epoch_initial_and_next() {
        assert_eq!(EpochNum::INITIAL.next(), EpochNum(1));
        assert!(EpochNum::INITIAL < EpochNum::INITIAL.next());
    }
}
