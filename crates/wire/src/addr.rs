//! Logical addresses.
//!
//! Protocol state machines are sans-IO: they name destinations with a
//! logical [`Addr`], and the transport (simulator or tokio/UDP) resolves it
//! to a delivery path. This mirrors the paper's architecture where senders
//! "only specify the group address as the destination" (§3.2) and never
//! learn receiver identities.

use crate::id::{ClientId, GroupId, ReplicaId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A logical destination or source in the system.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Addr {
    /// A replica in the replication group.
    Replica(ReplicaId),
    /// A client process.
    Client(ClientId),
    /// The sequencer currently serving a group (switch or software).
    Sequencer(GroupId),
    /// The network-wide configuration service (§4.1).
    Config,
    /// An aom group address: routed to the group's sequencer, which stamps
    /// and multicasts to all receivers.
    Multicast(GroupId),
}

impl Addr {
    /// Returns the replica id if this address names a replica.
    pub fn as_replica(self) -> Option<ReplicaId> {
        match self {
            Addr::Replica(r) => Some(r),
            _ => None,
        }
    }

    /// Returns the client id if this address names a client.
    pub fn as_client(self) -> Option<ClientId> {
        match self {
            Addr::Client(c) => Some(c),
            _ => None,
        }
    }

    /// True if the address is a point-to-point endpoint (not a multicast
    /// group address).
    pub fn is_unicast(self) -> bool {
        !matches!(self, Addr::Multicast(_))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Replica(r) => write!(f, "{r}"),
            Addr::Client(c) => write!(f, "{c}"),
            Addr::Sequencer(g) => write!(f, "seq[{g}]"),
            Addr::Config => write!(f, "config"),
            Addr::Multicast(g) => write!(f, "mcast[{g}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Addr::Replica(ReplicaId(2)).as_replica(), Some(ReplicaId(2)));
        assert_eq!(Addr::Client(ClientId(5)).as_replica(), None);
        assert_eq!(Addr::Client(ClientId(5)).as_client(), Some(ClientId(5)));
        assert_eq!(Addr::Config.as_client(), None);
    }

    #[test]
    fn unicast_classification() {
        assert!(Addr::Replica(ReplicaId(0)).is_unicast());
        assert!(Addr::Sequencer(GroupId(0)).is_unicast());
        assert!(Addr::Config.is_unicast());
        assert!(!Addr::Multicast(GroupId(0)).is_unicast());
    }

    #[test]
    fn display() {
        assert_eq!(Addr::Multicast(GroupId(1)).to_string(), "mcast[g1]");
        assert_eq!(Addr::Sequencer(GroupId(2)).to_string(), "seq[g2]");
    }
}
