//! Serialization helpers.
//!
//! All protocol messages cross the wire as bincode. These wrappers pin the
//! configuration in one place and convert errors into a stable type so
//! protocol code can treat malformed input as a Byzantine artifact rather
//! than a panic.

use serde::{de::DeserializeOwned, Serialize};
use thiserror::Error;

/// Error produced while encoding or decoding a wire message.
#[derive(Debug, Error)]
pub enum CodecError {
    /// The payload could not be decoded; treat the sender as faulty.
    #[error("malformed wire payload: {0}")]
    Malformed(String),
    /// The value could not be encoded (should not happen for well-formed
    /// protocol types; surfaced rather than panicking).
    #[error("unencodable value: {0}")]
    Unencodable(String),
}

/// Encode a message to bytes.
pub fn encode<T: Serialize>(value: &T) -> Result<Vec<u8>, CodecError> {
    bincode::serialize(value).map_err(|e| CodecError::Unencodable(e.to_string()))
}

/// Encode a message into an existing buffer (appended), so hot encode
/// paths can reuse scratch allocations across messages.
pub fn encode_into<T: Serialize>(value: &T, buf: &mut Vec<u8>) -> Result<(), CodecError> {
    bincode::serialize_into(&mut *buf, value).map_err(|e| CodecError::Unencodable(e.to_string()))
}

/// Decode a message from bytes.
pub fn decode<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, CodecError> {
    bincode::deserialize(bytes).map_err(|e| CodecError::Malformed(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{AomHeader, Authenticator};
    use crate::id::{EpochNum, GroupId, SeqNum};
    use serde::Deserialize;

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Probe {
        a: u64,
        b: Vec<u8>,
    }

    #[test]
    fn roundtrip() {
        let p = Probe {
            a: 42,
            b: vec![1, 2, 3],
        };
        let bytes = encode(&p).unwrap();
        let q: Probe = decode(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn header_roundtrip() {
        let mut h = AomHeader::unstamped(GroupId(3), [9u8; 32]);
        h.seq = SeqNum(10);
        h.epoch = EpochNum(1);
        h.auth = Authenticator::HmacVector(vec![[7u8; 8]; 4]);
        let bytes = encode(&h).unwrap();
        let g: AomHeader = decode(&bytes).unwrap();
        assert_eq!(h, g);
    }

    #[test]
    fn truncated_input_is_malformed_not_panic() {
        let p = Probe {
            a: 1,
            b: vec![0; 16],
        };
        let bytes = encode(&p).unwrap();
        let err = decode::<Probe>(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(matches!(err, CodecError::Malformed(_)));
    }

    #[test]
    fn garbage_input_is_malformed() {
        // A length prefix claiming more bytes than exist must not panic.
        let garbage = vec![0xFFu8; 9];
        assert!(decode::<Probe>(&garbage).is_err());
    }
}
