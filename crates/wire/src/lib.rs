//! # neo-wire
//!
//! Wire-level building blocks shared by every crate in the NeoBFT stack:
//!
//! * strongly-typed identifiers ([`id`]) — replica, client, group, view,
//!   epoch, sequence and log-slot numbers;
//! * logical addresses ([`addr`]) used by the transports and the simulator;
//! * the aom packet header ([`header`]) exactly as §4.1 of the paper
//!   specifies it: group id, epoch, sequence number, message digest, and an
//!   authenticator (HMAC vector or secp256k1 signature);
//! * shared zero-copy payloads ([`payload`]) — the `Arc<[u8]>`-backed
//!   [`Payload`] every executor and broadcast path carries, plus the
//!   scratch-reusing [`PayloadBuilder`];
//! * length-prefixed framing ([`framing`]) for stream transports;
//! * serialization helpers ([`codec`]) wrapping bincode with a stable error
//!   type.
//!
//! The crate is deliberately free of cryptography and I/O so that protocol
//! crates, the simulator, and the real tokio transport all agree on formats
//! without dragging in heavyweight dependencies.

pub mod addr;
pub mod codec;
pub mod framing;
pub mod header;
pub mod id;
pub mod payload;

pub use addr::Addr;
pub use codec::{decode, encode, encode_into, CodecError};
pub use framing::{FrameDecoder, FrameEncoder, FramingError, MAX_FRAME_LEN};
pub use header::{AomHeader, Authenticator, HmacTag, SignatureBytes, DIGEST_LEN, HMAC_TAG_LEN};
pub use id::{ClientId, EpochNum, GroupId, ReplicaId, RequestId, SeqNum, SlotNum, ViewId};
pub use payload::{Payload, PayloadBuilder, PayloadStats};
