//! Shared, cheaply-clonable message payloads.
//!
//! NeoBFT's end-host hot path must not give back the switch's gains in
//! `memcpy`: once the network orders and authenticates requests, the
//! replica loop is thin, and a per-destination `Vec<u8>` clone on every
//! broadcast would dominate it. [`Payload`] is an `Arc<[u8]>`-backed
//! newtype: a broadcast to N peers is one encode plus N refcount bumps,
//! and delivery hands nodes `&[u8]` views without copying.
//!
//! [`PayloadBuilder`] is the `BytesMut`-style companion for hot encode
//! paths: it owns a scratch buffer that is reused across messages, so a
//! steady-state sender performs exactly one allocation (the shared
//! `Arc<[u8]>`) per wire message.
//!
//! The module also keeps process-wide allocation counters
//! ([`PayloadStats`]) so the bench harness can report bytes-copied and
//! allocations per committed operation — making copy regressions visible
//! in `BENCH_*.json` instead of only in profiles.

use std::fmt;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide payload allocation counters (relaxed atomics; cheap
/// enough for the hot path, exact enough for per-op reporting).
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
static CLONES: AtomicU64 = AtomicU64::new(0);

/// A point-in-time view of the process-wide payload counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PayloadStats {
    /// `Arc<[u8]>` buffers created (one per encoded wire message).
    pub allocations: u64,
    /// Total bytes copied into those buffers.
    pub allocated_bytes: u64,
    /// Reference-count bumps (broadcast fan-out, caching, requeues).
    pub clones: u64,
}

impl PayloadStats {
    /// Read the current process-wide counters.
    pub fn snapshot() -> PayloadStats {
        PayloadStats {
            allocations: ALLOCATIONS.load(Ordering::Relaxed),
            allocated_bytes: ALLOCATED_BYTES.load(Ordering::Relaxed),
            clones: CLONES.load(Ordering::Relaxed),
        }
    }

    /// Counters accumulated since `earlier` (for windowed reporting).
    pub fn since(&self, earlier: &PayloadStats) -> PayloadStats {
        PayloadStats {
            allocations: self.allocations.saturating_sub(earlier.allocations),
            allocated_bytes: self.allocated_bytes.saturating_sub(earlier.allocated_bytes),
            clones: self.clones.saturating_sub(earlier.clones),
        }
    }
}

/// An immutable, reference-counted wire payload.
///
/// Cloning bumps a refcount instead of copying bytes, which is what
/// makes `Context::broadcast` a single-encode operation. Derefs to
/// `[u8]` so existing slice-based code reads it unchanged.
#[derive(PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Payload(Arc<[u8]>);

impl Payload {
    /// The shared empty payload (no allocation).
    pub fn empty() -> Payload {
        static EMPTY: std::sync::OnceLock<Arc<[u8]>> = std::sync::OnceLock::new();
        Payload(EMPTY.get_or_init(|| Arc::from(&[][..])).clone())
    }

    /// Copy `bytes` into a fresh shared buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Payload {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Payload(Arc::from(bytes))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The bytes as a slice (equivalent to `Deref`).
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(v.len() as u64, Ordering::Relaxed);
        Payload(Arc::from(v))
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Payload {
        Payload::copy_from_slice(v)
    }
}

impl<const N: usize> From<[u8; N]> for Payload {
    fn from(v: [u8; N]) -> Payload {
        Payload::copy_from_slice(&v)
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({} bytes)", self.0.len())
    }
}

// Manual Clone (not derived) so broadcast fan-out is visible in
// PayloadStats: each bump is a refcount increment, never a byte copy.
impl Clone for Payload {
    fn clone(&self) -> Payload {
        CLONES.fetch_add(1, Ordering::Relaxed);
        Payload(Arc::clone(&self.0))
    }
}

impl Default for Payload {
    fn default() -> Payload {
        Payload::empty()
    }
}

/// A `BytesMut`-style builder that reuses its scratch buffer across
/// messages: encode into [`PayloadBuilder::buf`], then
/// [`PayloadBuilder::finish`] copies the scratch into a fresh shared
/// buffer and clears the scratch *keeping its capacity*.
#[derive(Default)]
pub struct PayloadBuilder {
    scratch: Vec<u8>,
}

impl PayloadBuilder {
    /// A builder with an empty scratch buffer.
    pub fn new() -> PayloadBuilder {
        PayloadBuilder::default()
    }

    /// A builder whose scratch starts at `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> PayloadBuilder {
        PayloadBuilder {
            scratch: Vec::with_capacity(capacity),
        }
    }

    /// The scratch buffer, cleared and ready for one message's bytes.
    pub fn buf(&mut self) -> &mut Vec<u8> {
        self.scratch.clear();
        &mut self.scratch
    }

    /// Append bytes to the current message.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.scratch.extend_from_slice(bytes);
    }

    /// Seal the current message into a [`Payload`], retaining the
    /// scratch allocation for the next one.
    pub fn finish(&mut self) -> Payload {
        let p = Payload::copy_from_slice(&self.scratch);
        self.scratch.clear();
        p
    }

    /// Current scratch capacity (test/diagnostic hook).
    pub fn capacity(&self) -> usize {
        self.scratch.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deref_and_conversions() {
        let p: Payload = vec![1u8, 2, 3].into();
        assert_eq!(&*p, &[1, 2, 3]);
        assert_eq!(p.as_slice(), &[1, 2, 3]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        let q: Payload = (&[1u8, 2, 3][..]).into();
        assert_eq!(p, q);
        assert!(Payload::empty().is_empty());
        assert_eq!(Payload::default(), Payload::empty());
    }

    #[test]
    fn clone_shares_the_buffer() {
        let p: Payload = vec![7u8; 64].into();
        let q = p.clone();
        // Same allocation: identical pointers, not just equal bytes.
        assert!(std::ptr::eq(p.as_slice(), q.as_slice()));
    }

    #[test]
    fn stats_count_allocs_and_clones() {
        let before = PayloadStats::snapshot();
        let p: Payload = vec![0u8; 100].into();
        let _q = p.clone();
        let _r = p.clone();
        // Counters are process-wide, so parallel tests may add to the
        // deltas; assert lower bounds only.
        let delta = PayloadStats::snapshot().since(&before);
        assert!(delta.allocations >= 1);
        assert!(delta.allocated_bytes >= 100);
        assert!(delta.clones >= 2);
    }

    #[test]
    fn builder_reuses_scratch_capacity() {
        let mut b = PayloadBuilder::with_capacity(256);
        b.buf().extend_from_slice(&[1, 2, 3]);
        let p = b.finish();
        assert_eq!(&*p, &[1, 2, 3]);
        let cap = b.capacity();
        assert!(cap >= 256);
        b.extend_from_slice(&[9; 10]);
        let q = b.finish();
        assert_eq!(q.len(), 10);
        assert_eq!(b.capacity(), cap, "scratch allocation survives finish");
    }
}
