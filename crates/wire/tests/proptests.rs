//! Property-based tests for wire formats and framing.

use bytes::BytesMut;
use neo_wire::{
    decode, encode, AomHeader, Authenticator, EpochNum, FrameDecoder, FrameEncoder, GroupId,
    SeqNum, HMAC_TAG_LEN,
};
use proptest::prelude::*;

fn arb_authenticator() -> impl Strategy<Value = Authenticator> {
    prop_oneof![
        Just(Authenticator::Unstamped),
        proptest::collection::vec(proptest::array::uniform8(any::<u8>()), 0..64)
            .prop_map(Authenticator::HmacVector),
        (
            proptest::option::of(proptest::collection::vec(any::<u8>(), 64..=64)),
            proptest::array::uniform32(any::<u8>())
        )
            .prop_map(|(sig, prev_hash)| Authenticator::Signature { sig, prev_hash }),
    ]
}

fn arb_header() -> impl Strategy<Value = AomHeader> {
    (
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        proptest::array::uniform32(any::<u8>()),
        arb_authenticator(),
    )
        .prop_map(|(g, e, s, digest, auth)| AomHeader {
            group: GroupId(g),
            epoch: EpochNum(e),
            seq: SeqNum(s),
            digest,
            auth,
        })
}

proptest! {
    #[test]
    fn header_roundtrips(h in arb_header()) {
        let bytes = encode(&h).unwrap();
        let back: AomHeader = decode(&bytes).unwrap();
        prop_assert_eq!(back, h);
    }

    #[test]
    fn auth_input_is_injective_in_seq_and_epoch(
        h in arb_header(),
        s2 in any::<u64>(),
        e2 in any::<u64>(),
    ) {
        let mut other = h.clone();
        other.seq = SeqNum(s2);
        other.epoch = EpochNum(e2);
        if h.seq != other.seq || h.epoch != other.epoch {
            prop_assert_ne!(h.auth_input(), other.auth_input());
        } else {
            prop_assert_eq!(h.auth_input(), other.auth_input());
        }
    }

    #[test]
    fn hmac_wire_len_is_linear(n in 0usize..100) {
        let auth = Authenticator::HmacVector(vec![[0u8; HMAC_TAG_LEN]; n]);
        prop_assert_eq!(auth.wire_len(), n * HMAC_TAG_LEN);
    }

    /// Frames survive arbitrary payloads delivered in arbitrary chunk
    /// splits.
    #[test]
    fn framing_roundtrips_under_any_chunking(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..512), 1..8),
        chunk in 1usize..64,
    ) {
        let mut stream = BytesMut::new();
        for p in &payloads {
            FrameEncoder.encode(p, &mut stream).unwrap();
        }
        let bytes = stream.to_vec();
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for piece in bytes.chunks(chunk) {
            dec.feed(piece);
            while let Some(frame) = dec.next_frame().unwrap() {
                out.push(frame);
            }
        }
        prop_assert_eq!(out, payloads);
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Whatever arrives from a Byzantine peer, decoding returns
        // Ok or Err — never panics.
        let _ = decode::<AomHeader>(&bytes);
    }
}
