//! End-to-end tests for every baseline protocol in the simulator.

use neo_app::{EchoApp, EchoWorkload};
use neo_baselines::zyzzyva::ZyzzyvaBehavior;
use neo_baselines::{
    BaselineConfig, HotStuffClient, HotStuffReplica, MinBftClient, MinBftReplica, PbftClient,
    PbftReplica, ZyzzyvaClient, ZyzzyvaReplica,
};
use neo_crypto::{CostModel, SystemKeys};
use neo_sim::{CpuConfig, FaultPlan, NetConfig, SimConfig, Simulator, SECS};
use neo_wire::{Addr, ClientId, ReplicaId};

fn sim(seed: u64, net: NetConfig) -> Simulator {
    Simulator::new(SimConfig {
        net,
        default_cpu: CpuConfig::IDEAL,
        seed,
        faults: FaultPlan::none(),
    })
}

/// Which protocol to wire into the generic harness.
enum Proto {
    Pbft,
    Zyzzyva { mute_one: bool },
    HotStuff,
    MinBft,
}

struct Outcome {
    completed: Vec<neo_core::CompletedOp>,
    executed_per_replica: Vec<u64>,
    fast_commits: u64,
    slow_commits: u64,
}

fn run(proto: Proto, n_clients: u64, ops: u64, virtual_secs: u64) -> Outcome {
    run_on(proto, n_clients, ops, virtual_secs, NetConfig::DATACENTER).0
}

fn run_on(
    proto: Proto,
    n_clients: u64,
    ops: u64,
    virtual_secs: u64,
    net: NetConfig,
) -> (Outcome, neo_sim::NetStats) {
    let cfg = match proto {
        Proto::MinBft => BaselineConfig::new_2f1(1),
        _ => BaselineConfig::new_3f1(1),
    };
    let n = cfg.n;
    let keys = SystemKeys::new(11, n, n_clients as usize);
    let mut s = sim(5, net);
    for r in 0..n as u32 {
        let id = ReplicaId(r);
        let app = Box::new(EchoApp::new());
        let node: Box<dyn neo_sim::Node> = match proto {
            Proto::Pbft => Box::new(PbftReplica::new(
                id,
                cfg.clone(),
                &keys,
                CostModel::FREE,
                app,
            )),
            Proto::Zyzzyva { mute_one } => {
                let mut z = ZyzzyvaReplica::new(id, cfg.clone(), &keys, CostModel::FREE, app);
                if mute_one && r == n as u32 - 1 {
                    z.behavior = ZyzzyvaBehavior::Mute;
                }
                Box::new(z)
            }
            Proto::HotStuff => Box::new(HotStuffReplica::new(
                id,
                cfg.clone(),
                &keys,
                CostModel::FREE,
                app,
            )),
            Proto::MinBft => Box::new(MinBftReplica::new(
                id,
                cfg.clone(),
                &keys,
                CostModel::FREE,
                app,
            )),
        };
        s.add_node(Addr::Replica(id), node);
    }
    for c in 0..n_clients {
        let w = Box::new(EchoWorkload::new(32, c + 1));
        let node: Box<dyn neo_sim::Node> = match proto {
            Proto::Pbft => {
                let mut cl = PbftClient::new(ClientId(c), cfg.clone(), &keys, CostModel::FREE, w);
                cl.core.max_ops = Some(ops);
                Box::new(cl)
            }
            Proto::Zyzzyva { .. } => {
                let mut cl =
                    ZyzzyvaClient::new(ClientId(c), cfg.clone(), &keys, CostModel::FREE, w);
                cl.core.max_ops = Some(ops);
                Box::new(cl)
            }
            Proto::HotStuff => {
                let mut cl =
                    HotStuffClient::new(ClientId(c), cfg.clone(), &keys, CostModel::FREE, w);
                cl.core.max_ops = Some(ops);
                Box::new(cl)
            }
            Proto::MinBft => {
                let mut cl = MinBftClient::new(ClientId(c), cfg.clone(), &keys, CostModel::FREE, w);
                cl.core.max_ops = Some(ops);
                Box::new(cl)
            }
        };
        s.add_node(Addr::Client(ClientId(c)), node);
    }
    s.run_until(virtual_secs * SECS);

    let mut completed = Vec::new();
    let mut fast = 0;
    let mut slow = 0;
    for c in 0..n_clients {
        let addr = Addr::Client(ClientId(c));
        match proto {
            Proto::Pbft => completed.extend(
                s.node_ref::<PbftClient>(addr)
                    .unwrap()
                    .core
                    .completed
                    .clone(),
            ),
            Proto::Zyzzyva { .. } => {
                let cl = s.node_ref::<ZyzzyvaClient>(addr).unwrap();
                completed.extend(cl.core.completed.clone());
                fast += cl.fast_commits;
                slow += cl.slow_commits;
            }
            Proto::HotStuff => completed.extend(
                s.node_ref::<HotStuffClient>(addr)
                    .unwrap()
                    .core
                    .completed
                    .clone(),
            ),
            Proto::MinBft => completed.extend(
                s.node_ref::<MinBftClient>(addr)
                    .unwrap()
                    .core
                    .completed
                    .clone(),
            ),
        }
    }
    let executed_per_replica = (0..n as u32)
        .map(|r| {
            let addr = Addr::Replica(ReplicaId(r));
            match proto {
                Proto::Pbft => s.node_ref::<PbftReplica>(addr).unwrap().executed,
                Proto::Zyzzyva { .. } => s.node_ref::<ZyzzyvaReplica>(addr).unwrap().executed,
                Proto::HotStuff => s.node_ref::<HotStuffReplica>(addr).unwrap().executed,
                Proto::MinBft => s.node_ref::<MinBftReplica>(addr).unwrap().executed,
            }
        })
        .collect();
    let stats = s.stats();
    (
        Outcome {
            completed,
            executed_per_replica,
            fast_commits: fast,
            slow_commits: slow,
        },
        stats,
    )
}

#[test]
fn pbft_commits_ops() {
    let out = run(Proto::Pbft, 2, 15, 5);
    assert_eq!(out.completed.len(), 30);
    assert!(out.completed.iter().all(|o| o.result.len() == 32));
    // All replicas executed every operation.
    assert!(out.executed_per_replica.iter().all(|e| *e == 30));
}

#[test]
fn pbft_batches_under_load() {
    // 8 concurrent clients: batching must kick in, and everything still
    // commits exactly once.
    let out = run(Proto::Pbft, 8, 10, 10);
    assert_eq!(out.completed.len(), 80);
    assert!(out.executed_per_replica.iter().all(|e| *e == 80));
}

#[test]
fn zyzzyva_fast_path_with_all_correct() {
    let out = run(Proto::Zyzzyva { mute_one: false }, 2, 15, 5);
    assert_eq!(out.completed.len(), 30);
    assert_eq!(out.fast_commits, 30, "all commits via the fast path");
    assert_eq!(out.slow_commits, 0);
}

#[test]
fn zyzzyva_slow_path_with_one_faulty() {
    // Zyzzyva-F: a single non-responsive replica forces the commit
    // phase on every request.
    let out = run(Proto::Zyzzyva { mute_one: true }, 2, 10, 10);
    assert_eq!(out.completed.len(), 20);
    assert_eq!(out.fast_commits, 0, "fast path impossible with 3f matching");
    assert_eq!(out.slow_commits, 20);
}

#[test]
fn zyzzyva_slow_path_is_slower() {
    let fast = run(Proto::Zyzzyva { mute_one: false }, 1, 10, 10);
    let slow = run(Proto::Zyzzyva { mute_one: true }, 1, 10, 10);
    let avg = |o: &Outcome| {
        o.completed.iter().map(|c| c.latency_ns()).sum::<u64>() / o.completed.len() as u64
    };
    assert!(
        avg(&slow) > 2 * avg(&fast),
        "commit phase + grace timeout dominates: {} vs {}",
        avg(&slow),
        avg(&fast)
    );
}

#[test]
fn hotstuff_commits_via_three_chain() {
    let out = run(Proto::HotStuff, 2, 10, 10);
    assert_eq!(out.completed.len(), 20);
    assert!(out.executed_per_replica.iter().all(|e| *e == 20));
}

#[test]
fn hotstuff_latency_exceeds_pbft() {
    // The three-chain plus pacemaker makes HotStuff the slowest per-op
    // protocol — the Figure 7 latency ordering.
    let hs = run(Proto::HotStuff, 1, 10, 10);
    let pbft = run(Proto::Pbft, 1, 10, 10);
    let avg = |o: &Outcome| {
        o.completed.iter().map(|c| c.latency_ns()).sum::<u64>() / o.completed.len() as u64
    };
    assert!(avg(&hs) > avg(&pbft), "{} vs {}", avg(&hs), avg(&pbft));
}

#[test]
fn minbft_commits_with_2f_plus_1_replicas() {
    let out = run(Proto::MinBft, 2, 15, 5);
    assert_eq!(out.completed.len(), 30);
    assert_eq!(out.executed_per_replica.len(), 3, "n = 2f+1 = 3");
    assert!(out.executed_per_replica.iter().all(|e| *e == 30));
}

#[test]
fn pbft_stays_live_on_a_lossy_network() {
    // 0.2% random loss. PBFT's quorum margin (2f+1 of 3f+1, so any
    // single drop per phase is absorbed) plus client retransmission
    // means every operation still commits; a backup that misses a
    // pre-prepare stalls its own execution but the client only needs
    // f+1 matching replies.
    let net = NetConfig::DATACENTER.with_drop_rate(0.002);
    let (out, stats) = run_on(Proto::Pbft, 8, 50, 20, net);
    assert!(stats.dropped_random > 0, "loss never fired");
    assert_eq!(out.completed.len(), 400, "every op commits despite loss");
    assert!(out.completed.iter().all(|o| o.result.len() == 32));
    // No replica ever executes an operation twice, retransmissions
    // included.
    assert!(out.executed_per_replica.iter().all(|e| *e <= 400));
}

#[test]
fn zyzzyva_makes_progress_on_a_lossy_network() {
    // 0.5% random loss. Zyzzyva is far more brittle than PBFT here: a
    // backup that misses one ORDER-REQ diverges from the speculative
    // history hash chain forever (there is no hole-filling), and once
    // two backups have diverged the 2f+1 matching spec-responses the
    // commit certificate needs no longer exist. So this test asserts
    // progress and exactly-once execution, not full completion — the
    // brittleness is the documented contrast with NeoBFT's AOM-layer
    // gap agreement (tests/chaos.rs), which keeps the lossy fast path
    // recoverable.
    let net = NetConfig::DATACENTER.with_drop_rate(0.005);
    let (out, stats) = run_on(Proto::Zyzzyva { mute_one: false }, 8, 25, 20, net);
    assert!(stats.dropped_random > 0, "loss never fired");
    assert!(
        !out.completed.is_empty(),
        "clients must make progress under loss"
    );
    assert!(out.completed.iter().all(|o| o.result.len() == 32));
    assert!(out.executed_per_replica.iter().all(|e| *e <= 200));
}

#[test]
fn minbft_usig_serializes_throughput() {
    // With a real USIG cost, MinBFT's primary is bottlenecked by the
    // trusted component; with it free, it is not. Both must still
    // commit everything — the cost only shifts time.
    let out = run(Proto::MinBft, 4, 10, 10);
    assert_eq!(out.completed.len(), 40);
}
