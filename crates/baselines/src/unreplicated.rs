//! The unreplicated baseline: one server, no fault tolerance, no
//! cryptography — the performance upper bound in Figures 7 and 10.

use crate::common::{BaseRequest, ClientCore};
use neo_aom::Envelope;
use neo_app::{App, Workload};
use neo_sim::{Context, Node, TimerId};
use neo_wire::{decode, encode, Addr, ClientId, ReplicaId, RequestId};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::HashMap;

/// Unreplicated protocol messages.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
enum Msg {
    Request(BaseRequest),
    Reply {
        request_id: RequestId,
        result: Vec<u8>,
    },
}

fn wrap(msg: &Msg) -> neo_wire::Payload {
    Envelope::App(encode(msg).unwrap_or_default()).to_payload()
}

fn unwrap(bytes: &[u8]) -> Option<Msg> {
    match Envelope::from_bytes(bytes).ok()? {
        Envelope::App(inner) => decode(&inner).ok(),
        _ => None,
    }
}

/// The single server.
pub struct UnreplicatedServer {
    app: Box<dyn App>,
    /// At-most-once table.
    table: HashMap<ClientId, (RequestId, Vec<u8>)>,
    /// Executed operation count.
    pub executed: u64,
}

impl UnreplicatedServer {
    /// Server wrapping `app`.
    pub fn new(app: Box<dyn App>) -> Self {
        UnreplicatedServer {
            app,
            table: HashMap::new(),
            executed: 0,
        }
    }
}

impl Node for UnreplicatedServer {
    fn on_message(&mut self, from: Addr, payload: &[u8], ctx: &mut dyn Context) {
        let Some(Msg::Request(req)) = unwrap(payload) else {
            return;
        };
        if let Some((last, cached)) = self.table.get(&req.client) {
            if req.request_id < *last {
                return;
            }
            if req.request_id == *last {
                ctx.send(
                    from,
                    wrap(&Msg::Reply {
                        request_id: req.request_id,
                        result: cached.clone(),
                    }),
                );
                return;
            }
        }
        let result = self.app.execute(&req.op);
        self.executed += 1;
        // neo-lint: allow(R5, at-most-once table holds one entry per client)
        self.table
            // neo-lint: allow(R6, unreplicated baseline deliberately has no request authentication)
            .insert(req.client, (req.request_id, result.clone()));
        ctx.send(
            Addr::Client(req.client),
            wrap(&Msg::Reply {
                request_id: req.request_id,
                result,
            }),
        );
    }

    fn on_timer(&mut self, _: TimerId, _: u32, _: &mut dyn Context) {}

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The unreplicated client.
pub struct UnreplicatedClient {
    /// Shared closed-loop core (completed ops live here).
    pub core: ClientCore,
    server: ReplicaId,
}

impl UnreplicatedClient {
    /// Client talking to `server`.
    pub fn new(
        id: ClientId,
        server: ReplicaId,
        workload: Box<dyn Workload>,
        retry_ns: u64,
    ) -> Self {
        UnreplicatedClient {
            core: ClientCore::new(id, workload, retry_ns),
            server,
        }
    }

    fn transmit(&mut self, req: BaseRequest, ctx: &mut dyn Context) {
        ctx.send(Addr::Replica(self.server), wrap(&Msg::Request(req)));
    }
}

impl Node for UnreplicatedClient {
    fn on_message(&mut self, _from: Addr, payload: &[u8], ctx: &mut dyn Context) {
        let Some(Msg::Reply { request_id, result }) = unwrap(payload) else {
            return;
        };
        let matches = self
            .core
            .pending
            .as_ref()
            .map(|p| p.request_id == request_id)
            .unwrap_or(false);
        if matches {
            self.core.complete(result, ctx);
            if let Some(req) = self.core.issue(ctx) {
                self.transmit(req, ctx);
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId, kind: u32, ctx: &mut dyn Context) {
        if kind == neo_sim::sim::INIT_TIMER_KIND {
            if let Some(req) = self.core.issue(ctx) {
                self.transmit(req, ctx);
            }
        } else if self.core.is_retry_timer(timer) {
            if let Some(req) = self.core.retransmit(ctx) {
                self.transmit(req, ctx);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_app::{EchoApp, EchoWorkload};
    use neo_sim::{CpuConfig, FaultPlan, NetConfig, SimConfig, Simulator};

    #[test]
    fn echo_roundtrip_in_sim() {
        let mut sim = Simulator::new(SimConfig {
            net: NetConfig::DATACENTER,
            default_cpu: CpuConfig::IDEAL,
            seed: 1,
            faults: FaultPlan::none(),
        });
        sim.add_node(
            Addr::Replica(ReplicaId(0)),
            Box::new(UnreplicatedServer::new(Box::new(EchoApp::new()))),
        );
        let mut client = UnreplicatedClient::new(
            ClientId(0),
            ReplicaId(0),
            Box::new(EchoWorkload::new(32, 1)),
            neo_sim::MILLIS,
        );
        client.core.max_ops = Some(20);
        sim.add_node(Addr::Client(ClientId(0)), Box::new(client));
        sim.run_until(neo_sim::SECS);
        let c = sim
            .node_ref::<UnreplicatedClient>(Addr::Client(ClientId(0)))
            .unwrap();
        assert_eq!(c.core.completed.len(), 20);
        assert!(c.core.completed.iter().all(|o| o.result.len() == 32));
        let s = sim
            .node_ref::<UnreplicatedServer>(Addr::Replica(ReplicaId(0)))
            .unwrap();
        assert_eq!(s.executed, 20);
    }

    #[test]
    fn retries_survive_drops() {
        let mut sim = Simulator::new(SimConfig {
            net: NetConfig::DATACENTER.with_drop_rate(0.3),
            default_cpu: CpuConfig::IDEAL,
            seed: 5,
            faults: FaultPlan::none(),
        });
        sim.add_node(
            Addr::Replica(ReplicaId(0)),
            Box::new(UnreplicatedServer::new(Box::new(EchoApp::new()))),
        );
        let mut client = UnreplicatedClient::new(
            ClientId(0),
            ReplicaId(0),
            Box::new(EchoWorkload::new(8, 1)),
            neo_sim::MILLIS,
        );
        client.core.max_ops = Some(10);
        sim.add_node(Addr::Client(ClientId(0)), Box::new(client));
        sim.run_until(10 * neo_sim::SECS);
        let c = sim
            .node_ref::<UnreplicatedClient>(Addr::Client(ClientId(0)))
            .unwrap();
        assert_eq!(c.core.completed.len(), 10);
        assert!(c.core.completed.iter().any(|o| o.retries > 0));
    }
}
