//! Zyzzyva (SOSP '07) — speculative BFT.
//!
//! Fast path (3 delays): the primary orders and broadcasts, replicas
//! execute speculatively and respond directly to the client, who commits
//! on **3f+1** matching spec-responses. If only 2f+1..3f match within a
//! timeout, the client assembles a commit certificate from 2f+1
//! responses and runs one more round (5 delays). A single
//! non-responsive replica therefore pushes *every* request onto the slow
//! path — the Zyzzyva-F configuration whose throughput collapses in
//! Figure 7.

use crate::common::{BaseRequest, BaselineConfig, BatchQueue, ClientCore};
use neo_aom::Envelope;
use neo_app::{App, Workload};
use neo_crypto::{chain, sha256, CostModel, Digest, NodeCrypto, Principal, Signature, SystemKeys};
use neo_sim::{Context, Node, TimerId};
use neo_wire::{decode, encode, Addr, ClientId, HmacTag, ReplicaId, RequestId};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::{BTreeMap, HashMap};

/// Body of a spec-response, signed by the replica (signatures make the
/// client's commit certificate transferable).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SpecBody {
    view: u64,
    seq: u64,
    /// History digest: hash chain over all batches up to `seq`.
    history: Digest,
    replica: ReplicaId,
    request_id: RequestId,
    result_digest: Digest,
}

/// Zyzzyva wire messages.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
enum Msg {
    Request(BaseRequest, Signature),
    /// Primary → replicas (per-destination MAC).
    OrderReq {
        view: u64,
        seq: u64,
        batch: Vec<(BaseRequest, Signature)>,
        history: Digest,
        mac: HmacTag,
    },
    /// Replica → client (signed).
    SpecResponse {
        body: SpecBody,
        result: Vec<u8>,
        sig: Signature,
    },
    /// Client → replicas: commit certificate of 2f+1 matching responses.
    Commit {
        client: ClientId,
        cert: Vec<(SpecBody, Signature)>,
    },
    /// Replica → client (per-client MAC).
    LocalCommit {
        view: u64,
        replica: ReplicaId,
        request_id: RequestId,
        mac: HmacTag,
    },
}

fn wrap(msg: &Msg) -> neo_wire::Payload {
    Envelope::App(encode(msg).unwrap_or_default()).to_payload()
}

fn unwrap(bytes: &[u8]) -> Option<Msg> {
    match Envelope::from_bytes(bytes).ok()? {
        Envelope::App(inner) => decode(&inner).ok(),
        _ => None,
    }
}

/// Fault behaviour for the Zyzzyva-F experiment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ZyzzyvaBehavior {
    /// Follow the protocol.
    Correct,
    /// Never respond (the faulty replica of §6.2's Zyzzyva-F).
    Mute,
}

/// A Zyzzyva replica.
pub struct ZyzzyvaReplica {
    cfg: BaselineConfig,
    id: ReplicaId,
    crypto: NodeCrypto,
    app: Box<dyn App>,
    view: u64,
    next_seq: u64,
    exec_next: u64,
    history: Digest,
    queue: BatchQueue,
    pending_order: BTreeMap<u64, (Vec<(BaseRequest, Signature)>, Digest)>,
    table: HashMap<ClientId, (RequestId, Msg)>,
    sig_cache: HashMap<(ClientId, RequestId), Signature>,
    /// Fault injection.
    pub behavior: ZyzzyvaBehavior,
    /// Operations executed.
    pub executed: u64,
    /// Messages processed.
    pub messages_in: u64,
}

/// Cap on verified-but-unbatched client signatures buffered at the
/// primary (neo-lint R5 bound).
const SIG_CACHE_MAX: usize = 4096;

impl ZyzzyvaReplica {
    /// Build replica `id`.
    pub fn new(
        id: ReplicaId,
        cfg: BaselineConfig,
        keys: &SystemKeys,
        costs: CostModel,
        app: Box<dyn App>,
    ) -> Self {
        ZyzzyvaReplica {
            cfg,
            id,
            crypto: NodeCrypto::new(Principal::Replica(id), keys, costs),
            app,
            view: 0,
            next_seq: 1,
            exec_next: 1,
            history: Digest::ZERO,
            queue: BatchQueue::default(),
            pending_order: BTreeMap::new(),
            table: HashMap::new(),
            sig_cache: HashMap::new(),
            behavior: ZyzzyvaBehavior::Correct,
            executed: 0,
            messages_in: 0,
        }
    }

    fn is_primary(&self) -> bool {
        self.id == self.cfg.primary()
    }

    fn on_request(&mut self, req: BaseRequest, sig: Signature, ctx: &mut dyn Context) {
        if !self.is_primary() {
            return;
        }
        if let Some((last, cached)) = self.table.get(&req.client) {
            if req.request_id < *last {
                return;
            }
            if req.request_id == *last {
                ctx.send(Addr::Client(req.client), wrap(&cached.clone()));
                return;
            }
        }
        let Ok(req_bytes) = encode(&req) else {
            return;
        };
        if self
            .crypto
            .verify(Principal::Client(req.client), &req_bytes, &sig)
            .is_err()
        {
            return;
        }
        if self.sig_cache.contains_key(&(req.client, req.request_id)) {
            return;
        }
        if self.sig_cache.len() >= SIG_CACHE_MAX {
            ctx.metrics().incr("replica.bounded_rejects");
            return;
        }
        // neo-lint: allow(R5, size-capped at SIG_CACHE_MAX above)
        self.sig_cache.insert((req.client, req.request_id), sig);
        self.queue.push(req);
        self.try_order(ctx);
    }

    fn try_order(&mut self, ctx: &mut dyn Context) {
        while let Some(batch) = self
            .queue
            .next_batch(self.cfg.batch_max, self.cfg.pipeline_depth)
        {
            let seq = self.next_seq;
            self.next_seq += 1;
            let signed: Vec<(BaseRequest, Signature)> = batch
                .into_iter()
                .map(|r| {
                    let sig = self
                        .sig_cache
                        .remove(&(r.client, r.request_id))
                        .unwrap_or_else(Signature::empty);
                    (r, sig)
                })
                .collect();
            let bdigest = sha256(&encode(&signed).unwrap_or_default());
            let history = chain(self.history, bdigest.as_bytes());
            if self.behavior != ZyzzyvaBehavior::Mute {
                for r in (0..self.cfg.n as u32)
                    .map(ReplicaId)
                    .filter(|r| *r != self.id)
                {
                    let mut input = seq.to_le_bytes().to_vec();
                    input.extend_from_slice(history.as_bytes());
                    let mac = self.crypto.mac_for(Principal::Replica(r), &input);
                    ctx.send(
                        Addr::Replica(r),
                        wrap(&Msg::OrderReq {
                            view: self.view,
                            seq,
                            batch: signed.clone(),
                            history,
                            mac,
                        }),
                    );
                }
            }
            self.accept_order(seq, signed, history, ctx);
        }
    }

    fn on_order_req(
        &mut self,
        view: u64,
        seq: u64,
        batch: Vec<(BaseRequest, Signature)>,
        history: Digest,
        mac: HmacTag,
        ctx: &mut dyn Context,
    ) {
        if view != self.view || self.is_primary() {
            return;
        }
        let mut input = seq.to_le_bytes().to_vec();
        input.extend_from_slice(history.as_bytes());
        if self
            .crypto
            .verify_mac_from(Principal::Replica(self.cfg.primary()), &input, &mac)
            .is_err()
        {
            return;
        }
        for (req, sig) in &batch {
            let Ok(req_bytes) = encode(req) else {
                return;
            };
            if self
                .crypto
                .verify(Principal::Client(req.client), &req_bytes, sig)
                .is_err()
            {
                return;
            }
        }
        self.accept_order(seq, batch, history, ctx);
    }

    /// Queue an ordered batch and execute in sequence order.
    fn accept_order(
        &mut self,
        seq: u64,
        batch: Vec<(BaseRequest, Signature)>,
        history: Digest,
        ctx: &mut dyn Context,
    ) {
        self.pending_order.entry(seq).or_insert((batch, history));
        while let Some((batch, history)) = self.pending_order.remove(&self.exec_next) {
            let seq = self.exec_next;
            self.exec_next += 1;
            // Verify the primary's history chain.
            let bdigest = sha256(&encode(&batch).unwrap_or_default());
            let expect = chain(self.history, bdigest.as_bytes());
            if expect != history {
                return; // equivocating primary: would trigger view change
            }
            self.history = history;
            for (req, _) in &batch {
                let dup = self
                    .table
                    .get(&req.client)
                    .map(|(last, _)| req.request_id <= *last)
                    .unwrap_or(false);
                if dup {
                    continue;
                }
                let result = self.app.execute(&req.op);
                self.executed += 1;
                let body = SpecBody {
                    view: self.view,
                    seq,
                    history,
                    replica: self.id,
                    request_id: req.request_id,
                    result_digest: sha256(&result),
                };
                let sig = self.crypto.sign(&encode(&body).unwrap_or_default());
                let msg = Msg::SpecResponse { body, result, sig };
                self.table.insert(req.client, (req.request_id, msg.clone()));
                if self.behavior != ZyzzyvaBehavior::Mute {
                    ctx.send(Addr::Client(req.client), wrap(&msg));
                }
            }
            if self.is_primary() {
                self.queue.batch_done();
            }
        }
        if self.is_primary() {
            self.try_order(ctx);
        }
        let _ = seq;
    }

    fn on_commit(
        &mut self,
        cert: Vec<(SpecBody, Signature)>,
        client: ClientId,
        ctx: &mut dyn Context,
    ) {
        if self.behavior == ZyzzyvaBehavior::Mute {
            return;
        }
        // Validate 2f+1 matching signed spec-responses.
        let quorum = self.cfg.quorum();
        let mut seen = std::collections::BTreeSet::new();
        let Some((first, _)) = cert.first() else {
            return;
        };
        for (body, sig) in &cert {
            if (body.seq, body.history, body.request_id, body.result_digest)
                != (
                    first.seq,
                    first.history,
                    first.request_id,
                    first.result_digest,
                )
            {
                continue;
            }
            let Ok(body_bytes) = encode(body) else {
                continue;
            };
            if self
                .crypto
                .verify(Principal::Replica(body.replica), &body_bytes, sig)
                .is_ok()
            {
                seen.insert(body.replica);
            }
        }
        if seen.len() < quorum {
            return;
        }
        let mut input = first.request_id.0.to_le_bytes().to_vec();
        input.extend_from_slice(first.history.as_bytes());
        let mac = self.crypto.mac_for(Principal::Client(client), &input);
        ctx.send(
            Addr::Client(client),
            wrap(&Msg::LocalCommit {
                view: self.view,
                replica: self.id,
                request_id: first.request_id,
                mac,
            }),
        );
    }
}

impl Node for ZyzzyvaReplica {
    fn on_message(&mut self, _from: Addr, payload: &[u8], ctx: &mut dyn Context) {
        self.messages_in += 1;
        let Some(msg) = unwrap(payload) else {
            return;
        };
        match msg {
            Msg::Request(req, sig) => self.on_request(req, sig, ctx),
            Msg::OrderReq {
                view,
                seq,
                batch,
                history,
                mac,
            } => self.on_order_req(view, seq, batch, history, mac, ctx),
            Msg::Commit { client, cert } => self.on_commit(cert, client, ctx),
            Msg::SpecResponse { .. } | Msg::LocalCommit { .. } => {}
        }
    }

    fn on_timer(&mut self, _: TimerId, _: u32, _: &mut dyn Context) {}

    fn meter(&self) -> Option<&neo_crypto::Meter> {
        Some(self.crypto.meter())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The Zyzzyva client: fast path on 3f+1 matching spec-responses, slow
/// path with a commit certificate on 2f+1.
pub struct ZyzzyvaClient {
    /// Shared closed-loop core.
    pub core: ClientCore,
    cfg: BaselineConfig,
    crypto: NodeCrypto,
    // BTreeMap: `matching_set` iterates this, and the chosen maximal
    // group must be the same on every run (neo-lint R1).
    spec: BTreeMap<ReplicaId, (SpecBody, Vec<u8>, Signature)>,
    local_commits: HashMap<ReplicaId, RequestId>,
    fast_timer: Option<TimerId>,
    committing: bool,
    /// Fast-path completions (stats).
    pub fast_commits: u64,
    /// Slow-path completions (stats).
    pub slow_commits: u64,
}

impl ZyzzyvaClient {
    /// Build the client.
    pub fn new(
        id: ClientId,
        cfg: BaselineConfig,
        keys: &SystemKeys,
        costs: CostModel,
        workload: Box<dyn Workload>,
    ) -> Self {
        let retry = cfg.client_retry_ns;
        ZyzzyvaClient {
            core: ClientCore::new(id, workload, retry),
            cfg,
            crypto: NodeCrypto::new(Principal::Client(id), keys, costs),
            spec: BTreeMap::new(),
            local_commits: HashMap::new(),
            fast_timer: None,
            committing: false,
            fast_commits: 0,
            slow_commits: 0,
        }
    }

    fn transmit(&mut self, req: BaseRequest, all: bool, ctx: &mut dyn Context) {
        let sig = self.crypto.sign(&encode(&req).unwrap_or_default());
        let msg = wrap(&Msg::Request(req, sig));
        if all {
            // One encode; the whole-group retransmit is refcount bumps.
            let dests: Vec<ReplicaId> = (0..self.cfg.n as u32).map(ReplicaId).collect();
            ctx.broadcast(&dests, msg);
        } else {
            ctx.send(Addr::Replica(self.cfg.primary()), msg);
        }
    }

    fn start_next(&mut self, ctx: &mut dyn Context) {
        self.spec.clear();
        self.local_commits.clear();
        self.committing = false;
        if let Some(t) = self.fast_timer.take() {
            ctx.cancel_timer(t);
        }
        if let Some(req) = self.core.issue(ctx) {
            self.transmit(req, false, ctx);
        }
    }

    /// The largest set of mutually matching spec-responses.
    fn matching_set(&self) -> Vec<(SpecBody, Signature)> {
        let mut groups: BTreeMap<(u64, Digest, Digest), Vec<(SpecBody, Signature)>> =
            BTreeMap::new();
        for (body, _, sig) in self.spec.values() {
            groups
                .entry((body.seq, body.history, body.result_digest))
                .or_default()
                .push((body.clone(), sig.clone()));
        }
        groups
            .into_values()
            .max_by_key(|v| v.len())
            .unwrap_or_default()
    }

    fn on_spec_response(
        &mut self,
        body: SpecBody,
        result: Vec<u8>,
        sig: Signature,
        ctx: &mut dyn Context,
    ) {
        let Some(p) = self.core.pending.as_ref() else {
            return;
        };
        if body.request_id != p.request_id || self.committing {
            return;
        }
        let Ok(body_bytes) = encode(&body) else {
            return;
        };
        if self
            .crypto
            .verify(Principal::Replica(body.replica), &body_bytes, &sig)
            .is_err()
        {
            return;
        }
        if sha256(&result) != body.result_digest {
            return;
        }
        self.spec.insert(body.replica, (body, result, sig));
        let best = self.matching_set();
        if best.len() == self.cfg.n {
            // Fast path: all 3f+1 match.
            let Some(result) = best
                .first()
                .and_then(|(b, _)| self.spec.get(&b.replica))
                .map(|(_, r, _)| r.clone())
            else {
                return;
            };
            self.fast_commits += 1;
            self.core.complete(result, ctx);
            self.start_next(ctx);
        } else if best.len() >= self.cfg.quorum() && self.fast_timer.is_none() {
            // Start the fast-path grace timer.
            self.fast_timer = Some(ctx.set_timer(self.cfg.fast_path_wait_ns, 3));
        }
    }

    fn start_commit_phase(&mut self, ctx: &mut dyn Context) {
        let best = self.matching_set();
        if best.len() < self.cfg.quorum() {
            return; // keep waiting; retransmission will kick in
        }
        self.committing = true;
        let cert: Vec<(SpecBody, Signature)> = best.into_iter().take(self.cfg.quorum()).collect();
        let msg = wrap(&Msg::Commit {
            client: self.core.id,
            cert,
        });
        let dests: Vec<ReplicaId> = (0..self.cfg.n as u32).map(ReplicaId).collect();
        ctx.broadcast(&dests, msg);
    }

    fn on_local_commit(
        &mut self,
        replica: ReplicaId,
        request_id: RequestId,
        mac: HmacTag,
        ctx: &mut dyn Context,
    ) {
        let Some(p) = self.core.pending.as_ref() else {
            return;
        };
        if request_id != p.request_id || !self.committing {
            return;
        }
        let best = self.matching_set();
        let Some((first, _)) = best.first() else {
            return;
        };
        let mut input = request_id.0.to_le_bytes().to_vec();
        input.extend_from_slice(first.history.as_bytes());
        if self
            .crypto
            .verify_mac_from(Principal::Replica(replica), &input, &mac)
            .is_err()
        {
            return;
        }
        self.local_commits.insert(replica, request_id);
        if self.local_commits.len() >= self.cfg.quorum() {
            let result = self
                .spec
                .get(&first.replica)
                .map(|(_, r, _)| r.clone())
                .unwrap_or_default();
            self.slow_commits += 1;
            self.core.complete(result, ctx);
            self.start_next(ctx);
        }
    }
}

impl Node for ZyzzyvaClient {
    fn on_message(&mut self, _from: Addr, payload: &[u8], ctx: &mut dyn Context) {
        match unwrap(payload) {
            Some(Msg::SpecResponse { body, result, sig }) => {
                self.on_spec_response(body, result, sig, ctx)
            }
            Some(Msg::LocalCommit {
                replica,
                request_id,
                mac,
                ..
            }) => self.on_local_commit(replica, request_id, mac, ctx),
            _ => {}
        }
    }

    fn on_timer(&mut self, timer: TimerId, kind: u32, ctx: &mut dyn Context) {
        match kind {
            neo_sim::sim::INIT_TIMER_KIND => self.start_next(ctx),
            3 => {
                if self.fast_timer == Some(timer) {
                    self.fast_timer = None;
                    if !self.committing && self.core.pending.is_some() {
                        self.start_commit_phase(ctx);
                    }
                }
            }
            _ => {
                if self.core.is_retry_timer(timer) {
                    if let Some(req) = self.core.retransmit(ctx) {
                        self.transmit(req, true, ctx);
                    }
                }
            }
        }
    }

    fn meter(&self) -> Option<&neo_crypto::Meter> {
        Some(self.crypto.meter())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
