#![allow(clippy::int_plus_one)] // quorum arithmetic stays literal: `matching >= f + 1`

//! # neo-baselines
//!
//! The comparison protocols of §6, implemented in the same sans-IO
//! framework as NeoBFT so that Figure 7/8/10 comparisons are
//! apples-to-apples:
//!
//! * [`pbft`] — PBFT (Castro & Liskov): 3f+1 replicas, MAC-vector
//!   authenticators, pre-prepare/prepare/commit, request batching.
//!   Bottleneck O(N), authenticators O(N²), 5 message delays.
//! * [`zyzzyva`] — Zyzzyva: speculative execution; 3-delay fast path on
//!   3f+1 matching responses, client-driven commit-certificate slow path
//!   when replicas are faulty (the Zyzzyva-F configuration).
//! * [`hotstuff`] — chained HotStuff: 3f+1, signature votes and quorum
//!   certificates, linear authenticator complexity, pipelined three-chain
//!   commit; throughput comes from batching at a latency cost.
//! * [`minbft`] — MinBFT: 2f+1 replicas with a trusted USIG component
//!   (modelled as an in-process monotonic counter + HMAC attestation,
//!   standing in for the paper's SGX enclave); prepare/commit, 4 delays.
//! * [`unreplicated`] — a single unreplicated server: the upper bound.
//!
//! Scope note: these baselines implement the *normal-case* protocols
//! with batching — exactly what the paper's evaluation measures — plus
//! the failure modes the experiments need (a non-responsive replica for
//! Zyzzyva-F). Leader-failure view changes are implemented only for
//! NeoBFT, the protocol under study.

pub mod common;
pub mod hotstuff;
pub mod minbft;
pub mod pbft;
pub mod unreplicated;
pub mod zyzzyva;

pub use common::{BaselineConfig, ClientCore};
pub use hotstuff::{HotStuffClient, HotStuffReplica};
pub use minbft::{MinBftClient, MinBftReplica, Usig};
pub use pbft::{PbftClient, PbftReplica};
pub use unreplicated::{UnreplicatedClient, UnreplicatedServer};
pub use zyzzyva::{ZyzzyvaClient, ZyzzyvaReplica};
