//! PBFT (Castro & Liskov, OSDI '99) — normal-case protocol with MAC
//! authenticators and request batching.
//!
//! Five message delays: request → pre-prepare → prepare → commit →
//! reply. Every replica broadcast carries one MAC per destination, so
//! each replica processes O(N) messages per batch and the system spends
//! O(N²) authenticator operations per batch (Table 1).

use crate::common::{BaseRequest, BaselineConfig, BatchQueue, ClientCore};
use neo_aom::Envelope;
use neo_app::{App, Workload};
use neo_crypto::{sha256, CostModel, Digest, NodeCrypto, Principal, Signature, SystemKeys};
use neo_sim::obs::Event;
use neo_sim::{Context, Node, TimerId};
use neo_wire::{decode, encode, Addr, ClientId, HmacTag, ReplicaId, RequestId};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::{BTreeMap, HashMap};

/// PBFT wire messages.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
enum Msg {
    /// Client → primary (signed by the client).
    Request(BaseRequest, Signature),
    /// Primary → backup. MAC is per-destination.
    PrePrepare {
        view: u64,
        seq: u64,
        batch: Vec<(BaseRequest, Signature)>,
        mac: HmacTag,
    },
    /// Backup → all.
    Prepare {
        view: u64,
        seq: u64,
        digest: Digest,
        replica: ReplicaId,
        mac: HmacTag,
    },
    /// All → all.
    Commit {
        view: u64,
        seq: u64,
        digest: Digest,
        replica: ReplicaId,
        mac: HmacTag,
    },
    /// Replica → client.
    Reply {
        replica: ReplicaId,
        request_id: RequestId,
        result: Vec<u8>,
        mac: HmacTag,
    },
}

fn wrap(msg: &Msg) -> neo_wire::Payload {
    Envelope::App(encode(msg).unwrap_or_default()).to_payload()
}

fn unwrap(bytes: &[u8]) -> Option<Msg> {
    match Envelope::from_bytes(bytes).ok()? {
        Envelope::App(inner) => decode(&inner).ok(),
        _ => None,
    }
}

/// MAC input for a phase message.
fn phase_mac_input(tag: u8, view: u64, seq: u64, digest: &Digest) -> Vec<u8> {
    let mut v = vec![tag];
    v.extend_from_slice(&view.to_le_bytes());
    v.extend_from_slice(&seq.to_le_bytes());
    v.extend_from_slice(digest.as_bytes());
    v
}

#[derive(Default)]
struct Instance {
    batch: Option<Vec<(BaseRequest, Signature)>>,
    digest: Option<Digest>,
    // BTreeMap: quorum counting iterates these, and iteration order must
    // be deterministic across replicas (neo-lint R1).
    prepares: BTreeMap<ReplicaId, Digest>,
    commits: BTreeMap<ReplicaId, Digest>,
    prepare_sent: bool,
    commit_sent: bool,
    executed: bool,
}

/// A PBFT replica.
pub struct PbftReplica {
    cfg: BaselineConfig,
    id: ReplicaId,
    crypto: NodeCrypto,
    app: Box<dyn App>,
    view: u64,
    next_seq: u64,
    exec_next: u64,
    queue: BatchQueue,
    instances: BTreeMap<u64, Instance>,
    table: HashMap<ClientId, (RequestId, Msg)>,
    /// Verified client signatures awaiting batching (primary only).
    sig_cache: HashMap<(ClientId, RequestId), Signature>,
    /// Operations executed.
    pub executed: u64,
    /// Messages processed (Table 1 instrumentation).
    pub messages_in: u64,
}

/// How far past the execution frontier a sequence number may land and
/// still open a protocol instance (neo-lint R5 bound).
const SEQ_WINDOW: u64 = 4096;
/// Cap on verified-but-unbatched client signatures buffered at the
/// primary (neo-lint R5 bound).
const SIG_CACHE_MAX: usize = 4096;

impl PbftReplica {
    /// Build replica `id`.
    pub fn new(
        id: ReplicaId,
        cfg: BaselineConfig,
        keys: &SystemKeys,
        costs: CostModel,
        app: Box<dyn App>,
    ) -> Self {
        PbftReplica {
            cfg,
            id,
            crypto: NodeCrypto::new(Principal::Replica(id), keys, costs),
            app,
            view: 0,
            next_seq: 1,
            exec_next: 1,
            queue: BatchQueue::default(),
            instances: BTreeMap::new(),
            table: HashMap::new(),
            sig_cache: HashMap::new(),
            executed: 0,
            messages_in: 0,
        }
    }

    fn is_primary(&self) -> bool {
        self.id == self.cfg.primary()
    }

    fn others(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        (0..self.cfg.n as u32)
            .map(ReplicaId)
            .filter(move |r| *r != self.id)
    }

    /// Broadcast with per-destination MACs (the O(N) authenticator).
    fn broadcast_mac(
        &self,
        ctx: &mut dyn Context,
        mac_input: &[u8],
        build: impl Fn(HmacTag) -> Msg,
    ) {
        for r in self.others() {
            let mac = self.crypto.mac_for(Principal::Replica(r), mac_input);
            ctx.send(Addr::Replica(r), wrap(&build(mac)));
        }
    }

    fn try_open_batches(&mut self, ctx: &mut dyn Context) {
        while let Some(batch) = self
            .queue
            .next_batch(self.cfg.batch_max, self.cfg.pipeline_depth)
        {
            let seq = self.next_seq;
            self.next_seq += 1;
            let signed: Vec<(BaseRequest, Signature)> = batch
                .into_iter()
                .map(|r| {
                    // The primary re-wraps requests with the client
                    // signature it verified on arrival; signatures travel
                    // in the pre-prepare so backups can check them.
                    let sig = self.sig_cache.remove(&(r.client, r.request_id));
                    (r, sig.unwrap_or_else(Signature::empty))
                })
                .collect();
            let digest = batch_digest(&signed);
            ctx.metrics()
                .observe("replica.batch_size", signed.len() as u64);
            let inst = self.instances.entry(seq).or_default();
            inst.batch = Some(signed.clone());
            inst.digest = Some(digest);
            let input = phase_mac_input(1, self.view, seq, &digest);
            let view = self.view;
            self.broadcast_mac(ctx, &input, |mac| Msg::PrePrepare {
                view,
                seq,
                batch: signed.clone(),
                mac,
            });
            // The primary's own prepare is implicit in the pre-prepare.
            let inst = self.instances.entry(seq).or_default();
            inst.prepares.insert(self.id, digest);
            inst.prepare_sent = true;
        }
    }

    fn on_request(&mut self, req: BaseRequest, sig: Signature, ctx: &mut dyn Context) {
        if !self.is_primary() {
            return; // stable-primary normal case
        }
        // Deduplicate.
        if let Some((last, cached)) = self.table.get(&req.client) {
            if req.request_id < *last {
                return;
            }
            if req.request_id == *last {
                ctx.send(Addr::Client(req.client), wrap(&cached.clone()));
                return;
            }
        }
        let Ok(req_bytes) = encode(&req) else {
            return;
        };
        if self
            .crypto
            .verify(Principal::Client(req.client), &req_bytes, &sig)
            .is_err()
        {
            return;
        }
        // Avoid double-queuing retransmissions of an in-flight request.
        if self.sig_cache.contains_key(&(req.client, req.request_id)) {
            return;
        }
        if self.sig_cache.len() >= SIG_CACHE_MAX {
            ctx.metrics().incr("replica.bounded_rejects");
            return;
        }
        // PBFT assigns the order later (at pre-prepare), so no slot yet.
        ctx.emit(Event::RequestReceived { slot: None });
        // neo-lint: allow(R5, size-capped at SIG_CACHE_MAX above)
        self.sig_cache.insert((req.client, req.request_id), sig);
        self.queue.push(req);
        self.try_open_batches(ctx);
    }

    fn on_pre_prepare(
        &mut self,
        view: u64,
        seq: u64,
        batch: Vec<(BaseRequest, Signature)>,
        mac: HmacTag,
        ctx: &mut dyn Context,
    ) {
        if view != self.view || self.is_primary() {
            return;
        }
        let digest = batch_digest(&batch);
        let input = phase_mac_input(1, view, seq, &digest);
        let primary = self.cfg.primary();
        if self
            .crypto
            .verify_mac_from(Principal::Replica(primary), &input, &mac)
            .is_err()
        {
            return;
        }
        // Verify client signatures in the batch.
        for (req, sig) in &batch {
            let Ok(req_bytes) = encode(req) else {
                return;
            };
            if self
                .crypto
                .verify(Principal::Client(req.client), &req_bytes, sig)
                .is_err()
            {
                return;
            }
        }
        if seq > self.exec_next + SEQ_WINDOW {
            ctx.metrics().incr("replica.bounded_rejects");
            return;
        }
        // neo-lint: allow(R5, seq bounded to SEQ_WINDOW above)
        let inst = self.instances.entry(seq).or_default();
        if inst.batch.is_some() {
            return; // duplicate pre-prepare
        }
        inst.batch = Some(batch);
        inst.digest = Some(digest);
        inst.prepares.insert(primary, digest);
        if !inst.prepare_sent {
            inst.prepare_sent = true;
            inst.prepares.insert(self.id, digest);
            let input = phase_mac_input(2, view, seq, &digest);
            let me = self.id;
            self.broadcast_mac(ctx, &input, |mac| Msg::Prepare {
                view,
                seq,
                digest,
                replica: me,
                mac,
            });
        }
        self.check_progress(seq, ctx);
    }

    #[allow(clippy::too_many_arguments)] // one parameter per wire field
    fn on_phase(
        &mut self,
        tag: u8,
        view: u64,
        seq: u64,
        digest: Digest,
        replica: ReplicaId,
        mac: HmacTag,
        ctx: &mut dyn Context,
    ) {
        if view != self.view {
            return;
        }
        let input = phase_mac_input(tag, view, seq, &digest);
        if self
            .crypto
            .verify_mac_from(Principal::Replica(replica), &input, &mac)
            .is_err()
        {
            return;
        }
        if seq > self.exec_next + SEQ_WINDOW {
            ctx.metrics().incr("replica.bounded_rejects");
            return;
        }
        // neo-lint: allow(R5, seq bounded to SEQ_WINDOW above)
        let inst = self.instances.entry(seq).or_default();
        match tag {
            2 => {
                inst.prepares.insert(replica, digest);
                ctx.metrics().incr("pbft.prepares_in");
            }
            3 => {
                inst.commits.insert(replica, digest);
                ctx.metrics().incr("pbft.commits_in");
            }
            _ => return,
        }
        self.check_progress(seq, ctx);
    }

    fn check_progress(&mut self, seq: u64, ctx: &mut dyn Context) {
        let quorum = self.cfg.quorum();
        let view = self.view;
        let me = self.id;
        let Some(inst) = self.instances.get_mut(&seq) else {
            return;
        };
        let Some(digest) = inst.digest else {
            return;
        };
        // Prepared: 2f+1 matching prepares (pre-prepare counts as the
        // primary's) → broadcast commit.
        let prepared = inst.prepares.values().filter(|d| **d == digest).count() >= quorum;
        if prepared && !inst.commit_sent {
            inst.commit_sent = true;
            inst.commits.insert(me, digest);
            let input = phase_mac_input(3, view, seq, &digest);
            self.broadcast_mac(ctx, &input, |mac| Msg::Commit {
                view,
                seq,
                digest,
                replica: me,
                mac,
            });
        }
        self.try_execute(ctx);
    }

    fn try_execute(&mut self, ctx: &mut dyn Context) {
        let quorum = self.cfg.quorum();
        loop {
            let seq = self.exec_next;
            let Some(inst) = self.instances.get(&seq) else {
                return;
            };
            let Some(digest) = inst.digest else {
                return;
            };
            let committed = inst.commits.values().filter(|d| **d == digest).count() >= quorum;
            if !committed || inst.batch.is_none() || inst.executed {
                return;
            }
            let batch = inst.batch.clone().expect("checked");
            for (req, _) in &batch {
                let dup = self
                    .table
                    .get(&req.client)
                    .map(|(last, _)| req.request_id <= *last)
                    .unwrap_or(false);
                if dup {
                    continue;
                }
                let result = self.app.execute(&req.op);
                self.executed += 1;
                ctx.emit(Event::Commit {
                    slot: seq,
                    client: req.client.0,
                    request: req.request_id.0,
                });
                let input = reply_mac_input(req.request_id, &result);
                let mac = self.crypto.mac_for(Principal::Client(req.client), &input);
                let reply = Msg::Reply {
                    replica: self.id,
                    request_id: req.request_id,
                    result,
                    mac,
                };
                self.table
                    .insert(req.client, (req.request_id, reply.clone()));
                ctx.send(Addr::Client(req.client), wrap(&reply));
            }
            if let Some(inst) = self.instances.get_mut(&seq) {
                inst.executed = true;
            }
            self.exec_next += 1;
            if self.is_primary() {
                self.queue.batch_done();
                self.try_open_batches(ctx);
            }
        }
    }
}

fn batch_digest(batch: &[(BaseRequest, Signature)]) -> Digest {
    sha256(&encode(&batch.iter().map(|(r, _)| r).collect::<Vec<_>>()).unwrap_or_default())
}

fn reply_mac_input(request_id: RequestId, result: &[u8]) -> Vec<u8> {
    let mut v = request_id.0.to_le_bytes().to_vec();
    v.extend_from_slice(result);
    v
}

impl Node for PbftReplica {
    fn on_message(&mut self, _from: Addr, payload: &[u8], ctx: &mut dyn Context) {
        self.messages_in += 1;
        ctx.metrics().incr("replica.messages_in");
        let Some(msg) = unwrap(payload) else {
            return;
        };
        match msg {
            Msg::Request(req, sig) => self.on_request(req, sig, ctx),
            Msg::PrePrepare {
                view,
                seq,
                batch,
                mac,
            } => self.on_pre_prepare(view, seq, batch, mac, ctx),
            Msg::Prepare {
                view,
                seq,
                digest,
                replica,
                mac,
            } => self.on_phase(2, view, seq, digest, replica, mac, ctx),
            Msg::Commit {
                view,
                seq,
                digest,
                replica,
                mac,
            } => self.on_phase(3, view, seq, digest, replica, mac, ctx),
            Msg::Reply { .. } => {}
        }
    }

    fn on_timer(&mut self, _: TimerId, _: u32, _: &mut dyn Context) {}

    fn meter(&self) -> Option<&neo_crypto::Meter> {
        Some(self.crypto.meter())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The PBFT client: signs requests, sends to the primary, accepts f+1
/// matching replies with valid MACs.
pub struct PbftClient {
    /// Shared closed-loop core.
    pub core: ClientCore,
    cfg: BaselineConfig,
    crypto: NodeCrypto,
    // BTreeMap: the reply-matching scan iterates this (neo-lint R1).
    replies: BTreeMap<ReplicaId, (RequestId, Vec<u8>)>,
}

impl PbftClient {
    /// Build the client.
    pub fn new(
        id: ClientId,
        cfg: BaselineConfig,
        keys: &SystemKeys,
        costs: CostModel,
        workload: Box<dyn Workload>,
    ) -> Self {
        let retry = cfg.client_retry_ns;
        PbftClient {
            core: ClientCore::new(id, workload, retry),
            cfg,
            crypto: NodeCrypto::new(Principal::Client(id), keys, costs),
            replies: BTreeMap::new(),
        }
    }

    fn transmit(&mut self, req: BaseRequest, all: bool, ctx: &mut dyn Context) {
        let sig = self.crypto.sign(&encode(&req).unwrap_or_default());
        let msg = wrap(&Msg::Request(req, sig));
        if all {
            // One encode; the whole-group retransmit is refcount bumps.
            let dests: Vec<ReplicaId> = (0..self.cfg.n as u32).map(ReplicaId).collect();
            ctx.broadcast(&dests, msg);
        } else {
            ctx.send(Addr::Replica(self.cfg.primary()), msg);
        }
    }

    fn start_next(&mut self, ctx: &mut dyn Context) {
        self.replies.clear();
        if let Some(req) = self.core.issue(ctx) {
            self.transmit(req, false, ctx);
        }
    }
}

impl Node for PbftClient {
    fn on_message(&mut self, _from: Addr, payload: &[u8], ctx: &mut dyn Context) {
        let Some(Msg::Reply {
            replica,
            request_id,
            result,
            mac,
        }) = unwrap(payload)
        else {
            return;
        };
        let Some(p) = self.core.pending.as_ref() else {
            return;
        };
        if request_id != p.request_id || replica.index() >= self.cfg.n {
            return;
        }
        let input = reply_mac_input(request_id, &result);
        if self
            .crypto
            .verify_mac_from(Principal::Replica(replica), &input, &mac)
            .is_err()
        {
            return;
        }
        self.replies.insert(replica, (request_id, result.clone()));
        let matching = self
            .replies
            .values()
            .filter(|(id, r)| *id == request_id && *r == result)
            .count();
        if matching >= self.cfg.f + 1 {
            self.core.complete(result, ctx);
            self.start_next(ctx);
        }
    }

    fn on_timer(&mut self, timer: TimerId, kind: u32, ctx: &mut dyn Context) {
        if kind == neo_sim::sim::INIT_TIMER_KIND {
            self.start_next(ctx);
        } else if self.core.is_retry_timer(timer) {
            if let Some(req) = self.core.retransmit(ctx) {
                self.transmit(req, true, ctx);
            }
        }
    }

    fn meter(&self) -> Option<&neo_crypto::Meter> {
        Some(self.crypto.meter())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
