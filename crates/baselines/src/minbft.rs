//! MinBFT (Veronese et al.) — BFT with a trusted monotonic counter.
//!
//! Each replica owns a **USIG** (Unique Sequential Identifier Generator)
//! living in a trusted component (Intel SGX in the paper's testbed; an
//! in-process module here — the interface, not the isolation, is what
//! the protocol depends on). The USIG binds every outgoing message to a
//! monotonically increasing counter with an attested MAC, which removes
//! equivocation and cuts the replication factor to 2f+1.
//!
//! Normal case (4 delays): request → prepare (primary, with UI) →
//! commit (all, with UI) → reply. Every USIG operation serializes
//! through the trusted component, which is the throughput bottleneck —
//! exactly why MinBFT trails in Figure 7 despite fewer replicas.

use crate::common::{BaseRequest, BaselineConfig, BatchQueue, ClientCore};
use neo_aom::Envelope;
use neo_app::{App, Workload};
use neo_crypto::{
    sha256, CostModel, Digest, HmacKey, NodeCrypto, Principal, Signature, SystemKeys,
};
use neo_sim::{Context, Node, TimerId};
use neo_wire::{decode, encode, Addr, ClientId, HmacTag, ReplicaId, RequestId};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::{BTreeMap, HashMap};

/// An attested unique identifier: (counter, MAC over digest ‖ counter).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct UsigCert {
    /// The monotonic counter value.
    pub counter: u64,
    /// Attestation MAC from the trusted component.
    pub mac: HmacTag,
}

/// The trusted USIG component of one replica.
///
/// `create_ui` is the only operation that advances the counter; the
/// serialized-call cost (`usig_cost_ns`) models the enclave transition +
/// in-enclave HMAC of the SGX implementation.
pub struct Usig {
    key: HmacKey,
    counter: u64,
    cost_ns: u64,
}

fn usig_key(keys: &SystemKeys, owner: ReplicaId) -> HmacKey {
    // The USIG attestation key, provisioned to the trusted components at
    // deployment time (remote attestation in the SGX deployment).
    keys.pairwise_hmac_key(Principal::Replica(owner), Principal::Replica(owner))
}

impl Usig {
    /// The USIG of replica `owner`.
    pub fn new(owner: ReplicaId, keys: &SystemKeys, cost_ns: u64) -> Self {
        Usig {
            key: usig_key(keys, owner),
            counter: 0,
            cost_ns,
        }
    }

    /// Current counter value.
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// Assign the next identifier to `digest`. Charges the trusted-call
    /// cost to the caller's serial budget.
    pub fn create_ui(&mut self, digest: &Digest, ctx: &mut dyn Context) -> UsigCert {
        ctx.charge(self.cost_ns);
        self.counter += 1;
        UsigCert {
            counter: self.counter,
            mac: self.attest(digest, self.counter),
        }
    }

    fn attest(&self, digest: &Digest, counter: u64) -> HmacTag {
        let mut input = digest.as_bytes().to_vec();
        input.extend_from_slice(&counter.to_le_bytes());
        self.key.tag(&input)
    }

    /// Verify another replica's UI through the trusted component (which
    /// holds the shared attestation keys).
    pub fn verify_ui(
        owner: ReplicaId,
        keys: &SystemKeys,
        digest: &Digest,
        cert: &UsigCert,
        cost_ns: u64,
        ctx: &mut dyn Context,
    ) -> bool {
        ctx.charge(cost_ns / 2);
        let key = usig_key(keys, owner);
        let mut input = digest.as_bytes().to_vec();
        input.extend_from_slice(&cert.counter.to_le_bytes());
        key.verify(&input, &cert.mac).is_ok()
    }
}

/// MinBFT wire messages.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
enum Msg {
    Request(BaseRequest, Signature),
    /// Primary → all.
    Prepare {
        view: u64,
        batch: Vec<(BaseRequest, Signature)>,
        ui: UsigCert,
    },
    /// All → all: commitment to the primary's prepare.
    Commit {
        view: u64,
        prepare_digest: Digest,
        prepare_counter: u64,
        replica: ReplicaId,
        ui: UsigCert,
    },
    /// Replica → client.
    Reply {
        replica: ReplicaId,
        request_id: RequestId,
        result: Vec<u8>,
        mac: HmacTag,
    },
}

fn wrap(msg: &Msg) -> neo_wire::Payload {
    Envelope::App(encode(msg).unwrap_or_default()).to_payload()
}

fn unwrap(bytes: &[u8]) -> Option<Msg> {
    match Envelope::from_bytes(bytes).ok()? {
        Envelope::App(inner) => decode(&inner).ok(),
        _ => None,
    }
}

#[derive(Default)]
struct Instance {
    batch: Option<Vec<(BaseRequest, Signature)>>,
    digest: Option<Digest>,
    commits: HashMap<ReplicaId, u64>,
    commit_sent: bool,
    executed: bool,
}

/// A MinBFT replica (n = 2f+1).
pub struct MinBftReplica {
    cfg: BaselineConfig,
    id: ReplicaId,
    crypto: NodeCrypto,
    keys: SystemKeys,
    usig: Usig,
    app: Box<dyn App>,
    view: u64,
    /// Last accepted USIG counter per replica (monotonicity check).
    last_counter: HashMap<ReplicaId, u64>,
    /// Instances keyed by the primary's prepare counter.
    instances: BTreeMap<u64, Instance>,
    exec_next: u64,
    queue: BatchQueue,
    table: HashMap<ClientId, (RequestId, Msg)>,
    sig_cache: HashMap<(ClientId, RequestId), Signature>,
    /// Operations executed.
    pub executed: u64,
    /// Messages processed.
    pub messages_in: u64,
}

/// How far past the execution frontier a USIG counter may land and
/// still open a protocol instance (neo-lint R5 bound).
const SEQ_WINDOW: u64 = 4096;
/// Cap on verified-but-unbatched client signatures buffered at the
/// primary (neo-lint R5 bound).
const SIG_CACHE_MAX: usize = 4096;

impl MinBftReplica {
    /// Build replica `id`.
    pub fn new(
        id: ReplicaId,
        cfg: BaselineConfig,
        keys: &SystemKeys,
        costs: CostModel,
        app: Box<dyn App>,
    ) -> Self {
        let usig = Usig::new(id, keys, cfg.usig_cost_ns);
        MinBftReplica {
            cfg,
            id,
            crypto: NodeCrypto::new(Principal::Replica(id), keys, costs),
            keys: keys.clone(),
            usig,
            app,
            view: 0,
            last_counter: HashMap::new(),
            instances: BTreeMap::new(),
            exec_next: 0,
            queue: BatchQueue::default(),
            table: HashMap::new(),
            sig_cache: HashMap::new(),
            executed: 0,
            messages_in: 0,
        }
    }

    fn is_primary(&self) -> bool {
        self.id == self.cfg.primary()
    }

    fn monotonic_ok(&mut self, owner: ReplicaId, counter: u64) -> bool {
        let last = self.last_counter.entry(owner).or_insert(0);
        if counter > *last {
            *last = counter;
            true
        } else {
            false
        }
    }

    fn on_request(&mut self, req: BaseRequest, sig: Signature, ctx: &mut dyn Context) {
        if !self.is_primary() {
            return;
        }
        if let Some((last, cached)) = self.table.get(&req.client) {
            if req.request_id < *last {
                return;
            }
            if req.request_id == *last {
                ctx.send(Addr::Client(req.client), wrap(&cached.clone()));
                return;
            }
        }
        let Ok(req_bytes) = encode(&req) else {
            return;
        };
        if self
            .crypto
            .verify(Principal::Client(req.client), &req_bytes, &sig)
            .is_err()
        {
            return;
        }
        if self.sig_cache.contains_key(&(req.client, req.request_id)) {
            return;
        }
        if self.sig_cache.len() >= SIG_CACHE_MAX {
            ctx.metrics().incr("replica.bounded_rejects");
            return;
        }
        // neo-lint: allow(R5, size-capped at SIG_CACHE_MAX above)
        self.sig_cache.insert((req.client, req.request_id), sig);
        self.queue.push(req);
        self.try_prepare(ctx);
    }

    fn try_prepare(&mut self, ctx: &mut dyn Context) {
        while let Some(batch) = self
            .queue
            .next_batch(self.cfg.batch_max, self.cfg.pipeline_depth)
        {
            let signed: Vec<(BaseRequest, Signature)> = batch
                .into_iter()
                .map(|r| {
                    let sig = self
                        .sig_cache
                        .remove(&(r.client, r.request_id))
                        .unwrap_or_else(Signature::empty);
                    (r, sig)
                })
                .collect();
            let digest = sha256(&encode(&signed).unwrap_or_default());
            let ui = self.usig.create_ui(&digest, ctx);
            let prepare = Msg::Prepare {
                view: self.view,
                batch: signed.clone(),
                ui,
            };
            let peers: Vec<ReplicaId> = (0..self.cfg.n as u32)
                .map(ReplicaId)
                .filter(|r| *r != self.id)
                .collect();
            ctx.broadcast(&peers, wrap(&prepare));
            self.accept_prepare(self.cfg.primary(), signed, digest, ui, ctx);
        }
    }

    fn accept_prepare(
        &mut self,
        primary: ReplicaId,
        batch: Vec<(BaseRequest, Signature)>,
        digest: Digest,
        ui: UsigCert,
        ctx: &mut dyn Context,
    ) {
        let inst = self.instances.entry(ui.counter).or_default();
        if inst.batch.is_some() {
            return;
        }
        inst.batch = Some(batch);
        inst.digest = Some(digest);
        // The prepare carries the primary's UI and doubles as its commit
        // (the primary's USIG counter stream therefore stays dense over
        // prepares: 1, 2, 3, …, which is what execution order follows).
        inst.commits.insert(primary, ui.counter);
        if self.exec_next == 0 {
            self.exec_next = 1; // first prepare counter observed
        }
        // Backups broadcast a commit attested by their own USIG.
        let Some(inst) = self.instances.get_mut(&ui.counter) else {
            return;
        };
        if !inst.commit_sent && self.id != primary {
            inst.commit_sent = true;
            let mut input = digest.as_bytes().to_vec();
            input.extend_from_slice(&ui.counter.to_le_bytes());
            let commit_digest = sha256(&input);
            let my_ui = self.usig.create_ui(&commit_digest, ctx);
            let msg = Msg::Commit {
                view: self.view,
                prepare_digest: digest,
                prepare_counter: ui.counter,
                replica: self.id,
                ui: my_ui,
            };
            let peers: Vec<ReplicaId> = (0..self.cfg.n as u32)
                .map(ReplicaId)
                .filter(|r| *r != self.id)
                .collect();
            ctx.broadcast(&peers, wrap(&msg));
        }
        self.try_execute(ctx);
    }

    fn on_prepare(
        &mut self,
        view: u64,
        batch: Vec<(BaseRequest, Signature)>,
        ui: UsigCert,
        ctx: &mut dyn Context,
    ) {
        if view != self.view || self.is_primary() {
            return;
        }
        let Ok(batch_bytes) = encode(&batch) else {
            return;
        };
        let digest = sha256(&batch_bytes);
        let primary = self.cfg.primary();
        if !Usig::verify_ui(
            primary,
            &self.keys,
            &digest,
            &ui,
            self.cfg.usig_cost_ns,
            ctx,
        ) {
            return;
        }
        if !self.monotonic_ok(primary, ui.counter) {
            return;
        }
        for (req, sig) in &batch {
            let Ok(req_bytes) = encode(req) else {
                return;
            };
            if self
                .crypto
                .verify(Principal::Client(req.client), &req_bytes, sig)
                .is_err()
            {
                return;
            }
        }
        self.accept_prepare(primary, batch, digest, ui, ctx);
    }

    fn on_commit(
        &mut self,
        view: u64,
        prepare_digest: Digest,
        prepare_counter: u64,
        replica: ReplicaId,
        ui: UsigCert,
        ctx: &mut dyn Context,
    ) {
        if view != self.view {
            return;
        }
        let mut input = prepare_digest.as_bytes().to_vec();
        input.extend_from_slice(&prepare_counter.to_le_bytes());
        let commit_digest = sha256(&input);
        if !Usig::verify_ui(
            replica,
            &self.keys,
            &commit_digest,
            &ui,
            self.cfg.usig_cost_ns,
            ctx,
        ) {
            return;
        }
        if !self.monotonic_ok(replica, ui.counter) {
            return;
        }
        if prepare_counter > self.exec_next + SEQ_WINDOW {
            ctx.metrics().incr("replica.bounded_rejects");
            return;
        }
        // neo-lint: allow(R5, counter bounded to SEQ_WINDOW above)
        let inst = self.instances.entry(prepare_counter).or_default();
        if inst.digest.is_some() && inst.digest != Some(prepare_digest) {
            return;
        }
        inst.commits.insert(replica, ui.counter);
        self.try_execute(ctx);
    }

    fn try_execute(&mut self, ctx: &mut dyn Context) {
        loop {
            let counter = self.exec_next;
            if counter == 0 {
                return;
            }
            let Some(inst) = self.instances.get(&counter) else {
                return;
            };
            // f+1 commits (majority of 2f+1), including our own.
            if inst.executed || inst.batch.is_none() || inst.commits.len() < self.cfg.f + 1 {
                return;
            }
            let Some(batch) = inst.batch.clone() else {
                return;
            };
            for (req, _) in &batch {
                let dup = self
                    .table
                    .get(&req.client)
                    .map(|(last, _)| req.request_id <= *last)
                    .unwrap_or(false);
                if dup {
                    continue;
                }
                let result = self.app.execute(&req.op);
                self.executed += 1;
                let mut input = req.request_id.0.to_le_bytes().to_vec();
                input.extend_from_slice(&result);
                let mac = self.crypto.mac_for(Principal::Client(req.client), &input);
                let reply = Msg::Reply {
                    replica: self.id,
                    request_id: req.request_id,
                    result,
                    mac,
                };
                self.table
                    .insert(req.client, (req.request_id, reply.clone()));
                ctx.send(Addr::Client(req.client), wrap(&reply));
            }
            if let Some(inst) = self.instances.get_mut(&counter) {
                inst.executed = true;
            }
            self.exec_next += 1;
            if self.is_primary() {
                self.queue.batch_done();
                self.try_prepare(ctx);
            }
        }
    }
}

impl Node for MinBftReplica {
    fn on_message(&mut self, _from: Addr, payload: &[u8], ctx: &mut dyn Context) {
        self.messages_in += 1;
        let Some(msg) = unwrap(payload) else {
            return;
        };
        match msg {
            Msg::Request(req, sig) => self.on_request(req, sig, ctx),
            Msg::Prepare { view, batch, ui } => self.on_prepare(view, batch, ui, ctx),
            Msg::Commit {
                view,
                prepare_digest,
                prepare_counter,
                replica,
                ui,
            } => self.on_commit(view, prepare_digest, prepare_counter, replica, ui, ctx),
            Msg::Reply { .. } => {}
        }
    }

    fn on_timer(&mut self, _: TimerId, _: u32, _: &mut dyn Context) {}

    fn meter(&self) -> Option<&neo_crypto::Meter> {
        Some(self.crypto.meter())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The MinBFT client: f+1 matching replies.
pub struct MinBftClient {
    /// Shared closed-loop core.
    pub core: ClientCore,
    cfg: BaselineConfig,
    crypto: NodeCrypto,
    // BTreeMap: the reply-matching scan iterates this (neo-lint R1).
    replies: BTreeMap<ReplicaId, (RequestId, Vec<u8>)>,
}

impl MinBftClient {
    /// Build the client.
    pub fn new(
        id: ClientId,
        cfg: BaselineConfig,
        keys: &SystemKeys,
        costs: CostModel,
        workload: Box<dyn Workload>,
    ) -> Self {
        let retry = cfg.client_retry_ns;
        MinBftClient {
            core: ClientCore::new(id, workload, retry),
            cfg,
            crypto: NodeCrypto::new(Principal::Client(id), keys, costs),
            replies: BTreeMap::new(),
        }
    }

    fn transmit(&mut self, req: BaseRequest, all: bool, ctx: &mut dyn Context) {
        let sig = self.crypto.sign(&encode(&req).unwrap_or_default());
        let msg = wrap(&Msg::Request(req, sig));
        if all {
            // One encode; the whole-group retransmit is refcount bumps.
            let dests: Vec<ReplicaId> = (0..self.cfg.n as u32).map(ReplicaId).collect();
            ctx.broadcast(&dests, msg);
        } else {
            ctx.send(Addr::Replica(self.cfg.primary()), msg);
        }
    }

    fn start_next(&mut self, ctx: &mut dyn Context) {
        self.replies.clear();
        if let Some(req) = self.core.issue(ctx) {
            self.transmit(req, false, ctx);
        }
    }
}

impl Node for MinBftClient {
    fn on_message(&mut self, _from: Addr, payload: &[u8], ctx: &mut dyn Context) {
        let Some(Msg::Reply {
            replica,
            request_id,
            result,
            mac,
        }) = unwrap(payload)
        else {
            return;
        };
        let Some(p) = self.core.pending.as_ref() else {
            return;
        };
        if request_id != p.request_id || replica.index() >= self.cfg.n {
            return;
        }
        let mut input = request_id.0.to_le_bytes().to_vec();
        input.extend_from_slice(&result);
        if self
            .crypto
            .verify_mac_from(Principal::Replica(replica), &input, &mac)
            .is_err()
        {
            return;
        }
        self.replies.insert(replica, (request_id, result.clone()));
        let matching = self
            .replies
            .values()
            .filter(|(id, r)| *id == request_id && *r == result)
            .count();
        if matching >= self.cfg.f + 1 {
            self.core.complete(result, ctx);
            self.start_next(ctx);
        }
    }

    fn on_timer(&mut self, timer: TimerId, kind: u32, ctx: &mut dyn Context) {
        if kind == neo_sim::sim::INIT_TIMER_KIND {
            self.start_next(ctx);
        } else if self.core.is_retry_timer(timer) {
            if let Some(req) = self.core.retransmit(ctx) {
                self.transmit(req, true, ctx);
            }
        }
    }

    fn meter(&self) -> Option<&neo_crypto::Meter> {
        Some(self.crypto.meter())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ctx {
        charged: u64,
    }
    impl Context for Ctx {
        fn now(&self) -> u64 {
            0
        }
        fn me(&self) -> Addr {
            Addr::Replica(ReplicaId(0))
        }
        fn send_after(&mut self, _: Addr, _: neo_wire::Payload, _: u64) {}
        fn set_timer(&mut self, _: u64, _: u32) -> TimerId {
            TimerId(0)
        }
        fn cancel_timer(&mut self, _: TimerId) {}
        fn charge(&mut self, ns: u64) {
            self.charged += ns;
        }
    }

    #[test]
    fn usig_counters_are_sequential_and_attested() {
        let keys = SystemKeys::new(1, 3, 0);
        let mut usig = Usig::new(ReplicaId(0), &keys, 1000);
        let mut ctx = Ctx { charged: 0 };
        let d = sha256(b"m");
        let u1 = usig.create_ui(&d, &mut ctx);
        let u2 = usig.create_ui(&d, &mut ctx);
        assert_eq!(u1.counter, 1);
        assert_eq!(u2.counter, 2);
        assert_eq!(ctx.charged, 2000, "trusted calls charged serially");
        assert!(Usig::verify_ui(
            ReplicaId(0),
            &keys,
            &d,
            &u1,
            1000,
            &mut ctx
        ));
        assert!(
            !Usig::verify_ui(ReplicaId(1), &keys, &d, &u1, 1000, &mut ctx),
            "UI is bound to its owner"
        );
        assert!(
            !Usig::verify_ui(ReplicaId(0), &keys, &sha256(b"other"), &u1, 1000, &mut ctx),
            "UI is bound to the message"
        );
    }

    #[test]
    fn forged_counter_does_not_verify() {
        let keys = SystemKeys::new(1, 3, 0);
        let mut usig = Usig::new(ReplicaId(0), &keys, 0);
        let mut ctx = Ctx { charged: 0 };
        let d = sha256(b"m");
        let mut ui = usig.create_ui(&d, &mut ctx);
        ui.counter += 1; // replay at a higher counter
        assert!(!Usig::verify_ui(ReplicaId(0), &keys, &d, &ui, 0, &mut ctx));
    }
}
