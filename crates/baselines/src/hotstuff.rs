//! Chained HotStuff (PODC '19) — linear BFT with quorum certificates.
//!
//! A stable leader proposes a chain of blocks; replicas vote with
//! signatures; 2f+1 votes form a quorum certificate (QC) that justifies
//! the next proposal. A block commits once it heads a **three-chain**
//! (its QC's QC's QC exists with consecutive heights). Authenticator
//! complexity is O(N) per block, but every request waits for three chain
//! extensions plus batching — HotStuff's throughput-over-latency
//! trade-off in Figure 7 (and the >10 ms latency the paper observes at
//! aggressive batching).

use crate::common::{BaseRequest, BaselineConfig, BatchQueue, ClientCore};
use neo_aom::Envelope;
use neo_app::{App, Workload};
use neo_crypto::{sha256, CostModel, Digest, NodeCrypto, Principal, Signature, SystemKeys};
use neo_sim::{Context, Node, TimerId};
use neo_wire::{decode, encode, Addr, ClientId, HmacTag, ReplicaId, RequestId};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::{BTreeMap, HashMap};

/// A proposed block.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Block {
    height: u64,
    parent: Digest,
    batch: Vec<(BaseRequest, Signature)>,
}

impl Block {
    fn digest(&self) -> Digest {
        sha256(&encode(self).unwrap_or_default())
    }
}

/// A quorum certificate: 2f+1 signatures over (height, block digest).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize, Default)]
pub struct Qc {
    height: u64,
    digest: Digest,
    sigs: Vec<(ReplicaId, Signature)>,
}

fn vote_input(height: u64, digest: &Digest) -> Vec<u8> {
    let mut v = height.to_le_bytes().to_vec();
    v.extend_from_slice(digest.as_bytes());
    v
}

/// HotStuff wire messages.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
enum Msg {
    Request(BaseRequest, Signature),
    /// Leader → all: a block justified by the QC for its parent.
    Proposal {
        block: Block,
        justify: Qc,
        sig: Signature,
    },
    /// Replica → leader.
    Vote {
        height: u64,
        digest: Digest,
        replica: ReplicaId,
        sig: Signature,
    },
    /// Replica → client after commit.
    Reply {
        replica: ReplicaId,
        request_id: RequestId,
        result: Vec<u8>,
        mac: HmacTag,
    },
}

fn wrap(msg: &Msg) -> neo_wire::Payload {
    Envelope::App(encode(msg).unwrap_or_default()).to_payload()
}

fn unwrap(bytes: &[u8]) -> Option<Msg> {
    match Envelope::from_bytes(bytes).ok()? {
        Envelope::App(inner) => decode(&inner).ok(),
        _ => None,
    }
}

/// A HotStuff replica.
pub struct HotStuffReplica {
    cfg: BaselineConfig,
    id: ReplicaId,
    crypto: NodeCrypto,
    app: Box<dyn App>,
    /// Blocks by height (the chain; stable leader ⇒ no forks).
    blocks: BTreeMap<u64, Block>,
    /// QCs by height.
    qcs: BTreeMap<u64, Qc>,
    /// Leader: votes for the block at each height. BTreeMap so QC
    /// signature lists assemble in deterministic order (neo-lint R1).
    votes: BTreeMap<u64, BTreeMap<ReplicaId, Signature>>,
    /// Leader: request queue.
    queue: BatchQueue,
    /// Heights executed (committed via three-chain).
    exec_next: u64,
    /// Leader: height of the next proposal.
    next_height: u64,
    /// Leader: highest QC formed.
    high_qc: Qc,
    table: HashMap<ClientId, (RequestId, Msg)>,
    sig_cache: HashMap<(ClientId, RequestId), Signature>,
    proposal_timer_armed: bool,
    /// Highest height carrying client requests (empty chain-extension
    /// blocks stop once everything up to here is committed).
    last_payload_height: u64,
    /// Operations executed.
    pub executed: u64,
    /// Messages processed.
    pub messages_in: u64,
}

/// How far past the execution frontier a block height may land and
/// still open leader vote-collection state (neo-lint R5 bound).
const SEQ_WINDOW: u64 = 4096;
/// Cap on verified-but-unbatched client signatures buffered at the
/// leader (neo-lint R5 bound).
const SIG_CACHE_MAX: usize = 4096;

impl HotStuffReplica {
    /// Build replica `id`.
    pub fn new(
        id: ReplicaId,
        cfg: BaselineConfig,
        keys: &SystemKeys,
        costs: CostModel,
        app: Box<dyn App>,
    ) -> Self {
        HotStuffReplica {
            cfg,
            id,
            crypto: NodeCrypto::new(Principal::Replica(id), keys, costs),
            app,
            blocks: BTreeMap::new(),
            qcs: BTreeMap::new(),
            votes: BTreeMap::new(),
            queue: BatchQueue::default(),
            exec_next: 1,
            next_height: 1,
            high_qc: Qc::default(),
            table: HashMap::new(),
            sig_cache: HashMap::new(),
            proposal_timer_armed: false,
            last_payload_height: 0,
            executed: 0,
            messages_in: 0,
        }
    }

    fn is_leader(&self) -> bool {
        self.id == self.cfg.primary()
    }

    fn on_request(&mut self, req: BaseRequest, sig: Signature, ctx: &mut dyn Context) {
        if !self.is_leader() {
            return;
        }
        if let Some((last, cached)) = self.table.get(&req.client) {
            if req.request_id < *last {
                return;
            }
            if req.request_id == *last {
                ctx.send(Addr::Client(req.client), wrap(&cached.clone()));
                return;
            }
        }
        let Ok(req_bytes) = encode(&req) else {
            return;
        };
        if self
            .crypto
            .verify(Principal::Client(req.client), &req_bytes, &sig)
            .is_err()
        {
            return;
        }
        if self.sig_cache.contains_key(&(req.client, req.request_id)) {
            return;
        }
        if self.sig_cache.len() >= SIG_CACHE_MAX {
            ctx.metrics().incr("replica.bounded_rejects");
            return;
        }
        // neo-lint: allow(R5, size-capped at SIG_CACHE_MAX above)
        self.sig_cache.insert((req.client, req.request_id), sig);
        self.queue.push(req);
        if !self.proposal_timer_armed {
            // Batch accumulation window before the first/next proposal.
            self.proposal_timer_armed = true;
            ctx.set_timer(self.cfg.proposal_interval_ns, 4);
        }
    }

    /// Leader: propose the next block, extending the highest QC.
    fn propose(&mut self, ctx: &mut dyn Context) {
        if !self.is_leader() {
            return;
        }
        // The chain must stay justified: block h needs QC(h-1).
        if self.next_height > 1 && self.high_qc.height + 1 != self.next_height {
            return; // previous proposal still collecting votes
        }
        let batch = self
            .queue
            .next_batch(self.cfg.batch_max, self.cfg.pipeline_depth)
            .map(|reqs| {
                reqs.into_iter()
                    .map(|r| {
                        let sig = self
                            .sig_cache
                            .remove(&(r.client, r.request_id))
                            .unwrap_or_else(Signature::empty);
                        (r, sig)
                    })
                    .collect::<Vec<_>>()
            })
            .unwrap_or_default();
        // Empty blocks keep the three-chain moving until the last
        // payload block has committed *everywhere*: a payload block at
        // height h needs QCs for h, h+1, h+2, and backups learn QC(h+2)
        // from the justify of block h+3.
        let pending_commits = self.next_height <= self.last_payload_height + 3;
        if batch.is_empty() && !pending_commits {
            return;
        }
        if !batch.is_empty() {
            self.last_payload_height = self.next_height;
        }
        let parent = self
            .blocks
            .get(&(self.next_height - 1))
            .map(|b| b.digest())
            .unwrap_or(Digest::ZERO);
        let block = Block {
            height: self.next_height,
            parent,
            batch,
        };
        let digest = block.digest();
        let sig = self.crypto.sign(&vote_input(block.height, &digest));
        let justify = self.high_qc.clone();
        let msg = Msg::Proposal {
            block: block.clone(),
            justify,
            sig,
        };
        let peers: Vec<ReplicaId> = (0..self.cfg.n as u32)
            .map(ReplicaId)
            .filter(|r| *r != self.id)
            .collect();
        ctx.broadcast(&peers, wrap(&msg));
        self.next_height += 1;
        self.accept_block(block, ctx);
    }

    fn verify_qc(&self, qc: &Qc) -> bool {
        if qc.height == 0 {
            return true; // genesis
        }
        let quorum = self.cfg.quorum();
        let input = vote_input(qc.height, &qc.digest);
        let mut seen = std::collections::BTreeSet::new();
        for (r, sig) in &qc.sigs {
            if self
                .crypto
                .verify(Principal::Replica(*r), &input, sig)
                .is_ok()
            {
                seen.insert(*r);
            }
        }
        seen.len() >= quorum
    }

    fn on_proposal(&mut self, block: Block, justify: Qc, sig: Signature, ctx: &mut dyn Context) {
        if self.is_leader() {
            return;
        }
        let digest = block.digest();
        if self
            .crypto
            .verify(
                Principal::Replica(self.cfg.primary()),
                &vote_input(block.height, &digest),
                &sig,
            )
            .is_err()
        {
            return;
        }
        if !self.verify_qc(&justify) {
            return;
        }
        if justify.height > 0 {
            // neo-lint: allow(R5, justify is quorum-signed — verify_qc above — so at most one QC can form per height)
            self.qcs.insert(justify.height, justify);
        }
        // Vote.
        let vote_sig = self.crypto.sign(&vote_input(block.height, &digest));
        let vote = Msg::Vote {
            height: block.height,
            digest,
            replica: self.id,
            sig: vote_sig,
        };
        ctx.send(Addr::Replica(self.cfg.primary()), wrap(&vote));
        self.accept_block(block, ctx);
    }

    fn accept_block(&mut self, block: Block, ctx: &mut dyn Context) {
        self.blocks.entry(block.height).or_insert(block);
        self.try_commit(ctx);
    }

    fn on_vote(
        &mut self,
        height: u64,
        digest: Digest,
        replica: ReplicaId,
        sig: Signature,
        ctx: &mut dyn Context,
    ) {
        if !self.is_leader() {
            return;
        }
        if self
            .crypto
            .verify(
                Principal::Replica(replica),
                &vote_input(height, &digest),
                &sig,
            )
            .is_err()
        {
            return;
        }
        if height > self.exec_next + SEQ_WINDOW {
            ctx.metrics().incr("replica.bounded_rejects");
            return;
        }
        // neo-lint: allow(R5, height bounded to SEQ_WINDOW above)
        let height_votes = self.votes.entry(height).or_default();
        height_votes.insert(replica, sig);
        // The leader votes implicitly.
        if let std::collections::btree_map::Entry::Vacant(e) = height_votes.entry(self.id) {
            let my_sig = self.crypto.sign(&vote_input(height, &digest));
            e.insert(my_sig);
        }
        let quorum_reached = height_votes.len() >= self.cfg.quorum();
        let sigs: Vec<(ReplicaId, Signature)> = if quorum_reached {
            height_votes.iter().map(|(r, s)| (*r, s.clone())).collect()
        } else {
            Vec::new()
        };
        if quorum_reached && self.high_qc.height < height {
            self.high_qc = Qc {
                height,
                digest,
                sigs,
            };
            // neo-lint: allow(R5, height bounded to SEQ_WINDOW above)
            self.qcs.insert(height, self.high_qc.clone());
            self.try_commit(ctx);
            // Chain the next proposal immediately.
            self.propose(ctx);
        }
    }

    /// Commit rule: block at height h commits once QCs exist for h, h+1,
    /// h+2 (the three-chain with consecutive heights).
    fn try_commit(&mut self, ctx: &mut dyn Context) {
        loop {
            let h = self.exec_next;
            let ready = self.qcs.contains_key(&h)
                && self.qcs.contains_key(&(h + 1))
                && self.qcs.contains_key(&(h + 2))
                && self.blocks.contains_key(&h);
            if !ready {
                return;
            }
            let Some(block) = self.blocks.get(&h).cloned() else {
                return;
            };
            for (req, _) in &block.batch {
                let dup = self
                    .table
                    .get(&req.client)
                    .map(|(last, _)| req.request_id <= *last)
                    .unwrap_or(false);
                if dup {
                    continue;
                }
                let result = self.app.execute(&req.op);
                self.executed += 1;
                let mut input = req.request_id.0.to_le_bytes().to_vec();
                input.extend_from_slice(&result);
                let mac = self.crypto.mac_for(Principal::Client(req.client), &input);
                let reply = Msg::Reply {
                    replica: self.id,
                    request_id: req.request_id,
                    result,
                    mac,
                };
                self.table
                    .insert(req.client, (req.request_id, reply.clone()));
                ctx.send(Addr::Client(req.client), wrap(&reply));
            }
            if self.is_leader() && !block.batch.is_empty() {
                self.queue.batch_done();
            }
            self.exec_next += 1;
        }
    }
}

impl Node for HotStuffReplica {
    fn on_message(&mut self, _from: Addr, payload: &[u8], ctx: &mut dyn Context) {
        self.messages_in += 1;
        let Some(msg) = unwrap(payload) else {
            return;
        };
        match msg {
            Msg::Request(req, sig) => self.on_request(req, sig, ctx),
            Msg::Proposal {
                block,
                justify,
                sig,
            } => self.on_proposal(block, justify, sig, ctx),
            Msg::Vote {
                height,
                digest,
                replica,
                sig,
            } => self.on_vote(height, digest, replica, sig, ctx),
            Msg::Reply { .. } => {}
        }
    }

    fn on_timer(&mut self, _timer: TimerId, kind: u32, ctx: &mut dyn Context) {
        if kind == 4 && self.is_leader() {
            self.proposal_timer_armed = false;
            self.propose(ctx);
            // Keep the pacemaker running while work remains.
            if self.queue.backlog() > 0 || self.next_height <= self.last_payload_height + 3 {
                self.proposal_timer_armed = true;
                ctx.set_timer(self.cfg.proposal_interval_ns, 4);
            }
        }
    }

    fn meter(&self) -> Option<&neo_crypto::Meter> {
        Some(self.crypto.meter())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The HotStuff client: f+1 matching replies.
pub struct HotStuffClient {
    /// Shared closed-loop core.
    pub core: ClientCore,
    cfg: BaselineConfig,
    crypto: NodeCrypto,
    // BTreeMap: the reply-matching scan iterates this (neo-lint R1).
    replies: BTreeMap<ReplicaId, (RequestId, Vec<u8>)>,
}

impl HotStuffClient {
    /// Build the client.
    pub fn new(
        id: ClientId,
        cfg: BaselineConfig,
        keys: &SystemKeys,
        costs: CostModel,
        workload: Box<dyn Workload>,
    ) -> Self {
        let retry = cfg.client_retry_ns;
        HotStuffClient {
            core: ClientCore::new(id, workload, retry),
            cfg,
            crypto: NodeCrypto::new(Principal::Client(id), keys, costs),
            replies: BTreeMap::new(),
        }
    }

    fn transmit(&mut self, req: BaseRequest, all: bool, ctx: &mut dyn Context) {
        let sig = self.crypto.sign(&encode(&req).unwrap_or_default());
        let msg = wrap(&Msg::Request(req, sig));
        if all {
            // One encode; the whole-group retransmit is refcount bumps.
            let dests: Vec<ReplicaId> = (0..self.cfg.n as u32).map(ReplicaId).collect();
            ctx.broadcast(&dests, msg);
        } else {
            ctx.send(Addr::Replica(self.cfg.primary()), msg);
        }
    }

    fn start_next(&mut self, ctx: &mut dyn Context) {
        self.replies.clear();
        if let Some(req) = self.core.issue(ctx) {
            self.transmit(req, false, ctx);
        }
    }
}

impl Node for HotStuffClient {
    fn on_message(&mut self, _from: Addr, payload: &[u8], ctx: &mut dyn Context) {
        let Some(Msg::Reply {
            replica,
            request_id,
            result,
            mac,
        }) = unwrap(payload)
        else {
            return;
        };
        let Some(p) = self.core.pending.as_ref() else {
            return;
        };
        if request_id != p.request_id || replica.index() >= self.cfg.n {
            return;
        }
        let mut input = request_id.0.to_le_bytes().to_vec();
        input.extend_from_slice(&result);
        if self
            .crypto
            .verify_mac_from(Principal::Replica(replica), &input, &mac)
            .is_err()
        {
            return;
        }
        self.replies.insert(replica, (request_id, result.clone()));
        let matching = self
            .replies
            .values()
            .filter(|(id, r)| *id == request_id && *r == result)
            .count();
        if matching >= self.cfg.f + 1 {
            self.core.complete(result, ctx);
            self.start_next(ctx);
        }
    }

    fn on_timer(&mut self, timer: TimerId, kind: u32, ctx: &mut dyn Context) {
        if kind == neo_sim::sim::INIT_TIMER_KIND {
            self.start_next(ctx);
        } else if self.core.is_retry_timer(timer) {
            if let Some(req) = self.core.retransmit(ctx) {
                self.transmit(req, true, ctx);
            }
        }
    }

    fn meter(&self) -> Option<&neo_crypto::Meter> {
        Some(self.crypto.meter())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
