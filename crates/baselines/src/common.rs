//! Infrastructure shared by the baseline protocols.

use neo_core::CompletedOp;
use neo_sim::{Context, TimerId};
use neo_wire::{ClientId, ReplicaId, RequestId};
use serde::{Deserialize, Serialize};

/// Parameters common to all baseline protocols.
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// Replica count (3f+1, or 2f+1 for MinBFT).
    pub n: usize,
    /// Fault bound.
    pub f: usize,
    /// Maximum requests per batch ("following the batching techniques
    /// proposed in their original work", §6).
    pub batch_max: usize,
    /// Concurrent batches the primary keeps in flight.
    pub pipeline_depth: usize,
    /// Client retransmission timeout.
    pub client_retry_ns: u64,
    /// Zyzzyva: how long the client waits for the full 3f+1 fast-path
    /// quorum before falling back to the commit phase.
    pub fast_path_wait_ns: u64,
    /// HotStuff: pacemaker interval — the leader proposes the next block
    /// at least this often even if the batch is not full.
    pub proposal_interval_ns: u64,
    /// MinBFT: serial cost of one USIG operation in the trusted
    /// component (SGX call + HMAC).
    pub usig_cost_ns: u64,
}

impl BaselineConfig {
    /// Defaults matching the paper's testbed setup for fault bound `f`.
    pub fn new_3f1(f: usize) -> Self {
        BaselineConfig {
            n: 3 * f + 1,
            f,
            batch_max: 16,
            pipeline_depth: 2,
            client_retry_ns: 50 * neo_sim::MILLIS,
            fast_path_wait_ns: 200 * neo_sim::MICROS,
            proposal_interval_ns: 400 * neo_sim::MICROS,
            usig_cost_ns: 12_000,
        }
    }

    /// MinBFT variant: 2f+1 replicas.
    pub fn new_2f1(f: usize) -> Self {
        let mut c = Self::new_3f1(f);
        c.n = 2 * f + 1;
        c
    }

    /// 2f+1 quorum.
    pub fn quorum(&self) -> usize {
        2 * self.f + 1
    }

    /// Primary/leader of view 0 (baselines run the stable-leader normal
    /// case).
    pub fn primary(&self) -> ReplicaId {
        ReplicaId(0)
    }
}

/// A client request shared by all baseline protocols.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BaseRequest {
    /// Operation payload.
    pub op: Vec<u8>,
    /// Client-chosen id, increasing.
    pub request_id: RequestId,
    /// Issuing client.
    pub client: ClientId,
}

/// Closed-loop request bookkeeping shared by all baseline clients.
pub struct ClientCore {
    /// This client's id.
    pub id: ClientId,
    next_request: u64,
    /// The op currently in flight, if any.
    pub pending: Option<PendingCore>,
    /// Completed operations.
    pub completed: Vec<CompletedOp>,
    /// Stop after this many ops.
    pub max_ops: Option<u64>,
    workload: Box<dyn neo_app::Workload>,
    retry_ns: u64,
}

/// In-flight request state.
pub struct PendingCore {
    /// Request id.
    pub request_id: RequestId,
    /// Operation payload.
    pub op: Vec<u8>,
    /// Issue time.
    pub issued_at: u64,
    /// Retransmissions so far.
    pub retries: u32,
    /// Active retransmission timer.
    pub retry_timer: TimerId,
}

impl ClientCore {
    /// New core issuing from `workload`.
    pub fn new(id: ClientId, workload: Box<dyn neo_app::Workload>, retry_ns: u64) -> Self {
        ClientCore {
            id,
            next_request: 1,
            pending: None,
            completed: Vec::new(),
            max_ops: None,
            workload,
            retry_ns,
        }
    }

    /// Begin the next operation, if idle and under the op budget.
    /// Returns the request to transmit.
    pub fn issue(&mut self, ctx: &mut dyn Context) -> Option<BaseRequest> {
        if self.pending.is_some() {
            return None;
        }
        if let Some(max) = self.max_ops {
            if self.completed.len() as u64 >= max {
                return None;
            }
        }
        let op = self.workload.next_op();
        let request_id = RequestId(self.next_request);
        self.next_request += 1;
        let retry_timer = ctx.set_timer(self.retry_ns, 2);
        self.pending = Some(PendingCore {
            request_id,
            op: op.clone(),
            issued_at: ctx.now(),
            retries: 0,
            retry_timer,
        });
        Some(BaseRequest {
            op,
            request_id,
            client: self.id,
        })
    }

    /// The in-flight request, re-built for retransmission. Re-arms the
    /// retry timer and bumps the retry counter.
    pub fn retransmit(&mut self, ctx: &mut dyn Context) -> Option<BaseRequest> {
        let p = self.pending.as_mut()?;
        p.retries += 1;
        p.retry_timer = ctx.set_timer(self.retry_ns, 2);
        Some(BaseRequest {
            op: p.op.clone(),
            request_id: p.request_id,
            client: self.id,
        })
    }

    /// True if `timer` is the live retry timer for the in-flight op.
    pub fn is_retry_timer(&self, timer: TimerId) -> bool {
        self.pending
            .as_ref()
            .map(|p| p.retry_timer == timer)
            .unwrap_or(false)
    }

    /// Record completion of the in-flight op.
    pub fn complete(&mut self, result: Vec<u8>, ctx: &mut dyn Context) {
        let Some(p) = self.pending.take() else {
            return;
        };
        ctx.cancel_timer(p.retry_timer);
        let completed_at = ctx.now();
        {
            let m = ctx.metrics();
            m.observe(
                "client.latency_ns",
                completed_at.saturating_sub(p.issued_at),
            );
            m.incr("client.ops_completed");
            if p.retries > 0 {
                m.add("client.retries", p.retries as u64);
            }
        }
        self.completed.push(CompletedOp {
            request_id: p.request_id,
            issued_at: p.issued_at,
            completed_at,
            result,
            retries: p.retries,
        });
    }
}

/// Per-replica batching queue: requests wait here until the primary can
/// open a new batch (bounded pipeline).
#[derive(Default)]
pub struct BatchQueue {
    queue: Vec<BaseRequest>,
    in_flight: usize,
}

impl BatchQueue {
    /// Enqueue a request.
    pub fn push(&mut self, req: BaseRequest) {
        self.queue.push(req);
    }

    /// Queued requests not yet batched.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Batches currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Open a new batch if the pipeline has room and work is queued.
    pub fn next_batch(
        &mut self,
        batch_max: usize,
        pipeline_depth: usize,
    ) -> Option<Vec<BaseRequest>> {
        if self.in_flight >= pipeline_depth || self.queue.is_empty() {
            return None;
        }
        let take = self.queue.len().min(batch_max);
        let batch: Vec<BaseRequest> = self.queue.drain(..take).collect();
        self.in_flight += 1;
        Some(batch)
    }

    /// A batch finished: free a pipeline slot.
    pub fn batch_done(&mut self) {
        self.in_flight = self.in_flight.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_app::EchoWorkload;
    use neo_wire::Addr;

    struct Ctx {
        now: u64,
        timers: u64,
    }
    impl Context for Ctx {
        fn now(&self) -> u64 {
            self.now
        }
        fn me(&self) -> Addr {
            Addr::Client(ClientId(0))
        }
        fn send_after(&mut self, _: Addr, _: neo_wire::Payload, _: u64) {}
        fn set_timer(&mut self, _: u64, _: u32) -> TimerId {
            self.timers += 1;
            TimerId(self.timers)
        }
        fn cancel_timer(&mut self, _: TimerId) {}
        fn charge(&mut self, _: u64) {}
    }

    #[test]
    fn issue_complete_cycle() {
        let mut core = ClientCore::new(ClientId(0), Box::new(EchoWorkload::new(8, 1)), 1000);
        let mut ctx = Ctx { now: 10, timers: 0 };
        let req = core.issue(&mut ctx).unwrap();
        assert_eq!(req.request_id, RequestId(1));
        assert!(core.issue(&mut ctx).is_none(), "closed loop: one at a time");
        ctx.now = 50;
        core.complete(b"r".to_vec(), &mut ctx);
        assert_eq!(core.completed.len(), 1);
        assert_eq!(core.completed[0].latency_ns(), 40);
        let req2 = core.issue(&mut ctx).unwrap();
        assert_eq!(req2.request_id, RequestId(2));
    }

    #[test]
    fn max_ops_stops_issuing() {
        let mut core = ClientCore::new(ClientId(0), Box::new(EchoWorkload::new(8, 1)), 1000);
        core.max_ops = Some(1);
        let mut ctx = Ctx { now: 0, timers: 0 };
        core.issue(&mut ctx).unwrap();
        core.complete(vec![], &mut ctx);
        assert!(core.issue(&mut ctx).is_none());
    }

    #[test]
    fn retransmit_bumps_retries() {
        let mut core = ClientCore::new(ClientId(0), Box::new(EchoWorkload::new(8, 1)), 1000);
        let mut ctx = Ctx { now: 0, timers: 0 };
        let a = core.issue(&mut ctx).unwrap();
        let b = core.retransmit(&mut ctx).unwrap();
        assert_eq!(a, b, "same request is retransmitted");
        core.complete(vec![], &mut ctx);
        assert_eq!(core.completed[0].retries, 1);
    }

    #[test]
    fn batch_queue_respects_pipeline_depth() {
        let mut q = BatchQueue::default();
        for i in 0..40 {
            q.push(BaseRequest {
                op: vec![],
                request_id: RequestId(i),
                client: ClientId(0),
            });
        }
        let b1 = q.next_batch(16, 2).unwrap();
        assert_eq!(b1.len(), 16);
        let b2 = q.next_batch(16, 2).unwrap();
        assert_eq!(b2.len(), 16);
        assert!(q.next_batch(16, 2).is_none(), "pipeline full");
        q.batch_done();
        let b3 = q.next_batch(16, 2).unwrap();
        assert_eq!(b3.len(), 8, "remainder");
        assert_eq!(q.backlog(), 0);
    }
}
