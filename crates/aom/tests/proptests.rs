#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

//! Property-based tests of the aom ordering guarantee (§3.2): whatever
//! subset of stamped packets arrives, in whatever order, every receiver
//! delivers a *gap-free ordered* stream consistent with the sequencer's
//! stamping — and any two receivers' delivered streams agree on every
//! position both deliver.

use neo_aom::{
    AomPacket, AomReceiver, AuthMode, Delivery, Envelope, NetworkTrust, ReceiverAuth, SequencerHw,
    SequencerNode,
};
use neo_crypto::{CostModel, NodeCrypto, Principal, SystemKeys};
use neo_sim::{Context, Node, TimerId};
use neo_wire::{Addr, AomHeader, ClientId, GroupId, Payload, ReplicaId, SeqNum};
use proptest::prelude::*;

const G: GroupId = GroupId(0);

struct Collect {
    sends: Vec<(Addr, Payload)>,
}
impl Context for Collect {
    fn now(&self) -> u64 {
        0
    }
    fn me(&self) -> Addr {
        Addr::Sequencer(G)
    }
    fn send_after(&mut self, to: Addr, payload: Payload, _d: u64) {
        self.sends.push((to, payload));
    }
    fn set_timer(&mut self, _: u64, _: u32) -> TimerId {
        TimerId(0)
    }
    fn cancel_timer(&mut self, _: TimerId) {}
    fn charge(&mut self, _: u64) {}
}

/// Stamp `n` distinct messages and return the packets for receiver 0.
fn stamped_packets(n: usize) -> Vec<AomPacket> {
    let keys = SystemKeys::new(5, 4, 1);
    let mut seq = SequencerNode::new(
        G,
        (0..4).map(ReplicaId).collect(),
        AuthMode::HmacVector,
        SequencerHw::Software(CostModel::FREE),
        &keys,
    );
    let mut ctx = Collect { sends: vec![] };
    for i in 0..n {
        let payload = format!("op-{i}").into_bytes();
        let digest = neo_crypto::sha256(&payload);
        let pkt = Envelope::Aom(AomPacket {
            header: AomHeader::unstamped(G, digest.0),
            payload,
        });
        seq.on_message(Addr::Client(ClientId(0)), &pkt.to_bytes(), &mut ctx);
    }
    ctx.sends
        .iter()
        .filter(|(a, _)| *a == Addr::Replica(ReplicaId(0)))
        .filter_map(|(_, b)| match Envelope::from_bytes(b) {
            Ok(Envelope::Aom(p)) => Some(p),
            _ => None,
        })
        .collect()
}

fn fresh_receiver() -> (AomReceiver, NodeCrypto) {
    let keys = SystemKeys::new(5, 4, 1);
    let crypto = NodeCrypto::new(Principal::Replica(ReplicaId(0)), &keys, CostModel::FREE);
    let rcv = AomReceiver::new(
        G,
        ReplicaId(0),
        0,
        1,
        ReceiverAuth::Hmac,
        NetworkTrust::Trusted,
        &keys,
    );
    (rcv, crypto)
}

proptest! {
    /// Deliveries are always a dense, in-order sequence over seq numbers,
    /// no matter the arrival permutation and which packets are lost.
    #[test]
    fn delivery_is_dense_and_ordered(
        n in 1usize..24,
        perm_seed in any::<u64>(),
        lost_mask in any::<u32>(),
    ) {
        let packets = stamped_packets(n);
        // Select survivors and permute them deterministically.
        let mut arriving: Vec<AomPacket> = packets
            .iter()
            .enumerate()
            .filter(|(i, _)| lost_mask & (1 << (i % 32)) == 0)
            .map(|(_, p)| p.clone())
            .collect();
        let mut s = perm_seed;
        for i in (1..arriving.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            arriving.swap(i, (s % (i as u64 + 1)) as usize);
        }

        let (mut rcv, crypto) = fresh_receiver();
        for p in arriving {
            let _ = rcv.on_packet(p, &crypto);
        }
        // Drain deliveries; declare drops until the receiver catches up
        // to everything it buffered.
        let mut delivered: Vec<(u64, bool)> = Vec::new(); // (seq, is_message)
        loop {
            while let Some(d) = rcv.poll() {
                match d {
                    Delivery::Message(cert) => {
                        delivered.push((cert.packet.header.seq.0, true))
                    }
                    Delivery::Drop(s) => delivered.push((s.0, false)),
                }
            }
            if rcv.gap_pending().is_some() {
                rcv.declare_drop();
            } else {
                break;
            }
        }
        // Dense and ordered: seq numbers 1..=k with no gaps or repeats.
        for (i, (seq, _)) in delivered.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64 + 1, "dense in-order delivery");
        }
        // Every delivered *message* matches the sequencer's stamping.
        for (seq, is_msg) in &delivered {
            if *is_msg {
                let original = &packets[(*seq - 1) as usize];
                prop_assert_eq!(original.header.seq, SeqNum(*seq));
            }
        }
    }

    /// Two receivers fed different subsets in different orders never
    /// disagree on a position they both deliver as a message (§3.2
    /// Ordering).
    #[test]
    fn receivers_agree_on_common_positions(
        n in 1usize..16,
        mask_a in any::<u16>(),
        mask_b in any::<u16>(),
    ) {
        let packets = stamped_packets(n);
        let run = |mask: u16| {
            let (mut rcv, crypto) = fresh_receiver();
            for (i, p) in packets.iter().enumerate() {
                if mask & (1 << (i % 16)) == 0 {
                    let _ = rcv.on_packet(p.clone(), &crypto);
                }
            }
            let mut out = std::collections::BTreeMap::new();
            loop {
                while let Some(d) = rcv.poll() {
                    if let Delivery::Message(cert) = d {
                        out.insert(cert.packet.header.seq.0, cert.packet.payload.clone());
                    }
                }
                if rcv.gap_pending().is_some() {
                    rcv.declare_drop();
                } else {
                    break;
                }
            }
            out
        };
        let a = run(mask_a);
        let b = run(mask_b);
        for (seq, payload) in &a {
            if let Some(other) = b.get(seq) {
                prop_assert_eq!(payload, other, "ordering agreement at seq {}", seq);
            }
        }
    }
}
