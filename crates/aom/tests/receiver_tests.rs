#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

//! Receiver-library tests: every aom guarantee from §3.2, exercised
//! through the public API with a real sequencer state machine on the
//! other end.

use neo_aom::{
    AomError, AomPacket, AomReceiver, AuthMode, Behavior, Delivery, Envelope, NetworkTrust,
    ReceiverAuth, SequencerHw, SequencerNode,
};
use neo_crypto::{CostModel, NodeCrypto, Principal, SystemKeys};
use neo_sim::{Context, TimerId};
use neo_wire::{Addr, AomHeader, ClientId, EpochNum, GroupId, Payload, ReplicaId, SeqNum};

const G: GroupId = GroupId(0);
const N: usize = 4;
const F: usize = 1;

fn keys() -> SystemKeys {
    SystemKeys::new(99, N, 2)
}

fn crypto_for(r: u32) -> NodeCrypto {
    NodeCrypto::new(Principal::Replica(ReplicaId(r)), &keys(), CostModel::FREE)
}

/// Collects sequencer output without a full simulator.
struct Collect {
    sends: Vec<(Addr, Payload)>,
}
impl Collect {
    fn new() -> Self {
        Collect { sends: vec![] }
    }
    /// Stamped packets destined for replica `r`.
    fn packets_for(&self, r: u32) -> Vec<AomPacket> {
        self.sends
            .iter()
            .filter(|(a, _)| *a == Addr::Replica(ReplicaId(r)))
            .filter_map(|(_, b)| match Envelope::from_bytes(b) {
                Ok(Envelope::Aom(p)) => Some(p),
                _ => None,
            })
            .collect()
    }
}
impl Context for Collect {
    fn now(&self) -> u64 {
        0
    }
    fn me(&self) -> Addr {
        Addr::Sequencer(G)
    }
    fn send_after(&mut self, to: Addr, payload: Payload, _d: u64) {
        self.sends.push((to, payload));
    }
    fn set_timer(&mut self, _delay: u64, _kind: u32) -> TimerId {
        TimerId(0)
    }
    fn cancel_timer(&mut self, _t: TimerId) {}
    fn charge(&mut self, _ns: u64) {}
}

fn sequencer(mode: AuthMode) -> SequencerNode {
    SequencerNode::new(
        G,
        (0..N as u32).map(ReplicaId).collect(),
        mode,
        SequencerHw::Software(CostModel::FREE),
        &keys(),
    )
}

fn stamp_many(seq: &mut SequencerNode, payloads: &[&[u8]]) -> Collect {
    let mut ctx = Collect::new();
    for p in payloads {
        let digest = neo_crypto::sha256(p);
        let pkt = Envelope::Aom(AomPacket {
            header: AomHeader::unstamped(G, digest.0),
            payload: p.to_vec(),
        });
        use neo_sim::Node as _;
        seq.on_message(Addr::Client(ClientId(0)), &pkt.to_bytes(), &mut ctx);
    }
    ctx
}

fn receiver(r: u32, auth: ReceiverAuth, trust: NetworkTrust) -> AomReceiver {
    AomReceiver::new(G, ReplicaId(r), r as usize, F, auth, trust, &keys())
}

fn deliveries(rcv: &mut AomReceiver) -> Vec<Delivery> {
    let mut out = vec![];
    while let Some(d) = rcv.poll() {
        out.push(d);
    }
    out
}

#[test]
fn hm_in_order_delivery() {
    let mut seq = sequencer(AuthMode::HmacVector);
    let ctx = stamp_many(&mut seq, &[b"a", b"b", b"c"]);
    let crypto = crypto_for(1);
    let mut rcv = receiver(1, ReceiverAuth::Hmac, NetworkTrust::Trusted);
    for pkt in ctx.packets_for(1) {
        rcv.on_packet(pkt, &crypto).unwrap();
    }
    let ds = deliveries(&mut rcv);
    assert_eq!(ds.len(), 3);
    let payloads: Vec<_> = ds
        .iter()
        .map(|d| match d {
            Delivery::Message(c) => c.packet.payload.clone(),
            other => panic!("unexpected {other:?}"),
        })
        .collect();
    assert_eq!(payloads, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
}

#[test]
fn out_of_order_packets_are_reordered() {
    let mut seq = sequencer(AuthMode::HmacVector);
    let ctx = stamp_many(&mut seq, &[b"a", b"b", b"c"]);
    let crypto = crypto_for(0);
    let mut rcv = receiver(0, ReceiverAuth::Hmac, NetworkTrust::Trusted);
    let pkts = ctx.packets_for(0);
    // Deliver 3, 1, 2.
    rcv.on_packet(pkts[2].clone(), &crypto).unwrap();
    assert!(deliveries(&mut rcv).is_empty(), "nothing until 1 arrives");
    assert_eq!(rcv.gap_pending(), Some(SeqNum(1)));
    rcv.on_packet(pkts[0].clone(), &crypto).unwrap();
    rcv.on_packet(pkts[1].clone(), &crypto).unwrap();
    let ds = deliveries(&mut rcv);
    assert_eq!(ds.len(), 3);
    assert_eq!(rcv.gap_pending(), None);
}

#[test]
fn forged_hmac_is_rejected() {
    let mut seq = sequencer(AuthMode::HmacVector);
    let ctx = stamp_many(&mut seq, &[b"a"]);
    let crypto = crypto_for(0);
    let mut rcv = receiver(0, ReceiverAuth::Hmac, NetworkTrust::Trusted);
    let mut pkt = ctx.packets_for(0)[0].clone();
    // A Byzantine relay tampers with the payload digest binding: change
    // the sequence number (reordering attack).
    pkt.header.seq = SeqNum(5);
    assert_eq!(rcv.on_packet(pkt, &crypto), Err(AomError::BadAuth));
    // And a fully forged authenticator also fails.
    let mut pkt2 = ctx.packets_for(0)[0].clone();
    if let neo_wire::Authenticator::HmacVector(tags) = &mut pkt2.header.auth {
        tags[0][0] ^= 0xFF;
    }
    assert_eq!(rcv.on_packet(pkt2, &crypto), Err(AomError::BadAuth));
}

#[test]
fn wrong_group_and_epoch_are_rejected() {
    let mut seq = sequencer(AuthMode::HmacVector);
    let ctx = stamp_many(&mut seq, &[b"a"]);
    let crypto = crypto_for(0);
    let mut rcv = receiver(0, ReceiverAuth::Hmac, NetworkTrust::Trusted);
    let mut pkt = ctx.packets_for(0)[0].clone();
    pkt.header.group = GroupId(9);
    assert_eq!(rcv.on_packet(pkt, &crypto), Err(AomError::WrongGroup));
    let mut pkt2 = ctx.packets_for(0)[0].clone();
    pkt2.header.epoch = EpochNum(3);
    assert!(matches!(
        rcv.on_packet(pkt2, &crypto),
        Err(AomError::WrongEpoch { .. })
    ));
}

#[test]
fn drop_detection_declares_gap_then_resumes() {
    let mut seq = sequencer(AuthMode::HmacVector);
    let ctx = stamp_many(&mut seq, &[b"a", b"b", b"c"]);
    let crypto = crypto_for(0);
    let mut rcv = receiver(0, ReceiverAuth::Hmac, NetworkTrust::Trusted);
    let pkts = ctx.packets_for(0);
    // Packet 2 lost in the network.
    rcv.on_packet(pkts[0].clone(), &crypto).unwrap();
    rcv.on_packet(pkts[2].clone(), &crypto).unwrap();
    let ds = deliveries(&mut rcv);
    assert_eq!(ds.len(), 1, "only 'a' so far");
    assert_eq!(rcv.gap_pending(), Some(SeqNum(2)));
    // Host timer fires:
    assert_eq!(rcv.declare_drop(), SeqNum(2));
    let ds = deliveries(&mut rcv);
    assert_eq!(ds.len(), 2);
    assert!(matches!(ds[0], Delivery::Drop(SeqNum(2))));
    match &ds[1] {
        Delivery::Message(c) => assert_eq!(c.packet.payload, b"c"),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(rcv.drops_declared, 1);
}

#[test]
fn late_arrival_after_drop_declaration_is_stale() {
    let mut seq = sequencer(AuthMode::HmacVector);
    let ctx = stamp_many(&mut seq, &[b"a", b"b"]);
    let crypto = crypto_for(0);
    let mut rcv = receiver(0, ReceiverAuth::Hmac, NetworkTrust::Trusted);
    let pkts = ctx.packets_for(0);
    rcv.on_packet(pkts[1].clone(), &crypto).unwrap();
    rcv.declare_drop(); // give up on seq 1
    assert_eq!(
        rcv.on_packet(pkts[0].clone(), &crypto),
        Err(AomError::Stale)
    );
}

#[test]
fn pk_signed_packets_verify_and_deliver() {
    let mut seq = sequencer(AuthMode::PublicKey);
    let ctx = stamp_many(&mut seq, &[b"a", b"b"]);
    let crypto = crypto_for(0);
    let mut rcv = receiver(0, ReceiverAuth::PublicKey, NetworkTrust::Trusted);
    for pkt in ctx.packets_for(0) {
        rcv.on_packet(pkt, &crypto).unwrap();
    }
    assert_eq!(deliveries(&mut rcv).len(), 2);
}

#[test]
fn pk_hash_chain_batch_verification() {
    // Force signature skipping with an FPGA controller whose table is
    // nearly empty: the first packets sign, then skipping starts, and a
    // later signed packet vouches for the skipped ones.
    use neo_switch::fpga::SigningRatioController;
    use neo_switch::FpgaModel;
    let model = FpgaModel {
        table_capacity: 260,
        skip_threshold: 256,
        precompute_rate_per_sec: 1, // effectively no refill during test
        ..FpgaModel::PAPER
    };
    let mut seq = SequencerNode::new(
        G,
        (0..N as u32).map(ReplicaId).collect(),
        AuthMode::PublicKey,
        SequencerHw::Fpga(model, SigningRatioController::new(model)),
        &keys(),
    );
    // 4 signed (stock 260 → 256), then skipped; nothing refills.
    let ctx = stamp_many(&mut seq, &[b"p1", b"p2", b"p3", b"p4", b"p5", b"p6"]);
    let pkts = ctx.packets_for(0);
    let signed: Vec<bool> = pkts
        .iter()
        .map(|p| match &p.header.auth {
            neo_wire::Authenticator::Signature { sig, .. } => sig.is_some(),
            _ => unreachable!(),
        })
        .collect();
    assert_eq!(signed, vec![true, true, true, true, false, false]);

    // Receiver sees them all; the last two stay parked (no signed
    // successor exists), the first four deliver.
    let crypto = crypto_for(0);
    let mut rcv = receiver(0, ReceiverAuth::PublicKey, NetworkTrust::Trusted);
    for p in &pkts {
        rcv.on_packet(p.clone(), &crypto).unwrap();
    }
    assert_eq!(deliveries(&mut rcv).len(), 4);

    assert_eq!(rcv.next_seq(), SeqNum(5), "5 and 6 are parked, unverified");

    // Now the pre-computer catches up and the sequencer signs packet 7.
    // Build it exactly as the switch would: prev_hash chains to packet 6.
    let p6 = &pkts[5];
    let mut h7 = AomHeader::unstamped(G, neo_crypto::sha256(b"p7").0);
    h7.epoch = EpochNum(0);
    h7.seq = SeqNum(7);
    let prev = neo_crypto::chain(neo_crypto::Digest::ZERO, &p6.header.auth_input());
    let sig = keys().sequencer_key(G, EpochNum(0)).sign(&h7.auth_input());
    h7.auth = neo_wire::Authenticator::Signature {
        sig: Some(sig.0),
        prev_hash: prev.0,
    };
    let p7 = AomPacket {
        header: h7,
        payload: b"p7".to_vec(),
    };
    rcv.on_packet(p7, &crypto).unwrap();
    // The signed packet vouches, through the hash chain, for the two
    // parked signature-less packets: all three deliver in order.
    assert_eq!(deliveries(&mut rcv).len(), 3);
    assert_eq!(rcv.next_seq(), SeqNum(8));
}

#[test]
fn byzantine_mode_requires_confirm_quorum() {
    let mut seq = sequencer(AuthMode::HmacVector);
    let ctx = stamp_many(&mut seq, &[b"a"]);
    let cryptos: Vec<NodeCrypto> = (0..N as u32).map(crypto_for).collect();
    let mut rcvs: Vec<AomReceiver> = (0..N as u32)
        .map(|r| receiver(r, ReceiverAuth::Hmac, NetworkTrust::Byzantine))
        .collect();
    // All four receivers get the packet and produce confirms.
    let mut all_confirms = vec![];
    for r in 0..N {
        let pkt = ctx.packets_for(r as u32)[0].clone();
        rcvs[r].on_packet(pkt, &cryptos[r]).unwrap();
        assert!(
            deliveries(&mut rcvs[r]).is_empty(),
            "no delivery before quorum"
        );
        all_confirms.extend(rcvs[r].take_outgoing_confirms());
    }
    assert_eq!(all_confirms.len(), N);
    // Receiver 0 needs 2f+1 = 3 matching confirms (it has its own).
    rcvs[0]
        .on_confirm(all_confirms[1].clone(), &cryptos[0])
        .unwrap();
    assert!(deliveries(&mut rcvs[0]).is_empty(), "2 of 3 so far");
    rcvs[0]
        .on_confirm(all_confirms[2].clone(), &cryptos[0])
        .unwrap();
    let ds = deliveries(&mut rcvs[0]);
    assert_eq!(ds.len(), 1);
    match &ds[0] {
        Delivery::Message(cert) => {
            assert_eq!(cert.confirms.len(), 3, "certificate carries the quorum");
            // Transferable: replica 3 can verify the full certificate.
            assert!(rcvs[3].verify_cert(cert, &cryptos[3]));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn byzantine_mode_defeats_equivocation() {
    let mut seq = sequencer(AuthMode::HmacVector);
    seq.set_behavior(Behavior::Equivocate);
    let ctx = stamp_many(&mut seq, &[b"msg-A", b"msg-B"]);
    let cryptos: Vec<NodeCrypto> = (0..N as u32).map(crypto_for).collect();
    let mut rcvs: Vec<AomReceiver> = (0..N as u32)
        .map(|r| receiver(r, ReceiverAuth::Hmac, NetworkTrust::Byzantine))
        .collect();
    // Each half of the group sees a different message for seq 1.
    let mut confirms = vec![];
    for r in 0..N {
        let pkt = ctx.packets_for(r as u32)[0].clone();
        rcvs[r].on_packet(pkt, &cryptos[r]).unwrap();
        confirms.extend(rcvs[r].take_outgoing_confirms());
    }
    // Exchange all confirms among all receivers.
    for r in 0..N {
        for c in &confirms {
            if c.body.replica != ReplicaId(r as u32) {
                let _ = rcvs[r].on_confirm(c.clone(), &cryptos[r]);
            }
        }
    }
    // 2-2 split: nobody reaches 2f+1 = 3 matching confirms; no correct
    // receiver delivers a message for the equivocated sequence number.
    for (r, rcv) in rcvs.iter_mut().enumerate() {
        assert!(
            deliveries(rcv).is_empty(),
            "receiver {r} must not deliver on a 2-2 equivocation split"
        );
    }
}

#[test]
fn forged_confirms_do_not_count_toward_quorum() {
    let mut seq = sequencer(AuthMode::HmacVector);
    let ctx = stamp_many(&mut seq, &[b"a"]);
    let crypto = crypto_for(0);
    let mut rcv = receiver(0, ReceiverAuth::Hmac, NetworkTrust::Byzantine);
    rcv.on_packet(ctx.packets_for(0)[0].clone(), &crypto)
        .unwrap();
    let own = rcv.take_outgoing_confirms().pop().unwrap();
    // Forge confirms claiming to be replicas 1 and 2, signed wrongly.
    for forged_id in [1u32, 2] {
        let mut forged = own.clone();
        forged.body.replica = ReplicaId(forged_id);
        assert_eq!(
            rcv.on_confirm(forged, &crypto),
            Err(AomError::BadAuth),
            "signature does not match claimed replica"
        );
    }
    assert!(deliveries(&mut rcv).is_empty());
}

#[test]
fn install_epoch_resets_receiver_state() {
    let mut seq = sequencer(AuthMode::HmacVector);
    let ctx = stamp_many(&mut seq, &[b"a", b"b"]);
    let crypto = crypto_for(0);
    let mut rcv = receiver(0, ReceiverAuth::Hmac, NetworkTrust::Trusted);
    for p in ctx.packets_for(0) {
        rcv.on_packet(p, &crypto).unwrap();
    }
    assert_eq!(deliveries(&mut rcv).len(), 2);
    rcv.install_epoch(EpochNum(1));
    assert_eq!(rcv.next_seq(), SeqNum::FIRST);
    // Old-epoch packets are now rejected…
    let old = {
        let ctx = stamp_many(&mut seq, &[b"c"]);
        ctx.packets_for(0)[0].clone()
    };
    assert!(matches!(
        rcv.on_packet(old, &crypto),
        Err(AomError::WrongEpoch { .. })
    ));
    // …and new-epoch packets (from the reinstalled sequencer) verify.
    seq.install_epoch(EpochNum(1));
    let ctx = stamp_many(&mut seq, &[b"d"]);
    rcv.on_packet(ctx.packets_for(0)[0].clone(), &crypto)
        .unwrap();
    assert_eq!(deliveries(&mut rcv).len(), 1);
}

#[test]
fn cert_transfer_between_receivers() {
    // Transferable authentication (§3.2): receiver 0 forwards its
    // delivered certificate; receiver 2 verifies it independently even
    // though it never saw the original packet.
    let mut seq = sequencer(AuthMode::HmacVector);
    let ctx = stamp_many(&mut seq, &[b"a"]);
    let c0 = crypto_for(0);
    let c2 = crypto_for(2);
    let mut r0 = receiver(0, ReceiverAuth::Hmac, NetworkTrust::Trusted);
    let r2 = receiver(2, ReceiverAuth::Hmac, NetworkTrust::Trusted);
    r0.on_packet(ctx.packets_for(0)[0].clone(), &c0).unwrap();
    let Delivery::Message(cert) = r0.poll().unwrap() else {
        panic!()
    };
    assert!(r2.verify_cert(&cert, &c2));
    // Tampered certificates fail.
    let mut bad = cert.clone();
    bad.packet.header.seq = SeqNum(9);
    assert!(!r2.verify_cert(&bad, &c2));
}

#[test]
fn tampered_hmac_bumps_auth_rejected_counter() {
    // A single bit flipped in flight — exactly what the simulator's
    // `Tamper` fault does — must surface as BadAuth and be visible in
    // the receiver's observability counters (aom-hm path).
    let mut seq = sequencer(AuthMode::HmacVector);
    let ctx = stamp_many(&mut seq, &[b"a"]);
    let crypto = crypto_for(0);
    let mut rcv = receiver(0, ReceiverAuth::Hmac, NetworkTrust::Trusted);
    assert_eq!(rcv.stats().auth_rejected, 0);
    let mut pkt = ctx.packets_for(0)[0].clone();
    if let neo_wire::Authenticator::HmacVector(tags) = &mut pkt.header.auth {
        tags[0][3] ^= 0x01;
    }
    assert_eq!(rcv.on_packet(pkt, &crypto), Err(AomError::BadAuth));
    assert_eq!(rcv.stats().auth_rejected, 1);
    // A payload flip under an intact stamp breaks the digest binding.
    let mut pkt = ctx.packets_for(0)[0].clone();
    pkt.payload[0] ^= 0x01;
    assert_eq!(rcv.on_packet(pkt, &crypto), Err(AomError::BadAuth));
    assert_eq!(rcv.stats().auth_rejected, 2);
    // The pristine copy still verifies; the counter stays put.
    rcv.on_packet(ctx.packets_for(0)[0].clone(), &crypto)
        .unwrap();
    assert_eq!(deliveries(&mut rcv).len(), 1);
    assert_eq!(rcv.stats().auth_rejected, 2);
}

#[test]
fn tampered_signature_bumps_auth_rejected_counter() {
    // Same single-bit corruption on the aom-pk path: a flipped byte in
    // the sequencer signature must fail verification and be counted.
    let mut seq = sequencer(AuthMode::PublicKey);
    let ctx = stamp_many(&mut seq, &[b"a"]);
    let crypto = crypto_for(0);
    let mut rcv = receiver(0, ReceiverAuth::PublicKey, NetworkTrust::Trusted);
    let mut pkt = ctx.packets_for(0)[0].clone();
    match &mut pkt.header.auth {
        neo_wire::Authenticator::Signature {
            sig: Some(bytes), ..
        } => bytes[0] ^= 0x01,
        other => panic!("expected a signed packet, got {other:?}"),
    }
    assert_eq!(rcv.on_packet(pkt, &crypto), Err(AomError::BadAuth));
    assert_eq!(rcv.stats().auth_rejected, 1);
    rcv.on_packet(ctx.packets_for(0)[0].clone(), &crypto)
        .unwrap();
    assert_eq!(deliveries(&mut rcv).len(), 1);
    assert_eq!(rcv.stats().auth_rejected, 1);
}

#[test]
fn auth_scheme_confusion_and_forged_confirms_are_counted() {
    // Type confusion: an hm receiver handed a pk-authenticated packet.
    let mut pk_seq = sequencer(AuthMode::PublicKey);
    let ctx = stamp_many(&mut pk_seq, &[b"a"]);
    let crypto = crypto_for(0);
    let mut rcv = receiver(0, ReceiverAuth::Hmac, NetworkTrust::Trusted);
    let pkt = ctx.packets_for(0)[0].clone();
    assert_eq!(rcv.on_packet(pkt, &crypto), Err(AomError::BadAuth));
    assert_eq!(rcv.stats().auth_rejected, 1);

    // Forged confirm signatures count on the Byzantine-network path too.
    let mut seq = sequencer(AuthMode::HmacVector);
    let ctx = stamp_many(&mut seq, &[b"a"]);
    let mut rcv = receiver(0, ReceiverAuth::Hmac, NetworkTrust::Byzantine);
    rcv.on_packet(ctx.packets_for(0)[0].clone(), &crypto)
        .unwrap();
    let mut forged = rcv.take_outgoing_confirms().pop().unwrap();
    forged.body.replica = ReplicaId(2);
    assert_eq!(rcv.on_confirm(forged, &crypto), Err(AomError::BadAuth));
    assert_eq!(rcv.stats().auth_rejected, 1);
}

#[test]
fn tampering_one_op_inside_a_batch_is_rejected() {
    // Regression for the batch digest binding: the aom header digest is
    // computed over the *encoded batch body*, so flipping one bit in any
    // single op of a multi-op batch must fail the payload-digest check —
    // a relay cannot swap an op inside an otherwise-valid batch.
    use neo_aom::AomBatch;
    let batch = AomBatch {
        ops: vec![
            b"op-alpha".to_vec(),
            b"op-beta".to_vec(),
            b"op-gamma".to_vec(),
        ],
    };
    let body = batch.to_bytes();
    let mut seq = sequencer(AuthMode::HmacVector);
    let ctx = stamp_many(&mut seq, &[&body]);
    let crypto = crypto_for(0);
    let mut rcv = receiver(0, ReceiverAuth::Hmac, NetworkTrust::Trusted);

    // Tamper with exactly one op in the middle of the batch (the encoded
    // body embeds each op verbatim, so locate op two and flip one bit).
    let mut pkt = ctx.packets_for(0)[0].clone();
    let pos = pkt
        .payload
        .windows(b"op-beta".len())
        .position(|w| w == b"op-beta")
        .expect("op embedded in encoded batch");
    pkt.payload[pos] ^= 0x01;
    let decoded = AomBatch::from_bytes(&pkt.payload).expect("still a well-formed batch");
    assert_eq!(decoded.len(), 3, "framing intact; only op content changed");
    assert_eq!(rcv.on_packet(pkt, &crypto), Err(AomError::BadAuth));
    assert_eq!(rcv.stats().auth_rejected, 1);

    // The pristine batch still verifies and delivers all ops intact.
    rcv.on_packet(ctx.packets_for(0)[0].clone(), &crypto)
        .unwrap();
    let ds = deliveries(&mut rcv);
    assert_eq!(ds.len(), 1);
    match &ds[0] {
        Delivery::Message(cert) => {
            let got = AomBatch::from_bytes(&cert.packet.payload).unwrap();
            assert_eq!(got, batch);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn pipelined_verification_accepts_and_rejects_identically() {
    // Pipelining only moves verification cost to the parallel lane; the
    // accept/reject behaviour must be bit-identical.
    let mut seq = sequencer(AuthMode::HmacVector);
    let ctx = stamp_many(&mut seq, &[b"a", b"b"]);
    let crypto = crypto_for(0);
    let mut rcv = receiver(0, ReceiverAuth::Hmac, NetworkTrust::Trusted);
    rcv.set_pipelined(true);
    let mut tampered = ctx.packets_for(0)[0].clone();
    tampered.payload[0] ^= 0x01;
    assert_eq!(rcv.on_packet(tampered, &crypto), Err(AomError::BadAuth));
    for p in ctx.packets_for(0) {
        rcv.on_packet(p, &crypto).unwrap();
    }
    assert_eq!(deliveries(&mut rcv).len(), 2);
}

#[test]
fn unstamped_packets_are_rejected() {
    let crypto = crypto_for(0);
    let mut rcv = receiver(0, ReceiverAuth::Hmac, NetworkTrust::Trusted);
    let pkt = AomPacket {
        header: AomHeader::unstamped(G, [0u8; 32]),
        payload: b"x".to_vec(),
    };
    assert_eq!(rcv.on_packet(pkt, &crypto), Err(AomError::Unstamped));
}

#[test]
fn fast_forward_skips_recovered_prefix() {
    // A restarted replica recovers seqs 1..=2 from its own disk, then
    // fast-forwards the receiver: 1 and 2 must never be redelivered,
    // and 3 flows normally.
    let mut seq = sequencer(AuthMode::HmacVector);
    let ctx = stamp_many(&mut seq, &[b"a", b"b", b"c"]);
    let crypto = crypto_for(1);
    let mut rcv = receiver(1, ReceiverAuth::Hmac, NetworkTrust::Trusted);
    rcv.fast_forward(SeqNum(3));
    assert_eq!(rcv.next_seq(), SeqNum(3));
    let pkts = ctx.packets_for(1);
    assert_eq!(rcv.on_packet(pkts[0].clone(), &crypto), Err(AomError::Stale));
    rcv.on_packet(pkts[2].clone(), &crypto).unwrap();
    let ds = deliveries(&mut rcv);
    assert_eq!(ds.len(), 1);
    match &ds[0] {
        Delivery::Message(c) => assert_eq!(c.packet.payload, b"c".to_vec()),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn fast_forward_discards_buffered_prefix_and_releases_contiguous_tail() {
    // Seq 1 missing, 2 and 3 buffered: fast-forwarding to 2 discards
    // nothing relevant, delivers 2 and 3 immediately; a later attempt
    // to rewind the frontier is refused.
    let mut seq = sequencer(AuthMode::HmacVector);
    let ctx = stamp_many(&mut seq, &[b"a", b"b", b"c"]);
    let crypto = crypto_for(1);
    let mut rcv = receiver(1, ReceiverAuth::Hmac, NetworkTrust::Trusted);
    let pkts = ctx.packets_for(1);
    rcv.on_packet(pkts[1].clone(), &crypto).unwrap();
    rcv.on_packet(pkts[2].clone(), &crypto).unwrap();
    assert!(deliveries(&mut rcv).is_empty(), "gap at seq 1 blocks");
    rcv.fast_forward(SeqNum(2));
    assert_eq!(deliveries(&mut rcv).len(), 2);
    rcv.fast_forward(SeqNum(1)); // backwards: ignored
    assert_eq!(rcv.next_seq(), SeqNum(4));
}
