#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

//! Multi-group aom deployments (§3.2: "an aom deployment consists of one
//! or multiple aom groups, each identified by a unique group address").
//! Two independent groups share a fabric; each has its own sequencer,
//! sequence space, and keys — cross-group traffic never mixes.

use neo_aom::{
    AomReceiver, AomSender, AuthMode, Delivery, Envelope, NetworkTrust, ReceiverAuth, SequencerHw,
    SequencerNode,
};
use neo_crypto::{CostModel, NodeCrypto, Principal, SystemKeys};
use neo_sim::{CpuConfig, FaultPlan, NetConfig, Node, SimConfig, Simulator, TimerId, SECS};
use neo_wire::{Addr, ClientId, GroupId, ReplicaId};
use std::any::Any;

const G1: GroupId = GroupId(1);
const G2: GroupId = GroupId(2);

/// A bare aom receiver host: records in-order deliveries per group.
struct ReceiverHost {
    rcv: AomReceiver,
    crypto: NodeCrypto,
    delivered: Vec<Vec<u8>>,
}

impl Node for ReceiverHost {
    fn on_message(&mut self, _from: Addr, payload: &[u8], _ctx: &mut dyn neo_sim::Context) {
        if let Ok(env) = Envelope::from_bytes(payload) {
            self.rcv.on_envelope(&env, &self.crypto);
            while let Some(d) = self.rcv.poll() {
                if let Delivery::Message(cert) = d {
                    self.delivered.push(cert.packet.payload);
                }
            }
        }
    }
    fn on_timer(&mut self, _: TimerId, _: u32, _: &mut dyn neo_sim::Context) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A client that multicasts `ops` payloads to one group at bootstrap.
struct Blaster {
    sender: AomSender,
    crypto: NodeCrypto,
    ops: u32,
    tag: u8,
}

impl Node for Blaster {
    fn on_message(&mut self, _: Addr, _: &[u8], _: &mut dyn neo_sim::Context) {}
    fn on_timer(&mut self, _: TimerId, kind: u32, ctx: &mut dyn neo_sim::Context) {
        if kind == neo_sim::sim::INIT_TIMER_KIND {
            for i in 0..self.ops {
                let payload = vec![self.tag, i as u8];
                let bytes = self.sender.wrap(payload, &self.crypto);
                ctx.send(self.sender.dest(), bytes);
            }
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn two_groups_are_fully_isolated() {
    let keys = SystemKeys::new(77, 8, 2);
    let mut sim = Simulator::new(SimConfig {
        net: NetConfig::DATACENTER,
        default_cpu: CpuConfig::IDEAL,
        seed: 7,
        faults: FaultPlan::none(),
    });

    // Group 1: replicas 0..4. Group 2: replicas 4..8.
    for (group, base) in [(G1, 0u32), (G2, 4u32)] {
        let members: Vec<ReplicaId> = (base..base + 4).map(ReplicaId).collect();
        let seq = SequencerNode::new(
            group,
            members.clone(),
            AuthMode::HmacVector,
            SequencerHw::Software(CostModel::FREE),
            &keys,
        );
        sim.add_node(Addr::Sequencer(group), Box::new(seq));
        for (idx, r) in members.iter().enumerate() {
            let host = ReceiverHost {
                rcv: AomReceiver::new(
                    group,
                    *r,
                    idx,
                    1,
                    ReceiverAuth::Hmac,
                    NetworkTrust::Trusted,
                    &keys,
                ),
                crypto: NodeCrypto::new(Principal::Replica(*r), &keys, CostModel::FREE),
                delivered: vec![],
            };
            sim.add_node(Addr::Replica(*r), Box::new(host));
        }
    }
    // One blaster per group.
    for (c, group, tag) in [(0u64, G1, 0xAA), (1u64, G2, 0xBB)] {
        let blaster = Blaster {
            sender: AomSender::new(group),
            crypto: NodeCrypto::new(Principal::Client(ClientId(c)), &keys, CostModel::FREE),
            ops: 20,
            tag,
        };
        sim.add_node(Addr::Client(ClientId(c)), Box::new(blaster));
    }
    sim.run_until(SECS);

    // Group 1 receivers saw exactly group 1's stream, in identical order.
    let stream = |r: u32| {
        sim.node_ref::<ReceiverHost>(Addr::Replica(ReplicaId(r)))
            .unwrap()
            .delivered
            .clone()
    };
    let g1 = stream(0);
    assert_eq!(g1.len(), 20);
    assert!(g1.iter().all(|p| p[0] == 0xAA), "no cross-group leakage");
    for r in 1..4 {
        assert_eq!(stream(r), g1, "group-1 receiver {r} ordering");
    }
    let g2 = stream(4);
    assert_eq!(g2.len(), 20);
    assert!(g2.iter().all(|p| p[0] == 0xBB));
    for r in 5..8 {
        assert_eq!(stream(r), g2, "group-2 receiver {r} ordering");
    }
}

#[test]
fn cross_group_packets_are_rejected_by_receivers() {
    // A packet stamped by group 2's sequencer, relayed to a group 1
    // receiver, must fail authentication (different per-group keys).
    let keys = SystemKeys::new(5, 8, 1);
    let mut g2_seq = SequencerNode::new(
        G2,
        (4..8).map(ReplicaId).collect(),
        AuthMode::HmacVector,
        SequencerHw::Software(CostModel::FREE),
        &keys,
    );
    struct Collect(Vec<(Addr, neo_wire::Payload)>);
    impl neo_sim::Context for Collect {
        fn now(&self) -> u64 {
            0
        }
        fn me(&self) -> Addr {
            Addr::Sequencer(G2)
        }
        fn send_after(&mut self, to: Addr, p: neo_wire::Payload, _: u64) {
            self.0.push((to, p));
        }
        fn set_timer(&mut self, _: u64, _: u32) -> TimerId {
            TimerId(0)
        }
        fn cancel_timer(&mut self, _: TimerId) {}
        fn charge(&mut self, _: u64) {}
    }
    let crypto_c = NodeCrypto::new(Principal::Client(ClientId(0)), &keys, CostModel::FREE);
    let wrapped = AomSender::new(G2).wrap(b"for group 2".to_vec(), &crypto_c);
    let mut ctx = Collect(vec![]);
    g2_seq.on_message(Addr::Client(ClientId(0)), &wrapped, &mut ctx);
    let Ok(Envelope::Aom(stamped)) = Envelope::from_bytes(&ctx.0[0].1) else {
        panic!("stamped packet expected");
    };

    // Group 1's receiver 0 rejects it outright (wrong group).
    let mut rcv = AomReceiver::new(
        G1,
        ReplicaId(0),
        0,
        1,
        ReceiverAuth::Hmac,
        NetworkTrust::Trusted,
        &keys,
    );
    let crypto_r = NodeCrypto::new(Principal::Replica(ReplicaId(0)), &keys, CostModel::FREE);
    assert_eq!(
        rcv.on_packet(stamped.clone(), &crypto_r),
        Err(neo_aom::AomError::WrongGroup)
    );

    // Even a forged group id fails: the MAC was keyed for group 2.
    let mut forged = stamped;
    forged.header.group = G1;
    assert_eq!(
        rcv.on_packet(forged, &crypto_r),
        Err(neo_aom::AomError::BadAuth)
    );
}
