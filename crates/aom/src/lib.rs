#![allow(clippy::int_plus_one, clippy::manual_is_multiple_of)]
// Quorum arithmetic is kept literal: `votes >= f + 1` mirrors the
// protocol text; `seq % n` mirrors the fault-injection spec.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # neo-aom
//!
//! The **authenticated ordered multicast** primitive (§3–§4 of the paper):
//!
//! * [`envelope`] — the tagged wire envelope carried by every packet in
//!   the system (aom packets, confirm messages, configuration-service
//!   traffic, and opaque application/protocol payloads);
//! * [`sender`] — the sender-side library: builds the custom header
//!   (group id + payload digest) that follows the UDP header (§4.1);
//! * [`sequencer`] — the sequencer as a sans-IO node: stamps epoch and
//!   sequence numbers, generates the authenticator (HMAC vector or
//!   secp256k1 signature with hash chaining), multicasts to receivers,
//!   and models switch timing; includes Byzantine behaviours
//!   (equivocation, muting, selective drops) for fault-injection tests;
//! * [`receiver`] — the receiver-side library embedded in replicas:
//!   authenticator verification, in-order delivery, gap detection and
//!   `drop-notification`s, hash-chain batch verification for aom-pk,
//!   and the confirm exchange that tolerates a Byzantine network (§4.2);
//! * [`config`] — the configuration service: group membership, epoch
//!   advancement, sequencer failover on f+1 matching requests.
//!
//! aom guarantees (§3.2): asynchrony, unreliability, authentication,
//! transferable authentication, ordering, drop detection. The receiver
//! tests in this crate exercise each guarantee, including under an
//! equivocating sequencer.

pub mod config;
pub mod envelope;
pub mod receiver;
pub mod sender;
pub mod sequencer;

pub use config::{ConfigMsg, ConfigService};
pub use envelope::{AomBatch, Envelope};
pub use receiver::{
    AomError, AomReceiver, AomReceiverStats, Confirm, ConfirmJob, Delivery, NetworkTrust,
    OrderingCert, ReceiverAuth, SignedConfirm, VerifyJob,
};
pub use sender::AomSender;
pub use sequencer::{AuthMode, Behavior, SequencerHw, SequencerNode};

/// An aom packet: the custom header plus the opaque payload it orders.
#[derive(Clone, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct AomPacket {
    /// The custom header (§4.1).
    pub header: neo_wire::AomHeader,
    /// Application payload (for NeoBFT: a signed client request).
    pub payload: Vec<u8>,
}

impl AomPacket {
    /// The identity hash of a stamped packet: binds digest, sequence
    /// number, and epoch. This is the value hash-chained by aom-pk and
    /// the value receivers confirm in Byzantine-network mode.
    pub fn identity_hash(&self) -> neo_crypto::Digest {
        neo_crypto::sha256(&self.header.auth_input())
    }
}
