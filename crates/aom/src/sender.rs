//! The sender-side aom library (§4.1).
//!
//! "The sender-side library generates a custom packet header that follows
//! the UDP header … The digest is generated using a collision-resistant
//! hash function." Senders address the *group*; they never learn receiver
//! identities.

use crate::{AomPacket, Envelope};
use neo_crypto::NodeCrypto;
use neo_wire::{Addr, AomHeader, GroupId, Payload};

/// Sender-side library: wraps payloads into unstamped aom packets.
#[derive(Clone, Debug)]
pub struct AomSender {
    group: GroupId,
}

impl AomSender {
    /// A sender targeting `group`.
    pub fn new(group: GroupId) -> Self {
        AomSender { group }
    }

    /// The group this sender multicasts to.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// The multicast address senders put on the wire.
    pub fn dest(&self) -> Addr {
        Addr::Multicast(self.group)
    }

    /// Build the shared wire payload for one aom message carrying
    /// `payload`. The digest is computed (and metered) through the
    /// node's crypto.
    pub fn wrap(&self, payload: Vec<u8>, crypto: &NodeCrypto) -> Payload {
        let digest = crypto.digest(&payload);
        let header = AomHeader::unstamped(self.group, digest.0);
        Envelope::Aom(AomPacket { header, payload }).to_payload()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_crypto::{CostModel, Principal, SystemKeys};
    use neo_wire::ClientId;

    #[test]
    fn wrap_produces_unstamped_packet_with_correct_digest() {
        let sys = SystemKeys::new(1, 0, 1);
        let crypto = NodeCrypto::new(Principal::Client(ClientId(0)), &sys, CostModel::FREE);
        let sender = AomSender::new(GroupId(3));
        let bytes = sender.wrap(b"hello".to_vec(), &crypto);
        match Envelope::from_bytes(&bytes).unwrap() {
            Envelope::Aom(pkt) => {
                assert!(!pkt.header.is_stamped());
                assert_eq!(pkt.header.group, GroupId(3));
                assert_eq!(pkt.header.digest, neo_crypto::sha256(b"hello").0);
                assert_eq!(pkt.payload, b"hello");
            }
            other => panic!("expected aom packet, got {other:?}"),
        }
        assert_eq!(sender.dest(), Addr::Multicast(GroupId(3)));
    }
}
