//! The aom sequencer as a sans-IO node (§4.2–§4.4).
//!
//! The sequencer receives unstamped aom packets addressed to its group,
//! stamps a monotonically increasing sequence number and the current
//! epoch, generates the authenticator, and multicasts to every receiver.
//!
//! Three deployment flavours share this state machine:
//!
//! * **Hardware aom-hm** — timing from [`neo_switch::TofinoModel`];
//!   authenticator = SipHash vector, one tag per receiver.
//! * **Hardware aom-pk** — timing from [`neo_switch::FpgaModel`];
//!   authenticator = secp256k1 signature over digest ‖ seq ‖ epoch, with
//!   hash chaining and the signing-ratio controller deciding which
//!   packets carry a signature.
//! * **Software sequencer** — the flavour the paper uses on EC2 for the
//!   100-replica scalability run (§6.3): same logic, costs charged to the
//!   node's CPU model instead of switch pipelines.
//!
//! Byzantine sequencer behaviours ([`Behavior`]) are implemented for
//! fault-injection: muting, selective drops, and equivocation (assigning
//! the same sequence number to different messages for different halves of
//! the group).

use crate::{AomPacket, ConfigMsg, Envelope};
use neo_crypto::{chain, CostModel, Digest, HmacKey, SequencerKeyPair, SystemKeys};
use neo_sim::{Context, Event, Node, TimerId};
use neo_switch::fpga::SigningRatioController;
use neo_switch::{FpgaModel, SequencerTiming, TofinoModel};
use neo_wire::{Addr, Authenticator, EpochNum, GroupId, ReplicaId, SeqNum};
use std::any::Any;

/// Which authenticator the sequencer generates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AuthMode {
    /// aom-hm: SipHash vector, one entry per receiver (§4.3).
    HmacVector,
    /// aom-pk: one secp256k1 signature + hash chain (§4.4).
    PublicKey,
}

/// Hardware model the sequencer runs on.
pub enum SequencerHw {
    /// Software sequencer: crypto cost charged to the node CPU.
    Software(CostModel),
    /// Tofino folded-pipeline prototype.
    Tofino(TofinoModel),
    /// FPGA coprocessor prototype (with its live signing-ratio state).
    Fpga(FpgaModel, SigningRatioController),
}

/// Fault behaviour for tests and experiments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Behavior {
    /// Follow the protocol.
    Correct,
    /// Stop emitting anything (crashed / partitioned switch).
    Mute,
    /// Drop every `n`-th stamped message entirely (all receivers miss it:
    /// exercises the gap-agreement *drop* path).
    DropEvery(u64),
    /// Drop every `n`-th stamped message for all but one receiver
    /// (exercises the gap-agreement *recover-from-peer* path).
    DropEveryAtAllButOne(u64),
    /// Byzantine equivocation: give the same sequence number to two
    /// different messages, each half of the group seeing a different one.
    Equivocate,
}

/// The sequencer node.
pub struct SequencerNode {
    group: GroupId,
    epoch: EpochNum,
    next: SeqNum,
    receivers: Vec<ReplicaId>,
    mode: AuthMode,
    hw: SequencerHw,
    keys: SystemKeys,
    hmac_keys: Vec<HmacKey>,
    pk_key: SequencerKeyPair,
    prev_hash: Digest,
    behavior: Behavior,
    /// Packets stamped so far (stats).
    pub stamped: u64,
    /// Pending equivocation partner: the previous packet waiting to share
    /// a sequence number with the next one.
    equiv_pending: Option<AomPacket>,
}

impl SequencerNode {
    /// Build a sequencer for `group` with the given receivers.
    pub fn new(
        group: GroupId,
        receivers: Vec<ReplicaId>,
        mode: AuthMode,
        hw: SequencerHw,
        keys: &SystemKeys,
    ) -> Self {
        let mut node = SequencerNode {
            group,
            epoch: EpochNum::INITIAL,
            next: SeqNum::FIRST,
            receivers,
            mode,
            hw,
            keys: keys.clone(),
            hmac_keys: Vec::new(),
            pk_key: keys.sequencer_key(group, EpochNum::INITIAL),
            prev_hash: Digest::ZERO,
            behavior: Behavior::Correct,
            stamped: 0,
            equiv_pending: None,
        };
        node.derive_epoch_keys();
        node
    }

    /// Install (or re-install) the sequencer for `epoch`: fresh counter,
    /// fresh keys, correct behaviour — the new switch the config service
    /// selected (§4.2 "Sequencer switch failover").
    pub fn install_epoch(&mut self, epoch: EpochNum) {
        self.epoch = epoch;
        self.next = SeqNum::FIRST;
        self.prev_hash = Digest::ZERO;
        self.pk_key = self.keys.sequencer_key(self.group, epoch);
        self.behavior = Behavior::Correct;
        self.equiv_pending = None;
        self.derive_epoch_keys();
    }

    /// Set the fault behaviour (experiments flip this mid-run).
    pub fn set_behavior(&mut self, b: Behavior) {
        self.behavior = b;
    }

    /// Current epoch.
    pub fn epoch(&self) -> EpochNum {
        self.epoch
    }

    /// Next sequence number to be stamped.
    pub fn next_seq(&self) -> SeqNum {
        self.next
    }

    fn derive_epoch_keys(&mut self) {
        self.hmac_keys = self
            .receivers
            .iter()
            .map(|r| self.keys.sequencer_hmac_key(self.group, self.epoch, *r))
            .collect();
    }

    /// Stamp one packet: sequence number, epoch, authenticator. Returns
    /// the pipeline latency to apply and whether the packet was signed
    /// (pk mode only; HMAC packets always count as signed).
    fn stamp(&mut self, pkt: &mut AomPacket, now: u64, ctx: &mut dyn Context) -> u64 {
        pkt.header.epoch = self.epoch;
        pkt.header.seq = self.next;
        self.next = self.next.next();
        self.stamped += 1;
        ctx.emit(Event::SequencerStamp {
            seq: pkt.header.seq.0,
        });

        let auth_input = pkt.header.auth_input();
        let mut signed = true;
        match self.mode {
            AuthMode::HmacVector => {
                let tags = neo_crypto::mac::hmac_vector(&self.hmac_keys, &auth_input);
                pkt.header.auth = Authenticator::HmacVector(tags);
            }
            AuthMode::PublicKey => {
                signed = match &mut self.hw {
                    SequencerHw::Fpga(_, ctl) => ctl.on_packet(now),
                    _ => true,
                };
                let sig = if signed {
                    Some(self.pk_key.sign(&auth_input).0)
                } else {
                    None
                };
                pkt.header.auth = Authenticator::Signature {
                    sig,
                    prev_hash: self.prev_hash.0,
                };
                // Chain over the packet identity (digest ‖ seq ‖ epoch).
                self.prev_hash = chain(Digest::ZERO, &auth_input);
            }
        }

        // Charge occupancy + compute propagation latency.
        let group_size = self.receivers.len();
        match &self.hw {
            SequencerHw::Software(costs) => {
                let cost = match self.mode {
                    AuthMode::HmacVector => costs.siphash * group_size as u64,
                    AuthMode::PublicKey => costs.ecdsa_sign,
                };
                ctx.charge(cost);
                0
            }
            SequencerHw::Tofino(m) => {
                ctx.charge(m.service_ns(group_size));
                m.pipeline_latency_ns(group_size)
            }
            SequencerHw::Fpga(m, _) => {
                // The signer is only occupied for packets it signs;
                // hash-chained skips cost one SHA-256 pipeline slot
                // (§4.4's signing-ratio mechanism).
                if signed {
                    ctx.charge(m.service_ns(group_size));
                } else {
                    ctx.charge(m.hash_latency_ns);
                }
                m.pipeline_latency_ns(group_size)
            }
        }
    }

    fn multicast(&self, pkt: &AomPacket, latency: u64, skip_set: &[usize], ctx: &mut dyn Context) {
        // Encode once; each receiver costs a refcount bump, not a copy.
        let payload = Envelope::Aom(pkt.clone()).to_payload();
        for (i, r) in self.receivers.iter().enumerate() {
            if skip_set.contains(&i) {
                continue;
            }
            ctx.send_after(Addr::Replica(*r), payload.clone(), latency);
        }
    }

    fn handle_packet(&mut self, mut pkt: AomPacket, ctx: &mut dyn Context) {
        if pkt.header.group != self.group || pkt.header.is_stamped() {
            return; // not ours, or replayed post-stamp traffic
        }
        match self.behavior {
            Behavior::Mute => {}
            Behavior::Correct => {
                let latency = self.stamp(&mut pkt, ctx.now(), ctx);
                self.multicast(&pkt, latency, &[], ctx);
            }
            Behavior::DropEvery(n) => {
                let latency = self.stamp(&mut pkt, ctx.now(), ctx);
                // Drop messages whose seq ≡ 0 (mod n): stamped but never
                // delivered — receivers observe a gap.
                if pkt.header.seq.0 % n != 0 {
                    self.multicast(&pkt, latency, &[], ctx);
                }
            }
            Behavior::DropEveryAtAllButOne(n) => {
                let latency = self.stamp(&mut pkt, ctx.now(), ctx);
                if pkt.header.seq.0 % n != 0 {
                    self.multicast(&pkt, latency, &[], ctx);
                } else {
                    // Only receiver 0 gets it; everyone else sees a gap
                    // and must recover the ordering certificate.
                    let skip: Vec<usize> = (1..self.receivers.len()).collect();
                    self.multicast(&pkt, latency, &skip, ctx);
                }
            }
            Behavior::Equivocate => {
                // Pair up consecutive messages under one sequence number.
                match self.equiv_pending.take() {
                    None => {
                        self.equiv_pending = Some(pkt);
                    }
                    Some(mut first) => {
                        let latency = self.stamp(&mut first, ctx.now(), ctx);
                        // Give the *same* seq to the second message.
                        pkt.header.epoch = self.epoch;
                        pkt.header.seq = first.header.seq;
                        let auth_input = pkt.header.auth_input();
                        match self.mode {
                            AuthMode::HmacVector => {
                                let tags =
                                    neo_crypto::mac::hmac_vector(&self.hmac_keys, &auth_input);
                                pkt.header.auth = Authenticator::HmacVector(tags);
                            }
                            AuthMode::PublicKey => {
                                pkt.header.auth = Authenticator::Signature {
                                    sig: Some(self.pk_key.sign(&auth_input).0),
                                    prev_hash: Digest::ZERO.0,
                                };
                            }
                        }
                        let half = self.receivers.len() / 2;
                        let first_half: Vec<usize> = (0..half).collect();
                        let second_half: Vec<usize> = (half..self.receivers.len()).collect();
                        self.multicast(&first, latency, &second_half, ctx);
                        self.multicast(&pkt, latency, &first_half, ctx);
                    }
                }
            }
        }
    }
}

impl Node for SequencerNode {
    fn on_message(&mut self, _from: Addr, payload: &[u8], ctx: &mut dyn Context) {
        match Envelope::from_bytes(payload) {
            Ok(Envelope::Aom(pkt)) => self.handle_packet(pkt, ctx),
            Ok(Envelope::Config(ConfigMsg::InstallSequencer { group, epoch }))
                if group == self.group && epoch > self.epoch =>
            {
                self.install_epoch(epoch);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _timer: TimerId, _kind: u32, _ctx: &mut dyn Context) {}

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_sim::Duration;
    use neo_wire::Payload;

    struct Collect {
        now: u64,
        sends: Vec<(Addr, Payload, u64)>,
        charged: u64,
    }
    impl Collect {
        fn new() -> Self {
            Collect {
                now: 0,
                sends: vec![],
                charged: 0,
            }
        }
        fn packets(&self) -> Vec<(Addr, AomPacket, u64)> {
            self.sends
                .iter()
                .filter_map(|(a, b, d)| match Envelope::from_bytes(b) {
                    Ok(Envelope::Aom(p)) => Some((*a, p, *d)),
                    _ => None,
                })
                .collect()
        }
    }
    impl Context for Collect {
        fn now(&self) -> u64 {
            self.now
        }
        fn me(&self) -> Addr {
            Addr::Sequencer(GroupId(0))
        }
        fn send_after(&mut self, to: Addr, payload: Payload, d: Duration) {
            self.sends.push((to, payload, d));
        }
        fn set_timer(&mut self, _delay: Duration, _kind: u32) -> TimerId {
            TimerId(0)
        }
        fn cancel_timer(&mut self, _t: TimerId) {}
        fn charge(&mut self, ns: u64) {
            self.charged += ns;
        }
    }

    const G: GroupId = GroupId(0);

    fn keys() -> SystemKeys {
        SystemKeys::new(5, 4, 1)
    }

    fn unstamped(payload: &[u8]) -> Vec<u8> {
        let digest = neo_crypto::sha256(payload);
        Envelope::Aom(AomPacket {
            header: neo_wire::AomHeader::unstamped(G, digest.0),
            payload: payload.to_vec(),
        })
        .to_bytes()
    }

    fn hm_sequencer() -> SequencerNode {
        SequencerNode::new(
            G,
            (0..4).map(ReplicaId).collect(),
            AuthMode::HmacVector,
            SequencerHw::Software(CostModel::FREE),
            &keys(),
        )
    }

    #[test]
    fn stamps_sequential_numbers_and_multicasts() {
        let mut seq = hm_sequencer();
        let mut ctx = Collect::new();
        seq.on_message(
            Addr::Client(neo_wire::ClientId(0)),
            &unstamped(b"a"),
            &mut ctx,
        );
        seq.on_message(
            Addr::Client(neo_wire::ClientId(0)),
            &unstamped(b"b"),
            &mut ctx,
        );
        let pkts = ctx.packets();
        assert_eq!(pkts.len(), 8, "2 messages × 4 receivers");
        // First four all have seq 1, next four seq 2.
        assert!(pkts[..4].iter().all(|(_, p, _)| p.header.seq == SeqNum(1)));
        assert!(pkts[4..].iter().all(|(_, p, _)| p.header.seq == SeqNum(2)));
        assert!(pkts.iter().all(|(_, p, _)| p.header.is_stamped()));
    }

    #[test]
    fn hmac_vector_has_one_entry_per_receiver_and_verifies() {
        let mut seq = hm_sequencer();
        let mut ctx = Collect::new();
        seq.on_message(
            Addr::Client(neo_wire::ClientId(0)),
            &unstamped(b"a"),
            &mut ctx,
        );
        let (_, pkt, _) = &ctx.packets()[0];
        let Authenticator::HmacVector(tags) = &pkt.header.auth else {
            panic!("expected hmac vector");
        };
        assert_eq!(tags.len(), 4);
        // Receiver 2 verifies its entry with its per-epoch key.
        let k = keys().sequencer_hmac_key(G, EpochNum(0), ReplicaId(2));
        assert!(k.verify(&pkt.header.auth_input(), &tags[2]).is_ok());
        // And cannot pass with a different receiver's entry.
        assert!(k.verify(&pkt.header.auth_input(), &tags[1]).is_err());
    }

    #[test]
    fn pk_mode_signs_and_chains() {
        let mut seq = SequencerNode::new(
            G,
            (0..4).map(ReplicaId).collect(),
            AuthMode::PublicKey,
            SequencerHw::Software(CostModel::FREE),
            &keys(),
        );
        let mut ctx = Collect::new();
        seq.on_message(
            Addr::Client(neo_wire::ClientId(0)),
            &unstamped(b"a"),
            &mut ctx,
        );
        seq.on_message(
            Addr::Client(neo_wire::ClientId(0)),
            &unstamped(b"b"),
            &mut ctx,
        );
        let pkts = ctx.packets();
        let (_, p1, _) = &pkts[0];
        let (_, p2, _) = &pkts[4];
        let Authenticator::Signature { sig, prev_hash } = &p1.header.auth else {
            panic!()
        };
        assert!(sig.is_some());
        assert_eq!(*prev_hash, Digest::ZERO.0, "first packet roots the chain");
        let vk = keys().sequencer_key(G, EpochNum(0)).verify_key();
        assert!(vk
            .verify(
                &p1.header.auth_input(),
                &neo_crypto::Signature(sig.clone().unwrap())
            )
            .is_ok());
        let Authenticator::Signature { prev_hash: ph2, .. } = &p2.header.auth else {
            panic!()
        };
        let expect = chain(Digest::ZERO, &p1.header.auth_input());
        assert_eq!(*ph2, expect.0, "second packet chains to the first");
    }

    #[test]
    fn mute_behavior_emits_nothing() {
        let mut seq = hm_sequencer();
        seq.set_behavior(Behavior::Mute);
        let mut ctx = Collect::new();
        seq.on_message(
            Addr::Client(neo_wire::ClientId(0)),
            &unstamped(b"a"),
            &mut ctx,
        );
        assert!(ctx.sends.is_empty());
    }

    #[test]
    fn drop_every_creates_gaps_for_all() {
        let mut seq = hm_sequencer();
        seq.set_behavior(Behavior::DropEvery(3));
        let mut ctx = Collect::new();
        for i in 0..6u8 {
            seq.on_message(
                Addr::Client(neo_wire::ClientId(0)),
                &unstamped(&[i]),
                &mut ctx,
            );
        }
        let pkts = ctx.packets();
        let seqs: std::collections::BTreeSet<u64> =
            pkts.iter().map(|(_, p, _)| p.header.seq.0).collect();
        assert_eq!(
            seqs,
            [1u64, 2, 4, 5].into_iter().collect(),
            "3 and 6 dropped"
        );
    }

    #[test]
    fn drop_at_all_but_one_reaches_exactly_one_receiver() {
        let mut seq = hm_sequencer();
        seq.set_behavior(Behavior::DropEveryAtAllButOne(2));
        let mut ctx = Collect::new();
        seq.on_message(
            Addr::Client(neo_wire::ClientId(0)),
            &unstamped(b"a"),
            &mut ctx,
        );
        seq.on_message(
            Addr::Client(neo_wire::ClientId(0)),
            &unstamped(b"b"),
            &mut ctx,
        );
        let pkts = ctx.packets();
        let seq2: Vec<_> = pkts
            .iter()
            .filter(|(_, p, _)| p.header.seq == SeqNum(2))
            .collect();
        assert_eq!(seq2.len(), 1);
        assert_eq!(seq2[0].0, Addr::Replica(ReplicaId(0)));
    }

    #[test]
    fn equivocate_assigns_one_seq_to_two_messages() {
        let mut seq = hm_sequencer();
        seq.set_behavior(Behavior::Equivocate);
        let mut ctx = Collect::new();
        seq.on_message(
            Addr::Client(neo_wire::ClientId(0)),
            &unstamped(b"a"),
            &mut ctx,
        );
        assert!(ctx.packets().is_empty(), "first message held back");
        seq.on_message(
            Addr::Client(neo_wire::ClientId(0)),
            &unstamped(b"b"),
            &mut ctx,
        );
        let pkts = ctx.packets();
        assert_eq!(pkts.len(), 4);
        assert!(pkts.iter().all(|(_, p, _)| p.header.seq == SeqNum(1)));
        let payloads: std::collections::BTreeSet<Vec<u8>> =
            pkts.iter().map(|(_, p, _)| p.payload.clone()).collect();
        assert_eq!(payloads.len(), 2, "two different messages share seq 1");
        // Each half of the group sees a consistent single message.
        let by_receiver: Vec<_> = pkts
            .iter()
            .map(|(a, p, _)| (*a, p.payload.clone()))
            .collect();
        assert_eq!(by_receiver[0].1, by_receiver[1].1);
        assert_eq!(by_receiver[2].1, by_receiver[3].1);
        assert_ne!(by_receiver[0].1, by_receiver[2].1);
    }

    #[test]
    fn tofino_hw_adds_pipeline_latency_and_occupancy() {
        let mut seq = SequencerNode::new(
            G,
            (0..4).map(ReplicaId).collect(),
            AuthMode::HmacVector,
            SequencerHw::Tofino(TofinoModel::PAPER),
            &keys(),
        );
        let mut ctx = Collect::new();
        seq.on_message(
            Addr::Client(neo_wire::ClientId(0)),
            &unstamped(b"a"),
            &mut ctx,
        );
        let (_, _, delay) = ctx.packets()[0];
        assert_eq!(delay, TofinoModel::PAPER.pipeline_latency_ns(4));
        assert_eq!(ctx.charged, TofinoModel::PAPER.service_ns(4));
    }

    #[test]
    fn install_epoch_resets_counter_and_rotates_keys() {
        let mut seq = hm_sequencer();
        let mut ctx = Collect::new();
        seq.on_message(
            Addr::Client(neo_wire::ClientId(0)),
            &unstamped(b"a"),
            &mut ctx,
        );
        assert_eq!(seq.next_seq(), SeqNum(2));
        seq.install_epoch(EpochNum(1));
        assert_eq!(seq.epoch(), EpochNum(1));
        assert_eq!(seq.next_seq(), SeqNum::FIRST);
        let mut ctx2 = Collect::new();
        seq.on_message(
            Addr::Client(neo_wire::ClientId(0)),
            &unstamped(b"b"),
            &mut ctx2,
        );
        let (_, pkt, _) = &ctx2.packets()[0];
        assert_eq!(pkt.header.epoch, EpochNum(1));
        // Epoch-1 packets verify under epoch-1 keys, not epoch-0 keys.
        let Authenticator::HmacVector(tags) = &pkt.header.auth else {
            panic!()
        };
        let k1 = keys().sequencer_hmac_key(G, EpochNum(1), ReplicaId(0));
        let k0 = keys().sequencer_hmac_key(G, EpochNum(0), ReplicaId(0));
        assert!(k1.verify(&pkt.header.auth_input(), &tags[0]).is_ok());
        assert!(k0.verify(&pkt.header.auth_input(), &tags[0]).is_err());
    }

    #[test]
    fn stale_install_is_ignored() {
        let mut seq = hm_sequencer();
        seq.install_epoch(EpochNum(2));
        let mut ctx = Collect::new();
        let stale = Envelope::Config(ConfigMsg::InstallSequencer {
            group: G,
            epoch: EpochNum(1),
        });
        seq.on_message(Addr::Config, &stale.to_bytes(), &mut ctx);
        assert_eq!(seq.epoch(), EpochNum(2));
    }

    #[test]
    fn already_stamped_packets_are_ignored() {
        let mut seq = hm_sequencer();
        let mut ctx = Collect::new();
        seq.on_message(
            Addr::Client(neo_wire::ClientId(0)),
            &unstamped(b"a"),
            &mut ctx,
        );
        let replay = ctx.sends[0].1.clone();
        let before = seq.stamped;
        seq.on_message(Addr::Replica(ReplicaId(3)), &replay, &mut ctx);
        assert_eq!(
            seq.stamped, before,
            "replayed stamped packet not re-stamped"
        );
    }
}
