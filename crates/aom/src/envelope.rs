//! The tagged wire envelope.
//!
//! Every datagram in the system is one [`Envelope`]. The tag lets a node
//! route aom traffic to its receiver library, confirm messages to the
//! Byzantine-network layer, configuration traffic to its membership
//! logic, and everything else to the protocol state machine — without
//! ambiguous double-decoding.

use crate::config::ConfigMsg;
use crate::receiver::SignedConfirm;
use crate::AomPacket;
use neo_wire::{decode, encode, CodecError, Payload};
use serde::{Deserialize, Serialize};

/// Top-level wire message.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Envelope {
    /// An aom packet (sender → sequencer, or sequencer → receivers).
    Aom(AomPacket),
    /// A Byzantine-network-mode confirm (§4.2), receiver → receivers.
    Confirm(SignedConfirm),
    /// Batched confirms ("By batch processing confirm messages, NeoBFT
    /// minimizes the impact of the additional message exchanges", §6.2).
    ConfirmBatch(Vec<SignedConfirm>),
    /// Configuration-service traffic.
    Config(ConfigMsg),
    /// Opaque protocol payload (NeoBFT or baseline messages).
    App(Vec<u8>),
}

impl Envelope {
    /// Encode to wire bytes. Falls back to an empty datagram (which
    /// every decoder rejects) if encoding fails rather than panicking.
    pub fn to_bytes(&self) -> Vec<u8> {
        encode(self).unwrap_or_default()
    }

    /// Encode to a shared [`Payload`], the form every `Context::send`
    /// takes. Encode once, then fan out with refcount bumps.
    pub fn to_payload(&self) -> Payload {
        self.to_bytes().into()
    }

    /// Decode from wire bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        decode(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_wire::{AomHeader, GroupId};

    #[test]
    fn app_roundtrip() {
        let e = Envelope::App(vec![1, 2, 3]);
        let b = e.to_bytes();
        assert_eq!(Envelope::from_bytes(&b).unwrap(), e);
    }

    #[test]
    fn aom_roundtrip() {
        let pkt = AomPacket {
            header: AomHeader::unstamped(GroupId(1), [5u8; 32]),
            payload: b"req".to_vec(),
        };
        let e = Envelope::Aom(pkt);
        assert_eq!(Envelope::from_bytes(&e.to_bytes()).unwrap(), e);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(Envelope::from_bytes(&[0xFF; 3]).is_err());
    }
}
