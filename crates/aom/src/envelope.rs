//! The tagged wire envelope.
//!
//! Every datagram in the system is one [`Envelope`]. The tag lets a node
//! route aom traffic to its receiver library, confirm messages to the
//! Byzantine-network layer, configuration traffic to its membership
//! logic, and everything else to the protocol state machine — without
//! ambiguous double-decoding.

use crate::config::ConfigMsg;
use crate::receiver::SignedConfirm;
use crate::AomPacket;
use neo_wire::{decode, encode, CodecError, Payload};
use serde::{Deserialize, Serialize};

/// Multi-op batch framing for an aom payload body.
///
/// A batching sender packs many client operations into one aom slot:
/// one digest in the aom header, one authenticator from the sequencer,
/// one sequence number — amortized over every op inside. The framing is
/// deliberately minimal (a length-prefixed list of opaque ops) so the
/// aom layer stays protocol-agnostic; the protocol layer wraps this in
/// its own signed envelope.
///
/// Crucially, the receiver's payload-digest binding check
/// (`sha256(payload) == header.digest`) runs over the *encoded batch
/// body*, so tampering with any single op inside a batch invalidates
/// the whole packet — see the tamper test in `receiver.rs`.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AomBatch {
    /// The batched operation payloads, in issue order.
    pub ops: Vec<Vec<u8>>,
}

impl AomBatch {
    /// A batch of one — the degenerate framing every unbatched request
    /// uses, so there is a single payload format on the wire.
    pub fn single(op: Vec<u8>) -> Self {
        AomBatch { ops: vec![op] }
    }

    /// Number of ops in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the batch carries no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Encode to wire bytes. Falls back to an empty body (which every
    /// decoder rejects) rather than panicking.
    pub fn to_bytes(&self) -> Vec<u8> {
        encode(self).unwrap_or_default()
    }

    /// Decode from wire bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        decode(bytes)
    }
}

/// Top-level wire message.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Envelope {
    /// An aom packet (sender → sequencer, or sequencer → receivers).
    Aom(AomPacket),
    /// A Byzantine-network-mode confirm (§4.2), receiver → receivers.
    Confirm(SignedConfirm),
    /// Batched confirms ("By batch processing confirm messages, NeoBFT
    /// minimizes the impact of the additional message exchanges", §6.2).
    ConfirmBatch(Vec<SignedConfirm>),
    /// Configuration-service traffic.
    Config(ConfigMsg),
    /// Opaque protocol payload (NeoBFT or baseline messages).
    App(Vec<u8>),
}

impl Envelope {
    /// Encode to wire bytes. Falls back to an empty datagram (which
    /// every decoder rejects) if encoding fails rather than panicking.
    pub fn to_bytes(&self) -> Vec<u8> {
        encode(self).unwrap_or_default()
    }

    /// Encode to a shared [`Payload`], the form every `Context::send`
    /// takes. Encode once, then fan out with refcount bumps.
    pub fn to_payload(&self) -> Payload {
        self.to_bytes().into()
    }

    /// Decode from wire bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        decode(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_wire::{AomHeader, GroupId};

    #[test]
    fn app_roundtrip() {
        let e = Envelope::App(vec![1, 2, 3]);
        let b = e.to_bytes();
        assert_eq!(Envelope::from_bytes(&b).unwrap(), e);
    }

    #[test]
    fn aom_roundtrip() {
        let pkt = AomPacket {
            header: AomHeader::unstamped(GroupId(1), [5u8; 32]),
            payload: b"req".to_vec(),
        };
        let e = Envelope::Aom(pkt);
        assert_eq!(Envelope::from_bytes(&e.to_bytes()).unwrap(), e);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(Envelope::from_bytes(&[0xFF; 3]).is_err());
    }

    #[test]
    fn batch_roundtrip() {
        let b = AomBatch {
            ops: vec![b"a".to_vec(), b"bb".to_vec(), b"ccc".to_vec()],
        };
        let bytes = b.to_bytes();
        assert_eq!(AomBatch::from_bytes(&bytes).unwrap(), b);
    }

    #[test]
    fn batch_edge_sizes_roundtrip() {
        // Fuzz-ish sweep over awkward shapes: empty batch, batch of one
        // empty op, many empty ops, one huge op, many mixed-size ops.
        let cases: Vec<AomBatch> = vec![
            AomBatch { ops: vec![] },
            AomBatch::single(vec![]),
            AomBatch {
                ops: vec![vec![]; 257],
            },
            AomBatch::single(vec![0xAB; 65_536]),
            AomBatch {
                ops: (0..64u64).map(|i| vec![i as u8; i as usize * 37]).collect(),
            },
        ];
        for b in cases {
            let bytes = b.to_bytes();
            let back = AomBatch::from_bytes(&bytes).unwrap();
            assert_eq!(back, b);
            assert_eq!(back.len(), b.ops.len());
        }
    }

    #[test]
    fn batch_single_helper() {
        let b = AomBatch::single(b"op".to_vec());
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
        assert!(AomBatch { ops: vec![] }.is_empty());
    }

    #[test]
    fn batch_garbage_is_rejected() {
        assert!(AomBatch::from_bytes(&[0xFF; 5]).is_err());
    }

    #[test]
    fn distinct_batches_encode_distinctly() {
        // The digest binding depends on encodings being injective: any
        // change to any op must change the encoded body.
        let a = AomBatch {
            ops: vec![b"aa".to_vec(), b"bb".to_vec()],
        };
        let mut tampered = a.clone();
        tampered.ops[1][0] ^= 0x01;
        assert_ne!(a.to_bytes(), tampered.to_bytes());
        let merged = AomBatch {
            ops: vec![b"aabb".to_vec()],
        };
        assert_ne!(a.to_bytes(), merged.to_bytes(), "op boundaries are framed");
    }
}
