//! The receiver-side aom library (§4.1–§4.2).
//!
//! Embedded in every replica, this state machine turns raw sequencer
//! output into an ordered stream of [`Delivery`] events:
//!
//! * verifies the authenticator — its own HMAC-vector entry (aom-hm) or
//!   the sequencer's secp256k1 signature (aom-pk), with signature-less
//!   hash-chained packets batch-verified once the next signed packet
//!   arrives (§4.4);
//! * delivers authenticated messages strictly in sequence-number order;
//! * detects gaps: when a later packet is authenticated but an earlier
//!   sequence number is missing, the host arms a timer and, on expiry,
//!   [`AomReceiver::declare_drop`]s the missing number, producing the
//!   `drop-notification` delivery (§3.2 drop detection);
//! * in **Byzantine-network** mode, locks the first message seen per
//!   sequence number, broadcasts a signed `⟨confirm, s, h⟩` and delivers
//!   only after 2f+1 matching confirms (§4.2), making sequencer
//!   equivocation harmless;
//! * produces [`OrderingCert`]s — transferably-authenticated proof that a
//!   message was ordered by the network, which NeoBFT's gap agreement
//!   forwards between replicas.

use crate::{AomPacket, Envelope};
use neo_crypto::{Digest, HmacKey, NodeCrypto, SequencerVerifyKey, Signature, SystemKeys};
use neo_wire::{encode, Authenticator, EpochNum, GroupId, ReplicaId, SeqNum};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use thiserror::Error;

/// Receiver-side failure when processing a packet.
#[derive(Debug, Error, PartialEq, Eq)]
pub enum AomError {
    /// Packet addressed to a different group.
    #[error("packet for a different group")]
    WrongGroup,
    /// Packet stamped in a different epoch than the receiver is in.
    #[error("packet from epoch {got}, receiver in {current}")]
    WrongEpoch {
        /// Epoch in the packet.
        got: EpochNum,
        /// Receiver's current epoch.
        current: EpochNum,
    },
    /// The sequencer never stamped this packet.
    #[error("unstamped packet")]
    Unstamped,
    /// Authenticator verification failed: forged or corrupted.
    #[error("authentication failed")]
    BadAuth,
    /// Sequence number already delivered or declared dropped.
    #[error("stale sequence number")]
    Stale,
    /// Sequence number too far beyond the delivery frontier; buffering
    /// it would let a Byzantine sender grow memory without bound
    /// (neo-lint R5).
    #[error("sequence number beyond the receive window")]
    OutOfWindow,
    /// Another message was already locked for this sequence number
    /// (Byzantine-network mode observed an equivocation attempt).
    #[error("conflicting message for locked sequence number")]
    Equivocation,
}

/// How the receiver authenticates sequencer output.
#[derive(Clone, Debug)]
pub enum ReceiverAuth {
    /// aom-hm: verify my entry of the HMAC vector.
    Hmac,
    /// aom-pk: verify the sequencer signature / hash chain.
    PublicKey,
}

/// Trust placed in the network infrastructure (§3.1's dual fault model).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetworkTrust {
    /// Hybrid model: network is at worst crash/omission faulty. A single
    /// authenticated aom message is its own ordering certificate.
    Trusted,
    /// Byzantine network: deliver only on 2f+1 matching confirms.
    Byzantine,
}

/// The confirm body (§4.2): ⟨confirm, s, h⟩ signed by the receiver.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Confirm {
    /// Group the packet belongs to.
    pub group: GroupId,
    /// Epoch of the packet.
    pub epoch: EpochNum,
    /// Sequence number being confirmed.
    pub seq: SeqNum,
    /// Identity hash of the packet (digest ‖ seq ‖ epoch).
    pub hash: Digest,
    /// Confirming replica.
    pub replica: ReplicaId,
}

/// A signed confirm.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SignedConfirm {
    /// The confirm body.
    pub body: Confirm,
    /// The replica's Ed25519 signature over the encoded body.
    pub sig: Signature,
}

/// Transferably-authenticated proof that `packet` was ordered by aom.
/// "The entire message set, including the aom message and the matching
/// confirms, is delivered to the application and serves as an ordering
/// certificate" (§4.2).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct OrderingCert {
    /// The stamped, authenticated packet.
    pub packet: AomPacket,
    /// 2f+1 matching confirms (empty under the trusted-network model,
    /// where the authenticator alone is the certificate).
    pub confirms: Vec<SignedConfirm>,
}

/// One in-order delivery to the application.
#[derive(Clone, PartialEq, Debug)]
pub enum Delivery {
    /// An authenticated message with its ordering certificate.
    Message(OrderingCert),
    /// A drop-notification for a missing sequence number.
    Drop(SeqNum),
}

/// Point-in-time counters and buffer depths describing the receiver's
/// ordering buffer and drop detection. Hosts mirror these into their
/// observability registry (see `neo-sim`'s `obs` module).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AomReceiverStats {
    /// Messages delivered in order.
    pub delivered: u64,
    /// Drop-notifications emitted.
    pub drops_declared: u64,
    /// Authenticated packets buffered awaiting in-order delivery (or a
    /// confirm quorum, in Byzantine mode).
    pub buffered: u64,
    /// Signature-less packets parked awaiting hash-chain validation.
    pub pending_chain: u64,
    /// Sequence numbers locked awaiting confirms (Byzantine mode).
    pub locked: u64,
    /// Packets rejected as stale (sequence number already passed).
    pub stale_rejected: u64,
    /// Equivocation attempts ignored (conflicting message for a locked
    /// sequence number, Byzantine mode).
    pub equivocations_rejected: u64,
    /// Parked packets promoted by backwards hash-chain validation.
    pub chain_promoted: u64,
    /// Confirms this receiver generated for broadcast.
    pub confirms_generated: u64,
    /// Packets/confirms rejected for landing beyond the receive window.
    pub window_rejected: u64,
    /// Packets/confirms whose authenticator failed verification (forged,
    /// tampered, or scheme-confused): every [`AomError::BadAuth`].
    pub auth_rejected: u64,
    /// Internal failures (e.g. encoding our own wire types) survived
    /// without panicking.
    pub internal_errors: u64,
}

/// What an authenticated packet should do when its job completes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Accepted {
    /// Fully authenticated: enter ordering; signed packets additionally
    /// vouch, through the hash chain, for parked predecessors.
    Deliver {
        /// The authenticator was the sequencer's ECDSA signature.
        signed: bool,
    },
    /// aom-pk packet whose signature was skipped by the ratio
    /// controller: park it until a signed successor arrives (§4.4).
    Park,
}

/// The crypto half of packet ingestion, split out of
/// [`AomReceiver::on_packet`] so an executor can run it anywhere —
/// inline (the simulator's lane model) or on a `VerifyPool` worker
/// thread (the tokio runtime). Produced by
/// [`AomReceiver::submit_verify`]; run [`VerifyJob::verify`] on any
/// thread, then re-inject through [`AomReceiver::complete_verify`].
pub struct VerifyJob {
    pkt: AomPacket,
    epoch: EpochNum,
    auth: ReceiverAuth,
    hmac_key: HmacKey,
    my_index: usize,
    seq_vk: SequencerVerifyKey,
    outcome: Option<Result<Accepted, AomError>>,
}

impl VerifyJob {
    /// Sequence number of the packet under verification.
    pub fn seq(&self) -> SeqNum {
        self.pkt.header.seq
    }

    /// The packet's payload digest from its header — a stable key for
    /// caching verdicts derived from the payload (e.g. a host
    /// pre-verifying the client batch MAC alongside the authenticator).
    pub fn digest(&self) -> [u8; 32] {
        self.pkt.header.digest
    }

    /// The packet payload (hosts piggyback payload-level checks on the
    /// same worker dispatch).
    pub fn payload(&self) -> &[u8] {
        &self.pkt.payload
    }

    /// True once [`VerifyJob::verify`] ran and the authenticator checked
    /// out.
    pub fn ok(&self) -> bool {
        matches!(self.outcome, Some(Ok(_)))
    }

    /// Run the crypto: payload–digest binding, scheme-confusion check,
    /// and the authenticator itself. Pure with respect to the receiver,
    /// so it is safe on any thread. `parallel` picks the meter lane for
    /// the digest/MAC work (the old `set_pipelined` toggle); the aom-pk
    /// path keeps its split charge — chain bookkeeping inline, ECDSA to
    /// the worker lane.
    pub fn verify(&mut self, crypto: &NodeCrypto, parallel: bool) {
        self.outcome = Some(self.check(crypto, parallel));
    }

    fn check(&self, crypto: &NodeCrypto, parallel: bool) -> Result<Accepted, AomError> {
        let pkt = &self.pkt;
        // The authenticator covers digest ‖ seq ‖ epoch — the payload is
        // bound only through the digest, so the binding must be checked
        // here or a relay could swap the payload under a valid stamp
        // (§3.2 transferable authentication is over the whole message).
        let digest_cost = crypto.costs().sha256(pkt.payload.len());
        if parallel {
            crypto.meter().charge_parallel(digest_cost);
        } else {
            crypto.meter().charge_serial(digest_cost);
        }
        if neo_crypto::sha256(&pkt.payload).0 != pkt.header.digest {
            return Err(AomError::BadAuth);
        }
        // Reject authenticator-type confusion: a receiver configured for
        // one scheme must not accept the other (the sequencer never
        // mixes schemes within an epoch).
        match (&self.auth, &pkt.header.auth) {
            (ReceiverAuth::Hmac, Authenticator::HmacVector(_))
            | (ReceiverAuth::PublicKey, Authenticator::Signature { .. })
            | (_, Authenticator::Unstamped) => {}
            _ => return Err(AomError::BadAuth),
        }
        match &pkt.header.auth {
            Authenticator::Unstamped => Err(AomError::Unstamped),
            Authenticator::HmacVector(tags) => {
                if parallel {
                    crypto.meter().charge_parallel(crypto.costs().siphash);
                } else {
                    crypto.meter().charge_serial(crypto.costs().siphash);
                }
                neo_crypto::mac::verify_vector_entry(
                    &self.hmac_key,
                    self.my_index,
                    tags,
                    &pkt.header.auth_input(),
                )
                .map_err(|_| AomError::BadAuth)?;
                Ok(Accepted::Deliver { signed: false })
            }
            Authenticator::Signature { sig, .. } => match sig {
                Some(bytes) => {
                    // Chain bookkeeping (hash of the packet identity for
                    // future linkage checks) plus reorder-buffer admin
                    // runs inline with dispatch; the ECDSA verification
                    // itself goes to the worker pool.
                    crypto
                        .meter()
                        .charge_serial(crypto.costs().sha256(pkt.header.auth_input().len()) + 500);
                    crypto.meter().charge_parallel(crypto.costs().ecdsa_verify);
                    self.seq_vk
                        .verify(&pkt.header.auth_input(), &Signature(bytes.clone()))
                        .map_err(|_| AomError::BadAuth)?;
                    Ok(Accepted::Deliver { signed: true })
                }
                None => Ok(Accepted::Park),
            },
        }
    }
}

/// The signature half of confirm ingestion (Byzantine-network mode),
/// split out of [`AomReceiver::on_confirm`] the same way [`VerifyJob`]
/// splits packet ingestion. Confirm signatures dominate verification
/// volume in Byzantine mode (2f+1 Ed25519 checks per slot), so hosts
/// batch them onto the worker pool via `NodeCrypto::verify_batch`.
pub struct ConfirmJob {
    sc: SignedConfirm,
    epoch: EpochNum,
    bytes: Vec<u8>,
    outcome: Option<Result<(), AomError>>,
}

impl ConfirmJob {
    /// Sequence number the confirm vouches for.
    pub fn seq(&self) -> SeqNum {
        self.sc.body.seq
    }

    /// The encoded confirm body and its claimed signer, for hosts that
    /// verify a whole batch in one `NodeCrypto::verify_batch` call.
    pub fn batch_item(&self) -> (ReplicaId, &[u8], &Signature) {
        (self.sc.body.replica, &self.bytes, &self.sc.sig)
    }

    /// Record a verdict computed externally (e.g. by `verify_batch`).
    pub fn set_verified(&mut self, ok: bool) {
        self.outcome = Some(if ok { Ok(()) } else { Err(AomError::BadAuth) });
    }

    /// Verify the peer's Ed25519 signature over the encoded body.
    /// Routed through the self-charging `NodeCrypto` façade; safe on any
    /// thread.
    pub fn verify(&mut self, crypto: &NodeCrypto) {
        self.outcome = Some(
            crypto
                .verify(
                    neo_crypto::Principal::Replica(self.sc.body.replica),
                    &self.bytes,
                    &self.sc.sig,
                )
                .map_err(|_| AomError::BadAuth),
        );
    }
}

/// The receiver state machine.
pub struct AomReceiver {
    group: GroupId,
    me: ReplicaId,
    my_index: usize,
    epoch: EpochNum,
    f: usize,
    auth: ReceiverAuth,
    trust: NetworkTrust,
    keys: SystemKeys,
    hmac_key: HmacKey,
    seq_vk: SequencerVerifyKey,
    /// Pipelined speculative verification: charge digest/authenticator
    /// verification to the parallel lane so it overlaps with execution
    /// of the previous slot (the replica executes slot *k* while slot
    /// *k+1*'s authenticator is still being verified).
    pipelined: bool,
    next: SeqNum,
    /// Fully authenticated packets awaiting in-order delivery (trusted
    /// mode) or their confirm quorum (Byzantine mode: entry exists but
    /// delivery waits).
    ready: BTreeMap<SeqNum, AomPacket>,
    /// aom-pk: signature-less packets awaiting hash-chain validation.
    pending_chain: BTreeMap<SeqNum, AomPacket>,
    /// Byzantine mode: hash locked per sequence number (first message
    /// wins; conflicting ones are equivocation attempts).
    locked: BTreeMap<SeqNum, Digest>,
    /// Byzantine mode: confirms collected per sequence number.
    confirms: BTreeMap<SeqNum, BTreeMap<ReplicaId, SignedConfirm>>,
    /// Confirms this receiver generated but the host has not yet sent.
    outgoing: Vec<SignedConfirm>,
    out: VecDeque<Delivery>,
    /// Messages delivered (stats).
    pub delivered: u64,
    /// Drop-notifications delivered (stats).
    pub drops_declared: u64,
    stale_rejected: u64,
    equivocations_rejected: u64,
    chain_promoted: u64,
    confirms_generated: u64,
    window_rejected: u64,
    auth_rejected: u64,
    internal_errors: u64,
}

impl AomReceiver {
    /// How far past the delivery frontier (`next`) a sequence number may
    /// land and still be buffered. Packets and confirms beyond the
    /// window are rejected so a Byzantine sequencer or peer cannot grow
    /// `pending_chain`/`confirms` without bound (neo-lint R5).
    pub const SEQ_WINDOW: u64 = 4096;

    /// Build the receiver for replica `me` (at position `my_index` in the
    /// group membership) in a group tolerating `f` faulty receivers.
    pub fn new(
        group: GroupId,
        me: ReplicaId,
        my_index: usize,
        f: usize,
        auth: ReceiverAuth,
        trust: NetworkTrust,
        keys: &SystemKeys,
    ) -> Self {
        let epoch = EpochNum::INITIAL;
        AomReceiver {
            group,
            me,
            my_index,
            epoch,
            f,
            auth,
            trust,
            keys: keys.clone(),
            hmac_key: keys.sequencer_hmac_key(group, epoch, me),
            seq_vk: keys.sequencer_key(group, epoch).verify_key(),
            pipelined: false,
            next: SeqNum::FIRST,
            ready: BTreeMap::new(),
            pending_chain: BTreeMap::new(),
            locked: BTreeMap::new(),
            confirms: BTreeMap::new(),
            outgoing: Vec::new(),
            out: VecDeque::new(),
            delivered: 0,
            drops_declared: 0,
            stale_rejected: 0,
            equivocations_rejected: 0,
            chain_promoted: 0,
            confirms_generated: 0,
            window_rejected: 0,
            auth_rejected: 0,
            internal_errors: 0,
        }
    }

    /// Counters and buffer depths for observability.
    pub fn stats(&self) -> AomReceiverStats {
        AomReceiverStats {
            delivered: self.delivered,
            drops_declared: self.drops_declared,
            buffered: self.ready.len() as u64,
            pending_chain: self.pending_chain.len() as u64,
            locked: self.locked.len() as u64,
            stale_rejected: self.stale_rejected,
            equivocations_rejected: self.equivocations_rejected,
            chain_promoted: self.chain_promoted,
            confirms_generated: self.confirms_generated,
            window_rejected: self.window_rejected,
            auth_rejected: self.auth_rejected,
            internal_errors: self.internal_errors,
        }
    }

    /// Enable or disable pipelined verification. When enabled, the
    /// per-packet digest hash and authenticator check are charged to the
    /// meter's parallel lane instead of the serial dispatch lane,
    /// modelling a replica that verifies slot *k+1* concurrently with
    /// (speculative) execution of slot *k*. Verification outcomes are
    /// unchanged — only where the CPU time lands.
    ///
    /// This toggle is the *simulator's* model of the verify stage. Real
    /// executors bypass it: they drive [`AomReceiver::submit_verify`] /
    /// [`AomReceiver::complete_verify`] directly and run
    /// [`VerifyJob::verify`] on a `VerifyPool` worker thread.
    pub fn set_pipelined(&mut self, on: bool) {
        self.pipelined = on;
    }

    /// Current epoch.
    pub fn epoch(&self) -> EpochNum {
        self.epoch
    }

    /// Next sequence number expected.
    pub fn next_seq(&self) -> SeqNum {
        self.next
    }

    /// Enter a new epoch: fresh sequence space, fresh sequencer keys,
    /// cleared buffers (§4.2: "start delivering authenticated aom
    /// messages from the new sequencer switch and ignore messages from
    /// the old one").
    pub fn install_epoch(&mut self, epoch: EpochNum) {
        self.epoch = epoch;
        self.hmac_key = self.keys.sequencer_hmac_key(self.group, epoch, self.me);
        self.seq_vk = self.keys.sequencer_key(self.group, epoch).verify_key();
        self.next = SeqNum::FIRST;
        self.ready.clear();
        self.pending_chain.clear();
        self.locked.clear();
        self.confirms.clear();
    }

    /// Process one stamped aom packet from the wire: the inline
    /// composition of [`AomReceiver::submit_verify`],
    /// [`VerifyJob::verify`] (on the lane picked by
    /// [`AomReceiver::set_pipelined`]) and
    /// [`AomReceiver::complete_verify`]. Pooled executors call the
    /// halves themselves so the middle step runs on a worker thread.
    pub fn on_packet(&mut self, pkt: AomPacket, crypto: &NodeCrypto) -> Result<(), AomError> {
        let mut job = self.submit_verify(pkt)?;
        job.verify(crypto, self.pipelined);
        self.complete_verify(job, crypto)
    }

    /// Admission half of packet ingestion: group, epoch, stamp,
    /// staleness and window checks — everything that needs `&mut self`
    /// but no crypto. On success returns the self-contained
    /// [`VerifyJob`]; run it on any thread and feed it back through
    /// [`AomReceiver::complete_verify`].
    pub fn submit_verify(&mut self, pkt: AomPacket) -> Result<VerifyJob, AomError> {
        if pkt.header.group != self.group {
            return Err(AomError::WrongGroup);
        }
        if pkt.header.epoch != self.epoch {
            return Err(AomError::WrongEpoch {
                got: pkt.header.epoch,
                current: self.epoch,
            });
        }
        if !pkt.header.is_stamped() && !matches!(pkt.header.auth, Authenticator::Signature { .. }) {
            return Err(AomError::Unstamped);
        }
        let seq = pkt.header.seq;
        if seq < self.next {
            self.stale_rejected += 1;
            return Err(AomError::Stale);
        }
        if seq.0 > self.next.0 + Self::SEQ_WINDOW {
            self.window_rejected += 1;
            return Err(AomError::OutOfWindow);
        }
        Ok(VerifyJob {
            epoch: self.epoch,
            auth: self.auth.clone(),
            hmac_key: self.hmac_key,
            my_index: self.my_index,
            seq_vk: self.seq_vk.clone(),
            pkt,
            outcome: None,
        })
    }

    /// Re-injection half: apply a completed [`VerifyJob`]'s verdict.
    /// Admission is re-checked — between submit and complete the
    /// receiver may have advanced past the sequence number or switched
    /// epochs (pooled executors complete asynchronously). A job whose
    /// verdict was never recorded (e.g. its worker panicked) is counted
    /// and rejected as unauthenticated.
    pub fn complete_verify(&mut self, job: VerifyJob, crypto: &NodeCrypto) -> Result<(), AomError> {
        if job.epoch != self.epoch {
            return Err(AomError::WrongEpoch {
                got: job.epoch,
                current: self.epoch,
            });
        }
        let seq = job.pkt.header.seq;
        if seq < self.next {
            self.stale_rejected += 1;
            return Err(AomError::Stale);
        }
        let verdict = match job.outcome {
            Some(v) => v,
            None => {
                self.internal_errors += 1;
                Err(AomError::BadAuth)
            }
        };
        match verdict {
            Err(e) => {
                if e == AomError::BadAuth {
                    self.auth_rejected += 1;
                }
                Err(e)
            }
            Ok(Accepted::Park) => {
                // Signature skipped by the ratio controller: park it
                // until a signed successor arrives (§4.4).
                // neo-lint: allow(R5, seq bounded to SEQ_WINDOW at submit)
                self.pending_chain.insert(seq, job.pkt);
                Ok(())
            }
            Ok(Accepted::Deliver { signed }) => {
                if signed {
                    // A signed packet also vouches, through the hash
                    // chain, for buffered signature-less predecessors.
                    self.accept(job.pkt.clone(), crypto);
                    self.validate_chain_backwards(&job.pkt, crypto);
                } else {
                    self.accept(job.pkt, crypto);
                }
                Ok(())
            }
        }
    }

    /// Walk the hash chain backwards from a verified packet, promoting
    /// parked signature-less packets whose linkage checks out. The
    /// contiguous run of parked predecessors is collected first, then
    /// the linkage hashes are verified as one amortized batch
    /// (`NodeCrypto::verify_chain_links` — the SHA-256 base cost is paid
    /// once per batch, not per packet, §4.4). Packets past the first
    /// broken link are re-parked exactly where the incremental walk
    /// would have left them; the broken one stays discarded.
    fn validate_chain_backwards(&mut self, verified: &AomPacket, crypto: &NodeCrypto) {
        let mut run: Vec<AomPacket> = Vec::new();
        let mut expected: Vec<Digest> = Vec::new();
        let mut successor = verified.clone();
        loop {
            let Authenticator::Signature { prev_hash, .. } = &successor.header.auth else {
                break;
            };
            let prev_seq = successor.header.seq.prev();
            if prev_seq == SeqNum(0) {
                break;
            }
            let Some(candidate) = self.pending_chain.remove(&prev_seq) else {
                break;
            };
            expected.push(Digest(*prev_hash));
            successor = candidate.clone();
            run.push(candidate);
        }
        if run.is_empty() {
            return;
        }
        let inputs: Vec<Vec<u8>> = run.iter().map(|p| p.header.auth_input()).collect();
        let links: Vec<(Digest, &[u8])> = expected
            .iter()
            .copied()
            .zip(inputs.iter().map(|i| i.as_slice()))
            .collect();
        let ok = crypto.verify_chain_links(&links);
        for reparked in run.drain(ok.min(run.len())..).skip(1) {
            self.pending_chain.insert(reparked.header.seq, reparked);
        }
        for promoted in run {
            self.chain_promoted += 1;
            self.accept(promoted, crypto);
        }
    }

    /// An authenticated packet enters ordering (and, in Byzantine mode,
    /// the confirm exchange).
    fn accept(&mut self, pkt: AomPacket, crypto: &NodeCrypto) {
        let seq = pkt.header.seq;
        if seq < self.next || self.ready.contains_key(&seq) {
            return;
        }
        match self.trust {
            NetworkTrust::Trusted => {
                self.ready.insert(seq, pkt);
                self.drain();
            }
            NetworkTrust::Byzantine => {
                let hash = pkt.identity_hash();
                if let Some(locked) = self.locked.get(&seq) {
                    if *locked != hash {
                        // Equivocation attempt: ignore (§4.2 "ignores
                        // subsequent aom messages with the same sequence
                        // number").
                        self.equivocations_rejected += 1;
                        return;
                    }
                    self.ready.entry(seq).or_insert(pkt);
                } else {
                    self.locked.insert(seq, hash);
                    self.ready.insert(seq, pkt);
                    // Broadcast my confirm.
                    let body = Confirm {
                        group: self.group,
                        epoch: self.epoch,
                        seq,
                        hash,
                        replica: self.me,
                    };
                    let Ok(body_bytes) = encode(&body) else {
                        // Cannot even encode our own confirm: count it
                        // and skip the broadcast rather than panic.
                        self.internal_errors += 1;
                        return;
                    };
                    let sig = crypto.sign(&body_bytes);
                    let sc = SignedConfirm {
                        body: body.clone(),
                        sig,
                    };
                    self.confirms
                        .entry(seq)
                        .or_default()
                        .insert(self.me, sc.clone());
                    self.outgoing.push(sc);
                    self.confirms_generated += 1;
                }
                self.try_complete(seq);
            }
        }
    }

    /// Process a confirm from a peer receiver (Byzantine-network mode):
    /// the inline composition of [`AomReceiver::submit_confirm`],
    /// [`ConfirmJob::verify`] and [`AomReceiver::complete_confirm`].
    pub fn on_confirm(&mut self, sc: SignedConfirm, crypto: &NodeCrypto) -> Result<(), AomError> {
        let Some(mut job) = self.submit_confirm(sc)? else {
            return Ok(()); // ignore stray confirms in trusted mode
        };
        job.verify(crypto);
        self.complete_confirm(job)
    }

    /// Admission half of confirm ingestion: group, epoch, staleness and
    /// window checks plus body encoding. `Ok(None)` means the confirm is
    /// irrelevant (trusted-network mode ignores strays).
    pub fn submit_confirm(&mut self, sc: SignedConfirm) -> Result<Option<ConfirmJob>, AomError> {
        if self.trust != NetworkTrust::Byzantine {
            return Ok(None);
        }
        if sc.body.group != self.group {
            return Err(AomError::WrongGroup);
        }
        if sc.body.epoch != self.epoch {
            return Err(AomError::WrongEpoch {
                got: sc.body.epoch,
                current: self.epoch,
            });
        }
        if sc.body.seq < self.next {
            self.stale_rejected += 1;
            return Err(AomError::Stale);
        }
        if sc.body.seq.0 > self.next.0 + Self::SEQ_WINDOW {
            self.window_rejected += 1;
            return Err(AomError::OutOfWindow);
        }
        let Ok(bytes) = encode(&sc.body) else {
            self.internal_errors += 1;
            return Err(AomError::BadAuth);
        };
        Ok(Some(ConfirmJob {
            epoch: self.epoch,
            sc,
            bytes,
            outcome: None,
        }))
    }

    /// Re-injection half: apply a completed [`ConfirmJob`]'s verdict,
    /// re-checking admission (the receiver may have moved on while the
    /// signature was on a worker thread).
    pub fn complete_confirm(&mut self, job: ConfirmJob) -> Result<(), AomError> {
        if job.epoch != self.epoch {
            return Err(AomError::WrongEpoch {
                got: job.epoch,
                current: self.epoch,
            });
        }
        let seq = job.sc.body.seq;
        if seq < self.next {
            self.stale_rejected += 1;
            return Err(AomError::Stale);
        }
        match job.outcome {
            Some(Ok(())) => {}
            Some(Err(e)) => {
                if e == AomError::BadAuth {
                    self.auth_rejected += 1;
                }
                return Err(e);
            }
            None => {
                self.internal_errors += 1;
                self.auth_rejected += 1;
                return Err(AomError::BadAuth);
            }
        }
        // neo-lint: allow(R5, seq bounded to SEQ_WINDOW at submit)
        let slot_confirms = self.confirms.entry(seq).or_default();
        slot_confirms.insert(job.sc.body.replica, job.sc);
        self.try_complete(seq);
        Ok(())
    }

    /// Confirms this receiver needs broadcast to the group; the host node
    /// drains and sends them (optionally batched).
    pub fn take_outgoing_confirms(&mut self) -> Vec<SignedConfirm> {
        std::mem::take(&mut self.outgoing)
    }

    fn try_complete(&mut self, seq: SeqNum) {
        if self.trust != NetworkTrust::Byzantine {
            return;
        }
        let Some(locked_hash) = self.locked.get(&seq) else {
            return;
        };
        if !self.ready.contains_key(&seq) {
            return;
        }
        let quorum = 2 * self.f + 1;
        let matching = self
            .confirms
            .get(&seq)
            .map(|m| m.values().filter(|c| c.body.hash == *locked_hash).count())
            .unwrap_or(0);
        if matching >= quorum {
            self.drain();
        }
    }

    /// Deliver everything in order that is deliverable.
    fn drain(&mut self) {
        loop {
            let seq = self.next;
            let Some(pkt) = self.ready.get(&seq) else {
                return;
            };
            if self.trust == NetworkTrust::Byzantine {
                let quorum = 2 * self.f + 1;
                let locked_hash = self.locked.get(&seq).copied();
                let Some(h) = locked_hash else { return };
                let matching: Vec<SignedConfirm> = self
                    .confirms
                    .get(&seq)
                    .map(|m| m.values().filter(|c| c.body.hash == h).cloned().collect())
                    .unwrap_or_default();
                if matching.len() < quorum {
                    return;
                }
                let cert = OrderingCert {
                    packet: pkt.clone(),
                    confirms: matching,
                };
                self.out.push_back(Delivery::Message(cert));
            } else {
                self.out.push_back(Delivery::Message(OrderingCert {
                    packet: pkt.clone(),
                    confirms: Vec::new(),
                }));
            }
            self.ready.remove(&seq);
            self.locked.remove(&seq);
            self.confirms.remove(&seq);
            self.delivered += 1;
            self.next = self.next.next();
        }
    }

    /// Pull the next in-order delivery, if any.
    pub fn poll(&mut self) -> Option<Delivery> {
        self.out.pop_front()
    }

    /// If a later packet is waiting while `next` is missing, the network
    /// dropped (or delayed) a message: returns the missing sequence
    /// number so the host can arm its gap timer.
    pub fn gap_pending(&self) -> Option<SeqNum> {
        let oldest_waiting = [
            self.ready.keys().next(),
            self.pending_chain.keys().next(),
            self.locked.keys().next(),
        ]
        .into_iter()
        .flatten()
        .min()?;
        (*oldest_waiting > self.next).then_some(self.next)
    }

    /// The host's gap timer fired: emit a drop-notification for the
    /// missing sequence number and move on.
    pub fn declare_drop(&mut self) -> SeqNum {
        let seq = self.next;
        self.out.push_back(Delivery::Drop(seq));
        self.drops_declared += 1;
        self.next = self.next.next();
        self.drain();
        seq
    }

    /// Advance the delivery frontier to `next` without delivering the
    /// skipped sequence numbers. A replica that recovered slots
    /// `1..next-1` from a checkpoint and its write-ahead log must not
    /// see them delivered again; everything buffered below the new
    /// frontier (including queued deliveries) is discarded. Moving the
    /// frontier backwards is refused — that would re-open delivered
    /// sequence numbers.
    pub fn fast_forward(&mut self, next: SeqNum) {
        if next <= self.next {
            return;
        }
        self.next = next;
        self.ready = self.ready.split_off(&next);
        self.pending_chain = self.pending_chain.split_off(&next);
        self.locked = self.locked.split_off(&next);
        self.confirms = self.confirms.split_off(&next);
        self.out.retain(|d| match d {
            Delivery::Message(cert) => cert.packet.header.seq >= next,
            Delivery::Drop(seq) => *seq >= next,
        });
        // Anything newly contiguous behind the frontier can now flow.
        self.drain();
    }

    /// Transferable authentication: verify an ordering certificate
    /// received from *another* replica (e.g. in a qery-reply or
    /// gap-decision, §5.4). Checks my own HMAC entry or the sequencer
    /// signature, and in Byzantine mode the 2f+1 matching confirms.
    pub fn verify_cert(&self, cert: &OrderingCert, crypto: &NodeCrypto) -> bool {
        self.verify_cert_in_epoch(cert, self.epoch, crypto)
    }

    /// Like [`Self::verify_cert`], but against an explicit epoch's keys —
    /// view changes must validate certificates from earlier epochs
    /// (§B.1's log-validity rule).
    pub fn verify_cert_in_epoch(
        &self,
        cert: &OrderingCert,
        epoch: EpochNum,
        crypto: &NodeCrypto,
    ) -> bool {
        let pkt = &cert.packet;
        if pkt.header.group != self.group || pkt.header.epoch != epoch {
            return false;
        }
        let (hmac_key, seq_vk) = if epoch == self.epoch {
            (self.hmac_key, self.seq_vk.clone())
        } else {
            (
                self.keys.sequencer_hmac_key(self.group, epoch, self.me),
                self.keys.sequencer_key(self.group, epoch).verify_key(),
            )
        };
        let auth_ok = match &pkt.header.auth {
            Authenticator::Unstamped => false,
            Authenticator::HmacVector(tags) => {
                crypto.meter().charge_serial(crypto.costs().siphash);
                neo_crypto::mac::verify_vector_entry(
                    &hmac_key,
                    self.my_index,
                    tags,
                    &pkt.header.auth_input(),
                )
                .is_ok()
            }
            Authenticator::Signature { sig, .. } => match sig {
                Some(bytes) => {
                    crypto.meter().charge_parallel(crypto.costs().ecdsa_verify);
                    seq_vk
                        .verify(&pkt.header.auth_input(), &Signature(bytes.clone()))
                        .is_ok()
                }
                // A forwarded certificate must carry a signed packet; a
                // chain-only packet cannot stand alone.
                None => false,
            },
        };
        if !auth_ok {
            return false;
        }
        if self.trust == NetworkTrust::Byzantine {
            let hash = pkt.identity_hash();
            let quorum = 2 * self.f + 1;
            let mut seen = std::collections::BTreeSet::new();
            for sc in &cert.confirms {
                if sc.body.hash != hash
                    || sc.body.seq != pkt.header.seq
                    || sc.body.epoch != pkt.header.epoch
                    || sc.body.group != pkt.header.group
                {
                    continue;
                }
                let Ok(bytes) = encode(&sc.body) else {
                    continue;
                };
                if crypto
                    .verify(
                        neo_crypto::Principal::Replica(sc.body.replica),
                        &bytes,
                        &sc.sig,
                    )
                    .is_ok()
                {
                    seen.insert(sc.body.replica);
                }
            }
            if seen.len() < quorum {
                return false;
            }
        }
        true
    }

    /// Helper for hosts: decode an [`Envelope`] payload and feed whatever
    /// aom-relevant content it carries. Returns `true` if the envelope
    /// was consumed by the aom layer.
    pub fn on_envelope(&mut self, env: &Envelope, crypto: &NodeCrypto) -> bool {
        match env {
            Envelope::Aom(pkt) => {
                let _ = self.on_packet(pkt.clone(), crypto);
                true
            }
            Envelope::Confirm(sc) => {
                let _ = self.on_confirm(sc.clone(), crypto);
                true
            }
            Envelope::ConfirmBatch(batch) => {
                for sc in batch {
                    let _ = self.on_confirm(sc.clone(), crypto);
                }
                true
            }
            _ => false,
        }
    }
}
