//! The receiver-side aom library (§4.1–§4.2).
//!
//! Embedded in every replica, this state machine turns raw sequencer
//! output into an ordered stream of [`Delivery`] events:
//!
//! * verifies the authenticator — its own HMAC-vector entry (aom-hm) or
//!   the sequencer's secp256k1 signature (aom-pk), with signature-less
//!   hash-chained packets batch-verified once the next signed packet
//!   arrives (§4.4);
//! * delivers authenticated messages strictly in sequence-number order;
//! * detects gaps: when a later packet is authenticated but an earlier
//!   sequence number is missing, the host arms a timer and, on expiry,
//!   [`AomReceiver::declare_drop`]s the missing number, producing the
//!   `drop-notification` delivery (§3.2 drop detection);
//! * in **Byzantine-network** mode, locks the first message seen per
//!   sequence number, broadcasts a signed `⟨confirm, s, h⟩` and delivers
//!   only after 2f+1 matching confirms (§4.2), making sequencer
//!   equivocation harmless;
//! * produces [`OrderingCert`]s — transferably-authenticated proof that a
//!   message was ordered by the network, which NeoBFT's gap agreement
//!   forwards between replicas.

use crate::{AomPacket, Envelope};
use neo_crypto::{chain, Digest, HmacKey, NodeCrypto, SequencerVerifyKey, Signature, SystemKeys};
use neo_wire::{encode, Authenticator, EpochNum, GroupId, ReplicaId, SeqNum};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use thiserror::Error;

/// Receiver-side failure when processing a packet.
#[derive(Debug, Error, PartialEq, Eq)]
pub enum AomError {
    /// Packet addressed to a different group.
    #[error("packet for a different group")]
    WrongGroup,
    /// Packet stamped in a different epoch than the receiver is in.
    #[error("packet from epoch {got}, receiver in {current}")]
    WrongEpoch {
        /// Epoch in the packet.
        got: EpochNum,
        /// Receiver's current epoch.
        current: EpochNum,
    },
    /// The sequencer never stamped this packet.
    #[error("unstamped packet")]
    Unstamped,
    /// Authenticator verification failed: forged or corrupted.
    #[error("authentication failed")]
    BadAuth,
    /// Sequence number already delivered or declared dropped.
    #[error("stale sequence number")]
    Stale,
    /// Sequence number too far beyond the delivery frontier; buffering
    /// it would let a Byzantine sender grow memory without bound
    /// (neo-lint R5).
    #[error("sequence number beyond the receive window")]
    OutOfWindow,
    /// Another message was already locked for this sequence number
    /// (Byzantine-network mode observed an equivocation attempt).
    #[error("conflicting message for locked sequence number")]
    Equivocation,
}

/// How the receiver authenticates sequencer output.
#[derive(Clone, Debug)]
pub enum ReceiverAuth {
    /// aom-hm: verify my entry of the HMAC vector.
    Hmac,
    /// aom-pk: verify the sequencer signature / hash chain.
    PublicKey,
}

/// Trust placed in the network infrastructure (§3.1's dual fault model).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetworkTrust {
    /// Hybrid model: network is at worst crash/omission faulty. A single
    /// authenticated aom message is its own ordering certificate.
    Trusted,
    /// Byzantine network: deliver only on 2f+1 matching confirms.
    Byzantine,
}

/// The confirm body (§4.2): ⟨confirm, s, h⟩ signed by the receiver.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Confirm {
    /// Group the packet belongs to.
    pub group: GroupId,
    /// Epoch of the packet.
    pub epoch: EpochNum,
    /// Sequence number being confirmed.
    pub seq: SeqNum,
    /// Identity hash of the packet (digest ‖ seq ‖ epoch).
    pub hash: Digest,
    /// Confirming replica.
    pub replica: ReplicaId,
}

/// A signed confirm.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SignedConfirm {
    /// The confirm body.
    pub body: Confirm,
    /// The replica's Ed25519 signature over the encoded body.
    pub sig: Signature,
}

/// Transferably-authenticated proof that `packet` was ordered by aom.
/// "The entire message set, including the aom message and the matching
/// confirms, is delivered to the application and serves as an ordering
/// certificate" (§4.2).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct OrderingCert {
    /// The stamped, authenticated packet.
    pub packet: AomPacket,
    /// 2f+1 matching confirms (empty under the trusted-network model,
    /// where the authenticator alone is the certificate).
    pub confirms: Vec<SignedConfirm>,
}

/// One in-order delivery to the application.
#[derive(Clone, PartialEq, Debug)]
pub enum Delivery {
    /// An authenticated message with its ordering certificate.
    Message(OrderingCert),
    /// A drop-notification for a missing sequence number.
    Drop(SeqNum),
}

/// Point-in-time counters and buffer depths describing the receiver's
/// ordering buffer and drop detection. Hosts mirror these into their
/// observability registry (see `neo-sim`'s `obs` module).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AomReceiverStats {
    /// Messages delivered in order.
    pub delivered: u64,
    /// Drop-notifications emitted.
    pub drops_declared: u64,
    /// Authenticated packets buffered awaiting in-order delivery (or a
    /// confirm quorum, in Byzantine mode).
    pub buffered: u64,
    /// Signature-less packets parked awaiting hash-chain validation.
    pub pending_chain: u64,
    /// Sequence numbers locked awaiting confirms (Byzantine mode).
    pub locked: u64,
    /// Packets rejected as stale (sequence number already passed).
    pub stale_rejected: u64,
    /// Equivocation attempts ignored (conflicting message for a locked
    /// sequence number, Byzantine mode).
    pub equivocations_rejected: u64,
    /// Parked packets promoted by backwards hash-chain validation.
    pub chain_promoted: u64,
    /// Confirms this receiver generated for broadcast.
    pub confirms_generated: u64,
    /// Packets/confirms rejected for landing beyond the receive window.
    pub window_rejected: u64,
    /// Packets/confirms whose authenticator failed verification (forged,
    /// tampered, or scheme-confused): every [`AomError::BadAuth`].
    pub auth_rejected: u64,
    /// Internal failures (e.g. encoding our own wire types) survived
    /// without panicking.
    pub internal_errors: u64,
}

/// The receiver state machine.
pub struct AomReceiver {
    group: GroupId,
    me: ReplicaId,
    my_index: usize,
    epoch: EpochNum,
    f: usize,
    auth: ReceiverAuth,
    trust: NetworkTrust,
    keys: SystemKeys,
    hmac_key: HmacKey,
    seq_vk: SequencerVerifyKey,
    /// Pipelined speculative verification: charge digest/authenticator
    /// verification to the parallel lane so it overlaps with execution
    /// of the previous slot (the replica executes slot *k* while slot
    /// *k+1*'s authenticator is still being verified).
    pipelined: bool,
    next: SeqNum,
    /// Fully authenticated packets awaiting in-order delivery (trusted
    /// mode) or their confirm quorum (Byzantine mode: entry exists but
    /// delivery waits).
    ready: BTreeMap<SeqNum, AomPacket>,
    /// aom-pk: signature-less packets awaiting hash-chain validation.
    pending_chain: BTreeMap<SeqNum, AomPacket>,
    /// Byzantine mode: hash locked per sequence number (first message
    /// wins; conflicting ones are equivocation attempts).
    locked: BTreeMap<SeqNum, Digest>,
    /// Byzantine mode: confirms collected per sequence number.
    confirms: BTreeMap<SeqNum, BTreeMap<ReplicaId, SignedConfirm>>,
    /// Confirms this receiver generated but the host has not yet sent.
    outgoing: Vec<SignedConfirm>,
    out: VecDeque<Delivery>,
    /// Messages delivered (stats).
    pub delivered: u64,
    /// Drop-notifications delivered (stats).
    pub drops_declared: u64,
    stale_rejected: u64,
    equivocations_rejected: u64,
    chain_promoted: u64,
    confirms_generated: u64,
    window_rejected: u64,
    auth_rejected: u64,
    internal_errors: u64,
}

impl AomReceiver {
    /// How far past the delivery frontier (`next`) a sequence number may
    /// land and still be buffered. Packets and confirms beyond the
    /// window are rejected so a Byzantine sequencer or peer cannot grow
    /// `pending_chain`/`confirms` without bound (neo-lint R5).
    pub const SEQ_WINDOW: u64 = 4096;

    /// Build the receiver for replica `me` (at position `my_index` in the
    /// group membership) in a group tolerating `f` faulty receivers.
    pub fn new(
        group: GroupId,
        me: ReplicaId,
        my_index: usize,
        f: usize,
        auth: ReceiverAuth,
        trust: NetworkTrust,
        keys: &SystemKeys,
    ) -> Self {
        let epoch = EpochNum::INITIAL;
        AomReceiver {
            group,
            me,
            my_index,
            epoch,
            f,
            auth,
            trust,
            keys: keys.clone(),
            hmac_key: keys.sequencer_hmac_key(group, epoch, me),
            seq_vk: keys.sequencer_key(group, epoch).verify_key(),
            pipelined: false,
            next: SeqNum::FIRST,
            ready: BTreeMap::new(),
            pending_chain: BTreeMap::new(),
            locked: BTreeMap::new(),
            confirms: BTreeMap::new(),
            outgoing: Vec::new(),
            out: VecDeque::new(),
            delivered: 0,
            drops_declared: 0,
            stale_rejected: 0,
            equivocations_rejected: 0,
            chain_promoted: 0,
            confirms_generated: 0,
            window_rejected: 0,
            auth_rejected: 0,
            internal_errors: 0,
        }
    }

    /// Counters and buffer depths for observability.
    pub fn stats(&self) -> AomReceiverStats {
        AomReceiverStats {
            delivered: self.delivered,
            drops_declared: self.drops_declared,
            buffered: self.ready.len() as u64,
            pending_chain: self.pending_chain.len() as u64,
            locked: self.locked.len() as u64,
            stale_rejected: self.stale_rejected,
            equivocations_rejected: self.equivocations_rejected,
            chain_promoted: self.chain_promoted,
            confirms_generated: self.confirms_generated,
            window_rejected: self.window_rejected,
            auth_rejected: self.auth_rejected,
            internal_errors: self.internal_errors,
        }
    }

    /// Enable or disable pipelined verification. When enabled, the
    /// per-packet digest hash and authenticator check are charged to the
    /// meter's parallel lane instead of the serial dispatch lane,
    /// modelling a replica that verifies slot *k+1* concurrently with
    /// (speculative) execution of slot *k*. Verification outcomes are
    /// unchanged — only where the CPU time lands.
    pub fn set_pipelined(&mut self, on: bool) {
        self.pipelined = on;
    }

    /// Charge `ns` to the lane selected by the pipelining mode.
    fn charge_verify(&self, crypto: &NodeCrypto, ns: u64) {
        if self.pipelined {
            crypto.meter().charge_parallel(ns);
        } else {
            crypto.meter().charge_serial(ns);
        }
    }

    /// Current epoch.
    pub fn epoch(&self) -> EpochNum {
        self.epoch
    }

    /// Next sequence number expected.
    pub fn next_seq(&self) -> SeqNum {
        self.next
    }

    /// Enter a new epoch: fresh sequence space, fresh sequencer keys,
    /// cleared buffers (§4.2: "start delivering authenticated aom
    /// messages from the new sequencer switch and ignore messages from
    /// the old one").
    pub fn install_epoch(&mut self, epoch: EpochNum) {
        self.epoch = epoch;
        self.hmac_key = self.keys.sequencer_hmac_key(self.group, epoch, self.me);
        self.seq_vk = self.keys.sequencer_key(self.group, epoch).verify_key();
        self.next = SeqNum::FIRST;
        self.ready.clear();
        self.pending_chain.clear();
        self.locked.clear();
        self.confirms.clear();
    }

    /// Process one stamped aom packet from the wire.
    pub fn on_packet(&mut self, pkt: AomPacket, crypto: &NodeCrypto) -> Result<(), AomError> {
        if pkt.header.group != self.group {
            return Err(AomError::WrongGroup);
        }
        if pkt.header.epoch != self.epoch {
            return Err(AomError::WrongEpoch {
                got: pkt.header.epoch,
                current: self.epoch,
            });
        }
        if !pkt.header.is_stamped() && !matches!(pkt.header.auth, Authenticator::Signature { .. }) {
            return Err(AomError::Unstamped);
        }
        let seq = pkt.header.seq;
        if seq < self.next {
            self.stale_rejected += 1;
            return Err(AomError::Stale);
        }
        if seq.0 > self.next.0 + Self::SEQ_WINDOW {
            self.window_rejected += 1;
            return Err(AomError::OutOfWindow);
        }
        // The authenticator covers digest ‖ seq ‖ epoch — the payload is
        // bound only through the digest, so the binding must be checked
        // here or a relay could swap the payload under a valid stamp
        // (§3.2 transferable authentication is over the whole message).
        self.charge_verify(crypto, crypto.costs().sha256(pkt.payload.len()));
        if neo_crypto::sha256(&pkt.payload).0 != pkt.header.digest {
            self.auth_rejected += 1;
            return Err(AomError::BadAuth);
        }

        // Reject authenticator-type confusion: a receiver configured for
        // one scheme must not accept the other (the sequencer never mixes
        // schemes within an epoch).
        match (&self.auth, &pkt.header.auth) {
            (ReceiverAuth::Hmac, Authenticator::HmacVector(_))
            | (ReceiverAuth::PublicKey, Authenticator::Signature { .. })
            | (_, Authenticator::Unstamped) => {}
            _ => {
                self.auth_rejected += 1;
                return Err(AomError::BadAuth);
            }
        }
        match &pkt.header.auth {
            Authenticator::Unstamped => Err(AomError::Unstamped),
            Authenticator::HmacVector(tags) => {
                self.charge_verify(crypto, crypto.costs().siphash);
                neo_crypto::mac::verify_vector_entry(
                    &self.hmac_key,
                    self.my_index,
                    tags,
                    &pkt.header.auth_input(),
                )
                .map_err(|_| {
                    self.auth_rejected += 1;
                    AomError::BadAuth
                })?;
                self.accept(pkt, crypto);
                Ok(())
            }
            Authenticator::Signature { sig, .. } => match sig {
                Some(bytes) => {
                    // Chain bookkeeping (hash of the packet identity for
                    // future linkage checks) plus reorder-buffer admin
                    // runs inline with dispatch; the ECDSA verification
                    // itself goes to the worker pool.
                    crypto
                        .meter()
                        .charge_serial(crypto.costs().sha256(pkt.header.auth_input().len()) + 500);
                    crypto.meter().charge_parallel(crypto.costs().ecdsa_verify);
                    self.seq_vk
                        .verify(&pkt.header.auth_input(), &Signature(bytes.clone()))
                        .map_err(|_| {
                            self.auth_rejected += 1;
                            AomError::BadAuth
                        })?;
                    // A signed packet also vouches, through the hash
                    // chain, for buffered signature-less predecessors.
                    self.accept(pkt.clone(), crypto);
                    self.validate_chain_backwards(&pkt, crypto);
                    Ok(())
                }
                None => {
                    // Signature skipped by the ratio controller: park it
                    // until a signed successor arrives (§4.4).
                    // neo-lint: allow(R5, seq bounded to SEQ_WINDOW above)
                    self.pending_chain.insert(seq, pkt);
                    Ok(())
                }
            },
        }
    }

    /// Walk the hash chain backwards from a verified packet, promoting
    /// parked signature-less packets whose linkage checks out.
    fn validate_chain_backwards(&mut self, verified: &AomPacket, crypto: &NodeCrypto) {
        let mut successor = verified.clone();
        loop {
            let Authenticator::Signature { prev_hash, .. } = &successor.header.auth else {
                return;
            };
            let prev_seq = successor.header.seq.prev();
            if prev_seq == SeqNum(0) {
                return;
            }
            let Some(candidate) = self.pending_chain.remove(&prev_seq) else {
                return;
            };
            crypto
                .meter()
                .charge_serial(crypto.costs().sha256(candidate.header.auth_input().len()));
            let expect = chain(Digest::ZERO, &candidate.header.auth_input());
            if expect.0 != *prev_hash {
                // Linkage broken: the parked packet is not the one the
                // sequencer chained. It stays discarded.
                return;
            }
            let promoted = candidate;
            self.chain_promoted += 1;
            self.accept(promoted.clone(), crypto);
            successor = promoted;
        }
    }

    /// An authenticated packet enters ordering (and, in Byzantine mode,
    /// the confirm exchange).
    fn accept(&mut self, pkt: AomPacket, crypto: &NodeCrypto) {
        let seq = pkt.header.seq;
        if seq < self.next || self.ready.contains_key(&seq) {
            return;
        }
        match self.trust {
            NetworkTrust::Trusted => {
                self.ready.insert(seq, pkt);
                self.drain();
            }
            NetworkTrust::Byzantine => {
                let hash = pkt.identity_hash();
                if let Some(locked) = self.locked.get(&seq) {
                    if *locked != hash {
                        // Equivocation attempt: ignore (§4.2 "ignores
                        // subsequent aom messages with the same sequence
                        // number").
                        self.equivocations_rejected += 1;
                        return;
                    }
                    self.ready.entry(seq).or_insert(pkt);
                } else {
                    self.locked.insert(seq, hash);
                    self.ready.insert(seq, pkt);
                    // Broadcast my confirm.
                    let body = Confirm {
                        group: self.group,
                        epoch: self.epoch,
                        seq,
                        hash,
                        replica: self.me,
                    };
                    let Ok(body_bytes) = encode(&body) else {
                        // Cannot even encode our own confirm: count it
                        // and skip the broadcast rather than panic.
                        self.internal_errors += 1;
                        return;
                    };
                    let sig = crypto.sign(&body_bytes);
                    let sc = SignedConfirm {
                        body: body.clone(),
                        sig,
                    };
                    self.confirms
                        .entry(seq)
                        .or_default()
                        .insert(self.me, sc.clone());
                    self.outgoing.push(sc);
                    self.confirms_generated += 1;
                }
                self.try_complete(seq);
            }
        }
    }

    /// Process a confirm from a peer receiver (Byzantine-network mode).
    pub fn on_confirm(&mut self, sc: SignedConfirm, crypto: &NodeCrypto) -> Result<(), AomError> {
        if self.trust != NetworkTrust::Byzantine {
            return Ok(()); // ignore stray confirms in trusted mode
        }
        if sc.body.group != self.group {
            return Err(AomError::WrongGroup);
        }
        if sc.body.epoch != self.epoch {
            return Err(AomError::WrongEpoch {
                got: sc.body.epoch,
                current: self.epoch,
            });
        }
        if sc.body.seq < self.next {
            self.stale_rejected += 1;
            return Err(AomError::Stale);
        }
        if sc.body.seq.0 > self.next.0 + Self::SEQ_WINDOW {
            self.window_rejected += 1;
            return Err(AomError::OutOfWindow);
        }
        let Ok(bytes) = encode(&sc.body) else {
            self.internal_errors += 1;
            return Err(AomError::BadAuth);
        };
        crypto
            .verify(
                neo_crypto::Principal::Replica(sc.body.replica),
                &bytes,
                &sc.sig,
            )
            .map_err(|_| {
                self.auth_rejected += 1;
                AomError::BadAuth
            })?;
        let seq = sc.body.seq;
        // neo-lint: allow(R5, seq bounded to SEQ_WINDOW above)
        let slot_confirms = self.confirms.entry(seq).or_default();
        slot_confirms.insert(sc.body.replica, sc);
        self.try_complete(seq);
        Ok(())
    }

    /// Confirms this receiver needs broadcast to the group; the host node
    /// drains and sends them (optionally batched).
    pub fn take_outgoing_confirms(&mut self) -> Vec<SignedConfirm> {
        std::mem::take(&mut self.outgoing)
    }

    fn try_complete(&mut self, seq: SeqNum) {
        if self.trust != NetworkTrust::Byzantine {
            return;
        }
        let Some(locked_hash) = self.locked.get(&seq) else {
            return;
        };
        if !self.ready.contains_key(&seq) {
            return;
        }
        let quorum = 2 * self.f + 1;
        let matching = self
            .confirms
            .get(&seq)
            .map(|m| m.values().filter(|c| c.body.hash == *locked_hash).count())
            .unwrap_or(0);
        if matching >= quorum {
            self.drain();
        }
    }

    /// Deliver everything in order that is deliverable.
    fn drain(&mut self) {
        loop {
            let seq = self.next;
            let Some(pkt) = self.ready.get(&seq) else {
                return;
            };
            if self.trust == NetworkTrust::Byzantine {
                let quorum = 2 * self.f + 1;
                let locked_hash = self.locked.get(&seq).copied();
                let Some(h) = locked_hash else { return };
                let matching: Vec<SignedConfirm> = self
                    .confirms
                    .get(&seq)
                    .map(|m| m.values().filter(|c| c.body.hash == h).cloned().collect())
                    .unwrap_or_default();
                if matching.len() < quorum {
                    return;
                }
                let cert = OrderingCert {
                    packet: pkt.clone(),
                    confirms: matching,
                };
                self.out.push_back(Delivery::Message(cert));
            } else {
                self.out.push_back(Delivery::Message(OrderingCert {
                    packet: pkt.clone(),
                    confirms: Vec::new(),
                }));
            }
            self.ready.remove(&seq);
            self.locked.remove(&seq);
            self.confirms.remove(&seq);
            self.delivered += 1;
            self.next = self.next.next();
        }
    }

    /// Pull the next in-order delivery, if any.
    pub fn poll(&mut self) -> Option<Delivery> {
        self.out.pop_front()
    }

    /// If a later packet is waiting while `next` is missing, the network
    /// dropped (or delayed) a message: returns the missing sequence
    /// number so the host can arm its gap timer.
    pub fn gap_pending(&self) -> Option<SeqNum> {
        let oldest_waiting = [
            self.ready.keys().next(),
            self.pending_chain.keys().next(),
            self.locked.keys().next(),
        ]
        .into_iter()
        .flatten()
        .min()?;
        (*oldest_waiting > self.next).then_some(self.next)
    }

    /// The host's gap timer fired: emit a drop-notification for the
    /// missing sequence number and move on.
    pub fn declare_drop(&mut self) -> SeqNum {
        let seq = self.next;
        self.out.push_back(Delivery::Drop(seq));
        self.drops_declared += 1;
        self.next = self.next.next();
        self.drain();
        seq
    }

    /// Transferable authentication: verify an ordering certificate
    /// received from *another* replica (e.g. in a qery-reply or
    /// gap-decision, §5.4). Checks my own HMAC entry or the sequencer
    /// signature, and in Byzantine mode the 2f+1 matching confirms.
    pub fn verify_cert(&self, cert: &OrderingCert, crypto: &NodeCrypto) -> bool {
        self.verify_cert_in_epoch(cert, self.epoch, crypto)
    }

    /// Like [`Self::verify_cert`], but against an explicit epoch's keys —
    /// view changes must validate certificates from earlier epochs
    /// (§B.1's log-validity rule).
    pub fn verify_cert_in_epoch(
        &self,
        cert: &OrderingCert,
        epoch: EpochNum,
        crypto: &NodeCrypto,
    ) -> bool {
        let pkt = &cert.packet;
        if pkt.header.group != self.group || pkt.header.epoch != epoch {
            return false;
        }
        let (hmac_key, seq_vk) = if epoch == self.epoch {
            (self.hmac_key, self.seq_vk.clone())
        } else {
            (
                self.keys.sequencer_hmac_key(self.group, epoch, self.me),
                self.keys.sequencer_key(self.group, epoch).verify_key(),
            )
        };
        let auth_ok = match &pkt.header.auth {
            Authenticator::Unstamped => false,
            Authenticator::HmacVector(tags) => {
                crypto.meter().charge_serial(crypto.costs().siphash);
                neo_crypto::mac::verify_vector_entry(
                    &hmac_key,
                    self.my_index,
                    tags,
                    &pkt.header.auth_input(),
                )
                .is_ok()
            }
            Authenticator::Signature { sig, .. } => match sig {
                Some(bytes) => {
                    crypto.meter().charge_parallel(crypto.costs().ecdsa_verify);
                    seq_vk
                        .verify(&pkt.header.auth_input(), &Signature(bytes.clone()))
                        .is_ok()
                }
                // A forwarded certificate must carry a signed packet; a
                // chain-only packet cannot stand alone.
                None => false,
            },
        };
        if !auth_ok {
            return false;
        }
        if self.trust == NetworkTrust::Byzantine {
            let hash = pkt.identity_hash();
            let quorum = 2 * self.f + 1;
            let mut seen = std::collections::BTreeSet::new();
            for sc in &cert.confirms {
                if sc.body.hash != hash
                    || sc.body.seq != pkt.header.seq
                    || sc.body.epoch != pkt.header.epoch
                    || sc.body.group != pkt.header.group
                {
                    continue;
                }
                let Ok(bytes) = encode(&sc.body) else {
                    continue;
                };
                if crypto
                    .verify(
                        neo_crypto::Principal::Replica(sc.body.replica),
                        &bytes,
                        &sc.sig,
                    )
                    .is_ok()
                {
                    seen.insert(sc.body.replica);
                }
            }
            if seen.len() < quorum {
                return false;
            }
        }
        true
    }

    /// Helper for hosts: decode an [`Envelope`] payload and feed whatever
    /// aom-relevant content it carries. Returns `true` if the envelope
    /// was consumed by the aom layer.
    pub fn on_envelope(&mut self, env: &Envelope, crypto: &NodeCrypto) -> bool {
        match env {
            Envelope::Aom(pkt) => {
                let _ = self.on_packet(pkt.clone(), crypto);
                true
            }
            Envelope::Confirm(sc) => {
                let _ = self.on_confirm(sc.clone(), crypto);
                true
            }
            Envelope::ConfirmBatch(batch) => {
                for sc in batch {
                    let _ = self.on_confirm(sc.clone(), crypto);
                }
                true
            }
            _ => false,
        }
    }
}
