//! The configuration service (§4.1, §4.2).
//!
//! Handles aom group membership and sequencer failover. Per the system
//! model (§5.1) the service is trusted in the standard BFT sense: it
//! ensures at most f faulty replicas join a group and eventually installs
//! a correct sequencer. A failover requires matching requests from f+1
//! distinct replicas, so no coalition of ≤ f Byzantine replicas can force
//! epoch churn on its own.

use crate::sequencer::SequencerNode;
use crate::Envelope;
use neo_sim::{Context, Node, TimerId};
use neo_wire::{Addr, EpochNum, GroupId, ReplicaId};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::{BTreeSet, HashMap};

/// Configuration-service traffic.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ConfigMsg {
    /// Replica → config: the current sequencer appears faulty; fail over.
    FailoverRequest {
        /// Group whose sequencer is suspected.
        group: GroupId,
        /// Epoch the requester is currently in (stale requests are
        /// ignored).
        epoch: EpochNum,
        /// Requesting replica.
        requester: ReplicaId,
    },
    /// Config → sequencer: (re)install yourself for `epoch`.
    InstallSequencer {
        /// Group to serve.
        group: GroupId,
        /// New epoch number.
        epoch: EpochNum,
    },
    /// Config → receivers: a new sequencer (epoch) is live.
    NewEpoch {
        /// Group affected.
        group: GroupId,
        /// The epoch that is now current.
        epoch: EpochNum,
    },
}

/// State of one managed group.
#[derive(Clone, Debug)]
struct GroupState {
    epoch: EpochNum,
    receivers: Vec<ReplicaId>,
    f: usize,
    /// Distinct requesters asking to leave the *current* epoch.
    failover_votes: BTreeSet<ReplicaId>,
}

/// The configuration service as a simulation node.
pub struct ConfigService {
    groups: HashMap<GroupId, GroupState>,
    /// Failovers executed (visible to experiments).
    pub failovers: u64,
    /// Delay between deciding a failover and the new sequencer being
    /// live, modelling BGP re-advertisement and switch reconfiguration —
    /// the paper measures this at well under 100 ms (§6.4).
    pub reconfig_delay_ns: u64,
    /// Pending installs: (group, epoch) to announce when the timer fires.
    pending: HashMap<u32, (GroupId, EpochNum)>,
    next_pending: u32,
}

impl ConfigService {
    /// A service managing the given groups.
    pub fn new() -> Self {
        ConfigService {
            groups: HashMap::new(),
            failovers: 0,
            reconfig_delay_ns: 40 * neo_sim::MILLIS,
            pending: HashMap::new(),
            next_pending: 1,
        }
    }

    /// Register a group with its receiver membership and fault bound.
    pub fn register_group(&mut self, group: GroupId, receivers: Vec<ReplicaId>, f: usize) {
        self.groups.insert(
            group,
            GroupState {
                epoch: EpochNum::INITIAL,
                receivers,
                f,
                failover_votes: BTreeSet::new(),
            },
        );
    }

    /// Current epoch of a group.
    pub fn epoch_of(&self, group: GroupId) -> Option<EpochNum> {
        self.groups.get(&group).map(|g| g.epoch)
    }

    fn handle_failover_request(
        &mut self,
        group: GroupId,
        epoch: EpochNum,
        requester: ReplicaId,
        ctx: &mut dyn Context,
    ) {
        let Some(state) = self.groups.get_mut(&group) else {
            return;
        };
        if epoch != state.epoch || !state.receivers.contains(&requester) {
            return; // stale or foreign request
        }
        state.failover_votes.insert(requester);
        if state.failover_votes.len() >= state.f + 1 {
            state.failover_votes.clear();
            state.epoch = state.epoch.next();
            let new_epoch = state.epoch;
            self.failovers += 1;
            // Schedule the install + announcement after the network-level
            // reconfiguration delay.
            let key = self.next_pending;
            self.next_pending += 1;
            // neo-lint: allow(R5, key is a local counter and the insert is gated by f+1 distinct in-group votes per epoch) neo-lint: allow(R6, authorization is that f+1 quorum of membership-checked votes; the config service has no per-message MACs at sim fidelity)
            self.pending.insert(key, (group, new_epoch));
            ctx.set_timer(self.reconfig_delay_ns, key);
        }
    }
}

impl Default for ConfigService {
    fn default() -> Self {
        Self::new()
    }
}

impl Node for ConfigService {
    fn on_message(&mut self, _from: Addr, payload: &[u8], ctx: &mut dyn Context) {
        let Ok(Envelope::Config(msg)) = Envelope::from_bytes(payload) else {
            return;
        };
        if let ConfigMsg::FailoverRequest {
            group,
            epoch,
            requester,
        } = msg
        {
            self.handle_failover_request(group, epoch, requester, ctx);
        }
    }

    fn on_timer(&mut self, _timer: TimerId, kind: u32, ctx: &mut dyn Context) {
        let Some((group, epoch)) = self.pending.remove(&kind) else {
            return;
        };
        let Some(state) = self.groups.get(&group) else {
            return;
        };
        // Tell the (new) sequencer to install, then announce to receivers.
        let install = Envelope::Config(ConfigMsg::InstallSequencer { group, epoch });
        ctx.send(Addr::Sequencer(group), install.to_payload());
        // One encode for the whole group; fan-out is refcount bumps.
        let announce = Envelope::Config(ConfigMsg::NewEpoch { group, epoch }).to_payload();
        ctx.broadcast(&state.receivers, announce);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Convenience used by tests and the failover experiment: reset a
/// sequencer node in place, as if the config service had swapped switches.
pub fn reinstall_sequencer(seq: &mut SequencerNode, epoch: EpochNum) {
    seq.install_epoch(epoch);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(group: GroupId, epoch: EpochNum, r: u32) -> Vec<u8> {
        Envelope::Config(ConfigMsg::FailoverRequest {
            group,
            epoch,
            requester: ReplicaId(r),
        })
        .to_bytes()
    }

    struct Collect {
        got: Vec<(Addr, neo_wire::Payload)>,
    }
    impl Context for Collect {
        fn now(&self) -> u64 {
            0
        }
        fn me(&self) -> Addr {
            Addr::Config
        }
        fn send_after(&mut self, to: Addr, payload: neo_wire::Payload, _d: u64) {
            self.got.push((to, payload));
        }
        fn set_timer(&mut self, _delay: u64, kind: u32) -> TimerId {
            // Fire "timers" synchronously in this harness by recording
            // them as a special send.
            self.got.push((Addr::Config, vec![kind as u8].into()));
            TimerId(kind as u64)
        }
        fn cancel_timer(&mut self, _t: TimerId) {}
        fn charge(&mut self, _ns: u64) {}
    }

    const G: GroupId = GroupId(0);

    fn service() -> ConfigService {
        let mut c = ConfigService::new();
        c.register_group(G, (0..4).map(ReplicaId).collect(), 1);
        c
    }

    #[test]
    fn single_request_does_not_fail_over() {
        let mut c = service();
        let mut ctx = Collect { got: vec![] };
        c.on_message(
            Addr::Replica(ReplicaId(0)),
            &request(G, EpochNum(0), 0),
            &mut ctx,
        );
        assert_eq!(c.failovers, 0);
        assert_eq!(c.epoch_of(G), Some(EpochNum(0)));
    }

    #[test]
    fn duplicate_requests_from_one_replica_do_not_count_twice() {
        let mut c = service();
        let mut ctx = Collect { got: vec![] };
        for _ in 0..5 {
            c.on_message(
                Addr::Replica(ReplicaId(2)),
                &request(G, EpochNum(0), 2),
                &mut ctx,
            );
        }
        assert_eq!(
            c.failovers, 0,
            "a single Byzantine replica cannot force churn"
        );
    }

    #[test]
    fn f_plus_one_distinct_requests_fail_over() {
        let mut c = service();
        let mut ctx = Collect { got: vec![] };
        c.on_message(
            Addr::Replica(ReplicaId(0)),
            &request(G, EpochNum(0), 0),
            &mut ctx,
        );
        c.on_message(
            Addr::Replica(ReplicaId(1)),
            &request(G, EpochNum(0), 1),
            &mut ctx,
        );
        assert_eq!(c.failovers, 1);
        assert_eq!(c.epoch_of(G), Some(EpochNum(1)));
    }

    #[test]
    fn stale_epoch_requests_are_ignored() {
        let mut c = service();
        let mut ctx = Collect { got: vec![] };
        c.on_message(
            Addr::Replica(ReplicaId(0)),
            &request(G, EpochNum(0), 0),
            &mut ctx,
        );
        c.on_message(
            Addr::Replica(ReplicaId(1)),
            &request(G, EpochNum(0), 1),
            &mut ctx,
        );
        // Old-epoch stragglers after the failover:
        c.on_message(
            Addr::Replica(ReplicaId(2)),
            &request(G, EpochNum(0), 2),
            &mut ctx,
        );
        c.on_message(
            Addr::Replica(ReplicaId(3)),
            &request(G, EpochNum(0), 3),
            &mut ctx,
        );
        assert_eq!(
            c.failovers, 1,
            "stale requests do not trigger another epoch"
        );
    }

    #[test]
    fn foreign_replicas_cannot_vote() {
        let mut c = service();
        let mut ctx = Collect { got: vec![] };
        c.on_message(
            Addr::Replica(ReplicaId(7)),
            &request(G, EpochNum(0), 7),
            &mut ctx,
        );
        c.on_message(
            Addr::Replica(ReplicaId(8)),
            &request(G, EpochNum(0), 8),
            &mut ctx,
        );
        assert_eq!(c.failovers, 0);
    }

    #[test]
    fn install_and_announce_on_timer() {
        let mut c = service();
        let mut ctx = Collect { got: vec![] };
        c.on_message(
            Addr::Replica(ReplicaId(0)),
            &request(G, EpochNum(0), 0),
            &mut ctx,
        );
        c.on_message(
            Addr::Replica(ReplicaId(1)),
            &request(G, EpochNum(0), 1),
            &mut ctx,
        );
        // The timer was armed; fire it.
        let kind = 1; // first pending key
        let mut ctx2 = Collect { got: vec![] };
        c.on_timer(TimerId(0), kind, &mut ctx2);
        let to_seq: Vec<_> = ctx2
            .got
            .iter()
            .filter(|(a, _)| *a == Addr::Sequencer(G))
            .collect();
        assert_eq!(to_seq.len(), 1, "sequencer install sent");
        let to_replicas = ctx2
            .got
            .iter()
            .filter(|(a, _)| matches!(a, Addr::Replica(_)))
            .count();
        assert_eq!(to_replicas, 4, "all receivers get the announcement");
    }
}
