#![allow(clippy::int_plus_one)] // quorum arithmetic stays literal: `count >= f + 1`
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # neo-core — the NeoBFT protocol (§5)
//!
//! NeoBFT is a Byzantine fault-tolerant state machine replication protocol
//! co-designed with the aom network primitive. With n = 3f+1 replicas it
//! tolerates f Byzantine replicas and commits client operations in a
//! single round trip in the common case:
//!
//! 1. the client aom-multicasts a signed request (§5.3);
//! 2. the sequencer stamps and authenticates it; every replica delivers
//!    it in the same order, speculatively executes, and sends a signed
//!    reply;
//! 3. the client accepts on 2f+1 matching replies.
//!
//! No replica-to-replica communication or signature verification happens
//! on this path — the ordering certificate from aom replaces both.
//!
//! The crate also implements the full exceptional-case machinery:
//!
//! * [`replica`] — the replica state machine: speculative execution with
//!   rollback, the client table (at-most-once), reply generation with the
//!   O(1) hash-chained log hash;
//! * gap agreement (§5.4) — `query`/`query-reply` recovery from the
//!   leader, and the leader-driven binary consensus (`gap-find` /
//!   `gap-recv` / `gap-drop` / `gap-decision` / `gap-prepare` /
//!   `gap-commit`) that commits a slot as a request or a no-op;
//! * view changes (§5.5, §B.1) — leader replacement and sequencer
//!   failover with epoch certificates and log merging;
//! * state synchronization (§B.2) — periodic sync-points that finalize
//!   speculative execution and propagate gap certificates;
//! * [`client`] — the windowed [`ClientDriver`]: ops are submitted (or
//!   pulled from a workload), packed into batch envelopes — many ops,
//!   one MAC vector, one aom slot — multicast, matched against the
//!   2f+1 reply quorum, and fanned back out per op; includes the
//!   unicast fallback path;
//! * [`batch`] — the batching policy and the load-adaptive batch-size
//!   controller (modeled on the FPGA signing-ratio controller);
//! * [`verify`] — the verify stage: [`verify::VerifyLane`] routes
//!   authenticator verification inline (simulator) or onto a real
//!   [`neo_crypto::VerifyPool`] (tokio runtime), with completions
//!   re-injected in dispatch order.

pub mod batch;
pub mod client;
pub mod config;
pub mod error;
pub mod invariants;
pub mod log;
pub mod messages;
pub mod recovery;
pub mod replica;
pub mod verify;

pub use batch::{AdaptiveBatcher, BatchPolicy};
pub use client::{Client, ClientDriver, CompletedOp, OpHandle};
pub use config::NeoConfig;
pub use error::ProtocolError;
pub use invariants::{InvariantChecker, Violation};
pub use log::{Log, LogEntry};
pub use messages::{BatchRequest, GapCert, NeoMsg, Reply, SignedBatch};
pub use recovery::{CheckpointData, WalRecord, WireCheckpoint};
pub use replica::{RecoveryPhase, Replica};
pub use verify::{PoolVerifyTask, VerifyLane, VerifyWork};
