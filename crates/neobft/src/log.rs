//! The replica log.
//!
//! Slots are filled with ordering certificates (requests) or no-ops (gap
//! agreement outcomes). A hash chain over the entries provides the O(1)
//! `log-hash` replicas put in replies (§5.3): two replicas with the same
//! log-hash at a slot agree on the entire prefix.

use crate::messages::{GapCert, WireLogEntry};
use neo_aom::OrderingCert;
use neo_crypto::{chain, Digest};
use neo_wire::{EpochNum, SlotNum};
use serde::{Deserialize, Serialize};

/// One resolved log entry.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum LogEntry {
    /// A client request with its ordering certificate.
    Request(OrderingCert),
    /// A slot committed as a no-op. The gap certificate is attached once
    /// known (it is absent while the entry comes from a merged view-change
    /// log whose certificate lived in another entry's proof).
    NoOp(Option<GapCert>),
}

impl LogEntry {
    /// The bytes folded into the log hash chain for this entry.
    fn chain_input(&self) -> Vec<u8> {
        match self {
            LogEntry::Request(oc) => {
                let mut v = b"req".to_vec();
                v.extend_from_slice(&oc.packet.header.auth_input());
                v
            }
            LogEntry::NoOp(_) => b"noop".to_vec(),
        }
    }

    /// View-change wire form.
    pub fn to_wire(&self) -> WireLogEntry {
        match self {
            LogEntry::Request(oc) => WireLogEntry::Request(oc.clone()),
            LogEntry::NoOp(cert) => WireLogEntry::NoOp(cert.clone().unwrap_or_default()),
        }
    }
}

/// A slot: unresolved (awaiting gap agreement) or filled.
#[derive(Clone, PartialEq, Debug)]
enum Slot {
    /// A drop-notification was delivered; agreement pending.
    Pending,
    /// Resolved entry with the chained log hash up to it (valid only for
    /// slots below the chain watermark).
    Filled(LogEntry, Digest),
}

/// The log.
#[derive(Clone, Debug, Default)]
pub struct Log {
    slots: Vec<Slot>,
    /// Chain watermark: hashes are valid for slots `< chained`; every
    /// slot below it is filled. Entries appended past a pending slot get
    /// their hash once the gap resolves.
    chained: usize,
    /// Start slot of each epoch (epoch 0 starts at 0 implicitly).
    epoch_starts: Vec<(EpochNum, SlotNum)>,
}

impl Log {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of slots (filled or pending).
    pub fn len(&self) -> SlotNum {
        SlotNum(self.slots.len() as u64)
    }

    /// True if no slots exist.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The log hash after `slot` (the value carried in replies). Only
    /// available once every earlier slot is resolved.
    pub fn hash_at(&self, slot: SlotNum) -> Option<Digest> {
        if slot.index() >= self.chained {
            return None;
        }
        match self.slots.get(slot.index()) {
            Some(Slot::Filled(_, h)) => Some(*h),
            _ => None,
        }
    }

    /// The entry at `slot`, if resolved.
    pub fn entry(&self, slot: SlotNum) -> Option<&LogEntry> {
        match self.slots.get(slot.index()) {
            Some(Slot::Filled(e, _)) => Some(e),
            _ => None,
        }
    }

    /// True if `slot` exists but is awaiting gap agreement.
    pub fn is_pending(&self, slot: SlotNum) -> bool {
        matches!(self.slots.get(slot.index()), Some(Slot::Pending))
    }

    /// Append a request certificate at the tail.
    pub fn append_request(&mut self, oc: OrderingCert) -> SlotNum {
        let slot = self.len();
        self.slots
            .push(Slot::Filled(LogEntry::Request(oc), Digest::ZERO));
        self.advance_chain();
        slot
    }

    /// Append a pending slot (drop-notification delivered, fate unknown).
    pub fn append_pending(&mut self) -> SlotNum {
        let slot = self.len();
        self.slots.push(Slot::Pending);
        slot
    }

    /// Resolve a slot (pending, overwrite, or tail + 1) with an entry and
    /// recompute the hash chain as far as it now reaches.
    pub fn fill(&mut self, slot: SlotNum, entry: LogEntry) -> Result<(), FillError> {
        if slot.index() > self.slots.len() {
            return Err(FillError::BeyondTail);
        }
        if slot.index() == self.slots.len() {
            self.slots.push(Slot::Pending);
        }
        self.slots[slot.index()] = Slot::Filled(entry, Digest::ZERO);
        // An overwrite below the watermark invalidates the chain suffix.
        self.chained = self.chained.min(slot.index());
        self.advance_chain();
        Ok(())
    }

    /// Extend the chain watermark over every consecutively filled slot.
    fn advance_chain(&mut self) {
        let mut h = if self.chained == 0 {
            Digest::ZERO
        } else {
            match &self.slots[self.chained - 1] {
                Slot::Filled(_, h) => *h,
                Slot::Pending => unreachable!("watermark only covers filled slots"),
            }
        };
        while self.chained < self.slots.len() {
            match &mut self.slots[self.chained] {
                Slot::Filled(e, hash) => {
                    h = chain(h, &e.chain_input());
                    *hash = h;
                    self.chained += 1;
                }
                Slot::Pending => break,
            }
        }
    }

    /// Attach a gap certificate to a no-op slot.
    pub fn attach_gap_cert(&mut self, slot: SlotNum, cert: GapCert) {
        if let Some(Slot::Filled(LogEntry::NoOp(c), _)) = self.slots.get_mut(slot.index()) {
            *c = Some(cert);
        }
    }

    /// Record that `epoch` starts at `slot`.
    pub fn record_epoch_start(&mut self, epoch: EpochNum, slot: SlotNum) {
        if !self.epoch_starts.iter().any(|(e, _)| *e == epoch) {
            self.epoch_starts.push((epoch, slot));
            self.epoch_starts.sort();
        }
    }

    /// Start slot of an epoch (0 for the initial epoch).
    pub fn epoch_start(&self, epoch: EpochNum) -> Option<SlotNum> {
        if epoch == EpochNum::INITIAL {
            return Some(SlotNum(0));
        }
        self.epoch_starts
            .iter()
            .find(|(e, _)| *e == epoch)
            .map(|(_, s)| *s)
    }

    /// All recorded epoch starts.
    pub fn epoch_starts(&self) -> &[(EpochNum, SlotNum)] {
        &self.epoch_starts
    }

    /// First unresolved (pending) slot, if any.
    pub fn first_pending(&self) -> Option<SlotNum> {
        self.slots
            .iter()
            .position(|s| matches!(s, Slot::Pending))
            .map(|i| SlotNum(i as u64))
    }

    /// Wire form of the whole log for view changes.
    pub fn to_wire(&self) -> Vec<WireLogEntry> {
        // Wire logs are positional (index = slot), so the log is truncated
        // at the first pending slot: everything after it would otherwise
        // shift positions.
        self.slots
            .iter()
            .map_while(|s| match s {
                Slot::Filled(e, _) => Some(e.to_wire()),
                Slot::Pending => None,
            })
            .collect()
    }

    /// Length of the resolved prefix (slots filled with no pending gap
    /// before them). O(1): this is exactly the hash-chain watermark.
    pub fn resolved_prefix_len(&self) -> SlotNum {
        SlotNum(self.chained as u64)
    }

    /// Drop every slot at or beyond `len` (uncommitted speculative tail
    /// discarded when an epoch-switching view change adopts the merged
    /// log, §B.1).
    pub fn truncate(&mut self, len: SlotNum) {
        self.slots.truncate(len.index());
        self.chained = self.chained.min(len.index());
        self.advance_chain();
    }
}

/// Log fill violation.
#[derive(Debug, PartialEq, Eq, thiserror::Error)]
pub enum FillError {
    /// Attempted to fill past the tail + 1.
    #[error("slot is beyond the log tail")]
    BeyondTail,
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_aom::AomPacket;
    use neo_wire::{AomHeader, GroupId, SeqNum};

    fn oc(seq: u64, payload: &[u8]) -> OrderingCert {
        let mut header = AomHeader::unstamped(GroupId(0), neo_crypto::sha256(payload).0);
        header.seq = SeqNum(seq);
        header.auth = neo_wire::Authenticator::HmacVector(vec![[0u8; 8]; 4]);
        OrderingCert {
            packet: AomPacket {
                header,
                payload: payload.to_vec(),
            },
            confirms: vec![],
        }
    }

    #[test]
    fn appends_chain_hashes() {
        let mut log = Log::new();
        let s0 = log.append_request(oc(1, b"a"));
        let s1 = log.append_request(oc(2, b"b"));
        assert_eq!(s0, SlotNum(0));
        assert_eq!(s1, SlotNum(1));
        let h0 = log.hash_at(s0).unwrap();
        let h1 = log.hash_at(s1).unwrap();
        assert_ne!(h0, h1);
        // Same entries in another log produce the same chain.
        let mut log2 = Log::new();
        log2.append_request(oc(1, b"a"));
        log2.append_request(oc(2, b"b"));
        assert_eq!(log2.hash_at(SlotNum(1)), Some(h1));
    }

    #[test]
    fn different_order_different_hash() {
        let mut a = Log::new();
        a.append_request(oc(1, b"x"));
        a.append_request(oc(2, b"y"));
        let mut b = Log::new();
        b.append_request(oc(1, b"y"));
        b.append_request(oc(2, b"x"));
        assert_ne!(a.hash_at(SlotNum(1)), b.hash_at(SlotNum(1)));
    }

    #[test]
    fn pending_slots_block_hashes_downstream() {
        let mut log = Log::new();
        log.append_request(oc(1, b"a"));
        let gap = log.append_pending();
        assert!(log.is_pending(gap));
        assert_eq!(log.hash_at(gap), None);
        assert_eq!(log.first_pending(), Some(gap));
        assert_eq!(log.resolved_prefix_len(), SlotNum(1));
    }

    #[test]
    fn filling_a_pending_slot_rechains_suffix() {
        let mut log = Log::new();
        log.append_request(oc(1, b"a"));
        let gap = log.append_pending();
        log.fill(gap, LogEntry::Request(oc(2, b"b"))).unwrap();
        let suffix = log.append_request(oc(3, b"c"));
        // Reference: straight-through log.
        let mut reference = Log::new();
        reference.append_request(oc(1, b"a"));
        reference.append_request(oc(2, b"b"));
        reference.append_request(oc(3, b"c"));
        assert_eq!(log.hash_at(suffix), reference.hash_at(SlotNum(2)));
    }

    #[test]
    fn noop_fill_changes_hash_vs_request() {
        let mut a = Log::new();
        a.append_request(oc(1, b"a"));
        a.append_request(oc(2, b"b"));
        let mut b = Log::new();
        b.append_request(oc(1, b"a"));
        let gap = b.append_pending();
        b.fill(gap, LogEntry::NoOp(None)).unwrap();
        assert_ne!(a.hash_at(SlotNum(1)), b.hash_at(SlotNum(1)));
    }

    #[test]
    fn out_of_order_fill_defers_hashes() {
        let mut log = Log::new();
        log.append_pending();
        log.append_pending();
        // The second gap resolves first: allowed, but no hash yet.
        log.fill(SlotNum(1), LogEntry::NoOp(None)).unwrap();
        assert_eq!(log.hash_at(SlotNum(1)), None, "prefix still pending");
        log.fill(SlotNum(0), LogEntry::NoOp(None)).unwrap();
        assert!(log.hash_at(SlotNum(1)).is_some(), "chain caught up");
        assert_eq!(
            log.fill(SlotNum(5), LogEntry::NoOp(None)),
            Err(FillError::BeyondTail)
        );
    }

    #[test]
    fn appends_after_pending_get_hashes_on_resolution() {
        let mut log = Log::new();
        log.append_request(oc(1, b"a"));
        let gap = log.append_pending();
        let tail = log.append_request(oc(3, b"c"));
        assert_eq!(log.hash_at(tail), None, "blocked behind the gap");
        log.fill(gap, LogEntry::NoOp(None)).unwrap();
        assert!(log.hash_at(tail).is_some());
    }

    #[test]
    fn overwrite_request_with_noop_rechains() {
        // State-sync can overwrite a speculative request with a certified
        // no-op (§B.2 "possibly overwriting existing request").
        let mut log = Log::new();
        log.append_request(oc(1, b"a"));
        log.append_request(oc(2, b"b"));
        let before = log.hash_at(SlotNum(1)).unwrap();
        log.fill(SlotNum(0), LogEntry::NoOp(None)).unwrap();
        let after = log.hash_at(SlotNum(1)).unwrap();
        assert_ne!(before, after);
    }

    #[test]
    fn epoch_starts_are_recorded_once_and_sorted() {
        let mut log = Log::new();
        log.record_epoch_start(EpochNum(2), SlotNum(20));
        log.record_epoch_start(EpochNum(1), SlotNum(10));
        log.record_epoch_start(EpochNum(1), SlotNum(99)); // duplicate ignored
        assert_eq!(log.epoch_start(EpochNum(0)), Some(SlotNum(0)));
        assert_eq!(log.epoch_start(EpochNum(1)), Some(SlotNum(10)));
        assert_eq!(log.epoch_start(EpochNum(2)), Some(SlotNum(20)));
        assert_eq!(log.epoch_start(EpochNum(3)), None);
        assert_eq!(
            log.epoch_starts(),
            &[(EpochNum(1), SlotNum(10)), (EpochNum(2), SlotNum(20))]
        );
    }

    #[test]
    fn wire_form_truncates_at_first_pending() {
        let mut log = Log::new();
        log.append_request(oc(1, b"a"));
        log.append_pending();
        log.append_request(oc(3, b"c"));
        let wire = log.to_wire();
        assert_eq!(wire.len(), 1, "truncated at the first pending slot");
    }
}
