//! The replica log.
//!
//! Slots are filled with ordering certificates (requests) or no-ops (gap
//! agreement outcomes). A hash chain over the entries provides the O(1)
//! `log-hash` replicas put in replies (§5.3): two replicas with the same
//! log-hash at a slot agree on the entire prefix.

use crate::messages::{GapCert, WireLogEntry};
use neo_aom::OrderingCert;
use neo_crypto::{chain, Digest};
use neo_wire::{EpochNum, SlotNum};
use serde::{Deserialize, Serialize};

/// One resolved log entry.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum LogEntry {
    /// A client request with its ordering certificate.
    Request(OrderingCert),
    /// A slot committed as a no-op. The gap certificate is attached once
    /// known (it is absent while the entry comes from a merged view-change
    /// log whose certificate lived in another entry's proof).
    NoOp(Option<GapCert>),
}

impl LogEntry {
    /// The bytes folded into the log hash chain for this entry.
    fn chain_input(&self) -> Vec<u8> {
        match self {
            LogEntry::Request(oc) => {
                let mut v = b"req".to_vec();
                v.extend_from_slice(&oc.packet.header.auth_input());
                v
            }
            LogEntry::NoOp(_) => b"noop".to_vec(),
        }
    }

    /// View-change wire form.
    pub fn to_wire(&self) -> WireLogEntry {
        match self {
            LogEntry::Request(oc) => WireLogEntry::Request(oc.clone()),
            LogEntry::NoOp(cert) => WireLogEntry::NoOp(cert.clone().unwrap_or_default()),
        }
    }
}

/// A slot: unresolved (awaiting gap agreement) or filled.
#[derive(Clone, PartialEq, Debug)]
enum Slot {
    /// A drop-notification was delivered; agreement pending.
    Pending,
    /// Resolved entry with the chained log hash up to it (valid only for
    /// slots below the chain watermark).
    Filled(LogEntry, Digest),
}

/// The log.
///
/// A log may start at a non-zero **base**: slots below the base were
/// finalized by a certified checkpoint and compacted away; the chain
/// hash at `base - 1` is retained so the hash chain (and therefore
/// prefix comparison) stays seamless across the compaction point. Slot
/// numbers everywhere in the API remain absolute.
#[derive(Clone, Debug, Default)]
pub struct Log {
    /// First slot actually held; everything below came from a certified
    /// checkpoint. Zero for logs that grew from genesis.
    base: u64,
    /// Chain hash at `base - 1` (meaningless when `base == 0`): the seed
    /// the chain continues from.
    base_hash: Digest,
    slots: Vec<Slot>,
    /// Chain watermark, *relative to `base`*: hashes are valid for
    /// relative slots `< chained`; every slot below it is filled.
    /// Entries appended past a pending slot get their hash once the gap
    /// resolves.
    chained: usize,
    /// Start slot of each epoch (epoch 0 starts at 0 implicitly).
    epoch_starts: Vec<(EpochNum, SlotNum)>,
}

impl Log {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// A log resuming from a certified checkpoint: slots `< base` are
    /// gone, the chain continues from `base_hash` (the log hash at slot
    /// `base - 1`, as certified by the checkpoint).
    pub fn with_base(base: SlotNum, base_hash: Digest) -> Self {
        Log {
            base: base.0,
            base_hash,
            ..Log::default()
        }
    }

    /// First slot this log actually holds (0 unless restored from a
    /// checkpoint).
    pub fn base(&self) -> SlotNum {
        SlotNum(self.base)
    }

    /// Relative index of an absolute slot, if it is at or above the base.
    fn rel(&self, slot: SlotNum) -> Option<usize> {
        slot.0.checked_sub(self.base).map(|r| r as usize)
    }

    /// Number of slots (filled or pending), counting the compacted
    /// prefix below the base.
    pub fn len(&self) -> SlotNum {
        SlotNum(self.base + self.slots.len() as u64)
    }

    /// True if no slots exist (including none below the base).
    pub fn is_empty(&self) -> bool {
        self.base == 0 && self.slots.is_empty()
    }

    /// The log hash after `slot` (the value carried in replies). Only
    /// available once every earlier slot is resolved. For a based log
    /// the hash at `base - 1` is the checkpoint's certified chain hash;
    /// anything below that is compacted away.
    pub fn hash_at(&self, slot: SlotNum) -> Option<Digest> {
        if self.base > 0 && slot.0 == self.base - 1 {
            return Some(self.base_hash);
        }
        let rel = self.rel(slot)?;
        if rel >= self.chained {
            return None;
        }
        match self.slots.get(rel) {
            Some(Slot::Filled(_, h)) => Some(*h),
            _ => None,
        }
    }

    /// The entry at `slot`, if resolved and not compacted.
    pub fn entry(&self, slot: SlotNum) -> Option<&LogEntry> {
        match self.rel(slot).and_then(|r| self.slots.get(r)) {
            Some(Slot::Filled(e, _)) => Some(e),
            _ => None,
        }
    }

    /// True if `slot` exists but is awaiting gap agreement.
    pub fn is_pending(&self, slot: SlotNum) -> bool {
        matches!(
            self.rel(slot).and_then(|r| self.slots.get(r)),
            Some(Slot::Pending)
        )
    }

    /// Append a request certificate at the tail.
    pub fn append_request(&mut self, oc: OrderingCert) -> SlotNum {
        let slot = self.len();
        self.slots
            .push(Slot::Filled(LogEntry::Request(oc), Digest::ZERO));
        self.advance_chain();
        slot
    }

    /// Append a pending slot (drop-notification delivered, fate unknown).
    pub fn append_pending(&mut self) -> SlotNum {
        let slot = self.len();
        self.slots.push(Slot::Pending);
        slot
    }

    /// Resolve a slot (pending, overwrite, or tail + 1) with an entry and
    /// recompute the hash chain as far as it now reaches.
    pub fn fill(&mut self, slot: SlotNum, entry: LogEntry) -> Result<(), FillError> {
        let Some(rel) = self.rel(slot) else {
            return Err(FillError::Compacted);
        };
        if rel > self.slots.len() {
            return Err(FillError::BeyondTail);
        }
        if rel == self.slots.len() {
            self.slots.push(Slot::Pending);
        }
        self.slots[rel] = Slot::Filled(entry, Digest::ZERO);
        // An overwrite below the watermark invalidates the chain suffix.
        self.chained = self.chained.min(rel);
        self.advance_chain();
        Ok(())
    }

    /// Extend the chain watermark over every consecutively filled slot.
    fn advance_chain(&mut self) {
        let mut h = if self.chained == 0 {
            // Genesis seed, or the checkpoint's certified chain hash for
            // a based log (Digest::ZERO there too when base == 0).
            self.base_hash
        } else {
            match &self.slots[self.chained - 1] {
                Slot::Filled(_, h) => *h,
                Slot::Pending => unreachable!("watermark only covers filled slots"),
            }
        };
        while self.chained < self.slots.len() {
            match &mut self.slots[self.chained] {
                Slot::Filled(e, hash) => {
                    h = chain(h, &e.chain_input());
                    *hash = h;
                    self.chained += 1;
                }
                Slot::Pending => break,
            }
        }
    }

    /// Attach a gap certificate to a no-op slot.
    pub fn attach_gap_cert(&mut self, slot: SlotNum, cert: GapCert) {
        let Some(rel) = self.rel(slot) else { return };
        if let Some(Slot::Filled(LogEntry::NoOp(c), _)) = self.slots.get_mut(rel) {
            *c = Some(cert);
        }
    }

    /// Record that `epoch` starts at `slot`.
    pub fn record_epoch_start(&mut self, epoch: EpochNum, slot: SlotNum) {
        if !self.epoch_starts.iter().any(|(e, _)| *e == epoch) {
            self.epoch_starts.push((epoch, slot));
            self.epoch_starts.sort();
        }
    }

    /// Start slot of an epoch (0 for the initial epoch).
    pub fn epoch_start(&self, epoch: EpochNum) -> Option<SlotNum> {
        if epoch == EpochNum::INITIAL {
            return Some(SlotNum(0));
        }
        self.epoch_starts
            .iter()
            .find(|(e, _)| *e == epoch)
            .map(|(_, s)| *s)
    }

    /// All recorded epoch starts.
    pub fn epoch_starts(&self) -> &[(EpochNum, SlotNum)] {
        &self.epoch_starts
    }

    /// First unresolved (pending) slot, if any (absolute).
    pub fn first_pending(&self) -> Option<SlotNum> {
        self.slots
            .iter()
            .position(|s| matches!(s, Slot::Pending))
            .map(|i| SlotNum(self.base + i as u64))
    }

    /// Wire form of the held log for view changes, starting at the base
    /// (see `ViewChangeBody::log_base`).
    pub fn to_wire(&self) -> Vec<WireLogEntry> {
        // Wire logs are positional (index = log_base + i), so the log is
        // truncated at the first pending slot: everything after it would
        // otherwise shift positions.
        self.slots
            .iter()
            .map_while(|s| match s {
                Slot::Filled(e, _) => Some(e.to_wire()),
                Slot::Pending => None,
            })
            .collect()
    }

    /// Up to `max` consecutive resolved entries starting at `from`, for
    /// state-transfer replies. Returns the (possibly clamped) start slot
    /// and the entries; stops at the first pending slot. The start is
    /// clamped up to the base — anything below it must come from the
    /// checkpoint instead.
    pub fn wire_range(&self, from: SlotNum, max: usize) -> (SlotNum, Vec<WireLogEntry>) {
        let start = from.0.max(self.base);
        let rel = (start - self.base) as usize;
        let entries = self
            .slots
            .iter()
            .skip(rel)
            .take(max)
            .map_while(|s| match s {
                Slot::Filled(e, _) => Some(e.to_wire()),
                Slot::Pending => None,
            })
            .collect();
        (SlotNum(start), entries)
    }

    /// Length of the resolved prefix (slots filled with no pending gap
    /// before them), counting the checkpointed prefix below the base.
    /// O(1): this is exactly the hash-chain watermark.
    pub fn resolved_prefix_len(&self) -> SlotNum {
        SlotNum(self.base + self.chained as u64)
    }

    /// Drop every slot at or beyond `len` (uncommitted speculative tail
    /// discarded when an epoch-switching view change adopts the merged
    /// log, §B.1). Clamped at the base: checkpointed slots are finalized
    /// and can never be un-resolved.
    pub fn truncate(&mut self, len: SlotNum) {
        let rel = (len.0.max(self.base) - self.base) as usize;
        self.slots.truncate(rel);
        self.chained = self.chained.min(rel);
        self.advance_chain();
    }
}

/// Log fill violation.
#[derive(Debug, PartialEq, Eq, thiserror::Error)]
pub enum FillError {
    /// Attempted to fill past the tail + 1.
    #[error("slot is beyond the log tail")]
    BeyondTail,
    /// Attempted to fill a slot below the checkpointed base.
    #[error("slot is below the compacted checkpoint base")]
    Compacted,
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_aom::AomPacket;
    use neo_wire::{AomHeader, GroupId, SeqNum};

    fn oc(seq: u64, payload: &[u8]) -> OrderingCert {
        let mut header = AomHeader::unstamped(GroupId(0), neo_crypto::sha256(payload).0);
        header.seq = SeqNum(seq);
        header.auth = neo_wire::Authenticator::HmacVector(vec![[0u8; 8]; 4]);
        OrderingCert {
            packet: AomPacket {
                header,
                payload: payload.to_vec(),
            },
            confirms: vec![],
        }
    }

    #[test]
    fn appends_chain_hashes() {
        let mut log = Log::new();
        let s0 = log.append_request(oc(1, b"a"));
        let s1 = log.append_request(oc(2, b"b"));
        assert_eq!(s0, SlotNum(0));
        assert_eq!(s1, SlotNum(1));
        let h0 = log.hash_at(s0).unwrap();
        let h1 = log.hash_at(s1).unwrap();
        assert_ne!(h0, h1);
        // Same entries in another log produce the same chain.
        let mut log2 = Log::new();
        log2.append_request(oc(1, b"a"));
        log2.append_request(oc(2, b"b"));
        assert_eq!(log2.hash_at(SlotNum(1)), Some(h1));
    }

    #[test]
    fn different_order_different_hash() {
        let mut a = Log::new();
        a.append_request(oc(1, b"x"));
        a.append_request(oc(2, b"y"));
        let mut b = Log::new();
        b.append_request(oc(1, b"y"));
        b.append_request(oc(2, b"x"));
        assert_ne!(a.hash_at(SlotNum(1)), b.hash_at(SlotNum(1)));
    }

    #[test]
    fn pending_slots_block_hashes_downstream() {
        let mut log = Log::new();
        log.append_request(oc(1, b"a"));
        let gap = log.append_pending();
        assert!(log.is_pending(gap));
        assert_eq!(log.hash_at(gap), None);
        assert_eq!(log.first_pending(), Some(gap));
        assert_eq!(log.resolved_prefix_len(), SlotNum(1));
    }

    #[test]
    fn filling_a_pending_slot_rechains_suffix() {
        let mut log = Log::new();
        log.append_request(oc(1, b"a"));
        let gap = log.append_pending();
        log.fill(gap, LogEntry::Request(oc(2, b"b"))).unwrap();
        let suffix = log.append_request(oc(3, b"c"));
        // Reference: straight-through log.
        let mut reference = Log::new();
        reference.append_request(oc(1, b"a"));
        reference.append_request(oc(2, b"b"));
        reference.append_request(oc(3, b"c"));
        assert_eq!(log.hash_at(suffix), reference.hash_at(SlotNum(2)));
    }

    #[test]
    fn noop_fill_changes_hash_vs_request() {
        let mut a = Log::new();
        a.append_request(oc(1, b"a"));
        a.append_request(oc(2, b"b"));
        let mut b = Log::new();
        b.append_request(oc(1, b"a"));
        let gap = b.append_pending();
        b.fill(gap, LogEntry::NoOp(None)).unwrap();
        assert_ne!(a.hash_at(SlotNum(1)), b.hash_at(SlotNum(1)));
    }

    #[test]
    fn out_of_order_fill_defers_hashes() {
        let mut log = Log::new();
        log.append_pending();
        log.append_pending();
        // The second gap resolves first: allowed, but no hash yet.
        log.fill(SlotNum(1), LogEntry::NoOp(None)).unwrap();
        assert_eq!(log.hash_at(SlotNum(1)), None, "prefix still pending");
        log.fill(SlotNum(0), LogEntry::NoOp(None)).unwrap();
        assert!(log.hash_at(SlotNum(1)).is_some(), "chain caught up");
        assert_eq!(
            log.fill(SlotNum(5), LogEntry::NoOp(None)),
            Err(FillError::BeyondTail)
        );
    }

    #[test]
    fn appends_after_pending_get_hashes_on_resolution() {
        let mut log = Log::new();
        log.append_request(oc(1, b"a"));
        let gap = log.append_pending();
        let tail = log.append_request(oc(3, b"c"));
        assert_eq!(log.hash_at(tail), None, "blocked behind the gap");
        log.fill(gap, LogEntry::NoOp(None)).unwrap();
        assert!(log.hash_at(tail).is_some());
    }

    #[test]
    fn overwrite_request_with_noop_rechains() {
        // State-sync can overwrite a speculative request with a certified
        // no-op (§B.2 "possibly overwriting existing request").
        let mut log = Log::new();
        log.append_request(oc(1, b"a"));
        log.append_request(oc(2, b"b"));
        let before = log.hash_at(SlotNum(1)).unwrap();
        log.fill(SlotNum(0), LogEntry::NoOp(None)).unwrap();
        let after = log.hash_at(SlotNum(1)).unwrap();
        assert_ne!(before, after);
    }

    #[test]
    fn epoch_starts_are_recorded_once_and_sorted() {
        let mut log = Log::new();
        log.record_epoch_start(EpochNum(2), SlotNum(20));
        log.record_epoch_start(EpochNum(1), SlotNum(10));
        log.record_epoch_start(EpochNum(1), SlotNum(99)); // duplicate ignored
        assert_eq!(log.epoch_start(EpochNum(0)), Some(SlotNum(0)));
        assert_eq!(log.epoch_start(EpochNum(1)), Some(SlotNum(10)));
        assert_eq!(log.epoch_start(EpochNum(2)), Some(SlotNum(20)));
        assert_eq!(log.epoch_start(EpochNum(3)), None);
        assert_eq!(
            log.epoch_starts(),
            &[(EpochNum(1), SlotNum(10)), (EpochNum(2), SlotNum(20))]
        );
    }

    #[test]
    fn wire_form_truncates_at_first_pending() {
        let mut log = Log::new();
        log.append_request(oc(1, b"a"));
        log.append_pending();
        log.append_request(oc(3, b"c"));
        let wire = log.to_wire();
        assert_eq!(wire.len(), 1, "truncated at the first pending slot");
    }

    #[test]
    fn based_log_continues_the_chain_seamlessly() {
        // A log restored from a checkpoint at slot 2 must produce the
        // same hashes as one that grew from genesis.
        let mut genesis = Log::new();
        genesis.append_request(oc(1, b"a"));
        genesis.append_request(oc(2, b"b"));
        let h1 = genesis.hash_at(SlotNum(1)).unwrap();
        genesis.append_request(oc(3, b"c"));

        let mut based = Log::with_base(SlotNum(2), h1);
        assert_eq!(based.base(), SlotNum(2));
        assert_eq!(based.len(), SlotNum(2));
        assert_eq!(based.resolved_prefix_len(), SlotNum(2));
        assert_eq!(based.hash_at(SlotNum(1)), Some(h1), "certified seed");
        assert_eq!(based.hash_at(SlotNum(0)), None, "compacted away");
        let s = based.append_request(oc(3, b"c"));
        assert_eq!(s, SlotNum(2), "appends continue at absolute slots");
        assert_eq!(based.hash_at(SlotNum(2)), genesis.hash_at(SlotNum(2)));
    }

    #[test]
    fn based_log_rejects_fills_below_base() {
        let mut log = Log::with_base(SlotNum(3), Digest::ZERO);
        assert_eq!(
            log.fill(SlotNum(1), LogEntry::NoOp(None)),
            Err(FillError::Compacted)
        );
        assert_eq!(log.entry(SlotNum(1)), None);
        assert!(!log.is_pending(SlotNum(1)));
        // Truncation clamps at the base: finalized slots stay finalized.
        log.append_request(oc(4, b"x"));
        log.truncate(SlotNum(0));
        assert_eq!(log.len(), SlotNum(3));
        assert_eq!(log.resolved_prefix_len(), SlotNum(3));
    }

    #[test]
    fn wire_range_serves_suffixes() {
        let mut log = Log::new();
        log.append_request(oc(1, b"a"));
        log.append_request(oc(2, b"b"));
        log.append_request(oc(3, b"c"));
        let (start, entries) = log.wire_range(SlotNum(1), 10);
        assert_eq!(start, SlotNum(1));
        assert_eq!(entries.len(), 2);
        let (start, entries) = log.wire_range(SlotNum(1), 1);
        assert_eq!(start, SlotNum(1));
        assert_eq!(entries.len(), 1, "cap respected");
        // Pending slots stop the range.
        log.append_pending();
        log.append_request(oc(5, b"e"));
        let (_, entries) = log.wire_range(SlotNum(0), 10);
        assert_eq!(entries.len(), 3, "stops at the pending slot");
        // Requests below the base are clamped up to it.
        let based = Log::with_base(SlotNum(2), Digest::ZERO);
        let (start, entries) = based.wire_range(SlotNum(0), 10);
        assert_eq!(start, SlotNum(2));
        assert!(entries.is_empty());
    }

    #[test]
    fn first_pending_is_absolute_on_based_logs() {
        let mut log = Log::with_base(SlotNum(5), Digest::ZERO);
        log.append_request(oc(6, b"a"));
        log.append_pending();
        assert_eq!(log.first_pending(), Some(SlotNum(6)));
    }
}
