//! Global safety-invariant checking.
//!
//! The chaos harness (and any test) hands the checker read-only views of
//! the *correct* replicas and asks whether the protocol's safety
//! guarantees still hold. Crashed replicas may be included — a frozen
//! state is still a valid state — but Byzantine replicas must not be:
//! their state is allowed to be arbitrary.
//!
//! Five invariants, from the paper's correctness argument (§5, §B) plus
//! the recovery design (DESIGN.md §17):
//!
//! 1. **Committed-prefix agreement** — any two replicas agree on the log
//!    prefix both have finalized (compared by the hash-chained log hash,
//!    so one comparison covers every slot below the point).
//! 2. **Monotone delivery** — each replica's aom layer hands the protocol
//!    a dense, strictly increasing `(epoch, seq)` stream.
//! 3. **Execution agreement** — two replicas that both executed the same
//!    finalized slot produced the same `(client, request, result)`.
//! 4. **Sync ≤ commit** — no replica's sync point (§B.2) runs ahead of
//!    everything the cluster has actually resolved.
//! 5. **Recovered-prefix agreement** — a replica that rejoined from a
//!    certified checkpoint carries its chain anchor at `base - 1`; every
//!    peer whose finalized prefix covers that slot must hold the same
//!    hash there.
//!
//! Plus a per-replica sanity check: no slot executes twice without an
//! intervening rollback (`double_executions == 0`).
//!
//! Checks are pure reads: running them mid-simulation is safe and is how
//! the chaos explorer catches transient violations that later healing
//! would mask.

use crate::replica::Replica;
use neo_crypto::Digest;
use neo_wire::SlotNum;
use std::fmt;

/// A detected safety violation, carrying enough context to debug from
/// the report alone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Two replicas disagree on a log prefix both have finalized.
    PrefixDivergence {
        /// First replica id.
        a: u32,
        /// Second replica id.
        b: u32,
        /// Length of the common finalized prefix that was compared.
        prefix: u64,
        /// `a`'s log hash at the last common slot.
        hash_a: Digest,
        /// `b`'s log hash at the last common slot.
        hash_b: Digest,
    },
    /// A replica's aom delivery trace skipped or repeated a sequence
    /// number.
    NonMonotoneDelivery {
        /// Replica id.
        replica: u32,
        /// Index into the trace where the step is broken.
        index: usize,
        /// Trace entry before the break, as `(epoch, seq)`.
        prev: (u64, u64),
        /// The offending next entry.
        next: (u64, u64),
    },
    /// Two replicas executed the same finalized slot with different
    /// outcomes.
    ExecutionMismatch {
        /// First replica id.
        a: u32,
        /// Second replica id.
        b: u32,
        /// The slot both executed.
        slot: u64,
        /// `a`'s execution digest.
        digest_a: u64,
        /// `b`'s execution digest.
        digest_b: u64,
    },
    /// A replica's sync point is past everything the cluster resolved.
    SyncBeyondCommit {
        /// Replica id.
        replica: u32,
        /// Its sync point.
        sync_point: u64,
        /// The highest resolved watermark across all checked replicas.
        max_resolved: u64,
    },
    /// A replica executed some slot twice without rolling back first.
    DoubleExecution {
        /// Replica id.
        replica: u32,
        /// How many times it happened.
        count: u64,
    },
    /// A restarted replica's certified recovery anchor disagrees with a
    /// peer's finalized log at the same slot.
    RecoveredPrefixMismatch {
        /// The recovered replica.
        replica: u32,
        /// The peer it disagrees with.
        peer: u32,
        /// The recovered replica's log base (its checkpoint slot).
        base: u64,
        /// The recovered replica's certified anchor hash at `base - 1`.
        hash_replica: Digest,
        /// The peer's chained log hash at `base - 1`.
        hash_peer: Digest,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::PrefixDivergence {
                a,
                b,
                prefix,
                hash_a,
                hash_b,
            } => write!(
                f,
                "prefix divergence: replicas {a} and {b} disagree on the \
                 finalized prefix of length {prefix} ({hash_a} vs {hash_b})"
            ),
            Violation::NonMonotoneDelivery {
                replica,
                index,
                prev,
                next,
            } => write!(
                f,
                "non-monotone delivery: replica {replica} trace[{index}] \
                 jumps from (epoch {}, seq {}) to (epoch {}, seq {})",
                prev.0, prev.1, next.0, next.1
            ),
            Violation::ExecutionMismatch {
                a,
                b,
                slot,
                digest_a,
                digest_b,
            } => write!(
                f,
                "execution mismatch: replicas {a} and {b} executed slot \
                 {slot} differently ({digest_a:#018x} vs {digest_b:#018x})"
            ),
            Violation::SyncBeyondCommit {
                replica,
                sync_point,
                max_resolved,
            } => write!(
                f,
                "sync beyond commit: replica {replica} sync point \
                 {sync_point} exceeds the cluster-wide resolved watermark \
                 {max_resolved}"
            ),
            Violation::DoubleExecution { replica, count } => write!(
                f,
                "double execution: replica {replica} executed {count} \
                 slot(s) twice without an intervening rollback"
            ),
            Violation::RecoveredPrefixMismatch {
                replica,
                peer,
                base,
                hash_replica,
                hash_peer,
            } => write!(
                f,
                "recovered prefix mismatch: replica {replica} rejoined at \
                 base {base} with certified anchor {hash_replica}, but peer \
                 {peer}'s finalized log hash there is {hash_peer}"
            ),
        }
    }
}

/// Accumulates violations across repeated checks, deduplicating so a
/// persistent violation observed at every checkpoint reports once.
#[derive(Default)]
pub struct InvariantChecker {
    violations: Vec<Violation>,
}

impl InvariantChecker {
    /// An empty checker.
    pub fn new() -> Self {
        InvariantChecker::default()
    }

    /// Run every invariant over `replicas` (correct replicas only — see
    /// the module docs), recording any violation not already recorded.
    /// Returns how many *new* violations this pass found.
    pub fn check(&mut self, replicas: &[&Replica]) -> usize {
        let found = check_replicas(replicas);
        let before = self.violations.len();
        for v in found {
            if !self.violations.contains(&v) {
                self.violations.push(v);
            }
        }
        self.violations.len() - before
    }

    /// Everything recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// True when no check has ever failed.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One stateless pass over all invariants.
pub fn check_replicas(replicas: &[&Replica]) -> Vec<Violation> {
    let mut out = Vec::new();
    check_monotone_delivery(replicas, &mut out);
    check_prefix_agreement(replicas, &mut out);
    check_execution_agreement(replicas, &mut out);
    check_sync_vs_commit(replicas, &mut out);
    check_double_execution(replicas, &mut out);
    check_recovered_prefix(replicas, &mut out);
    out
}

/// The log prefix a replica has finalized: everything at or below its
/// sync point that it has also locally resolved. (A replica may learn a
/// sync point from a 2f quorum before its own log catches up; the
/// not-yet-resolved part cannot be hash-compared.)
fn finalized_prefix(r: &Replica) -> SlotNum {
    let resolved = r.log().resolved_prefix_len();
    if r.sync_point() < resolved {
        r.sync_point()
    } else {
        resolved
    }
}

fn check_prefix_agreement(replicas: &[&Replica], out: &mut Vec<Violation>) {
    for (i, ra) in replicas.iter().enumerate() {
        for rb in replicas.iter().skip(i + 1) {
            let fa = finalized_prefix(ra);
            let fb = finalized_prefix(rb);
            let common = if fa < fb { fa } else { fb };
            if common.0 == 0 {
                continue;
            }
            let last = SlotNum(common.0 - 1);
            // The log hash is chained (§5.3): equality at the last slot
            // of the prefix implies equality of every slot below it.
            let (Some(ha), Some(hb)) = (ra.log().hash_at(last), rb.log().hash_at(last)) else {
                continue;
            };
            if ha != hb {
                out.push(Violation::PrefixDivergence {
                    a: ra.id().0,
                    b: rb.id().0,
                    prefix: common.0,
                    hash_a: ha,
                    hash_b: hb,
                });
            }
        }
    }
}

fn check_monotone_delivery(replicas: &[&Replica], out: &mut Vec<Violation>) {
    for r in replicas {
        if r.delivery_trace_saturated() {
            continue; // capped trace: a gap here could be the cap itself
        }
        let trace = r.delivery_trace();
        for (i, pair) in trace.windows(2).enumerate() {
            let (pe, ps) = pair[0];
            let (ne, ns) = pair[1];
            let ok = ne > pe || (ne == pe && ns == ps + 1);
            if !ok {
                out.push(Violation::NonMonotoneDelivery {
                    replica: r.id().0,
                    index: i + 1,
                    prev: (pe, ps),
                    next: (ne, ns),
                });
                break; // one break per replica is enough to debug
            }
        }
    }
}

fn check_execution_agreement(replicas: &[&Replica], out: &mut Vec<Violation>) {
    for (i, ra) in replicas.iter().enumerate() {
        for rb in replicas.iter().skip(i + 1) {
            let fa = finalized_prefix(ra);
            let fb = finalized_prefix(rb);
            let common = (if fa < fb { fa } else { fb }).index();
            let da = ra.exec_digests();
            let db = rb.exec_digests();
            let upto = common.min(da.len()).min(db.len());
            for (slot, (xa, xb)) in da[..upto].iter().zip(&db[..upto]).enumerate() {
                // `None` on one side is legal (no-op slot, or execution
                // lagging behind the finalized prefix on that replica);
                // only a Some/Some mismatch is a divergence.
                if let (Some(xa), Some(xb)) = (xa, xb) {
                    if xa != xb {
                        out.push(Violation::ExecutionMismatch {
                            a: ra.id().0,
                            b: rb.id().0,
                            slot: slot as u64,
                            digest_a: *xa,
                            digest_b: *xb,
                        });
                        break;
                    }
                }
            }
        }
    }
}

fn check_sync_vs_commit(replicas: &[&Replica], out: &mut Vec<Violation>) {
    // Cluster-level: an individual replica may legally trail the sync
    // quorum, but a sync point past *everything* the cluster resolved
    // would mean finalizing slots nobody committed.
    let max_resolved = replicas
        .iter()
        .map(|r| r.resolved_watermark().0)
        .max()
        .unwrap_or(0);
    for r in replicas {
        if r.sync_point().0 > max_resolved {
            out.push(Violation::SyncBeyondCommit {
                replica: r.id().0,
                sync_point: r.sync_point().0,
                max_resolved,
            });
        }
    }
}

/// `recovered-prefix-matches`: a non-zero log base proves the replica
/// rejoined from a certified checkpoint, whose chain anchor sits at
/// `base - 1`. Any peer that has *finalized* through that slot must hold
/// the identical hash — a mismatch means state transfer installed a
/// prefix the cluster never finalized. (Chained hashes make the single
/// anchor comparison cover every compacted slot below it.)
fn check_recovered_prefix(replicas: &[&Replica], out: &mut Vec<Violation>) {
    for ra in replicas {
        let base = ra.log().base();
        if base.0 == 0 {
            continue; // never recovered, or an empty-disk restart
        }
        let anchor = SlotNum(base.0 - 1);
        let Some(ha) = ra.log().hash_at(anchor) else {
            continue;
        };
        for rb in replicas {
            if rb.id() == ra.id() || finalized_prefix(rb) < base {
                continue;
            }
            let Some(hb) = rb.log().hash_at(anchor) else {
                continue;
            };
            if ha != hb {
                out.push(Violation::RecoveredPrefixMismatch {
                    replica: ra.id().0,
                    peer: rb.id().0,
                    base: base.0,
                    hash_replica: ha,
                    hash_peer: hb,
                });
            }
        }
    }
}

fn check_double_execution(replicas: &[&Replica], out: &mut Vec<Violation>) {
    for r in replicas {
        if r.stats.double_executions > 0 {
            out.push(Violation::DoubleExecution {
                replica: r.id().0,
                count: r.stats.double_executions,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NeoConfig;
    use neo_app::EchoApp;
    use neo_crypto::{CostModel, SystemKeys};
    use neo_wire::ReplicaId;

    fn replica(id: u32) -> Replica {
        let cfg = NeoConfig::new(1);
        let keys = SystemKeys::new(7, cfg.n, cfg.f);
        Replica::new(
            ReplicaId(id),
            cfg,
            &keys,
            CostModel::FREE,
            Box::new(EchoApp::new()),
        )
    }

    #[test]
    fn fresh_replicas_satisfy_every_invariant() {
        let rs: Vec<Replica> = (0..4).map(replica).collect();
        let views: Vec<&Replica> = rs.iter().collect();
        assert!(check_replicas(&views).is_empty());
    }

    #[test]
    fn recovered_prefix_anchor_must_match_peers() {
        use crate::log::Log;
        use neo_crypto::sha256;
        // Two replicas rejoined at base 4 from the same certified
        // anchor: every check is silent.
        let mut a = replica(0);
        let mut b = replica(1);
        a.set_log_for_tests(Log::with_base(SlotNum(4), sha256(b"anchor")));
        b.set_log_for_tests(Log::with_base(SlotNum(4), sha256(b"anchor")));
        assert!(check_replicas(&[&a, &b]).is_empty());

        // A third replica claims the same base with a different anchor:
        // the recovered-prefix check names it and the disagreeing peer.
        let mut c = replica(2);
        c.set_log_for_tests(Log::with_base(SlotNum(4), sha256(b"forged")));
        let found = check_replicas(&[&a, &b, &c]);
        assert!(
            found.iter().any(|v| matches!(
                v,
                Violation::RecoveredPrefixMismatch {
                    replica: 2,
                    base: 4,
                    ..
                }
            )),
            "expected a recovered-prefix mismatch for replica 2: {found:?}"
        );
        let msg = found
            .iter()
            .find(|v| matches!(v, Violation::RecoveredPrefixMismatch { .. }))
            .map(ToString::to_string)
            .unwrap_or_default();
        assert!(msg.contains("recovered prefix mismatch"));

        // A fresh (base-0) replica that has finalized nothing is never
        // compared against — no false positives on genesis starts.
        let d = replica(3);
        assert!(check_replicas(&[&a, &d]).is_empty());
    }

    #[test]
    fn checker_deduplicates_persistent_violations() {
        let mut r = replica(0);
        r.stats.double_executions = 2;
        let mut chk = InvariantChecker::new();
        assert_eq!(chk.check(&[&r]), 1);
        assert_eq!(chk.check(&[&r]), 0, "same violation reports once");
        assert!(!chk.ok());
        assert_eq!(chk.violations().len(), 1);
        assert!(chk.violations()[0].to_string().contains("double execution"));
    }
}
