//! Request batching policy and the adaptive batch-size controller.
//!
//! Batching amortizes NeoBFT's per-slot overhead — one aom digest, one
//! authenticator verification, one reply quorum — over many client ops:
//! the client packs ops into one batch envelope occupying one aom slot,
//! and the replica fans per-op results back out in a single reply
//! (cf. Chop Chop's batching of authenticated broadcast, and FeBFT's
//! proposer-side batching).
//!
//! The [`AdaptiveBatcher`] tunes the *target* batch size to the offered
//! load, mirroring the FPGA signing-ratio controller in `crates/switch`:
//! a periodic integer-arithmetic adjustment moves the target halfway
//! toward the number of ops expected to arrive within one flush window
//! at the observed arrival rate. Under saturating load the target ramps
//! to `max_batch` (big batches, high throughput); when the client goes
//! idle it decays back to 1 (small batches, minimal added latency).

/// Client-side batching parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Hard cap on ops per batch envelope.
    pub max_batch: usize,
    /// Maximum ops outstanding client-side (queued + in flight). The
    /// `submit` API returns backpressure beyond this.
    pub window: usize,
    /// Flush a partial batch this long after its first op was queued
    /// (0 = flush immediately, i.e. never wait for more ops).
    pub flush_timeout_ns: u64,
    /// Let the [`AdaptiveBatcher`] tune the target size below
    /// `max_batch` according to offered load.
    pub adaptive: bool,
}

impl BatchPolicy {
    /// No batching: one op per aom slot, one op outstanding — the exact
    /// closed-loop behaviour of the pre-batching client.
    pub const SINGLE: BatchPolicy = BatchPolicy {
        max_batch: 1,
        window: 1,
        flush_timeout_ns: 0,
        adaptive: false,
    };

    /// Fixed batches of `n` ops with a 100 µs partial-batch flush.
    pub fn fixed(n: usize) -> Self {
        let n = n.max(1);
        BatchPolicy {
            max_batch: n,
            window: 2 * n,
            flush_timeout_ns: if n == 1 { 0 } else { 100_000 },
            adaptive: false,
        }
    }

    /// Load-adaptive batches of up to `max` ops.
    pub fn adaptive(max: usize) -> Self {
        BatchPolicy {
            adaptive: true,
            ..BatchPolicy::fixed(max)
        }
    }

    /// True if this policy ever forms multi-op batches.
    pub fn batching(&self) -> bool {
        self.max_batch > 1
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy::SINGLE
    }
}

/// How often the controller re-estimates the arrival rate.
const ADJUST_INTERVAL_NS: u64 = 200_000;

/// Load-adaptive batch-size controller (integer arithmetic throughout —
/// the protocol crates ban floating-point state, neo-lint R4).
#[derive(Clone, Debug)]
pub struct AdaptiveBatcher {
    policy: BatchPolicy,
    /// Current target batch size in `[1, policy.max_batch]`.
    target: u64,
    /// Ops observed since the last adjustment.
    arrived: u64,
    /// Virtual time of the last adjustment.
    last_adjust_ns: u64,
    /// Adjustments performed (observability).
    pub adjustments: u64,
}

impl AdaptiveBatcher {
    /// Start at the smallest batch size; ramp up only under load.
    pub fn new(policy: BatchPolicy) -> Self {
        AdaptiveBatcher {
            policy,
            target: 1,
            arrived: 0,
            last_adjust_ns: 0,
            adjustments: 0,
        }
    }

    /// The size at which the driver should flush a batch. Fixed policies
    /// always use `max_batch`; adaptive ones use the controller target.
    pub fn target(&self) -> usize {
        if self.policy.adaptive {
            self.target as usize
        } else {
            self.policy.max_batch
        }
    }

    /// Record that `n` ops were offered at virtual time `now_ns` (n = 0
    /// is an idle tick and drives decay). Re-estimates the target once
    /// per adjustment interval.
    pub fn on_ops(&mut self, n: u64, now_ns: u64) {
        self.arrived += n;
        let dt = now_ns.saturating_sub(self.last_adjust_ns);
        if dt < ADJUST_INTERVAL_NS {
            return;
        }
        // Ops expected within one flush window at the observed rate. A
        // zero flush timeout means "never wait", so size the batch to
        // one adjustment interval's worth of arrivals instead.
        let window_ns = if self.policy.flush_timeout_ns > 0 {
            self.policy.flush_timeout_ns
        } else {
            ADJUST_INTERVAL_NS
        };
        let expected = self.arrived.saturating_mul(window_ns) / dt.max(1);
        let goal = expected.clamp(1, self.policy.max_batch as u64);
        // Integer smoothing: move halfway toward the goal, rounding away
        // from the current value so the target can always reach 1 and
        // max_batch exactly.
        self.target = if goal >= self.target {
            (self.target + goal).div_ceil(2)
        } else {
            (self.target + goal) / 2
        }
        .clamp(1, self.policy.max_batch as u64);
        self.arrived = 0;
        self.last_adjust_ns = now_ns;
        self.adjustments += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_policy_is_the_closed_loop_client() {
        let p = BatchPolicy::SINGLE;
        assert_eq!(p.max_batch, 1);
        assert_eq!(p.window, 1);
        assert_eq!(p.flush_timeout_ns, 0);
        assert!(!p.adaptive);
        assert!(!p.batching());
        assert_eq!(BatchPolicy::default(), p);
        assert_eq!(BatchPolicy::fixed(1), p, "fixed(1) degenerates to SINGLE");
    }

    #[test]
    fn fixed_policy_uses_max_batch_as_target() {
        let mut b = AdaptiveBatcher::new(BatchPolicy::fixed(16));
        assert_eq!(b.target(), 16);
        b.on_ops(0, 10_000_000); // idle ticks don't move a fixed target
        assert_eq!(b.target(), 16);
    }

    #[test]
    fn adaptive_ramps_up_under_load() {
        // 2 ops/µs offered against a 100 µs flush window: the controller
        // should ramp to max_batch (200 ops would arrive per window).
        let mut b = AdaptiveBatcher::new(BatchPolicy::adaptive(64));
        assert_eq!(b.target(), 1, "starts small");
        let mut now = 0;
        for _ in 0..50 {
            now += ADJUST_INTERVAL_NS;
            b.on_ops(2 * ADJUST_INTERVAL_NS / 1_000, now);
        }
        assert_eq!(b.target(), 64, "saturating load fills batches");
        assert!(b.adjustments >= 6, "ramp is smoothed over adjustments");
    }

    #[test]
    fn adaptive_decays_when_idle() {
        let mut b = AdaptiveBatcher::new(BatchPolicy::adaptive(64));
        let mut now = 0;
        for _ in 0..50 {
            now += ADJUST_INTERVAL_NS;
            b.on_ops(2 * ADJUST_INTERVAL_NS / 1_000, now);
        }
        assert_eq!(b.target(), 64);
        // Offered load stops: idle ticks decay the target back to 1.
        for _ in 0..50 {
            now += ADJUST_INTERVAL_NS;
            b.on_ops(0, now);
        }
        assert_eq!(b.target(), 1, "idle client pays no batching latency");
    }

    #[test]
    fn adaptive_tracks_moderate_load_between_extremes() {
        // ~80 ops/ms against a 100 µs window ⇒ ≈8 ops per window.
        let mut b = AdaptiveBatcher::new(BatchPolicy::adaptive(64));
        let mut now = 0;
        for _ in 0..100 {
            now += ADJUST_INTERVAL_NS;
            b.on_ops(16, now);
        }
        let t = b.target();
        assert!((6..=10).contains(&t), "target ≈ load × window, got {t}");
    }

    #[test]
    fn sub_interval_calls_accumulate_without_adjusting() {
        let mut b = AdaptiveBatcher::new(BatchPolicy::adaptive(64));
        for i in 0..10 {
            b.on_ops(100, i * 1_000); // all within one adjustment interval
        }
        assert_eq!(b.adjustments, 0);
        assert_eq!(b.target(), 1);
        b.on_ops(100, ADJUST_INTERVAL_NS);
        assert_eq!(b.adjustments, 1);
        assert!(b.target() > 1, "accumulated arrivals count at adjustment");
    }
}
