//! Durability and crash-recovery types.
//!
//! Two on-disk artifacts back a replica (stored through the sans-IO
//! [`neo_sim::Store`] boundary):
//!
//! * **The write-ahead log** — one [`WalRecord`] per resolved slot (and
//!   per epoch start), appended *before* the reply that acknowledges the
//!   slot leaves the replica. Framing, checksumming, and torn-tail
//!   healing live in `neo-store`; this module only defines the record
//!   payloads.
//! * **The checkpoint** — a [`CheckpointData`] snapshot of everything a
//!   replica needs to resume from a sync-point (§B.2), certified by the
//!   2f+1 sync votes that carried its digest ([`WireCheckpoint`]).
//!
//! A restarting replica loads its checkpoint, replays the WAL suffix,
//! and then asks peers for anything newer (`NeoMsg::StateQuery` /
//! `StateReply`). A far-behind replica with no disk state takes the same
//! path with an empty starting point. Either way the recovery state
//! machine runs `Recovering → FetchingCheckpoint → Replaying → Active`
//! (tracked in `replica.rs`).

use crate::messages::{EpochCert, SyncBody, WireLogEntry};
use neo_crypto::{sha256, Digest, Signature};
use neo_wire::{encode, ClientId, EpochNum, RequestId, SlotNum};
use serde::{Deserialize, Serialize};

/// One record in the durable consensus log.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum WalRecord {
    /// A resolved slot: the entry plus the certificate that proves it
    /// (ordering certificate for requests, gap certificate for no-ops).
    /// Replay re-fills the in-memory log without re-running agreement.
    Slot {
        /// Absolute slot number.
        slot: SlotNum,
        /// The resolved entry.
        entry: WireLogEntry,
    },
    /// An epoch started at a slot, with the 2f+1 epoch-start votes that
    /// certify it — the restarted replica needs the certificate (not
    /// just the position) to carry the epoch into future view-change
    /// messages.
    Epoch {
        /// The epoch.
        epoch: EpochNum,
        /// Its first slot.
        start_slot: SlotNum,
        /// The certifying epoch-start votes.
        cert: EpochCert,
    },
}

impl WalRecord {
    /// Encode for appending to the store. Falls back to an empty record
    /// (healed away as torn tail on replay) if encoding fails — our own
    /// wire types do not fail to encode in practice.
    pub fn to_bytes(&self) -> Vec<u8> {
        encode(self).unwrap_or_default()
    }

    /// Decode a record read back from the store.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        neo_wire::decode(bytes).ok()
    }
}

/// Everything a replica needs to resume execution from a sync-point,
/// serialized deterministically so equal state ⇒ equal digest across
/// replicas.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct CheckpointData {
    /// The sync-point slot: every slot `< slot` is finalized and covered
    /// by this checkpoint.
    pub slot: SlotNum,
    /// Hash-chained log hash at `slot - 1` — the seed a based log
    /// continues the chain from.
    pub chain_hash: Digest,
    /// Application snapshot ([`neo_app::App::snapshot`]).
    pub app: Vec<u8>,
    /// Client table rows `(client, first_request, last_request, slot)`,
    /// sorted by client id for determinism. Cached reply bytes are
    /// deliberately excluded: `Reply.view` differs across replicas that
    /// executed the same slot in different views, and the re-send
    /// optimization is not worth a digest mismatch.
    pub clients: Vec<(ClientId, RequestId, RequestId, SlotNum)>,
    /// Epoch starts at or below the checkpoint slot.
    pub epoch_starts: Vec<(EpochNum, SlotNum)>,
}

impl CheckpointData {
    /// The digest carried in `SyncBody::state_digest`: a hash over the
    /// full deterministic encoding, so 2f+1 matching digests certify the
    /// chain hash, the app state, *and* the client table at once.
    pub fn digest(&self) -> Digest {
        sha256(&encode(self).unwrap_or_default())
    }
}

/// A checkpoint plus the sync votes that certify it: at least 2f+1
/// `SyncBody` signatures from distinct replicas, each carrying
/// `slot == data.slot` and `state_digest == data.digest()`.
///
/// This is both the unit persisted to the store's checkpoint area and
/// the unit served to recovering peers in `NeoMsg::StateReply` — a
/// restarting replica verifies its *own* disk checkpoint exactly as it
/// would a peer's.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct WireCheckpoint {
    /// The checkpointed state.
    pub data: CheckpointData,
    /// Certifying sync votes.
    pub cert: Vec<(SyncBody, Signature)>,
}

impl WireCheckpoint {
    /// Encode for the store's checkpoint area.
    pub fn to_bytes(&self) -> Vec<u8> {
        encode(self).unwrap_or_default()
    }

    /// Decode a checkpoint read from disk or a peer.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        neo_wire::decode(bytes).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_wire::ViewId;

    fn data() -> CheckpointData {
        CheckpointData {
            slot: SlotNum(8),
            chain_hash: sha256(b"chain"),
            app: b"app-state".to_vec(),
            clients: vec![(ClientId(1), RequestId(1), RequestId(4), SlotNum(6))],
            epoch_starts: vec![(EpochNum(1), SlotNum(4))],
        }
    }

    #[test]
    fn digest_is_deterministic_and_binds_every_field() {
        let d = data();
        assert_eq!(d.digest(), d.digest());
        assert_eq!(d.digest(), d.clone().digest());

        let mut m = data();
        m.slot = SlotNum(9);
        assert_ne!(m.digest(), d.digest(), "slot is bound");
        let mut m = data();
        m.chain_hash = sha256(b"other");
        assert_ne!(m.digest(), d.digest(), "chain hash is bound");
        let mut m = data();
        m.app[0] ^= 1;
        assert_ne!(m.digest(), d.digest(), "app snapshot is bound");
        let mut m = data();
        m.clients[0].3 = SlotNum(7);
        assert_ne!(m.digest(), d.digest(), "client table is bound");
        let mut m = data();
        m.epoch_starts.clear();
        assert_ne!(m.digest(), d.digest(), "epoch starts are bound");
    }

    #[test]
    fn wal_record_roundtrip() {
        let rec = WalRecord::Epoch {
            epoch: EpochNum(2),
            start_slot: SlotNum(12),
            cert: vec![],
        };
        assert_eq!(WalRecord::from_bytes(&rec.to_bytes()), Some(rec));
        assert_eq!(WalRecord::from_bytes(&[0xFF; 3]), None);
    }

    #[test]
    fn wire_checkpoint_roundtrip() {
        let cp = WireCheckpoint {
            data: data(),
            cert: vec![(
                SyncBody {
                    view: ViewId::INITIAL,
                    replica: neo_wire::ReplicaId(0),
                    slot: SlotNum(8),
                    drops: vec![],
                    state_digest: data().digest(),
                },
                Signature::empty(),
            )],
        };
        assert_eq!(WireCheckpoint::from_bytes(&cp.to_bytes()), Some(cp));
        assert_eq!(WireCheckpoint::from_bytes(b"junk"), None);
    }
}
