//! Protocol configuration shared by replicas and clients.

use crate::batch::BatchPolicy;
use neo_aom::{NetworkTrust, ReceiverAuth};
use neo_sim::{MICROS, MILLIS};
use neo_wire::GroupId;

/// NeoBFT deployment parameters.
#[derive(Clone, Debug)]
pub struct NeoConfig {
    /// Total replicas (n = 3f + 1).
    pub n: usize,
    /// Fault bound.
    pub f: usize,
    /// The aom group replicas receive on.
    pub group: GroupId,
    /// Authenticator scheme the sequencer uses.
    pub auth: ReceiverAuth,
    /// Network trust model (§3.1).
    pub trust: NetworkTrust,
    /// How long a receiver waits on a sequence-number gap before
    /// delivering a drop-notification.
    pub aom_gap_timeout_ns: u64,
    /// Query retransmission interval during gap recovery (§5.4).
    pub query_retry_ns: u64,
    /// Gap-agreement progress timeout before suspecting the leader.
    pub gap_agreement_timeout_ns: u64,
    /// View-change message retransmission interval.
    pub view_change_resend_ns: u64,
    /// How long a replica holding a unicast-fallback request waits for
    /// aom delivery before asking the config service for a sequencer
    /// failover (§5.5).
    pub unicast_watchdog_ns: u64,
    /// Client reply timeout before retrying (and falling back to
    /// unicast).
    pub client_retry_ns: u64,
    /// State synchronization interval in log entries (§B.2's N).
    pub sync_interval: u64,
    /// Batch confirm messages per destination (§6.2 Byzantine-network
    /// optimization).
    pub batch_confirms: bool,
    /// Model the aom-hm subgroup fan-out (§4.3): with G receivers the
    /// switch emits ⌈G/4⌉ partial-vector packets to *each* receiver, who
    /// assembles the full vector. When enabled, replicas charge the
    /// dispatch cost of the extra partial packets — this is what makes
    /// Neo-HM throughput fall with group size in Figure 8.
    pub emulate_hm_subgroups: bool,
    /// Per-partial-packet dispatch cost charged when emulating subgroups.
    pub subgroup_packet_cost_ns: u64,
    /// Client-side request batching (defaults to [`BatchPolicy::SINGLE`],
    /// the pre-batching closed-loop behaviour).
    pub batch: BatchPolicy,
    /// Pipelined speculative execution: replicas verify slot *k+1*'s
    /// authenticator on the parallel lane while slot *k* executes.
    pub pipeline_verify: bool,
    /// Real verify-pool workers per replica (tokio runtime only). `0`
    /// keeps verification inline; the simulator models parallelism with
    /// the meter instead and must stay at `0` for determinism.
    pub verify_workers: usize,
}

impl NeoConfig {
    /// A deployment with n = 3f+1 replicas and data-center timeouts.
    pub fn new(f: usize) -> Self {
        NeoConfig {
            n: 3 * f + 1,
            f,
            group: GroupId(0),
            auth: ReceiverAuth::Hmac,
            trust: NetworkTrust::Trusted,
            aom_gap_timeout_ns: 100 * MICROS,
            query_retry_ns: 200 * MICROS,
            gap_agreement_timeout_ns: 10 * MILLIS,
            view_change_resend_ns: 5 * MILLIS,
            unicast_watchdog_ns: 20 * MILLIS,
            client_retry_ns: 5 * MILLIS,
            sync_interval: 128,
            batch_confirms: true,
            emulate_hm_subgroups: false,
            subgroup_packet_cost_ns: 1_100,
            batch: BatchPolicy::SINGLE,
            pipeline_verify: false,
            verify_workers: 0,
        }
    }

    /// Quorum size (2f + 1).
    pub fn quorum(&self) -> usize {
        2 * self.f + 1
    }

    /// Switch to the public-key aom variant.
    pub fn with_pk(mut self) -> Self {
        self.auth = ReceiverAuth::PublicKey;
        self
    }

    /// Switch to the Byzantine-network trust model.
    pub fn with_byzantine_network(mut self) -> Self {
        self.trust = NetworkTrust::Byzantine;
        self
    }

    /// Enable request batching (and, for multi-op batches, pipelined
    /// speculative verification on the replicas).
    pub fn with_batch(mut self, batch: BatchPolicy) -> Self {
        self.pipeline_verify = batch.batching();
        self.batch = batch;
        self
    }

    /// Dispatch replica-side verification to a real worker pool of
    /// `workers` threads (tokio runtime deployments only; simulator
    /// configs must leave this at 0). Implies `pipeline_verify`.
    pub fn with_verify_workers(mut self, workers: usize) -> Self {
        self.verify_workers = workers;
        if workers > 0 {
            self.pipeline_verify = true;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n_and_quorum_follow_f() {
        let c = NeoConfig::new(1);
        assert_eq!(c.n, 4);
        assert_eq!(c.quorum(), 3);
        let c = NeoConfig::new(33);
        assert_eq!(c.n, 100);
        assert_eq!(c.quorum(), 67);
    }

    #[test]
    fn builders_set_modes() {
        let c = NeoConfig::new(1).with_pk().with_byzantine_network();
        assert!(matches!(c.auth, ReceiverAuth::PublicKey));
        assert_eq!(c.trust, NetworkTrust::Byzantine);
    }

    #[test]
    fn default_batch_policy_is_single() {
        let c = NeoConfig::new(1);
        assert_eq!(c.batch, BatchPolicy::SINGLE);
        assert!(!c.pipeline_verify);
    }

    #[test]
    fn verify_workers_default_off_and_imply_pipelining() {
        let c = NeoConfig::new(1);
        assert_eq!(c.verify_workers, 0);
        let c = NeoConfig::new(1).with_verify_workers(4);
        assert_eq!(c.verify_workers, 4);
        assert!(c.pipeline_verify);
        let c = NeoConfig::new(1).with_verify_workers(0);
        assert!(!c.pipeline_verify);
    }

    #[test]
    fn with_batch_enables_pipelining_only_for_real_batches() {
        let c = NeoConfig::new(1).with_batch(BatchPolicy::fixed(16));
        assert_eq!(c.batch.max_batch, 16);
        assert!(c.pipeline_verify);
        let c = NeoConfig::new(1).with_batch(BatchPolicy::SINGLE);
        assert!(!c.pipeline_verify);
    }
}
