//! The NeoBFT replica (§5).
//!
//! One state machine implements normal operation (§5.3), gap agreement
//! (§5.4), view changes with epoch certificates (§5.5, §B.1), and state
//! synchronization (§B.2). All network effects flow through the sans-IO
//! [`Context`], so the same replica runs under the simulator and the
//! tokio transport.

use crate::config::NeoConfig;
use crate::error::ProtocolError;
use crate::log::{Log, LogEntry};
use crate::messages::{
    gap_decision_digest, sign_body, verify_body, EpochCert, EpochStartBody, GapDecisionBody,
    GapDropBody, GapVoteBody, NeoMsg, Reply, SignedBatch, StateQueryBody, SyncBody,
    ViewChangeBody, WireLogEntry,
};
use crate::recovery::{CheckpointData, WalRecord, WireCheckpoint};
use crate::verify::{PoolVerifyTask, VerifyLane, VerifyWork};
use neo_aom::{AomReceiver, ConfigMsg, Delivery, Envelope, OrderingCert, SignedConfirm};
use neo_app::App;
use neo_crypto::{
    CostModel, Digest, NodeCrypto, Principal, ReorderBuffer, Signature, SystemKeys, VerifyPool,
    VerifyTask,
};
use neo_sim::obs::Event;
use neo_sim::{Context, Node, TimerId};
use neo_wire::{Addr, ClientId, EpochNum, ReplicaId, RequestId, SeqNum, SlotNum, ViewId};
use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Replica fault behaviour for experiments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReplicaBehavior {
    /// Follow the protocol.
    Correct,
    /// Byzantine-silent: receive everything, send nothing (the
    /// "non-responding Byzantine replica" of the Zyzzyva-F experiment —
    /// NeoBFT is expected to shrug it off).
    Mute,
}

/// Counters exported to the experiment harness.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplicaStats {
    /// Operations executed (including re-executions).
    pub executed: u64,
    /// Replies sent to clients.
    pub replies_sent: u64,
    /// Gap slots committed as no-op.
    pub noops_committed: u64,
    /// Gap slots recovered with a certificate (query or agreement).
    pub gaps_recovered: u64,
    /// Application rollbacks performed.
    pub rollbacks: u64,
    /// View changes entered.
    pub view_changes: u64,
    /// Messages processed.
    pub messages_in: u64,
    /// Sync points advanced.
    pub sync_points: u64,
    /// Recoverable protocol errors (dropped instead of panicking).
    pub protocol_errors: u64,
    /// Slots executed while already marked executed — must stay zero
    /// (the chaos harness treats any increment as a safety violation).
    pub double_executions: u64,
    /// State-transfer payloads rejected: tampered snapshots, uncertified
    /// checkpoints, or suffix entries whose certificates fail.
    pub state_transfer_rejected: u64,
    /// Checkpoints this replica certified (2f+1 matching sync digests).
    pub checkpoints_certified: u64,
    /// State-transfer replies served to recovering peers.
    pub state_replies_served: u64,
}

/// Pending timer meanings.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TimerPayload {
    /// aom gap: declare a drop for the missing seq if still missing.
    AomGap(SeqNum),
    /// Resend a query for a missing slot.
    QueryRetry(SlotNum),
    /// Gap agreement for this slot is stuck; suspect the leader.
    GapAgreement(SlotNum),
    /// Resend the current view-change message.
    ViewChangeResend,
    /// A unicast-fallback request never arrived via aom; suspect the
    /// sequencer.
    UnicastWatchdog(ClientId, RequestId),
    /// Flush the accumulated confirm batch (Byzantine-network mode).
    ConfirmFlush,
    /// Re-broadcast the state-transfer query while still recovering.
    StateTransferRetry,
}

/// Phases of the crash-recovery state machine (DESIGN.md §17).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecoveryPhase {
    /// Constructed from disk state; local WAL replay not yet executed.
    Recovering,
    /// Local replay done; state query broadcast, awaiting peer replies.
    FetchingCheckpoint,
    /// Installing a fetched checkpoint and log suffix.
    Replaying,
    /// Fully rejoined the cluster.
    Active,
}

/// Recovery bookkeeping for a replica constructed from a store.
struct RecoveryState {
    phase: RecoveryPhase,
    /// Slot the replica resumed from: its durable checkpoint's sync
    /// point, or 0 when it restarted without one. Raised if a newer
    /// checkpoint is installed from a peer during recovery.
    base: SlotNum,
    /// Virtual time the state transfer started (for `recovery_ns`).
    started_at: Option<u64>,
    retry_timer: Option<TimerId>,
}

/// Per-slot gap-agreement state.
#[derive(Default)]
struct GapState {
    /// Leader: the first valid ordering certificate received.
    recv: Option<OrderingCert>,
    /// Leader: gap-drop votes. BTreeMap: vote sets end up inside signed
    /// decisions and certificates, so their order is wire-visible and
    /// must not depend on hash seeds (neo-lint R1).
    drops: BTreeMap<ReplicaId, (GapDropBody, Signature)>,
    /// Leader: decision already broadcast.
    decision_sent: bool,
    /// All: validated decision from the leader (`true` = recv).
    decision: Option<(bool, Option<OrderingCert>, GapDecisionBody)>,
    /// All: prepare votes.
    prepares: BTreeMap<ReplicaId, (GapVoteBody, Signature)>,
    /// All: commit votes.
    commits: BTreeMap<ReplicaId, (GapVoteBody, Signature)>,
    /// All: my prepare / commit already sent.
    prepared: bool,
    committed: bool,
    /// I answered a gap-find with gap-drop: must ignore query-replies and
    /// wait for the agreement outcome (§5.4).
    voted_drop: bool,
    /// The leader asked about this slot before I reached it.
    find_pending: bool,
    /// Timers.
    query_timer: Option<TimerId>,
    agreement_timer: Option<TimerId>,
    /// Resolved: slot filled and unblocked.
    resolved: bool,
}

/// Client-table entry for at-most-once semantics and reply caching.
///
/// One entry per client suffices even with batching: the client drives
/// at most one batch at a time (depth-1 pipelining), so batches arrive
/// in `first_request` order and the entry always describes the latest.
struct ClientEntry {
    /// First request id of the last executed batch.
    first_request: RequestId,
    /// Last request id of the last executed batch.
    last_request: RequestId,
    /// Shared buffer: re-sending a cached reply is a refcount bump.
    cached_reply: Option<neo_wire::Payload>,
    slot: SlotNum,
}

/// View-change collection state.
#[derive(Default)]
struct ViewChangeState {
    /// Valid view-change messages per proposed view. Both levels are
    /// BTreeMaps: the quorum selected in `maybe_start_view` goes on the
    /// wire, so the pick must be order-stable (neo-lint R1).
    msgs: BTreeMap<ViewId, BTreeMap<ReplicaId, (ViewChangeBody, Signature)>>,
    /// My own view-change message for the view I am proposing.
    own: Option<(ViewChangeBody, Signature)>,
    resend_timer: Option<TimerId>,
    /// view-start already processed for this view.
    started: bool,
    /// Epoch-start votes: (epoch, slot) → replica → signed body.
    /// BTreeMaps: the votes become the broadcast epoch certificate.
    epoch_votes: BTreeMap<(EpochNum, SlotNum), BTreeMap<ReplicaId, (EpochStartBody, Signature)>>,
    /// My pending epoch entry after a merge, awaiting the certificate.
    awaiting_epoch: Option<(EpochNum, SlotNum)>,
}

/// Protocol status.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Normal,
    ViewChange,
}

/// The NeoBFT replica node.
pub struct Replica {
    cfg: NeoConfig,
    id: ReplicaId,
    /// Every replica except this one, in id order — the broadcast
    /// destination set, computed once (membership is static per config).
    peers: Vec<ReplicaId>,
    crypto: NodeCrypto,
    aom: AomReceiver,
    app: Box<dyn App>,
    log: Log,
    view: ViewId,
    status: Status,
    /// First log slot of the current epoch.
    epoch_base: SlotNum,
    /// Next slot to execute.
    exec_cursor: SlotNum,
    /// Ops executed per slot (for rollback accounting): slot → number of
    /// batch ops applied to the app (0 = not executed / no-op / pending).
    executed_ops: Vec<u32>,
    /// BTreeMap: checkpoint capture walks this map into the certified
    /// snapshot, so iteration order must match across replicas.
    client_table: BTreeMap<ClientId, ClientEntry>,
    /// BTreeMap: `maybe_sync` walks this map and the result is signed.
    gaps: BTreeMap<SlotNum, GapState>,
    timers: HashMap<TimerId, TimerPayload>,
    aom_gap_timer: Option<(SeqNum, TimerId)>,
    vc: ViewChangeState,
    /// Epoch certificates I have collected (for my view-change messages).
    epoch_certs: Vec<(EpochNum, SlotNum, EpochCert)>,
    /// Unicast-fallback requests awaiting aom delivery (point lookups
    /// only; size-capped in `on_request_unicast`).
    unicast_watch: HashMap<(ClientId, RequestId), TimerId>,
    /// State-sync votes per slot, with their signatures (matching
    /// signatures become the checkpoint certificate). BTreeMaps:
    /// `check_sync` iterates both levels when applying certified no-ops.
    sync_votes: BTreeMap<SlotNum, BTreeMap<ReplicaId, (SyncBody, Signature)>>,
    sync_point: SlotNum,
    last_sync_slot: SlotNum,
    /// Durable WAL + checkpoint device (None = no durability, as in the
    /// pure-protocol unit tests). Appends buffer here; the executor
    /// flushes after each handler, write-ahead of the outgoing sends.
    store: Option<Box<dyn neo_sim::Store>>,
    /// Checkpoints captured at sync-interval boundaries with their
    /// digests, awaiting certification by 2f+1 matching sync votes.
    /// Invalidated by rollbacks past their slot; size-capped.
    pending_checkpoints: BTreeMap<SlotNum, (CheckpointData, Digest)>,
    /// The newest certified checkpoint — persisted to the store and
    /// served to recovering peers.
    stable_checkpoint: Option<WireCheckpoint>,
    /// Crash-recovery state machine; `Some` only on replicas constructed
    /// via [`Replica::with_store`] (or kicked into recovery by a merged
    /// view-change log starting past their tail).
    recovery: Option<RecoveryState>,
    /// Packets stamped in a future epoch, buffered until this replica
    /// finishes the epoch-switching view change and installs that epoch
    /// (without this, replicas that enter the new epoch late would miss
    /// its first sequence numbers and immediately re-enter gap agreement).
    future_epoch: std::collections::BTreeMap<EpochNum, Vec<neo_aom::AomPacket>>,
    /// Byzantine-network mode: confirms awaiting a batched flush (§6.2).
    pending_confirms: Vec<neo_aom::SignedConfirm>,
    confirm_flush_timer: Option<TimerId>,
    /// Last virtual time an aom delivery reached the application —
    /// sustained silence here (not one lost packet) is what implicates
    /// the sequencer (§4.2).
    last_aom_delivery: u64,
    /// Every `(epoch, seq)` the aom layer delivered (messages and drop
    /// notifications alike), in delivery order. The chaos harness checks
    /// this trace for monotonicity; bounded by [`Self::TRACE_CAP`].
    delivery_trace: Vec<(u64, u64)>,
    /// The trace hit its cap and stopped recording (checkers must then
    /// skip trace-based invariants rather than report false gaps).
    trace_saturated: bool,
    /// Per-slot digest of (client, request id, result) for executed
    /// request slots; `None` for no-ops, pending and rolled-back slots.
    /// Two correct replicas that both executed slot `s` must agree here.
    exec_digests: Vec<Option<u64>>,
    /// High-water mark of the resolved log prefix (monotone even across
    /// epoch-switch truncation, unlike `log.resolved_prefix_len()`).
    resolved_watermark: SlotNum,
    /// Where authenticator verification runs (DESIGN.md §16): inline on
    /// the dispatch path, inline with parallel-lane charges (the sim's
    /// pool model), or on a real worker pool.
    lane: VerifyLane,
    /// Re-injects verify completions in strict dispatch order — the
    /// in-order invariant that makes the pooled lane observably
    /// equivalent to inline verification.
    verify_reorder: ReorderBuffer<VerifyWork>,
    /// Pool-precomputed client batch-MAC verdicts awaiting
    /// `execute_slot`, keyed by aom header digest; consumed on first
    /// lookup and capped at [`Self::PREVERIFIED_CAP`].
    preverified_auth: HashMap<[u8; 32], bool>,
    /// Fault behaviour.
    pub behavior: ReplicaBehavior,
    /// Counters.
    pub stats: ReplicaStats,
}

impl Replica {
    /// Build replica `id` with its application instance.
    pub fn new(
        id: ReplicaId,
        cfg: NeoConfig,
        keys: &SystemKeys,
        costs: CostModel,
        app: Box<dyn App>,
    ) -> Self {
        let crypto = NodeCrypto::new(Principal::Replica(id), keys, costs);
        let mut aom = AomReceiver::new(
            cfg.group,
            id,
            id.index(),
            cfg.f,
            cfg.auth.clone(),
            cfg.trust,
            keys,
        );
        // Pipelined speculation: verify slot k+1's authenticator on the
        // parallel lane while slot k executes (enabled with batching).
        aom.set_pipelined(cfg.pipeline_verify);
        // Lane selection: a per-replica pool in the real runtime
        // (verify_workers > 0), the meter's parallel lane in the sim.
        let lane = if cfg.verify_workers > 0 {
            VerifyLane::Pool(Arc::new(VerifyPool::new(cfg.verify_workers)))
        } else if cfg.pipeline_verify {
            VerifyLane::SimParallel
        } else {
            VerifyLane::Serial
        };
        let peers = (0..cfg.n as u32)
            .map(ReplicaId)
            .filter(|r| *r != id)
            .collect();
        Replica {
            cfg,
            id,
            peers,
            crypto,
            aom,
            app,
            log: Log::new(),
            view: ViewId::INITIAL,
            status: Status::Normal,
            epoch_base: SlotNum(0),
            exec_cursor: SlotNum(0),
            executed_ops: Vec::new(),
            client_table: BTreeMap::new(),
            gaps: BTreeMap::new(),
            timers: HashMap::new(),
            aom_gap_timer: None,
            vc: ViewChangeState::default(),
            epoch_certs: Vec::new(),
            unicast_watch: HashMap::new(),
            sync_votes: BTreeMap::new(),
            sync_point: SlotNum(0),
            last_sync_slot: SlotNum(0),
            store: None,
            pending_checkpoints: BTreeMap::new(),
            stable_checkpoint: None,
            recovery: None,
            future_epoch: std::collections::BTreeMap::new(),
            pending_confirms: Vec::new(),
            confirm_flush_timer: None,
            last_aom_delivery: 0,
            delivery_trace: Vec::new(),
            trace_saturated: false,
            exec_digests: Vec::new(),
            resolved_watermark: SlotNum(0),
            lane,
            verify_reorder: ReorderBuffer::new(),
            preverified_auth: HashMap::new(),
            behavior: ReplicaBehavior::Correct,
            stats: ReplicaStats::default(),
        }
    }

    /// Build replica `id` on top of a durable store, resuming from
    /// whatever the store holds: the certified checkpoint (verified
    /// exactly like one fetched from a peer) is installed, the WAL
    /// suffix is replayed into the log, and the recovery state machine
    /// is armed — the first event the replica handles broadcasts a
    /// `StateQuery` so peers can fill in everything newer. An empty
    /// store yields a fresh replica that still runs the (trivially
    /// short) recovery handshake, so far-behind restarts and genesis
    /// starts share one code path.
    pub fn with_store(
        id: ReplicaId,
        cfg: NeoConfig,
        keys: &SystemKeys,
        costs: CostModel,
        app: Box<dyn App>,
        store: Box<dyn neo_sim::Store>,
    ) -> Self {
        let mut r = Self::new(id, cfg, keys, costs, app);
        let mut base = SlotNum(0);
        if let Some(blob) = store.checkpoint() {
            if let Some(wire) = WireCheckpoint::from_bytes(&blob) {
                // A disk checkpoint gets no more trust than a remote one:
                // the 2f+1 sync-vote certificate must verify and the app
                // must accept the snapshot, or we fall back to plain WAL
                // replay from slot 0.
                if r.verify_checkpoint(&wire) && r.app.restore(&wire.data.app) {
                    base = wire.data.slot;
                    r.log = Log::with_base(base, wire.data.chain_hash);
                    for (e, s) in &wire.data.epoch_starts {
                        r.log.record_epoch_start(*e, *s);
                    }
                    r.exec_cursor = base;
                    r.sync_point = base;
                    r.last_sync_slot = base;
                    r.resolved_watermark = base;
                    r.executed_ops = vec![0; base.index()];
                    r.exec_digests = vec![None; base.index()];
                    for (c, first, last, slot) in &wire.data.clients {
                        r.client_table.insert(
                            *c,
                            ClientEntry {
                                first_request: *first,
                                last_request: *last,
                                // Reply bytes are not checkpointed (they
                                // embed the executing view); at-most-once
                                // survives, the re-send optimization does
                                // not.
                                cached_reply: None,
                                slot: *slot,
                            },
                        );
                    }
                    if let Some((body, _)) = wire.cert.first() {
                        r.view = body.view;
                    }
                    r.stable_checkpoint = Some(wire);
                }
            }
        }
        r.replay_wal_records(&store.log_records(), base);
        // Fast-forward the ordering layer past everything restored: the
        // aom receiver must not wait for (or gap-declare) sequence
        // numbers the log already holds.
        let (epoch, next_seq) = r.epoch_and_seq_of(r.log.len());
        if epoch > r.aom.epoch() {
            r.aom.install_epoch(epoch);
        }
        r.epoch_base = SlotNum(r.log.len().0 + 1 - next_seq.0);
        r.aom.fast_forward(next_seq);
        r.store = Some(store);
        r.recovery = Some(RecoveryState {
            phase: RecoveryPhase::Recovering,
            base,
            started_at: None,
            retry_timer: None,
        });
        r
    }

    /// Replay durable WAL records into the in-memory log (records below
    /// the checkpoint base were superseded by the checkpoint and are
    /// skipped). Uses the raw log fill — no context is available during
    /// construction, and no rollback can occur while the cursor sits at
    /// the base.
    // neo-lint: verified(records come from this replica's own checksummed WAL — written by itself pre-crash, torn tails healed by neo-store framing)
    fn replay_wal_records(&mut self, records: &[Vec<u8>], base: SlotNum) {
        for raw in records {
            match WalRecord::from_bytes(raw) {
                Some(WalRecord::Slot { slot, entry }) => {
                    if slot < base {
                        continue;
                    }
                    while self.log.len() <= slot {
                        self.log.append_pending();
                        self.executed_ops.push(0);
                        self.exec_digests.push(None);
                    }
                    let e = match entry {
                        WireLogEntry::Request(oc) => LogEntry::Request(oc),
                        WireLogEntry::NoOp(cert) if cert.is_empty() => LogEntry::NoOp(None),
                        WireLogEntry::NoOp(cert) => LogEntry::NoOp(Some(cert)),
                    };
                    let _ = self.log.fill(slot, e);
                }
                Some(WalRecord::Epoch {
                    epoch,
                    start_slot,
                    cert,
                }) => {
                    self.log.record_epoch_start(epoch, start_slot);
                    if !self.epoch_certs.iter().any(|(e, _, _)| *e == epoch) {
                        self.epoch_certs.push((epoch, start_slot, cert));
                    }
                }
                None => {} // unreadable record: healed tail artifact, skip
            }
        }
        if self.executed_ops.len() < self.log.len().index() {
            self.executed_ops.resize(self.log.len().index(), 0);
        }
        if self.exec_digests.len() < self.log.len().index() {
            self.exec_digests.resize(self.log.len().index(), None);
        }
    }

    /// The epoch governing `slot` and the aom sequence number it maps
    /// to, derived from recorded epoch starts.
    fn epoch_and_seq_of(&self, slot: SlotNum) -> (EpochNum, SeqNum) {
        let mut epoch = EpochNum::INITIAL;
        let mut start = SlotNum(0);
        for (e, s) in self.log.epoch_starts() {
            if *s <= slot && *e >= epoch {
                epoch = *e;
                start = *s;
            }
        }
        (epoch, SeqNum(slot.0 - start.0 + 1))
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Current view.
    pub fn view(&self) -> ViewId {
        self.view
    }

    /// Current log length.
    pub fn log_len(&self) -> SlotNum {
        self.log.len()
    }

    /// Read-only access to the log (tests and harness).
    pub fn log(&self) -> &Log {
        &self.log
    }

    /// Current sync point (§B.2).
    pub fn sync_point(&self) -> SlotNum {
        self.sync_point
    }

    /// The application (downcast by tests to inspect state).
    pub fn app(&self) -> &dyn App {
        self.app.as_ref()
    }

    /// Next slot to execute (the speculative execution cursor).
    pub fn exec_cursor(&self) -> SlotNum {
        self.exec_cursor
    }

    /// `(epoch, seq)` of every aom delivery, in delivery order.
    pub fn delivery_trace(&self) -> &[(u64, u64)] {
        &self.delivery_trace
    }

    /// Whether the delivery trace hit its cap and stopped recording.
    pub fn delivery_trace_saturated(&self) -> bool {
        self.trace_saturated
    }

    /// Per-slot execution digests (`None` = no-op / pending / undone).
    pub fn exec_digests(&self) -> &[Option<u64>] {
        &self.exec_digests
    }

    /// Highest resolved-prefix length this replica has ever observed.
    pub fn resolved_watermark(&self) -> SlotNum {
        self.resolved_watermark
    }

    /// The slot this replica resumed from after a restart (`None` if it
    /// never ran recovery, `Some(SlotNum(0))` for an empty-disk restart).
    /// A non-zero base proves the replica rejoined from a certified
    /// checkpoint instead of replaying from slot 0.
    pub fn recovery_base(&self) -> Option<SlotNum> {
        self.recovery.as_ref().map(|r| r.base)
    }

    /// Current recovery phase (`None` if this replica never recovered).
    pub fn recovery_phase(&self) -> Option<RecoveryPhase> {
        self.recovery.as_ref().map(|r| r.phase)
    }

    /// Sync-point slot of the newest certified checkpoint, if any.
    pub fn stable_checkpoint_slot(&self) -> Option<SlotNum> {
        self.stable_checkpoint.as_ref().map(|cp| cp.data.slot)
    }

    /// The aom receiver's counters (invariant checking and tests).
    pub fn aom_stats(&self) -> neo_aom::AomReceiverStats {
        self.aom.stats()
    }

    /// Test-only: replace the log wholesale (recovery invariant tests
    /// build based logs directly), aligning the sync point and resolved
    /// watermark with the base the way checkpoint installation does.
    #[cfg(test)]
    pub(crate) fn set_log_for_tests(&mut self, log: Log) {
        self.sync_point = self.sync_point.max(log.base());
        self.last_sync_slot = self.last_sync_slot.max(log.base());
        self.resolved_watermark = self.resolved_watermark.max(log.base());
        self.exec_cursor = self.exec_cursor.max(log.base());
        self.log = log;
    }

    fn leader(&self) -> ReplicaId {
        self.view.leader(self.cfg.n)
    }

    fn is_leader(&self) -> bool {
        self.leader() == self.id
    }

    fn broadcast(&self, msg: &NeoMsg, ctx: &mut dyn Context) {
        if self.behavior == ReplicaBehavior::Mute {
            return;
        }
        // Single-encode invariant: one allocation, N refcount bumps.
        ctx.broadcast(&self.peers, msg.to_payload());
    }

    fn send_to(&self, r: ReplicaId, msg: &NeoMsg, ctx: &mut dyn Context) {
        if self.behavior == ReplicaBehavior::Mute {
            return;
        }
        ctx.send(Addr::Replica(r), msg.to_payload());
    }

    /// Record a recoverable protocol error: count it, never panic.
    fn note_error(&mut self, err: ProtocolError, ctx: &mut dyn Context) {
        self.stats.protocol_errors += 1;
        ctx.metrics().incr("replica.protocol_errors");
        let _ = err;
    }

    fn arm(&mut self, delay: u64, payload: TimerPayload, ctx: &mut dyn Context) -> TimerId {
        // The timer kind discriminates in on_timer via the payload map;
        // the u32 kind itself is unused (always 1 = "protocol timer").
        let id = ctx.set_timer(delay, 1);
        self.timers.insert(id, payload);
        id
    }

    fn disarm(&mut self, id: TimerId, ctx: &mut dyn Context) {
        self.timers.remove(&id);
        ctx.cancel_timer(id);
    }

    // ------------------------------------------------------------------
    // aom delivery path (§5.3)
    // ------------------------------------------------------------------

    /// Confirms per batch before an eager flush (§6.2 batching).
    const CONFIRM_BATCH: usize = 8;
    /// How long a confirm may wait for batching before it is flushed.
    const CONFIRM_FLUSH_NS: u64 = 40 * neo_sim::MICROS;
    /// How far past the log tail remote messages may create per-slot
    /// agreement/sync state (neo-lint R5: Byzantine peers naming
    /// far-future slots must not grow maps at will).
    const SLOT_WINDOW: u64 = 4096;
    /// How many epochs past the installed one packets and votes are
    /// buffered.
    const FUTURE_EPOCH_WINDOW: u64 = 4;
    /// Concurrent unicast-fallback watchdog cap.
    const UNICAST_WATCH_MAX: usize = 4096;
    /// Distinct proposed views / epoch positions buffered during view
    /// changes.
    const VC_BUFFER_MAX: usize = 64;
    /// Delivery-trace entries kept before recording stops.
    const TRACE_CAP: usize = 1 << 20;
    /// Pool-preverified client-MAC verdicts kept at once (one per
    /// in-flight packet; neo-lint R5 growth bound).
    const PREVERIFIED_CAP: usize = 4096;
    /// Log entries served per state-transfer reply (a recovering replica
    /// re-queries for more; bounds reply size and serve cost).
    const STATE_SUFFIX_MAX: usize = 1024;
    /// Uncertified checkpoints kept at once (oldest dropped; neo-lint R5
    /// growth bound for the recovery buffers).
    const PENDING_CHECKPOINT_CAP: usize = 16;

    /// Record one aom delivery in the trace (bounded).
    fn record_delivery(&mut self, epoch: u64, seq: u64) {
        if self.delivery_trace.len() >= Self::TRACE_CAP {
            self.trace_saturated = true;
            return;
        }
        self.delivery_trace.push((epoch, seq));
    }

    /// Digest binding a slot's execution outcome to the request identity,
    /// for cross-replica comparison.
    fn exec_digest(client: ClientId, request_id: RequestId, result: &[u8]) -> u64 {
        let mut buf = Vec::with_capacity(16 + result.len());
        buf.extend_from_slice(&client.0.to_le_bytes());
        buf.extend_from_slice(&request_id.0.to_le_bytes());
        buf.extend_from_slice(result);
        let d = neo_crypto::sha256(&buf);
        let mut first = [0u8; 8];
        first.copy_from_slice(&d.0[..8]);
        u64::from_le_bytes(first)
    }

    /// R5 growth bound shared by the gap and sync handlers; a rejected
    /// slot is counted, not processed.
    fn slot_in_window(&self, slot: SlotNum, ctx: &mut dyn Context) -> bool {
        if slot.0 > self.log.len().0 + Self::SLOT_WINDOW {
            ctx.metrics().incr("replica.bounded_rejects");
            return false;
        }
        true
    }

    // ------------------------------------------------------------------
    // Durability: WAL appends, checkpoint capture and certification
    // ------------------------------------------------------------------

    /// Buffer one record on the durable WAL (no-op without a store). The
    /// executor flushes the buffer after this handler completes, before
    /// any of the handler's sends depart — write-ahead of the ack.
    fn wal_append(&mut self, record: &WalRecord) {
        if let Some(store) = &mut self.store {
            store.append(&record.to_bytes());
        }
    }

    /// Capture a checkpoint when the execution cursor sits on a
    /// sync-interval boundary `S`: the app state, chain hash, and client
    /// table then cover exactly slots `< S` on every replica that
    /// reached `S`, so the digests are comparable across the cluster.
    fn maybe_capture_checkpoint(&mut self) {
        let interval = self.cfg.sync_interval;
        if interval == 0 || self.store.is_none() {
            return;
        }
        let s = self.exec_cursor;
        if s.0 == 0 || s.0 % interval != 0 || self.pending_checkpoints.contains_key(&s) {
            return;
        }
        if self
            .stable_checkpoint
            .as_ref()
            .is_some_and(|cp| cp.data.slot >= s)
        {
            return;
        }
        let Some(app) = self.app.snapshot() else {
            return; // snapshot-less app: recovery falls back to full replay
        };
        let Some(chain_hash) = self.log.hash_at(SlotNum(s.0 - 1)) else {
            return;
        };
        // BTreeMap iteration: already sorted by client id, as the
        // checkpoint digest requires.
        let clients: Vec<(ClientId, RequestId, RequestId, SlotNum)> = self
            .client_table
            .iter()
            .filter(|(_, e)| e.slot < s)
            .map(|(c, e)| (*c, e.first_request, e.last_request, e.slot))
            .collect();
        let epoch_starts: Vec<(EpochNum, SlotNum)> = self
            .log
            .epoch_starts()
            .iter()
            .filter(|(_, start)| *start <= s)
            .copied()
            .collect();
        let data = CheckpointData {
            slot: s,
            chain_hash,
            app,
            clients,
            epoch_starts,
        };
        let digest = data.digest();
        if self.pending_checkpoints.len() >= Self::PENDING_CHECKPOINT_CAP {
            self.pending_checkpoints.pop_first();
        }
        // neo-lint: allow(R5, capped at PENDING_CHECKPOINT_CAP with oldest-dropped eviction above)
        self.pending_checkpoints.insert(s, (data, digest));
    }

    /// Validate a checkpoint certificate: 2f+1 distinct replicas signed
    /// sync votes at the checkpoint's slot carrying its exact digest.
    /// Used identically for peer-served checkpoints and our own disk.
    fn verify_checkpoint(&self, wire: &WireCheckpoint) -> bool {
        let digest = wire.data.digest();
        let mut seen = std::collections::BTreeSet::new();
        for (body, sig) in &wire.cert {
            if body.slot != wire.data.slot || body.state_digest != digest {
                continue;
            }
            if verify_body(body, sig, Principal::Replica(body.replica), &self.crypto) {
                seen.insert(body.replica);
            }
        }
        seen.len() >= self.cfg.quorum()
    }

    /// Compact the durable WAL below a certified checkpoint: rewrite it
    /// to just the records for slots `>= slot` (plus epoch certificates
    /// still above the cut). The in-memory log keeps its base — absolute
    /// slot indexing for live replicas never shifts; only restarted
    /// replicas run with a non-zero base.
    fn compact_wal(&mut self, slot: SlotNum, ctx: &mut dyn Context) {
        if self.store.is_none() {
            return;
        }
        let mut records: Vec<Vec<u8>> = Vec::new();
        for s in slot.0..self.log.len().0 {
            if let Some(entry) = self.log.entry(SlotNum(s)) {
                records.push(
                    WalRecord::Slot {
                        slot: SlotNum(s),
                        entry: entry.to_wire(),
                    }
                    .to_bytes(),
                );
            }
        }
        for (epoch, start, cert) in &self.epoch_certs {
            if *start >= slot {
                records.push(
                    WalRecord::Epoch {
                        epoch: *epoch,
                        start_slot: *start,
                        cert: cert.clone(),
                    }
                    .to_bytes(),
                );
            }
        }
        if let Some(store) = &mut self.store {
            store.reset_log(&records);
        }
        ctx.metrics().incr("store.compactions");
    }

    // ------------------------------------------------------------------
    // Crash recovery: state transfer (DESIGN.md §17)
    // ------------------------------------------------------------------

    /// If this replica was constructed from a store and has not yet run
    /// the recovery handshake, run it now: execute whatever the local
    /// WAL replay resolved, then ask every peer for a newer certified
    /// checkpoint and the log suffix. Called at the top of every event
    /// entry point, so the first event after a restart (typically the
    /// INIT timer) kicks recovery before anything else is processed.
    fn maybe_kick_recovery(&mut self, ctx: &mut dyn Context) {
        if !matches!(
            self.recovery.as_ref().map(|r| r.phase),
            Some(RecoveryPhase::Recovering)
        ) {
            return;
        }
        // Local replay execution: re-derive app state and replies for
        // everything the WAL already resolved.
        self.try_execute(ctx);
        let body = StateQueryBody {
            replica: self.id,
            have: self.log.len(),
        };
        let sig = sign_body(&body, &self.crypto);
        self.broadcast(&NeoMsg::StateQuery(body, sig), ctx);
        let t = self.arm(self.cfg.query_retry_ns, TimerPayload::StateTransferRetry, ctx);
        let now = ctx.now();
        if let Some(rec) = &mut self.recovery {
            rec.phase = RecoveryPhase::FetchingCheckpoint;
            rec.started_at = Some(now);
            rec.retry_timer = Some(t);
        }
    }

    /// Serve a recovering peer: our stable checkpoint if it is newer
    /// than what the peer holds, plus a resolved log suffix. The reply
    /// is unsigned — the checkpoint certificate and per-entry
    /// ordering/gap certificates authenticate themselves, and the peer
    /// verifies all of them before installing anything.
    fn on_state_query(&mut self, body: StateQueryBody, sig: Signature, ctx: &mut dyn Context) {
        if body.replica == self.id {
            return;
        }
        if !verify_body(&body, &sig, Principal::Replica(body.replica), &self.crypto) {
            return;
        }
        let checkpoint = self
            .stable_checkpoint
            .as_ref()
            .filter(|cp| cp.data.slot > body.have)
            .cloned();
        let from = checkpoint
            .as_ref()
            .map(|cp| cp.data.slot)
            .unwrap_or(body.have);
        let (suffix_start, suffix) = self.log.wire_range(from, Self::STATE_SUFFIX_MAX);
        self.send_to(
            body.replica,
            &NeoMsg::StateReply {
                checkpoint,
                suffix_start,
                suffix,
            },
            ctx,
        );
        self.stats.state_replies_served += 1;
        ctx.metrics().incr("replica.state_replies_served");
    }

    /// Count a rejected state-transfer payload and return to the
    /// fetching phase so the retry timer keeps asking other peers.
    fn reject_state_transfer(&mut self, ctx: &mut dyn Context) {
        self.stats.state_transfer_rejected += 1;
        ctx.metrics().incr("replica.state_transfer_rejected");
        if let Some(rec) = &mut self.recovery {
            if rec.phase == RecoveryPhase::Replaying {
                rec.phase = RecoveryPhase::FetchingCheckpoint;
            }
        }
    }

    /// Install a *verified* checkpoint fetched from a peer, replacing
    /// all local state below its slot. Returns false (leaving state
    /// untouched where possible) if the app refuses the snapshot.
    // neo-lint: verified(both callers — with_store and on_state_reply — run verify_checkpoint on the 2f+1 sync-vote certificate before installing)
    fn install_checkpoint(&mut self, wire: &WireCheckpoint, ctx: &mut dyn Context) -> bool {
        if !self.app.restore(&wire.data.app) {
            return false;
        }
        let slot = wire.data.slot;
        // Per-slot agreement state below the new base is obsolete.
        let gap_timers: Vec<TimerId> = self
            .gaps
            .values_mut()
            .flat_map(|g| g.query_timer.take().into_iter().chain(g.agreement_timer.take()))
            .collect();
        for t in gap_timers {
            self.disarm(t, ctx);
        }
        self.gaps.clear();
        self.log = Log::with_base(slot, wire.data.chain_hash);
        for (e, s) in &wire.data.epoch_starts {
            self.log.record_epoch_start(*e, *s);
        }
        self.executed_ops = vec![0; slot.index()];
        self.exec_digests = vec![None; slot.index()];
        self.exec_cursor = slot;
        self.client_table.clear();
        for (c, first, last, cslot) in &wire.data.clients {
            // neo-lint: allow(R5, rebuilt from the certified checkpoint after the clear() above — size is the 2f+1-certified client table, not attacker growth)
            self.client_table.insert(
                *c,
                ClientEntry {
                    first_request: *first,
                    last_request: *last,
                    cached_reply: None,
                    slot: *cslot,
                },
            );
        }
        self.sync_point = self.sync_point.max(slot);
        self.last_sync_slot = self.last_sync_slot.max(slot);
        self.resolved_watermark = self.resolved_watermark.max(slot);
        if let Some(rec) = &mut self.recovery {
            rec.base = rec.base.max(slot);
        }
        // Persist: the checkpoint supersedes every WAL record below it.
        if let Some(store) = &mut self.store {
            store.put_checkpoint(&wire.to_bytes());
            store.reset_log(&[]);
        }
        self.stable_checkpoint = Some(wire.clone());
        self.pending_checkpoints.retain(|s, _| *s > slot);
        true
    }

    /// Handle a state-transfer reply: verify the checkpoint certificate
    /// and every suffix entry's ordering/gap certificate, install what
    /// verifies, and rejoin. Any failed check rejects the whole reply —
    /// a Byzantine peer cannot smuggle a tampered snapshot or an
    /// uncertified entry past this point.
    fn on_state_reply(
        &mut self,
        checkpoint: Option<WireCheckpoint>,
        suffix_start: SlotNum,
        suffix: Vec<WireLogEntry>,
        ctx: &mut dyn Context,
    ) {
        if !matches!(
            self.recovery.as_ref().map(|r| r.phase),
            Some(RecoveryPhase::FetchingCheckpoint)
        ) {
            return; // not recovering (or already past this phase)
        }
        if let Some(rec) = &mut self.recovery {
            rec.phase = RecoveryPhase::Replaying;
        }
        if let Some(wire) = &checkpoint {
            if !self.verify_checkpoint(wire) {
                self.reject_state_transfer(ctx);
                return;
            }
            if wire.data.slot > self.log.len() && !self.install_checkpoint(wire, ctx) {
                self.reject_state_transfer(ctx);
                return;
            }
        }
        // Verify every suffix entry against its slot position before
        // touching the log: reject-all-or-install-all.
        let mut verified: Vec<(SlotNum, LogEntry)> = Vec::with_capacity(suffix.len());
        for (i, entry) in suffix.iter().enumerate() {
            let slot = SlotNum(suffix_start.0 + i as u64);
            if slot < self.log.base() {
                continue; // covered by the checkpoint just installed
            }
            match entry {
                WireLogEntry::Request(oc) => {
                    let (epoch, seq) = self.epoch_and_seq_of(slot);
                    if oc.packet.header.seq != seq
                        || !self.aom.verify_cert_in_epoch(oc, epoch, &self.crypto)
                    {
                        self.reject_state_transfer(ctx);
                        return;
                    }
                    verified.push((slot, LogEntry::Request(oc.clone())));
                }
                WireLogEntry::NoOp(cert) => {
                    if !self.verify_gap_cert(slot, cert) {
                        self.reject_state_transfer(ctx);
                        return;
                    }
                    verified.push((slot, LogEntry::NoOp(Some(cert.clone()))));
                }
            }
        }
        for (slot, entry) in verified {
            self.fill_slot(slot, entry, ctx);
        }
        // Re-align the ordering layer with the (possibly longer) log.
        let (epoch, next_seq) = self.epoch_and_seq_of(self.log.len());
        if epoch > self.aom.epoch() {
            self.aom.install_epoch(epoch);
        }
        self.epoch_base = SlotNum(self.log.len().0 + 1 - next_seq.0);
        self.aom.fast_forward(next_seq);
        // Rejoined: the first valid reply completes recovery (an empty
        // reply counts — the gap machinery covers any straggler slots).
        let (started, retry) = match &mut self.recovery {
            Some(rec) => {
                rec.phase = RecoveryPhase::Active;
                (rec.started_at.take(), rec.retry_timer.take())
            }
            None => (None, None),
        };
        if let Some(t) = retry {
            self.disarm(t, ctx);
        }
        if let Some(t0) = started {
            ctx.metrics()
                .observe("replica.recovery_ns", ctx.now().saturating_sub(t0));
        }
        self.try_execute(ctx);
        self.maybe_sync(ctx);
        self.pump_aom(ctx);
    }

    // ------------------------------------------------------------------
    // Verify stage (DESIGN.md §16): dispatch / absorb
    // ------------------------------------------------------------------

    /// Dispatch an aom packet's authenticator check to the verify stage.
    /// Admission (group/epoch/window/staleness) happens here, on the
    /// dispatch path; the crypto runs wherever the lane says.
    fn dispatch_packet_verify(&mut self, pkt: neo_aom::AomPacket, ctx: &mut dyn Context) {
        match self.aom.submit_verify(pkt) {
            Ok(job) => self.dispatch_verify(VerifyWork::Packet(job), ctx),
            Err(_) => {} // admission failures are counted by the receiver
        }
    }

    /// Dispatch a batch of confirm signatures as one verify unit: the
    /// whole batch verifies under a single reorder ticket through
    /// `NodeCrypto::verify_batch`.
    fn dispatch_confirm_verify(&mut self, confirms: Vec<SignedConfirm>, ctx: &mut dyn Context) {
        let mut jobs = Vec::with_capacity(confirms.len());
        for sc in confirms {
            match self.aom.submit_confirm(sc) {
                Ok(Some(job)) => jobs.push(job),
                Ok(None) | Err(_) => {} // trusted network / counted rejects
            }
        }
        if jobs.is_empty() {
            return;
        }
        self.dispatch_verify(VerifyWork::Confirms(jobs), ctx);
    }

    /// Route one verify unit through the lane. Inline lanes run the task
    /// synchronously and complete it immediately; the pool lane submits
    /// and completions return through [`Node::on_async`]. Both flow
    /// through the same reorder buffer, so ordering is identical.
    fn dispatch_verify(&mut self, work: VerifyWork, ctx: &mut dyn Context) {
        {
            let m = ctx.metrics();
            if m.enabled() {
                m.observe("verify.batch_size", work.len() as u64);
            }
        }
        let ticket = self.verify_reorder.issue();
        let mut task = PoolVerifyTask::new(
            work,
            self.crypto.clone(),
            self.id.index(),
            self.lane.parallel(),
            matches!(self.lane, VerifyLane::Pool(_)),
        );
        let pool = self.lane.pool().cloned();
        match pool {
            Some(pool) => {
                pool.submit(ticket, Box::new(task));
                let m = ctx.metrics();
                if m.enabled() {
                    m.set_gauge("verify.queue_depth", pool.queue_depth() as i64);
                }
            }
            None => {
                task.run();
                self.absorb_task(ticket, task, ctx);
            }
        }
    }

    /// Absorb one finished verify task: stash the piggybacked
    /// request-auth verdict, then release completed units through the
    /// reorder buffer in strict ticket (dispatch) order and apply their
    /// verdicts to the aom receiver. This is the in-order re-injection
    /// invariant: a unit completes into the protocol exactly where
    /// inline verification would have put it.
    // neo-lint: verified(every task absorbed here already ran its authenticator checks in PoolVerifyTask::run before its verdict is applied)
    fn absorb_task(&mut self, ticket: u64, task: PoolVerifyTask, ctx: &mut dyn Context) {
        if let Some((digest, ok)) = task.request_auth {
            self.cache_request_auth(digest, ok, ctx);
        }
        self.verify_reorder.accept(ticket, task.work, ctx.now());
        while let Some((work, stall)) = self.verify_reorder.pop_ready(ctx.now()) {
            {
                let m = ctx.metrics();
                if m.enabled() {
                    m.observe("verify.reorder_stall_ns", stall);
                }
            }
            match work {
                VerifyWork::Packet(job) => {
                    let _ = self.aom.complete_verify(job, &self.crypto);
                }
                VerifyWork::Confirms(jobs) => {
                    for job in jobs {
                        let _ = self.aom.complete_confirm(job);
                    }
                }
            }
        }
    }

    /// Record a pool-verified client-MAC verdict (bounded).
    fn cache_request_auth(&mut self, digest: [u8; 32], ok: bool, ctx: &mut dyn Context) {
        if self.preverified_auth.len() >= Self::PREVERIFIED_CAP {
            ctx.metrics().incr("replica.bounded_rejects");
            return;
        }
        // neo-lint: allow(R5, size-capped above; entries are consumed by execute_slot)
        self.preverified_auth.insert(digest, ok);
    }

    fn pump_aom(&mut self, ctx: &mut dyn Context) {
        // Queue confirms the receiver produced (Byzantine-network mode)
        // and flush in batches (§6.2: "By batch processing confirm
        // messages, NeoBFT minimizes the impact of the additional
        // message exchanges").
        let outgoing = self.aom.take_outgoing_confirms();
        if !outgoing.is_empty() && self.behavior != ReplicaBehavior::Mute {
            for sc in &outgoing {
                ctx.emit(Event::Confirm { seq: sc.body.seq.0 });
            }
            if self.cfg.batch_confirms {
                self.pending_confirms.extend(outgoing);
                if self.pending_confirms.len() >= Self::CONFIRM_BATCH {
                    self.flush_confirms(ctx);
                } else if self.confirm_flush_timer.is_none() {
                    let t = self.arm(Self::CONFIRM_FLUSH_NS, TimerPayload::ConfirmFlush, ctx);
                    self.confirm_flush_timer = Some(t);
                }
            } else {
                for sc in outgoing {
                    ctx.broadcast(&self.peers, Envelope::Confirm(sc).to_payload());
                }
            }
        }
        // Drain ordered deliveries.
        let mut any = false;
        while let Some(d) = self.aom.poll() {
            any = true;
            match d {
                Delivery::Message(cert) => {
                    self.record_delivery(cert.packet.header.epoch.0, cert.packet.header.seq.0);
                    self.on_aom_message(cert, ctx);
                }
                Delivery::Drop(seq) => {
                    self.record_delivery(self.aom.epoch().0, seq.0);
                    self.on_drop_notification(seq, ctx);
                }
            }
        }
        if any {
            self.last_aom_delivery = ctx.now();
        }
        // Mirror the receiver's ordering-buffer state into the registry
        // (point-in-time levels: `set`, not `add`, so re-pumping is
        // idempotent).
        {
            let m = ctx.metrics();
            if m.enabled() {
                let s = self.aom.stats();
                m.set_gauge("aom.reorder_buffered", s.buffered as i64);
                m.set_gauge("aom.pending_chain", s.pending_chain as i64);
                m.set_gauge("aom.locked", s.locked as i64);
                m.set_gauge("aom.delivered", s.delivered as i64);
                m.set_gauge("aom.drops_declared", s.drops_declared as i64);
                m.set_gauge("aom.stale_rejected", s.stale_rejected as i64);
                m.set_gauge(
                    "aom.equivocations_rejected",
                    s.equivocations_rejected as i64,
                );
                m.set_gauge("aom.chain_promoted", s.chain_promoted as i64);
                m.set_gauge("aom.confirms_generated", s.confirms_generated as i64);
                m.set_gauge("aom.window_rejected", s.window_rejected as i64);
                m.set_gauge("aom.internal_errors", s.internal_errors as i64);
                m.set_gauge("aom.auth_rejected", s.auth_rejected as i64);
            }
        }
        self.update_gap_timer(ctx);
    }

    fn flush_confirms(&mut self, ctx: &mut dyn Context) {
        if let Some(t) = self.confirm_flush_timer.take() {
            self.disarm(t, ctx);
        }
        if self.pending_confirms.is_empty() {
            return;
        }
        let mut batch = std::mem::take(&mut self.pending_confirms);
        ctx.emit(Event::ConfirmBatch {
            size: batch.len() as u32,
        });
        ctx.metrics()
            .observe("replica.confirm_batch_size", batch.len() as u64);
        let env = if batch.len() == 1 {
            match batch.pop() {
                Some(sc) => Envelope::Confirm(sc),
                None => return,
            }
        } else {
            Envelope::ConfirmBatch(batch)
        };
        ctx.broadcast(&self.peers, env.to_payload());
    }

    fn update_gap_timer(&mut self, ctx: &mut dyn Context) {
        match self.aom.gap_pending() {
            Some(missing) => {
                let rearm = match self.aom_gap_timer {
                    Some((seq, _)) => seq != missing,
                    None => true,
                };
                if rearm {
                    if let Some((_, t)) = self.aom_gap_timer.take() {
                        self.disarm(t, ctx);
                    }
                    let t = self.arm(
                        self.cfg.aom_gap_timeout_ns,
                        TimerPayload::AomGap(missing),
                        ctx,
                    );
                    self.aom_gap_timer = Some((missing, t));
                }
            }
            None => {
                if let Some((_, t)) = self.aom_gap_timer.take() {
                    self.disarm(t, ctx);
                }
            }
        }
    }

    fn slot_of_seq(&self, seq: SeqNum) -> SlotNum {
        SlotNum(self.epoch_base.0 + seq.0 - 1)
    }

    fn seq_of_slot(&self, slot: SlotNum) -> SeqNum {
        SeqNum(slot.0 - self.epoch_base.0 + 1)
    }

    // neo-lint: verified(certs arrive from the aom receiver's authenticated delivery queue; verify_vector_entry ran in on_packet)
    fn on_aom_message(&mut self, cert: OrderingCert, ctx: &mut dyn Context) {
        let slot = self.slot_of_seq(cert.packet.header.seq);
        if slot < self.log.len() {
            return; // already have it (e.g. via view-change merge)
        }
        debug_assert_eq!(slot, self.log.len(), "aom delivers densely");
        ctx.emit(Event::RequestReceived { slot: Some(slot.0) });
        // Write-ahead: the slot record is on the WAL buffer before the
        // reply below can leave (the executor fsyncs between them).
        let wal = self.store.is_some().then(|| WalRecord::Slot {
            slot,
            entry: WireLogEntry::Request(cert.clone()),
        });
        self.log.append_request(cert);
        if let Some(rec) = wal {
            self.wal_append(&rec);
        }
        self.executed_ops.push(0);
        self.exec_digests.push(None);
        self.answer_pending_find(slot, ctx);
        self.try_execute(ctx);
        self.maybe_sync(ctx);
    }

    // neo-lint: verified(drop notifications only surface from the aom receiver's authenticated delivery queue)
    fn on_drop_notification(&mut self, seq: SeqNum, ctx: &mut dyn Context) {
        let slot = self.slot_of_seq(seq);
        if slot < self.log.len() {
            return;
        }
        ctx.emit(Event::DropNotification { seq: seq.0 });
        self.log.append_pending();
        self.executed_ops.push(0);
        self.exec_digests.push(None);
        self.start_gap(slot, ctx);
    }

    /// Execute every resolved request slot at the execution cursor,
    /// replying to clients.
    fn try_execute(&mut self, ctx: &mut dyn Context) {
        while self.exec_cursor < self.log.len() {
            // Checkpoint *before* executing: at cursor S the captured
            // state covers exactly slots < S.
            self.maybe_capture_checkpoint();
            let slot = self.exec_cursor;
            let Some(entry) = self.log.entry(slot) else {
                break; // pending gap: execution blocks here (§5.4)
            };
            match entry.clone() {
                LogEntry::NoOp(_) => {
                    self.exec_cursor = self.exec_cursor.next();
                }
                LogEntry::Request(oc) => {
                    if let Err(e) = self.execute_slot(slot, &oc, ctx) {
                        self.note_error(e, ctx);
                    }
                    self.exec_cursor = self.exec_cursor.next();
                }
            }
        }
        // The cursor may have stopped exactly on a boundary.
        self.maybe_capture_checkpoint();
        let resolved = self.log.resolved_prefix_len();
        if resolved > self.resolved_watermark {
            self.resolved_watermark = resolved;
        }
    }

    fn execute_slot(
        &mut self,
        slot: SlotNum,
        oc: &OrderingCert,
        ctx: &mut dyn Context,
    ) -> Result<(), ProtocolError> {
        let Some(signed) = SignedBatch::from_bytes(&oc.packet.payload) else {
            return Ok(()); // malformed batch: consistent no-op everywhere
        };
        let batch = &signed.batch;
        if batch.is_empty() {
            return Ok(()); // empty batch: consistent no-op everywhere
        }
        // Client authentication: verify my entry of the batch's MAC
        // vector. The MAC covers the whole encoded envelope, so a batch
        // with even one forged op must not be executed (it would still
        // occupy the slot).
        if !self.check_request_auth(&oc.packet.header.digest, &signed) {
            return Ok(());
        }
        let client = batch.client;
        let first = batch.first_request_id;
        let last = batch.last_request_id();
        // At-most-once (§C.1), per batch: the client drives one batch at
        // a time, so batches arrive in id order and a single table entry
        // covers the whole prefix. Re-execution of the latest batch only
        // re-sends the cached reply; any other overlap with executed ids
        // is skipped deterministically (all correct replicas see the
        // same bytes in the same slot, so all skip alike).
        if let Some(entry) = self.client_table.get(&client) {
            if last < entry.last_request {
                return Ok(());
            }
            if last == entry.last_request {
                if first == entry.first_request {
                    if let Some(cached) = entry.cached_reply.clone() {
                        if self.behavior != ReplicaBehavior::Mute {
                            ctx.send(Addr::Client(client), cached);
                        }
                    }
                }
                return Ok(());
            }
            if first <= entry.last_request {
                return Ok(());
            }
        }
        // Resolve the log hash before mutating anything: a missing hash
        // is an internal invariant breach, not a reason to crash.
        let Some(log_hash) = self.log.hash_at(slot) else {
            return Err(ProtocolError::MissingLogHash(slot));
        };
        let mut results = Vec::with_capacity(batch.len());
        for op in &batch.ops.ops {
            results.push(self.app.execute(op));
        }
        self.stats.executed += batch.len() as u64;
        // Execution here is ahead of the stable sync point — the paper's
        // speculative fast path (§5.3).
        ctx.emit(Event::SpeculativeExecute { slot: slot.0 });
        if batch.len() > 1 {
            ctx.emit(Event::BatchExecute {
                slot: slot.0,
                size: batch.len() as u64,
            });
            ctx.metrics()
                .observe("replica.exec_batch_size", batch.len() as u64);
        }
        if slot.index() < self.executed_ops.len() {
            if self.executed_ops[slot.index()] > 0 {
                // Executing a slot twice without an intervening rollback
                // corrupts application state; count it for the checker.
                self.stats.double_executions += 1;
            }
            self.executed_ops[slot.index()] = batch.len() as u32;
        }
        if slot.index() < self.exec_digests.len() {
            // Order-sensitive fold of the per-op digests: two correct
            // replicas executing the same batch in the same slot agree.
            let mut acc = 0u64;
            for (k, result) in results.iter().enumerate() {
                let id = RequestId(first.0.saturating_add(k as u64));
                acc = acc
                    .rotate_left(1)
                    .wrapping_add(Self::exec_digest(client, id, result));
            }
            self.exec_digests[slot.index()] = Some(acc);
        }
        let reply = Reply {
            view: self.view,
            replica: self.id,
            slot,
            log_hash,
            request_id: first,
            results,
        };
        let Ok(bytes) = neo_wire::encode(&reply) else {
            return Err(ProtocolError::Encode("reply"));
        };
        let tag = self.crypto.mac_for(Principal::Client(client), &bytes);
        let msg = NeoMsg::Reply(reply, tag).to_payload();
        self.client_table.insert(
            client,
            ClientEntry {
                first_request: first,
                last_request: last,
                cached_reply: Some(msg.clone()),
                slot,
            },
        );
        // The batch arrived: cancel any unicast watchdogs for its ids.
        for k in 0..batch.len() as u64 {
            let id = RequestId(first.0.saturating_add(k));
            if let Some(t) = self.unicast_watch.remove(&(client, id)) {
                self.disarm(t, ctx);
            }
        }
        if self.behavior != ReplicaBehavior::Mute {
            ctx.send(Addr::Client(client), msg);
        }
        self.stats.replies_sent += 1;
        // Commit carries (slot, client, request) so the span assembler can
        // join replica-side slot events to the client-side request span;
        // `request` is the batch's first id.
        ctx.emit(Event::Commit {
            slot: slot.0,
            client: client.0,
            request: first.0,
        });
        Ok(())
    }

    /// Roll the application back so that `slot` is the next to execute.
    fn rollback_to(&mut self, slot: SlotNum, ctx: &mut dyn Context) {
        if self.exec_cursor <= slot {
            return;
        }
        self.stats.rollbacks += 1;
        ctx.metrics().incr("replica.rollbacks");
        let mut cur = self.exec_cursor;
        while cur > slot {
            cur = SlotNum(cur.0 - 1);
            let n = self.executed_ops.get(cur.index()).copied().unwrap_or(0);
            if n > 0 {
                // One undo per op: a batch slot unwinds in reverse op
                // order before the cursor moves past it.
                for _ in 0..n {
                    self.app.undo();
                }
                self.executed_ops[cur.index()] = 0;
                if cur.index() < self.exec_digests.len() {
                    self.exec_digests[cur.index()] = None;
                }
            }
        }
        // Invalidate cached replies for rolled-back slots: re-execution
        // will regenerate them against the new log hashes.
        self.client_table.retain(|_, e| e.slot < slot);
        // A checkpoint at S describes state after executing slots < S;
        // rolling back past S invalidates it.
        self.pending_checkpoints.retain(|s, _| *s <= slot);
        self.exec_cursor = slot;
    }

    // ------------------------------------------------------------------
    // Gap agreement (§5.4)
    // ------------------------------------------------------------------

    fn start_gap(&mut self, slot: SlotNum, ctx: &mut dyn Context) {
        if self.status != Status::Normal {
            return;
        }
        if !self.gaps.contains_key(&slot) {
            ctx.emit(Event::GapFind { slot: slot.0 });
        }
        let view = self.view;
        let leader = self.leader();
        let is_leader = self.is_leader();
        let gap = self.gaps.entry(slot).or_default();
        if gap.resolved {
            return;
        }
        if is_leader {
            if !gap.decision_sent {
                let sig = sign_body(&(view, slot), &self.crypto);
                let find = NeoMsg::GapFind { view, slot, sig };
                // The leader counts itself as one gap-drop vote.
                let body = GapDropBody {
                    view,
                    replica: self.id,
                    slot,
                };
                let dsig = sign_body(&body, &self.crypto);
                self.gaps
                    .entry(slot)
                    .or_default()
                    .drops
                    .insert(self.id, (body, dsig));
                self.broadcast(&find, ctx);
            }
        } else {
            ctx.emit(Event::Query { slot: slot.0 });
            let q = NeoMsg::Query { view, slot };
            self.send_to(leader, &q, ctx);
            let t = self.arm(self.cfg.query_retry_ns, TimerPayload::QueryRetry(slot), ctx);
            self.gaps.entry(slot).or_default().query_timer = Some(t);
        }
        let t = self.arm(
            self.cfg.gap_agreement_timeout_ns,
            TimerPayload::GapAgreement(slot),
            ctx,
        );
        self.gaps.entry(slot).or_default().agreement_timer = Some(t);
    }

    /// A slot just materialized; if the leader asked about it earlier,
    /// answer now.
    fn answer_pending_find(&mut self, slot: SlotNum, ctx: &mut dyn Context) {
        let Some(gap) = self.gaps.get_mut(&slot) else {
            return;
        };
        if !gap.find_pending || gap.resolved {
            return;
        }
        gap.find_pending = false;
        let view = self.view;
        let leader = self.leader();
        match self.log.entry(slot) {
            Some(LogEntry::Request(oc)) => {
                let msg = NeoMsg::GapRecv {
                    view,
                    slot,
                    oc: oc.clone(),
                };
                self.send_to(leader, &msg, ctx);
            }
            _ => {
                if self.log.is_pending(slot) {
                    self.send_gap_drop(slot, ctx);
                }
            }
        }
    }

    fn send_gap_drop(&mut self, slot: SlotNum, ctx: &mut dyn Context) {
        let body = GapDropBody {
            view: self.view,
            replica: self.id,
            slot,
        };
        let sig = sign_body(&body, &self.crypto);
        let leader = self.leader();
        self.send_to(leader, &NeoMsg::GapDrop(body, sig), ctx);
        self.gaps.entry(slot).or_default().voted_drop = true;
    }

    fn on_query(&mut self, from: Addr, view: ViewId, slot: SlotNum, ctx: &mut dyn Context) {
        if view != self.view || self.status != Status::Normal {
            return;
        }
        let Some(Addr::Replica(_)) = Some(from) else {
            return;
        };
        if let Some(LogEntry::Request(oc)) = self.log.entry(slot) {
            let reply = NeoMsg::QueryReply {
                view,
                slot,
                oc: oc.clone(),
            };
            if let Addr::Replica(r) = from {
                ctx.emit(Event::QueryReply { slot: slot.0 });
                self.send_to(r, &reply, ctx);
            }
        }
        // If the leader itself is missing the slot, its own gap-find is
        // already in flight; nothing else to do.
    }

    fn on_query_reply(
        &mut self,
        view: ViewId,
        slot: SlotNum,
        oc: OrderingCert,
        ctx: &mut dyn Context,
    ) {
        if view != self.view || self.status != Status::Normal {
            return;
        }
        let gap_voted_drop = self
            .gaps
            .get(&slot)
            .map(|g| g.voted_drop || g.resolved)
            .unwrap_or(false);
        if gap_voted_drop {
            return; // §5.4: blocked on the agreement decision
        }
        if !self.log.is_pending(slot) {
            return;
        }
        if !self.verify_oc_for_slot(&oc, slot) {
            return;
        }
        self.fill_slot(slot, LogEntry::Request(oc), ctx);
        self.resolve_gap(slot, false, ctx);
        self.stats.gaps_recovered += 1;
        ctx.metrics().incr("replica.gap_recovered_by_query");
    }

    /// Validate that an ordering certificate authenticates and matches
    /// the slot position (§5.4: "ensures the enclosed aom message is the
    /// missing message by checking the internal sequence number").
    fn verify_oc_for_slot(&self, oc: &OrderingCert, slot: SlotNum) -> bool {
        oc.packet.header.seq == self.seq_of_slot(slot)
            && oc.packet.header.epoch == self.view.epoch
            && self.aom.verify_cert(oc, &self.crypto)
    }

    /// Verify my entry of a batch's client MAC vector. The vector is
    /// computed over the encoded [`crate::messages::BatchRequest`], so
    /// one tag covers every op in the envelope — tampering with any
    /// single op invalidates the whole batch.
    /// Client authentication with the verify stage's help: consume the
    /// pool's pre-verified verdict when the pipeline already checked
    /// this batch's MAC (keyed by aom header digest), falling back to an
    /// inline check — the inline lanes and every recovery path land
    /// here, so the authoritative check is one shared code path.
    fn check_request_auth(&mut self, digest: &[u8; 32], signed: &SignedBatch) -> bool {
        if let Some(ok) = self.preverified_auth.remove(digest) {
            return ok;
        }
        self.verify_request_auth(signed)
    }

    fn verify_request_auth(&self, signed: &SignedBatch) -> bool {
        let Some(tag) = signed.auth.get(self.id.index()) else {
            return false;
        };
        let Ok(bytes) = neo_wire::encode(&signed.batch) else {
            return false; // unencodable batch: drop, never panic
        };
        self.crypto
            .verify_mac_from(Principal::Client(signed.batch.client), &bytes, tag)
            .is_ok()
    }

    fn on_gap_find(&mut self, view: ViewId, slot: SlotNum, sig: Signature, ctx: &mut dyn Context) {
        if view != self.view || self.status != Status::Normal {
            return;
        }
        let leader = self.leader();
        if !verify_body(
            &(view, slot),
            &sig,
            Principal::Replica(leader),
            &self.crypto,
        ) {
            return;
        }
        match self.log.entry(slot) {
            Some(LogEntry::Request(oc)) => {
                let msg = NeoMsg::GapRecv {
                    view,
                    slot,
                    oc: oc.clone(),
                };
                self.send_to(leader, &msg, ctx);
            }
            Some(LogEntry::NoOp(_)) => {
                // Already committed as no-op in a previous round; the
                // leader will learn via view change or sync.
            }
            None => {
                if self.log.is_pending(slot) {
                    self.send_gap_drop(slot, ctx);
                } else if self.slot_in_window(slot, ctx) {
                    // The slot is beyond my log: answer when it arrives.
                    // neo-lint: allow(R5, slot_in_window-bounded above)
                    self.gaps.entry(slot).or_default().find_pending = true;
                }
            }
        }
    }

    fn on_gap_recv(
        &mut self,
        view: ViewId,
        slot: SlotNum,
        oc: OrderingCert,
        ctx: &mut dyn Context,
    ) {
        if view != self.view || !self.is_leader() || self.status != Status::Normal {
            return;
        }
        if !self.verify_oc_for_slot(&oc, slot) || !self.slot_in_window(slot, ctx) {
            return;
        }
        // neo-lint: allow(R5, slot_in_window-bounded above)
        let gap = self.gaps.entry(slot).or_default();
        if gap.decision_sent || gap.resolved {
            return;
        }
        gap.recv = Some(oc.clone());
        self.send_gap_decision(slot, GapDecisionBody::Recv(oc), ctx);
    }

    fn on_gap_drop(&mut self, body: GapDropBody, sig: Signature, ctx: &mut dyn Context) {
        if body.view != self.view || !self.is_leader() || self.status != Status::Normal {
            return;
        }
        if !verify_body(&body, &sig, Principal::Replica(body.replica), &self.crypto) {
            return;
        }
        let quorum = self.cfg.quorum();
        let slot = body.slot;
        if !self.slot_in_window(slot, ctx) {
            return;
        }
        // neo-lint: allow(R5, slot_in_window-bounded above)
        let gap = self.gaps.entry(slot).or_default();
        if gap.decision_sent || gap.resolved {
            return;
        }
        gap.drops.insert(body.replica, (body, sig));
        if gap.drops.len() >= quorum {
            let drops: Vec<_> = gap.drops.values().cloned().collect();
            self.send_gap_decision(slot, GapDecisionBody::Drop(drops), ctx);
        }
    }

    fn send_gap_decision(
        &mut self,
        slot: SlotNum,
        decision: GapDecisionBody,
        ctx: &mut dyn Context,
    ) {
        let view = self.view;
        let digest = gap_decision_digest(view, slot, &decision);
        let sig = self.crypto.sign(&digest);
        let msg = NeoMsg::GapDecision {
            view,
            slot,
            decision: decision.clone(),
            sig,
        };
        self.broadcast(&msg, ctx);
        self.gaps.entry(slot).or_default().decision_sent = true;
        // The leader validates its own decision and proceeds through the
        // agreement like everyone else.
        self.adopt_decision(view, slot, decision, ctx);
    }

    fn on_gap_decision(
        &mut self,
        view: ViewId,
        slot: SlotNum,
        decision: GapDecisionBody,
        sig: Signature,
        ctx: &mut dyn Context,
    ) {
        if view != self.view || self.status != Status::Normal {
            return;
        }
        let digest = gap_decision_digest(view, slot, &decision);
        if self
            .crypto
            .verify(Principal::Replica(self.leader()), &digest, &sig)
            .is_err()
        {
            return;
        }
        self.adopt_decision(view, slot, decision, ctx);
    }

    fn adopt_decision(
        &mut self,
        view: ViewId,
        slot: SlotNum,
        decision: GapDecisionBody,
        ctx: &mut dyn Context,
    ) {
        // Validate decision contents (§5.4).
        let recv = match &decision {
            GapDecisionBody::Recv(oc) => {
                if !self.verify_oc_for_slot(oc, slot) {
                    return;
                }
                true
            }
            GapDecisionBody::Drop(drops) => {
                let quorum = self.cfg.quorum();
                let mut seen = std::collections::BTreeSet::new();
                for (body, sig) in drops {
                    if body.slot != slot || body.view != view {
                        continue;
                    }
                    if verify_body(body, sig, Principal::Replica(body.replica), &self.crypto) {
                        seen.insert(body.replica);
                    }
                }
                if seen.len() < quorum {
                    return;
                }
                false
            }
        };
        let gap = self.gaps.entry(slot).or_default();
        if gap.resolved || gap.decision.is_some() {
            return;
        }
        let oc = match &decision {
            GapDecisionBody::Recv(oc) => Some(oc.clone()),
            GapDecisionBody::Drop(_) => None,
        };
        gap.decision = Some((recv, oc, decision));
        // Broadcast my prepare vote.
        let body = GapVoteBody {
            view,
            replica: self.id,
            slot,
            recv,
        };
        let sig = sign_body(&body, &self.crypto);
        gap.prepares.insert(self.id, (body, sig.clone()));
        gap.prepared = true;
        self.broadcast(&NeoMsg::GapPrepare(body, sig), ctx);
        self.check_gap_progress(slot, ctx);
    }

    fn on_gap_prepare(&mut self, body: GapVoteBody, sig: Signature, ctx: &mut dyn Context) {
        if body.view != self.view || self.status != Status::Normal {
            return;
        }
        if !verify_body(&body, &sig, Principal::Replica(body.replica), &self.crypto) {
            return;
        }
        if !self.slot_in_window(body.slot, ctx) {
            return;
        }
        // neo-lint: allow(R5, slot_in_window-bounded above)
        let gap = self.gaps.entry(body.slot).or_default();
        if gap.resolved {
            return;
        }
        gap.prepares.insert(body.replica, (body, sig));
        self.check_gap_progress(body.slot, ctx);
    }

    fn on_gap_commit(&mut self, body: GapVoteBody, sig: Signature, ctx: &mut dyn Context) {
        if body.view != self.view || self.status != Status::Normal {
            return;
        }
        if !verify_body(&body, &sig, Principal::Replica(body.replica), &self.crypto) {
            return;
        }
        if !self.slot_in_window(body.slot, ctx) {
            return;
        }
        // neo-lint: allow(R5, slot_in_window-bounded above)
        let gap = self.gaps.entry(body.slot).or_default();
        if gap.resolved {
            return;
        }
        gap.commits.insert(body.replica, (body, sig));
        self.check_gap_progress(body.slot, ctx);
    }

    fn check_gap_progress(&mut self, slot: SlotNum, ctx: &mut dyn Context) {
        let quorum = self.cfg.quorum();
        let f2 = 2 * self.cfg.f;
        let Some(gap) = self.gaps.get_mut(&slot) else {
            return;
        };
        let Some((recv, oc, _)) = gap.decision.clone() else {
            return;
        };
        // Phase 1 → 2: 2f matching prepares from distinct replicas
        // (possibly including self) plus the validated decision.
        let matching_prepares = gap
            .prepares
            .values()
            .filter(|(b, _)| b.recv == recv)
            .count();
        if !gap.committed && matching_prepares >= f2 {
            gap.committed = true;
            let body = GapVoteBody {
                view: self.view,
                replica: self.id,
                slot,
                recv,
            };
            let sig = sign_body(&body, &self.crypto);
            gap.commits.insert(self.id, (body, sig.clone()));
            self.broadcast(&NeoMsg::GapCommit(body, sig), ctx);
        }
        let Some(gap) = self.gaps.get_mut(&slot) else {
            return;
        };
        // Phase 2 → commit: 2f+1 matching commits.
        let matching_commits: Vec<(GapVoteBody, Signature)> = gap
            .commits
            .values()
            .filter(|(b, _)| b.recv == recv)
            .cloned()
            .collect();
        if gap.resolved || matching_commits.len() < quorum {
            return;
        }
        // Commit the slot.
        if recv {
            let Some(oc) = oc else {
                // adopt_decision validated the decision, so this cannot
                // happen; degrade to a counted error rather than a panic.
                self.note_error(ProtocolError::MissingCertificate(slot), ctx);
                return;
            };
            if self.log.is_pending(slot) || slot == self.log.len() {
                self.fill_slot(slot, LogEntry::Request(oc), ctx);
            }
            self.stats.gaps_recovered += 1;
        } else {
            // No-op: roll back if we speculatively executed this slot.
            if self.exec_cursor > slot {
                self.rollback_to(slot, ctx);
            }
            self.fill_slot(slot, LogEntry::NoOp(Some(matching_commits)), ctx);
            self.stats.noops_committed += 1;
        }
        ctx.emit(Event::GapCommit {
            slot: slot.0,
            noop: !recv,
        });
        self.resolve_gap(slot, true, ctx);
    }

    fn fill_slot(&mut self, slot: SlotNum, entry: LogEntry, ctx: &mut dyn Context) {
        // A fill may rewrite an executed suffix: roll back first so
        // re-execution sees consistent hashes.
        if self.exec_cursor > slot {
            self.rollback_to(slot, ctx);
        }
        while self.log.len() <= slot {
            self.log.append_pending();
            self.executed_ops.push(0);
            self.exec_digests.push(None);
        }
        let wal = self.store.is_some().then(|| WalRecord::Slot {
            slot,
            entry: entry.to_wire(),
        });
        if self.log.fill(slot, entry).is_err() {
            self.note_error(ProtocolError::FillRejected(slot), ctx);
            return;
        }
        if let Some(rec) = wal {
            self.wal_append(&rec);
        }
        if self.executed_ops.len() < self.log.len().index() {
            self.executed_ops.resize(self.log.len().index(), 0);
        }
        if self.exec_digests.len() < self.log.len().index() {
            self.exec_digests.resize(self.log.len().index(), None);
        }
    }

    fn resolve_gap(&mut self, slot: SlotNum, _committed: bool, ctx: &mut dyn Context) {
        let to_disarm: Vec<TimerId> = {
            let Some(gap) = self.gaps.get_mut(&slot) else {
                return;
            };
            gap.resolved = true;
            gap.query_timer
                .take()
                .into_iter()
                .chain(gap.agreement_timer.take())
                .collect()
        };
        for t in to_disarm {
            self.disarm(t, ctx);
        }
        self.try_execute(ctx);
        self.maybe_sync(ctx);
    }

    // ------------------------------------------------------------------
    // State synchronization (§B.2)
    // ------------------------------------------------------------------

    fn maybe_sync(&mut self, ctx: &mut dyn Context) {
        if self.cfg.sync_interval == 0 || self.status != Status::Normal {
            return;
        }
        let len = self.log.resolved_prefix_len();
        let interval = self.cfg.sync_interval;
        let latest_multiple = SlotNum(len.0 - len.0 % interval);
        if latest_multiple.0 == 0 || latest_multiple <= self.last_sync_slot {
            return;
        }
        self.last_sync_slot = latest_multiple;
        // Gap certificates for slots committed as no-op in this view.
        let mut drops = Vec::new();
        for (slot, gap) in &self.gaps {
            if *slot < latest_multiple {
                if let Some(LogEntry::NoOp(Some(cert))) = self.log.entry(*slot) {
                    let _ = gap;
                    drops.push((*slot, cert.clone()));
                }
            }
        }
        let body = SyncBody {
            view: self.view,
            replica: self.id,
            slot: latest_multiple,
            drops,
            // Piggyback our checkpoint digest at this boundary: 2f+1
            // matching digests turn the sync round into a checkpoint
            // certificate (ZERO = no claim, e.g. snapshot-less app).
            state_digest: self
                .pending_checkpoints
                .get(&latest_multiple)
                .map(|(_, d)| *d)
                .unwrap_or(Digest::ZERO),
        };
        let sig = sign_body(&body, &self.crypto);
        self.sync_votes
            .entry(latest_multiple)
            .or_default()
            .insert(self.id, (body.clone(), sig.clone()));
        self.broadcast(&NeoMsg::Sync(body, sig), ctx);
        self.check_sync(latest_multiple, ctx);
    }

    fn on_sync(&mut self, body: SyncBody, sig: Signature, ctx: &mut dyn Context) {
        if body.view != self.view || self.status != Status::Normal {
            return;
        }
        if !verify_body(&body, &sig, Principal::Replica(body.replica), &self.crypto) {
            return;
        }
        let slot = body.slot;
        if slot <= self.sync_point || !self.slot_in_window(slot, ctx) {
            return; // settled or far-future: nothing to collect
        }
        // neo-lint: allow(R5, slot_in_window-bounded above and pruned in check_sync)
        self.sync_votes
            .entry(slot)
            .or_default()
            .insert(body.replica, (body, sig));
        self.check_sync(slot, ctx);
    }

    fn check_sync(&mut self, slot: SlotNum, ctx: &mut dyn Context) {
        let f2 = 2 * self.cfg.f;
        let Some(votes) = self.sync_votes.get(&slot) else {
            return;
        };
        // 2f sync messages from *other* replicas (§B.2), i.e. 2f+1 total
        // with our own when we sent one.
        let others = votes.keys().filter(|r| **r != self.id).count();
        if others < f2 || slot <= self.sync_point {
            return;
        }
        // Apply certified no-ops from any vote.
        let mut to_apply: Vec<(SlotNum, crate::messages::GapCert)> = Vec::new();
        for (body, _) in votes.values() {
            for (s, cert) in &body.drops {
                if self.verify_gap_cert(*s, cert) {
                    to_apply.push((*s, cert.clone()));
                }
            }
        }
        for (s, cert) in to_apply {
            match self.log.entry(s) {
                Some(LogEntry::NoOp(_)) => {
                    self.log.attach_gap_cert(s, cert);
                }
                _ => {
                    if s < self.log.len() {
                        self.fill_slot(s, LogEntry::NoOp(Some(cert)), ctx);
                    }
                }
            }
        }
        self.sync_point = slot;
        ctx.emit(Event::SyncPoint { slot: slot.0 });
        // Checkpoint certification rides the same quorum: if 2f+1 sync
        // votes carried our pending checkpoint's digest, the votes ARE
        // its certificate. Must happen before the prune below discards
        // this round's signatures.
        self.maybe_certify_checkpoint(slot, ctx);
        // Settled rounds can never reach quorum again: prune them so the
        // vote map stays bounded (neo-lint R5).
        self.sync_votes = self.sync_votes.split_off(&SlotNum(slot.0 + 1));
        self.stats.sync_points += 1;
        ctx.metrics().incr("replica.sync_points");
        // Finalized: drop undo history for everything at or before the
        // sync point.
        // Count *ops*, not slots: a batch slot holds one undo record per
        // op, and the app must keep exactly that many.
        let still_speculative = self
            .executed_ops
            .iter()
            .skip(slot.index())
            .map(|n| *n as u64)
            .sum::<u64>();
        self.app.compact(still_speculative);
        self.try_execute(ctx);
    }

    /// If the sync round at `slot` gathered 2f+1 votes matching our
    /// pending checkpoint's digest, promote it to the stable checkpoint:
    /// persist it, compact the WAL below it, and start serving it to
    /// recovering peers.
    fn maybe_certify_checkpoint(&mut self, slot: SlotNum, ctx: &mut dyn Context) {
        let Some((_, digest)) = self.pending_checkpoints.get(&slot) else {
            return;
        };
        let digest = *digest;
        let Some(votes) = self.sync_votes.get(&slot) else {
            return;
        };
        let cert: Vec<(SyncBody, Signature)> = votes
            .values()
            .filter(|(b, _)| b.slot == slot && b.state_digest == digest)
            .cloned()
            .collect();
        let distinct = cert
            .iter()
            .map(|(b, _)| b.replica)
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        if distinct < self.cfg.quorum() {
            return;
        }
        let Some((data, _)) = self.pending_checkpoints.remove(&slot) else {
            return;
        };
        let wire = WireCheckpoint { data, cert };
        if let Some(store) = &mut self.store {
            store.put_checkpoint(&wire.to_bytes());
        }
        self.compact_wal(slot, ctx);
        self.stable_checkpoint = Some(wire);
        self.pending_checkpoints.retain(|s, _| *s > slot);
        self.stats.checkpoints_certified += 1;
        ctx.metrics().incr("replica.checkpoints_certified");
    }

    /// Validate a gap certificate: 2f+1 distinct valid drop commits.
    fn verify_gap_cert(&self, slot: SlotNum, cert: &crate::messages::GapCert) -> bool {
        let quorum = self.cfg.quorum();
        let mut seen = std::collections::BTreeSet::new();
        for (body, sig) in cert {
            if body.slot != slot || body.recv {
                continue;
            }
            if verify_body(body, sig, Principal::Replica(body.replica), &self.crypto) {
                seen.insert(body.replica);
            }
        }
        seen.len() >= quorum
    }

    // ------------------------------------------------------------------
    // View changes (§5.5, §B.1)
    // ------------------------------------------------------------------

    /// Enter a view change toward `new_view`.
    pub fn start_view_change(&mut self, new_view: ViewId, ctx: &mut dyn Context) {
        if new_view <= self.view && self.status == Status::Normal {
            return;
        }
        if self.status == Status::ViewChange
            && self
                .vc
                .own
                .as_ref()
                .is_some_and(|(b, _)| b.new_view >= new_view)
        {
            return;
        }
        self.status = Status::ViewChange;
        self.view = new_view;
        self.stats.view_changes += 1;
        ctx.emit(Event::ViewChange {
            view: new_view.leader_num,
        });
        let body = ViewChangeBody {
            new_view,
            replica: self.id,
            epoch_certs: self.epoch_certs.clone(),
            log_base: self.log.base(),
            log: self.log.to_wire(),
        };
        let sig = sign_body(&body, &self.crypto);
        self.vc.own = Some((body.clone(), sig.clone()));
        self.vc.started = false;
        self.vc
            .msgs
            .entry(new_view)
            .or_default()
            .insert(self.id, (body.clone(), sig.clone()));
        self.broadcast(&NeoMsg::ViewChange(body, sig), ctx);
        if let Some(t) = self.vc.resend_timer.take() {
            self.disarm(t, ctx);
        }
        let t = self.arm(
            self.cfg.view_change_resend_ns,
            TimerPayload::ViewChangeResend,
            ctx,
        );
        self.vc.resend_timer = Some(t);
        self.maybe_start_view(new_view, ctx);
    }

    fn on_view_change(&mut self, body: ViewChangeBody, sig: Signature, ctx: &mut dyn Context) {
        if !verify_body(&body, &sig, Principal::Replica(body.replica), &self.crypto) {
            return;
        }
        if body.new_view < self.view {
            return;
        }
        if !self.validate_wire_log(&body) {
            return;
        }
        let new_view = body.new_view;
        // R5 bound: cap distinct proposed views; reclaim room from views
        // below the current one before rejecting.
        if !self.vc.msgs.contains_key(&new_view) && self.vc.msgs.len() >= Self::VC_BUFFER_MAX {
            let cur = self.view;
            self.vc.msgs.retain(|v, _| *v >= cur);
            if self.vc.msgs.len() >= Self::VC_BUFFER_MAX {
                ctx.metrics().incr("replica.bounded_rejects");
                return;
            }
        }
        // neo-lint: allow(R5, size-capped with pruning above)
        let per_view = self.vc.msgs.entry(new_view).or_default();
        per_view.insert(body.replica, (body, sig));
        // Join rule: f+1 replicas moving to a higher view means at least
        // one correct replica did — follow them.
        let count = self.vc.msgs.get(&new_view).map(|m| m.len()).unwrap_or(0);
        if new_view > self.view && count >= self.cfg.f + 1 {
            self.start_view_change(new_view, ctx);
            return;
        }
        self.maybe_start_view(new_view, ctx);
    }

    /// Validate a view-change message's log (§5.5 log validity): every
    /// entry carries a valid certificate, and epoch starts are certified.
    fn validate_wire_log(&self, body: &ViewChangeBody) -> bool {
        // Epoch certs: 2f+1 distinct valid epoch-starts each.
        for (epoch, slot, cert) in &body.epoch_certs {
            if !self.verify_epoch_cert(*epoch, *slot, cert) {
                return false;
            }
        }
        let epoch_of_slot = |s: SlotNum| -> EpochNum {
            let mut e = EpochNum::INITIAL;
            for (epoch, start, _) in &body.epoch_certs {
                if *start <= s {
                    e = e.max(*epoch);
                }
            }
            e
        };
        for (i, entry) in body.log.iter().enumerate() {
            let slot = SlotNum(body.log_base.0 + i as u64);
            match entry {
                WireLogEntry::Request(oc) => {
                    let epoch = epoch_of_slot(slot);
                    if !self.aom.verify_cert_in_epoch(oc, epoch, &self.crypto) {
                        return false;
                    }
                }
                WireLogEntry::NoOp(cert) => {
                    if !self.verify_gap_cert(slot, cert) {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn verify_epoch_cert(&self, epoch: EpochNum, slot: SlotNum, cert: &EpochCert) -> bool {
        let quorum = self.cfg.quorum();
        let mut seen = std::collections::BTreeSet::new();
        for (body, sig) in cert {
            if body.epoch != epoch || body.start_slot != slot {
                continue;
            }
            if verify_body(body, sig, Principal::Replica(body.replica), &self.crypto) {
                seen.insert(body.replica);
            }
        }
        seen.len() >= quorum
    }

    fn maybe_start_view(&mut self, new_view: ViewId, ctx: &mut dyn Context) {
        if self.status != Status::ViewChange || new_view != self.view {
            return;
        }
        if new_view.leader(self.cfg.n) != self.id || self.vc.started {
            return;
        }
        let Some(msgs) = self.vc.msgs.get(&new_view) else {
            return;
        };
        if msgs.len() < self.cfg.quorum() {
            return;
        }
        let view_changes: Vec<(ViewChangeBody, Signature)> =
            msgs.values().take(self.cfg.quorum()).cloned().collect();
        let sig = sign_body(&(new_view, view_changes.len() as u64), &self.crypto);
        let msg = NeoMsg::ViewStart {
            new_view,
            view_changes: view_changes.clone(),
            sig,
        };
        self.broadcast(&msg, ctx);
        self.vc.started = true;
        self.apply_view_start(new_view, &view_changes, ctx);
    }

    fn on_view_start(
        &mut self,
        new_view: ViewId,
        view_changes: Vec<(ViewChangeBody, Signature)>,
        sig: Signature,
        ctx: &mut dyn Context,
    ) {
        if new_view < self.view {
            return;
        }
        let leader = new_view.leader(self.cfg.n);
        if !verify_body(
            &(new_view, view_changes.len() as u64),
            &sig,
            Principal::Replica(leader),
            &self.crypto,
        ) {
            return;
        }
        // Validate: 2f+1 distinct properly signed view-changes for this
        // view with valid logs.
        let mut seen = std::collections::BTreeSet::new();
        for (body, vc_sig) in &view_changes {
            if body.new_view != new_view {
                return;
            }
            if !verify_body(body, vc_sig, Principal::Replica(body.replica), &self.crypto) {
                return;
            }
            if !self.validate_wire_log(body) {
                return;
            }
            seen.insert(body.replica);
        }
        if seen.len() < self.cfg.quorum() {
            return;
        }
        self.view = new_view;
        self.status = Status::ViewChange;
        self.apply_view_start(new_view, &view_changes, ctx);
    }

    /// Merge the 2f+1 logs (§B.1) and enter the view (directly, or after
    /// the epoch-start exchange when the epoch advanced).
    fn apply_view_start(
        &mut self,
        new_view: ViewId,
        view_changes: &[(ViewChangeBody, Signature)],
        ctx: &mut dyn Context,
    ) {
        let (mbase, merged) = merge_logs(view_changes);
        let mend = mbase.0 + merged.len() as u64;
        let epoch_switch = new_view.epoch > self.epoch_of_log();
        if mbase > self.log.len() {
            // The entire merge quorum compacted below its checkpoint and
            // the merged log starts past our tail: we cannot adopt it
            // without the slots in between. Kick state transfer to fetch
            // the certified checkpoint, but still follow the view/epoch
            // bookkeeping below so we land in the new view.
            if self.recovery.is_none() {
                self.recovery = Some(RecoveryState {
                    phase: RecoveryPhase::Recovering,
                    base: self.log.base(),
                    started_at: None,
                    retry_timer: None,
                });
            } else if let Some(rec) = &mut self.recovery {
                if rec.phase == RecoveryPhase::Active {
                    rec.phase = RecoveryPhase::Recovering;
                }
            }
            self.maybe_kick_recovery(ctx);
        } else {
            // Roll back to the first slot where the merged log diverges
            // from ours, then adopt the merged entries. Slots below both
            // bases are checkpoint-finalized (quorum intersection: a
            // certified checkpoint and the merge quorum share a correct
            // replica), so the scan starts at the higher base.
            let scan_from = mbase.0.max(self.log.base().0);
            let mut divergence = None;
            for s in scan_from..mend {
                let slot = SlotNum(s);
                let entry = &merged[(s - mbase.0) as usize];
                let differs = match (self.log.entry(slot), entry) {
                    (Some(LogEntry::Request(a)), WireLogEntry::Request(b)) => {
                        a.packet.header.auth_input() != b.packet.header.auth_input()
                    }
                    (Some(LogEntry::NoOp(_)), WireLogEntry::NoOp(_)) => false,
                    (None, _) => true,
                    _ => true,
                };
                if differs {
                    divergence = Some(slot);
                    break;
                }
            }
            if let Some(slot) = divergence {
                self.rollback_to(slot, ctx);
                for s in slot.0..mend {
                    let entry = &merged[(s - mbase.0) as usize];
                    let e = match entry {
                        WireLogEntry::Request(oc) => LogEntry::Request(oc.clone()),
                        WireLogEntry::NoOp(cert) => LogEntry::NoOp(Some(cert.clone())),
                    };
                    self.fill_slot(SlotNum(s), e, ctx);
                }
            }
            if epoch_switch && self.log.len().0 > mend {
                // §B.1: the new epoch begins right after the *merged* log.
                // Our speculative tail beyond it was not seen by the merge
                // quorum and cannot commit in the dead epoch — roll it back
                // and discard. Clients re-submit through the new sequencer;
                // the client table deduplicates. Same-epoch (leader-only)
                // view changes keep the tail: its slots still map to live
                // aom sequence numbers. (Clamped at our base: checkpointed
                // slots are finalized.)
                let cut = SlotNum(mend.max(self.log.base().0));
                self.rollback_to(cut, ctx);
                self.log.truncate(cut);
                self.executed_ops.truncate(cut.index());
                self.exec_digests.truncate(cut.index());
            }
        }
        // Epoch bookkeeping.
        if epoch_switch {
            // Epoch switch: certify the starting position (§B.1) — all
            // replicas adopted exactly the merged log, so this matches.
            // A replica still fetching the merged prefix votes at the
            // merged end too, so the quorum's positions agree.
            let start_slot = self.log.len().max(SlotNum(mend));
            let body = EpochStartBody {
                epoch: new_view.epoch,
                start_slot,
                replica: self.id,
            };
            let sig = sign_body(&body, &self.crypto);
            self.vc.awaiting_epoch = Some((new_view.epoch, start_slot));
            self.vc
                .epoch_votes
                .entry((new_view.epoch, start_slot))
                .or_default()
                .insert(self.id, (body, sig.clone()));
            self.broadcast(&NeoMsg::EpochStart(body, sig), ctx);
            self.check_epoch_start(new_view.epoch, start_slot, ctx);
        } else {
            self.enter_view(ctx);
        }
    }

    fn epoch_of_log(&self) -> EpochNum {
        self.log
            .epoch_starts()
            .last()
            .map(|(e, _)| *e)
            .unwrap_or(EpochNum::INITIAL)
    }

    fn on_epoch_start(&mut self, body: EpochStartBody, sig: Signature, ctx: &mut dyn Context) {
        if !verify_body(&body, &sig, Principal::Replica(body.replica), &self.crypto) {
            return;
        }
        // R5 bounds: reject epochs far past the installed one, and cap
        // the distinct (epoch, slot) positions buffered (pruning
        // positions below the installed epoch first).
        if body.epoch.0 > self.aom.epoch().0 + Self::FUTURE_EPOCH_WINDOW {
            ctx.metrics().incr("replica.bounded_rejects");
            return;
        }
        let key = (body.epoch, body.start_slot);
        if !self.vc.epoch_votes.contains_key(&key)
            && self.vc.epoch_votes.len() >= Self::VC_BUFFER_MAX
        {
            let cur = self.aom.epoch();
            self.vc.epoch_votes.retain(|(e, _), _| *e >= cur);
            if self.vc.epoch_votes.len() >= Self::VC_BUFFER_MAX {
                ctx.metrics().incr("replica.bounded_rejects");
                return;
            }
        }
        // neo-lint: allow(R5, epoch-windowed and size-capped above)
        let votes = self.vc.epoch_votes.entry(key).or_default();
        votes.insert(body.replica, (body, sig));
        self.check_epoch_start(key.0, key.1, ctx);
    }

    fn check_epoch_start(&mut self, epoch: EpochNum, slot: SlotNum, ctx: &mut dyn Context) {
        let Some((await_e, await_s)) = self.vc.awaiting_epoch else {
            return;
        };
        if await_e != epoch || await_s != slot {
            return;
        }
        let Some(votes) = self.vc.epoch_votes.get(&(epoch, slot)) else {
            return;
        };
        if votes.len() < self.cfg.quorum() {
            return;
        }
        let cert: EpochCert = votes.values().cloned().collect();
        self.wal_append(&WalRecord::Epoch {
            epoch,
            start_slot: slot,
            cert: cert.clone(),
        });
        self.epoch_certs.push((epoch, slot, cert));
        self.log.record_epoch_start(epoch, slot);
        self.epoch_base = slot;
        self.aom.install_epoch(epoch);
        ctx.emit(Event::EpochChange { epoch: epoch.0 });
        // Replay packets that raced ahead of the epoch switch, through
        // the verify stage like any fresh arrival.
        let buffered = self.future_epoch.remove(&epoch).unwrap_or_default();
        self.future_epoch.retain(|e, _| *e > epoch);
        for pkt in buffered {
            self.dispatch_packet_verify(pkt, ctx);
        }
        self.vc.awaiting_epoch = None;
        // Votes at or below the installed epoch are settled: prune them
        // so the buffer stays bounded (neo-lint R5).
        self.vc.epoch_votes.retain(|(e, _), _| *e > epoch);
        self.enter_view(ctx);
    }

    fn enter_view(&mut self, ctx: &mut dyn Context) {
        self.status = Status::Normal;
        if let Some(t) = self.vc.resend_timer.take() {
            self.disarm(t, ctx);
        }
        // Abandon stale per-slot agreement state from the old view.
        self.gaps.clear();
        self.vc.started = false;
        // Unresolved pending slots at the tail carry into the new view's
        // gap agreement.
        if let Some(slot) = self.log.first_pending() {
            self.start_gap(slot, ctx);
        }
        self.try_execute(ctx);
        // Drain deliveries (and confirms) that accumulated while the view
        // change was in flight.
        self.pump_aom(ctx);
    }

    // ------------------------------------------------------------------
    // Client unicast fallback (§5.3 / §5.5)
    // ------------------------------------------------------------------

    fn on_request_unicast(&mut self, signed: SignedBatch, ctx: &mut dyn Context) {
        if !self.verify_request_auth(&signed) {
            return;
        }
        let batch = &signed.batch;
        if batch.is_empty() {
            return;
        }
        let client = batch.client;
        let last = batch.last_request_id();
        if let Some(entry) = self.client_table.get(&client) {
            if last <= entry.last_request {
                // Already executed: re-send the cached reply.
                if let Some(cached) = entry.cached_reply.clone() {
                    if last == entry.last_request && self.behavior != ReplicaBehavior::Mute {
                        ctx.send(Addr::Client(client), cached);
                    }
                }
                return;
            }
        }
        // Not yet delivered by aom: arm the sequencer-suspicion watchdog,
        // keyed on the batch's last id (one watchdog per batch; execution
        // cancels every id in the batch, including this one).
        let key = (client, last);
        if !self.unicast_watch.contains_key(&key) {
            // R5 bound: an overflow denies the fallback path (clients
            // retry through aom), never memory.
            if self.unicast_watch.len() >= Self::UNICAST_WATCH_MAX {
                ctx.metrics().incr("replica.bounded_rejects");
                return;
            }
            let t = self.arm(
                self.cfg.unicast_watchdog_ns,
                TimerPayload::UnicastWatchdog(key.0, key.1),
                ctx,
            );
            // neo-lint: allow(R5, size-capped above)
            self.unicast_watch.insert(key, t);
        }
    }

    // neo-lint: verified(timer payloads are armed locally by this replica, never attacker input)
    fn on_timer_payload(&mut self, payload: TimerPayload, ctx: &mut dyn Context) {
        match payload {
            TimerPayload::AomGap(seq) => {
                self.aom_gap_timer = None;
                if self.aom.gap_pending() == Some(seq) && self.status == Status::Normal {
                    self.aom.declare_drop();
                    self.pump_aom(ctx);
                }
            }
            TimerPayload::QueryRetry(slot) => {
                if self.status != Status::Normal {
                    return;
                }
                let unresolved = self
                    .gaps
                    .get(&slot)
                    .map(|g| !g.resolved && !g.voted_drop)
                    .unwrap_or(false);
                if unresolved && self.log.is_pending(slot) {
                    ctx.emit(Event::Query { slot: slot.0 });
                    let q = NeoMsg::Query {
                        view: self.view,
                        slot,
                    };
                    let leader = self.leader();
                    self.send_to(leader, &q, ctx);
                    let t = self.arm(self.cfg.query_retry_ns, TimerPayload::QueryRetry(slot), ctx);
                    if let Some(g) = self.gaps.get_mut(&slot) {
                        g.query_timer = Some(t);
                    }
                }
            }
            TimerPayload::GapAgreement(slot) => {
                let unresolved = self.gaps.get(&slot).map(|g| !g.resolved).unwrap_or(false);
                if unresolved && self.status == Status::Normal {
                    // The leader failed to drive the agreement: view
                    // change (§5.5).
                    let next = self.view.next_leader();
                    self.start_view_change(next, ctx);
                }
            }
            TimerPayload::ViewChangeResend => {
                if self.status == Status::ViewChange {
                    if let Some((body, sig)) = self.vc.own.clone() {
                        self.broadcast(&NeoMsg::ViewChange(body, sig), ctx);
                    }
                    let t = self.arm(
                        self.cfg.view_change_resend_ns,
                        TimerPayload::ViewChangeResend,
                        ctx,
                    );
                    self.vc.resend_timer = Some(t);
                }
            }
            TimerPayload::ConfirmFlush => {
                self.confirm_flush_timer = None;
                self.flush_confirms(ctx);
            }
            TimerPayload::StateTransferRetry => {
                if !matches!(
                    self.recovery.as_ref().map(|r| r.phase),
                    Some(RecoveryPhase::FetchingCheckpoint)
                ) {
                    return;
                }
                let body = StateQueryBody {
                    replica: self.id,
                    have: self.log.len(),
                };
                let sig = sign_body(&body, &self.crypto);
                self.broadcast(&NeoMsg::StateQuery(body, sig), ctx);
                let t = self.arm(self.cfg.query_retry_ns, TimerPayload::StateTransferRetry, ctx);
                if let Some(rec) = &mut self.recovery {
                    rec.retry_timer = Some(t);
                }
            }
            TimerPayload::UnicastWatchdog(client, request_id) => {
                self.unicast_watch.remove(&(client, request_id));
                let executed = self
                    .client_table
                    .get(&client)
                    .map(|e| e.last_request >= request_id)
                    .unwrap_or(false);
                if !executed {
                    // Only implicate the sequencer on *sustained* aom
                    // silence: a single lost packet with deliveries still
                    // flowing is the client's retransmission to fix, not
                    // grounds for an epoch change (§4.2).
                    let silent = ctx.now().saturating_sub(self.last_aom_delivery)
                        >= self.cfg.unicast_watchdog_ns;
                    if silent {
                        let msg = Envelope::Config(ConfigMsg::FailoverRequest {
                            group: self.cfg.group,
                            epoch: self.aom.epoch(),
                            requester: self.id,
                        });
                        ctx.send(Addr::Config, msg.to_payload());
                    }
                    // Re-arm: keep escalating until the request commits
                    // or the epoch changes.
                    let t = self.arm(
                        self.cfg.unicast_watchdog_ns,
                        TimerPayload::UnicastWatchdog(client, request_id),
                        ctx,
                    );
                    // neo-lint: allow(R5, re-arms the key removed at handler entry; no net growth)
                    self.unicast_watch.insert((client, request_id), t);
                }
            }
        }
    }

    fn on_neo_msg(&mut self, from: Addr, msg: NeoMsg, ctx: &mut dyn Context) {
        match msg {
            NeoMsg::Reply(..) => {} // replicas ignore stray replies
            NeoMsg::RequestUnicast(signed) => self.on_request_unicast(signed, ctx),
            NeoMsg::Query { view, slot } => self.on_query(from, view, slot, ctx),
            NeoMsg::QueryReply { view, slot, oc } => self.on_query_reply(view, slot, oc, ctx),
            NeoMsg::GapFind { view, slot, sig } => self.on_gap_find(view, slot, sig, ctx),
            NeoMsg::GapRecv { view, slot, oc } => self.on_gap_recv(view, slot, oc, ctx),
            NeoMsg::GapDrop(body, sig) => self.on_gap_drop(body, sig, ctx),
            NeoMsg::GapDecision {
                view,
                slot,
                decision,
                sig,
            } => self.on_gap_decision(view, slot, decision, sig, ctx),
            NeoMsg::GapPrepare(body, sig) => self.on_gap_prepare(body, sig, ctx),
            NeoMsg::GapCommit(body, sig) => self.on_gap_commit(body, sig, ctx),
            NeoMsg::ViewChange(body, sig) => self.on_view_change(body, sig, ctx),
            NeoMsg::ViewStart {
                new_view,
                view_changes,
                sig,
            } => self.on_view_start(new_view, view_changes, sig, ctx),
            NeoMsg::EpochStart(body, sig) => self.on_epoch_start(body, sig, ctx),
            NeoMsg::Sync(body, sig) => self.on_sync(body, sig, ctx),
            NeoMsg::StateQuery(body, sig) => self.on_state_query(body, sig, ctx),
            NeoMsg::StateReply {
                checkpoint,
                suffix_start,
                suffix,
            } => self.on_state_reply(checkpoint, suffix_start, suffix, ctx),
        }
    }
}

/// Merge 2f+1 view-change logs per §B.1. Returns the absolute slot of
/// the merged log's first entry (non-zero when the chosen candidate had
/// compacted below a certified checkpoint) and the entries.
fn merge_logs(view_changes: &[(ViewChangeBody, Signature)]) -> (SlotNum, Vec<WireLogEntry>) {
    // (1) Largest certified epoch across the messages.
    let mut best_epoch = EpochNum::INITIAL;
    let mut best_start = SlotNum(0);
    for (body, _) in view_changes {
        for (e, s, _) in &body.epoch_certs {
            if *e > best_epoch {
                best_epoch = *e;
                best_start = *s;
            }
        }
    }
    // (2)+(3) From logs that started `best_epoch` (all of them, for the
    // initial epoch), take the one reaching the highest absolute slot;
    // copy its prefix and its requests.
    let candidates: Vec<&ViewChangeBody> = view_changes
        .iter()
        .map(|(b, _)| b)
        .filter(|b| {
            best_epoch == EpochNum::INITIAL
                || b.epoch_certs.iter().any(|(e, _, _)| *e == best_epoch)
        })
        .collect();
    let longest = candidates
        .iter()
        .max_by_key(|b| b.log_base.0 + b.log.len() as u64);
    let (base, mut merged) = match longest {
        Some(b) => (b.log_base, b.log.clone()),
        None => (SlotNum(0), Vec::new()),
    };
    // (4) Overlay no-ops from every candidate log within the epoch,
    // matched by absolute slot.
    for body in &candidates {
        for (i, entry) in body.log.iter().enumerate() {
            let s = SlotNum(body.log_base.0 + i as u64);
            if s < best_start || s < base {
                continue;
            }
            if let WireLogEntry::NoOp(cert) = entry {
                let idx = (s.0 - base.0) as usize;
                if idx < merged.len() {
                    merged[idx] = WireLogEntry::NoOp(cert.clone());
                }
            }
        }
    }
    (base, merged)
}

impl Node for Replica {
    fn on_message(&mut self, from: Addr, payload: &[u8], ctx: &mut dyn Context) {
        self.maybe_kick_recovery(ctx);
        self.stats.messages_in += 1;
        ctx.metrics().incr("replica.messages_in");
        let Ok(env) = Envelope::from_bytes(payload) else {
            return;
        };
        match env {
            Envelope::Aom(pkt) => {
                // aom-hm subgroup emulation (§4.3): account for the
                // ⌈n/4⌉−1 additional partial-vector packets per message
                // that a large group's receivers process.
                if self.cfg.emulate_hm_subgroups {
                    let subgroups = self.cfg.n.div_ceil(4) as u64;
                    if subgroups > 1 {
                        ctx.charge((subgroups - 1) * self.cfg.subgroup_packet_cost_ns);
                    }
                }
                if pkt.header.epoch > self.aom.epoch() {
                    // Stamped by a newer sequencer than we have installed:
                    // park it until the epoch-switching view change lands.
                    // R5 bounds: a small window of future epochs, 64k
                    // packets each.
                    if pkt.header.epoch.0 > self.aom.epoch().0 + Self::FUTURE_EPOCH_WINDOW {
                        ctx.metrics().incr("replica.bounded_rejects");
                    } else {
                        // neo-lint: allow(R5, epoch-windowed and size-capped above) neo-lint: allow(R6, pre-verification parking is deliberate — bounded window + 64k cap, MAC-verified on drain once the epoch installs)
                        let buf = self.future_epoch.entry(pkt.header.epoch).or_default();
                        if buf.len() < 65_536 {
                            buf.push(pkt);
                        }
                    }
                } else {
                    // Feed the verify stage even mid-view-change (the
                    // receiver only buffers); deliveries are pumped in
                    // normal status.
                    self.dispatch_packet_verify(pkt, ctx);
                }
                if self.status == Status::Normal {
                    self.pump_aom(ctx);
                }
            }
            Envelope::Confirm(sc) => {
                self.dispatch_confirm_verify(vec![sc], ctx);
                if self.status == Status::Normal {
                    self.pump_aom(ctx);
                }
            }
            Envelope::ConfirmBatch(batch) => {
                self.dispatch_confirm_verify(batch, ctx);
                if self.status == Status::Normal {
                    self.pump_aom(ctx);
                }
            }
            Envelope::Config(ConfigMsg::NewEpoch { group, epoch }) => {
                if group == self.cfg.group && epoch > self.aom.epoch() {
                    let new_view = ViewId::new(epoch, self.view.leader_num + 1);
                    self.start_view_change(new_view, ctx);
                }
            }
            Envelope::Config(_) => {}
            Envelope::App(bytes) => {
                if let Some(msg) = NeoMsg::from_app_bytes(&bytes) {
                    self.on_neo_msg(from, msg, ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId, _kind: u32, ctx: &mut dyn Context) {
        self.maybe_kick_recovery(ctx);
        if let Some(payload) = self.timers.remove(&timer) {
            self.on_timer_payload(payload, ctx);
        }
    }

    fn meter(&self) -> Option<&neo_crypto::Meter> {
        Some(self.crypto.meter())
    }

    fn store(&mut self) -> Option<&mut dyn neo_sim::Store> {
        self.store.as_deref_mut()
    }

    /// Collect pooled verification completions (tokio runtime only; the
    /// simulator's lanes complete inline). Tasks re-enter the protocol
    /// in dispatch order via the reorder buffer, then deliveries pump as
    /// if the packets had verified inline.
    // neo-lint: verified(absorbed tasks carry verdicts computed by PoolVerifyTask::run on the worker threads)
    fn on_async(&mut self, ctx: &mut dyn Context) -> u64 {
        self.maybe_kick_recovery(ctx);
        let Some(pool) = self.lane.pool().cloned() else {
            return 0;
        };
        let mut done = Vec::new();
        pool.drain_completed(&mut done);
        if done.is_empty() {
            return 0;
        }
        let n = done.len() as u64;
        for d in done {
            // A panicked task still flows through: its job carries no
            // verdict, so the receiver rejects it (and the executor
            // notices `pool.poisoned()` and stops the node).
            let Ok(task) = d.task.into_any().downcast::<PoolVerifyTask>() else {
                continue;
            };
            self.absorb_task(d.ticket, *task, ctx);
        }
        {
            let m = ctx.metrics();
            if m.enabled() {
                m.set_gauge("verify.queue_depth", pool.queue_depth() as i64);
            }
        }
        if self.status == Status::Normal {
            self.pump_aom(ctx);
        }
        n
    }

    fn verify_pool(&self) -> Option<Arc<VerifyPool>> {
        self.lane.pool().cloned()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_aom::{AomPacket, OrderingCert};
    use neo_wire::{AomHeader, GroupId, SeqNum};

    fn oc(seq: u64, payload: u8) -> OrderingCert {
        let mut header = AomHeader::unstamped(GroupId(0), neo_crypto::sha256(&[payload]).0);
        header.seq = SeqNum(seq);
        header.auth = neo_wire::Authenticator::HmacVector(vec![[0u8; 8]; 4]);
        OrderingCert {
            packet: AomPacket {
                header,
                payload: vec![payload],
            },
            confirms: vec![],
        }
    }

    fn vc(replica: u32, entries: &[WireLogEntry]) -> (ViewChangeBody, Signature) {
        vc_based(replica, 0, entries)
    }

    fn vc_based(
        replica: u32,
        log_base: u64,
        entries: &[WireLogEntry],
    ) -> (ViewChangeBody, Signature) {
        (
            ViewChangeBody {
                new_view: ViewId::new(EpochNum(0), 1),
                replica: ReplicaId(replica),
                epoch_certs: vec![],
                log_base: SlotNum(log_base),
                log: entries.to_vec(),
            },
            Signature::empty(),
        )
    }

    fn req(seq: u64, p: u8) -> WireLogEntry {
        WireLogEntry::Request(oc(seq, p))
    }

    fn payload_of(e: &WireLogEntry) -> Option<u8> {
        match e {
            WireLogEntry::Request(oc) => Some(oc.packet.payload[0]),
            WireLogEntry::NoOp(_) => None,
        }
    }

    #[test]
    fn merge_takes_the_longest_log() {
        let msgs = vec![
            vc(0, &[req(1, 10)]),
            vc(1, &[req(1, 10), req(2, 20)]),
            vc(2, &[req(1, 10), req(2, 20), req(3, 30)]),
        ];
        let (base, merged) = merge_logs(&msgs);
        assert_eq!(base, SlotNum(0));
        assert_eq!(merged.len(), 3);
        assert_eq!(
            merged.iter().map(payload_of).collect::<Vec<_>>(),
            vec![Some(10), Some(20), Some(30)]
        );
    }

    #[test]
    fn merge_overlays_noops_from_any_log() {
        // Replica 2 committed slot 1 as a no-op (with a gap certificate);
        // the merge must carry the no-op even though a longer log holds a
        // request there (§B.1 step 4: no-ops overwrite).
        let msgs = vec![
            vc(0, &[req(1, 10), req(2, 20), req(3, 30)]),
            vc(1, &[req(1, 10), WireLogEntry::NoOp(vec![])]),
            vc(2, &[req(1, 10)]),
        ];
        let (_, merged) = merge_logs(&msgs);
        assert_eq!(merged.len(), 3);
        assert_eq!(payload_of(&merged[0]), Some(10));
        assert!(matches!(merged[1], WireLogEntry::NoOp(_)));
        assert_eq!(payload_of(&merged[2]), Some(30));
    }

    #[test]
    fn merge_of_empty_logs_is_empty() {
        let msgs = vec![vc(0, &[]), vc(1, &[]), vc(2, &[])];
        let (base, merged) = merge_logs(&msgs);
        assert_eq!(base, SlotNum(0));
        assert!(merged.is_empty());
    }

    #[test]
    fn merge_is_deterministic_across_orderings() {
        let a = vec![
            vc(0, &[req(1, 1)]),
            vc(1, &[req(1, 1), req(2, 2)]),
            vc(2, &[req(1, 1), WireLogEntry::NoOp(vec![])]),
        ];
        let mut b = a.clone();
        b.reverse();
        let (_, ma) = merge_logs(&a);
        let (_, mb) = merge_logs(&b);
        assert_eq!(ma.len(), mb.len());
        for (x, y) in ma.iter().zip(mb.iter()) {
            assert_eq!(payload_of(x), payload_of(y));
        }
    }

    #[test]
    fn merge_respects_candidate_log_bases() {
        // A compacted candidate (base 2, holding slots 2..=3) reaches the
        // highest absolute slot even though its vector is shorter; the
        // merge adopts its base, and a no-op from an un-compacted peer is
        // overlaid at the matching *absolute* slot.
        let msgs = vec![
            vc_based(0, 2, &[req(3, 30), req(4, 40)]),
            vc(1, &[req(1, 10), req(2, 20), WireLogEntry::NoOp(vec![])]),
            vc(2, &[req(1, 10)]),
        ];
        let (base, merged) = merge_logs(&msgs);
        assert_eq!(base, SlotNum(2));
        assert_eq!(merged.len(), 2);
        assert!(
            matches!(merged[0], WireLogEntry::NoOp(_)),
            "absolute slot 2 no-op overlays the compacted candidate's entry"
        );
        assert_eq!(payload_of(&merged[1]), Some(40));
    }
}
