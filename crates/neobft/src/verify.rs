//! The verify stage shared by both executors (DESIGN.md §16).
//!
//! Authenticator and signature verification is an explicit pipeline
//! stage, not an inline call: the replica *dispatches* a
//! [`PoolVerifyTask`] for every aom packet or confirm batch it receives
//! and *completes* the verified job back into the [`neo_aom`] receiver
//! in strict dispatch order. [`VerifyLane`] picks where the task runs:
//!
//! * [`VerifyLane::Serial`] — inline on the dispatch path, costs charged
//!   to the meter's serial lane (the pre-batching behaviour);
//! * [`VerifyLane::SimParallel`] — inline, but charged to the meter's
//!   parallel lane: the simulator's model of a worker pool
//!   (`pipeline_verify` in [`crate::NeoConfig`]);
//! * [`VerifyLane::Pool`] — a real [`VerifyPool`]: submitted on
//!   dispatch, collected asynchronously by the tokio runtime through
//!   [`neo_sim::Node::on_async`].
//!
//! One code path, two executors: the inline lanes run the *same*
//! [`PoolVerifyTask::run`] and flow through the *same* reorder buffer as
//! the pooled lane — only the thread that executes `run` differs.

use crate::messages::SignedBatch;
use neo_aom::{ConfirmJob, VerifyJob};
use neo_crypto::{NodeCrypto, Principal, Signature, VerifyPool, VerifyTask};
use std::any::Any;
use std::sync::Arc;

/// Where a replica's authenticator verification runs.
#[derive(Clone)]
pub enum VerifyLane {
    /// Inline on the dispatch core, serial-lane charges.
    Serial,
    /// Inline, parallel-lane charges — the simulator's pool model.
    SimParallel,
    /// A real worker pool (tokio runtime only; never the simulator).
    Pool(Arc<VerifyPool>),
}

impl VerifyLane {
    /// Whether verification costs charge the meter's parallel lane.
    pub fn parallel(&self) -> bool {
        !matches!(self, VerifyLane::Serial)
    }

    /// The worker pool, when this lane dispatches asynchronously.
    pub fn pool(&self) -> Option<&Arc<VerifyPool>> {
        match self {
            VerifyLane::Pool(p) => Some(p),
            _ => None,
        }
    }
}

impl std::fmt::Debug for VerifyLane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyLane::Serial => f.write_str("Serial"),
            VerifyLane::SimParallel => f.write_str("SimParallel"),
            VerifyLane::Pool(p) => write!(f, "Pool({} workers)", p.workers()),
        }
    }
}

/// One unit of dispatched verification work. A whole confirm batch is
/// one unit: it verifies through [`NodeCrypto::verify_batch`] under a
/// single reorder ticket, so batching survives the pipeline.
pub enum VerifyWork {
    /// An aom packet's authenticator ([`neo_aom::AomReceiver::submit_verify`]).
    Packet(VerifyJob),
    /// A batch of replica confirm signatures
    /// ([`neo_aom::AomReceiver::submit_confirm`]).
    Confirms(Vec<ConfirmJob>),
}

impl VerifyWork {
    /// Individual items verified by this unit.
    pub fn len(&self) -> usize {
        match self {
            VerifyWork::Packet(_) => 1,
            VerifyWork::Confirms(jobs) => jobs.len(),
        }
    }

    /// Whether the unit carries no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The task shipped to the verify stage: the work plus a [`NodeCrypto`]
/// clone. Clones share the meter, so worker-side charges land on the
/// owning node's meter exactly as inline charges would — the simulator's
/// cost accounting and the pool see the same numbers.
pub struct PoolVerifyTask {
    /// The verification unit; outcomes are recorded in the jobs.
    pub work: VerifyWork,
    /// Piggybacked client batch-MAC verdict for packet work: the pool
    /// pre-verifies the §5.3 request authenticator so `execute_slot`
    /// finds it ready, keyed by the packet's header digest.
    pub request_auth: Option<([u8; 32], bool)>,
    crypto: NodeCrypto,
    my_index: usize,
    parallel: bool,
    precheck_mac: bool,
}

impl PoolVerifyTask {
    /// Package `work` for the lane. `precheck_mac` piggybacks the client
    /// batch-MAC check onto packet verification (pool lane only — inline
    /// lanes keep the check in `execute_slot` so simulator charges are
    /// unchanged).
    pub fn new(
        work: VerifyWork,
        crypto: NodeCrypto,
        my_index: usize,
        parallel: bool,
        precheck_mac: bool,
    ) -> Self {
        PoolVerifyTask {
            work,
            request_auth: None,
            crypto,
            my_index,
            parallel,
            precheck_mac,
        }
    }
}

impl VerifyTask for PoolVerifyTask {
    fn run(&mut self) {
        match &mut self.work {
            VerifyWork::Packet(job) => {
                job.verify(&self.crypto, self.parallel);
                if self.precheck_mac && job.ok() {
                    self.request_auth = precheck_request_auth(
                        job.digest(),
                        job.payload(),
                        &self.crypto,
                        self.my_index,
                    );
                }
            }
            VerifyWork::Confirms(jobs) => {
                let items: Vec<(Principal, &[u8], &Signature)> = jobs
                    .iter()
                    .map(|j| {
                        let (replica, msg, sig) = j.batch_item();
                        (Principal::Replica(replica), msg, sig)
                    })
                    .collect();
                let results = self.crypto.verify_batch(&items);
                for (job, res) in jobs.iter_mut().zip(results) {
                    job.set_verified(res.is_ok());
                }
            }
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Pre-verify my entry of the batch's client MAC vector, mirroring
/// `Replica::verify_request_auth`: a missing tag or unencodable batch is
/// a definitive `false`; a payload that is not a batch yields no verdict
/// (execute_slot treats it as a no-op before any auth check).
fn precheck_request_auth(
    digest: [u8; 32],
    payload: &[u8],
    crypto: &NodeCrypto,
    my_index: usize,
) -> Option<([u8; 32], bool)> {
    let signed = SignedBatch::from_bytes(payload)?;
    if signed.batch.is_empty() {
        return None;
    }
    let Some(tag) = signed.auth.get(my_index) else {
        return Some((digest, false));
    };
    let Ok(bytes) = neo_wire::encode(&signed.batch) else {
        return Some((digest, false));
    };
    let ok = crypto
        .verify_mac_from(Principal::Client(signed.batch.client), &bytes, tag)
        .is_ok();
    Some((digest, ok))
}
