//! The NeoBFT client driver (§5.3, generalized to batches).
//!
//! [`ClientDriver`] replaces the original closed-loop one-op-at-a-time
//! client with a windowed, batch-first API:
//!
//! * ops enter a FIFO queue — either pulled from a [`Workload`] to keep
//!   the window full, or pushed explicitly via [`ClientDriver::submit`],
//!   which returns a per-op [`OpHandle`];
//! * queued ops are packed into a batch envelope (many ops, one MAC
//!   vector, one aom slot) and multicast; one batch is in flight at a
//!   time, so per-client FIFO order and at-most-once semantics are
//!   preserved exactly as in the closed-loop design;
//! * the flush point is driven by the [`AdaptiveBatcher`]: batches fill
//!   to the load-adaptive target size, or flush on a timeout so an idle
//!   client never trades unbounded latency for throughput;
//! * the 2f+1 reply quorum matches on (view-id, log-slot-num, log-hash,
//!   results) and fans per-op [`CompletedOp`] records back out.
//!
//! With [`BatchPolicy::SINGLE`] (the default) this is bit-for-bit the
//! original closed-loop client: one op per slot, one outstanding op,
//! identical request-id sequence, identical retry behaviour.

use crate::batch::{AdaptiveBatcher, BatchPolicy};
use crate::config::NeoConfig;
use crate::messages::{BatchRequest, NeoMsg, Reply, SignedBatch};
use neo_aom::{AomBatch, AomSender, Envelope};
use neo_app::Workload;
use neo_crypto::{CostModel, NodeCrypto, Principal, SystemKeys};
use neo_sim::obs::Event;
use neo_sim::{Context, Node, TimerId};
use neo_wire::{Addr, ClientId, ReplicaId, RequestId};
use std::any::Any;
use std::collections::{BTreeMap, VecDeque};

/// Retry (unicast-fallback) timer kind.
const RETRY_TIMER: u32 = 2;
/// Partial-batch flush timer kind.
const FLUSH_TIMER: u32 = 3;
/// Manual-mode pump tick (no workload to pull from; poll the queue).
const PUMP_TIMER: u32 = 4;

/// A completed operation record for the experiment harness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompletedOp {
    /// The request id.
    pub request_id: RequestId,
    /// Virtual time the op entered the driver (queue time; for a
    /// closed-loop client this is the issue time).
    pub issued_at: u64,
    /// Virtual time the reply quorum completed.
    pub completed_at: u64,
    /// The agreed result.
    pub result: Vec<u8>,
    /// Batch retransmissions needed (0 = first transmission succeeded).
    pub retries: u32,
}

impl CompletedOp {
    /// End-to-end latency in nanoseconds.
    pub fn latency_ns(&self) -> u64 {
        self.completed_at - self.issued_at
    }
}

/// Identifies an op submitted to a [`ClientDriver`]; resolves to its
/// [`CompletedOp`] once the reply quorum arrives.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct OpHandle(pub RequestId);

/// An op waiting to be packed into a batch.
struct QueuedOp {
    request_id: RequestId,
    op: Vec<u8>,
    /// Queue time; `None` for ops submitted outside the event loop,
    /// stamped when the batch is flushed.
    queued_at: Option<u64>,
}

/// The batch currently in flight (at most one — depth-1 pipelining keeps
/// the client table's at-most-once bookkeeping exact).
struct Inflight {
    first_request_id: RequestId,
    ops: Vec<(RequestId, Vec<u8>, u64)>,
    retries: u32,
    /// Replies keyed by replica; the quorum check groups matching ones.
    /// BTreeMap so the quorum grouping below iterates deterministically
    /// (neo-lint R1).
    replies: BTreeMap<ReplicaId, Reply>,
    retry_timer: TimerId,
}

/// The windowed, batching NeoBFT client node.
pub struct ClientDriver {
    id: ClientId,
    cfg: NeoConfig,
    crypto: NodeCrypto,
    sender: AomSender,
    /// Op source (`None` = manual mode, ops arrive only via `submit`).
    workload: Option<Box<dyn Workload>>,
    batcher: AdaptiveBatcher,
    next_request: u64,
    /// Ops pulled from the workload so far (bounded by `max_ops`).
    pulled: u64,
    queue: VecDeque<QueuedOp>,
    inflight: Option<Inflight>,
    flush_timer: Option<TimerId>,
    /// Completed operations, in request-id order.
    pub completed: Vec<CompletedOp>,
    /// Stop pulling from the workload after this many operations
    /// (None = run forever). Does not limit explicit `submit`s.
    pub max_ops: Option<u64>,
}

/// The original name: a [`ClientDriver`] with the policy taken from
/// [`NeoConfig::batch`] (default [`BatchPolicy::SINGLE`], the exact
/// closed-loop behaviour every pre-batching test expects).
pub type Client = ClientDriver;

impl ClientDriver {
    /// Build client `id` issuing operations from `workload` under the
    /// batch policy in `cfg.batch`.
    pub fn new(
        id: ClientId,
        cfg: NeoConfig,
        keys: &SystemKeys,
        costs: CostModel,
        workload: Box<dyn Workload>,
    ) -> Self {
        Self::build(id, cfg, keys, costs, Some(workload))
    }

    /// Build a manual-mode driver: no workload, ops arrive only through
    /// [`ClientDriver::submit`] / [`ClientDriver::try_submit`].
    pub fn manual(id: ClientId, cfg: NeoConfig, keys: &SystemKeys, costs: CostModel) -> Self {
        Self::build(id, cfg, keys, costs, None)
    }

    fn build(
        id: ClientId,
        cfg: NeoConfig,
        keys: &SystemKeys,
        costs: CostModel,
        workload: Option<Box<dyn Workload>>,
    ) -> Self {
        let crypto = NodeCrypto::new(Principal::Client(id), keys, costs);
        let sender = AomSender::new(cfg.group);
        let batcher = AdaptiveBatcher::new(cfg.batch);
        ClientDriver {
            id,
            cfg,
            crypto,
            sender,
            workload,
            batcher,
            next_request: 1,
            pulled: 0,
            queue: VecDeque::new(),
            inflight: None,
            flush_timer: None,
            completed: Vec::new(),
            max_ops: None,
        }
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// True if a batch is in flight or ops are queued.
    pub fn busy(&self) -> bool {
        self.inflight.is_some() || !self.queue.is_empty()
    }

    /// Ops outstanding (queued + in flight).
    pub fn outstanding(&self) -> usize {
        self.queue.len() + self.inflight.as_ref().map(|i| i.ops.len()).unwrap_or(0)
    }

    /// Submit an op for replicated execution. Always accepts (explicit
    /// submissions may exceed the window); the returned handle resolves
    /// via [`ClientDriver::result_of`] once the op commits.
    pub fn submit(&mut self, op: Vec<u8>) -> OpHandle {
        let request_id = RequestId(self.next_request);
        self.next_request += 1;
        self.queue.push_back(QueuedOp {
            request_id,
            op,
            queued_at: None,
        });
        OpHandle(request_id)
    }

    /// Windowed submit: refuses (returning `None`) while the policy's
    /// window of outstanding ops is full — the backpressure surface for
    /// open-loop load generators.
    pub fn try_submit(&mut self, op: Vec<u8>) -> Option<OpHandle> {
        if self.outstanding() >= self.cfg.batch.window {
            return None;
        }
        Some(self.submit(op))
    }

    /// The completion record for a submitted op, if it has committed.
    /// Ops complete in request-id order, so this is a binary search.
    pub fn result_of(&self, handle: OpHandle) -> Option<&CompletedOp> {
        self.completed
            .binary_search_by_key(&handle.0, |c| c.request_id)
            .ok()
            .and_then(|i| self.completed.get(i))
    }

    /// True once the op behind `handle` has committed.
    pub fn is_complete(&self, handle: OpHandle) -> bool {
        self.result_of(handle).is_some()
    }

    /// Pull ops from the workload to fill the window, then flush a batch
    /// if the policy says so. The single driver of all progress.
    fn pump(&mut self, ctx: &mut dyn Context) {
        self.refill(ctx);
        self.maybe_flush(ctx, false);
    }

    /// Top the queue up from the workload (if any) to the window size.
    fn refill(&mut self, ctx: &mut dyn Context) {
        let Some(workload) = self.workload.as_mut() else {
            return;
        };
        let window = self.cfg.batch.window.max(1);
        let room = window.saturating_sub(self.queue.len() + self.inflight_len());
        let budget = match self.max_ops {
            Some(max) => (max.saturating_sub(self.pulled)).min(room as u64) as usize,
            None => room,
        };
        if budget == 0 {
            // Only signal idleness when there is truly nothing going on;
            // a full window under backpressure is load, not idleness.
            if self.queue.is_empty() && self.inflight.is_none() {
                self.batcher.on_ops(0, ctx.now());
            }
            return;
        }
        let ops = workload.next_ops(budget);
        let n = ops.len() as u64;
        self.pulled += n;
        let now = ctx.now();
        for op in ops {
            let request_id = RequestId(self.next_request);
            self.next_request += 1;
            self.queue.push_back(QueuedOp {
                request_id,
                op,
                queued_at: Some(now),
            });
        }
        self.batcher.on_ops(n, now);
    }

    fn inflight_len(&self) -> usize {
        self.inflight.as_ref().map(|i| i.ops.len()).unwrap_or(0)
    }

    /// Flush a batch if one is due: the queue reached the target size,
    /// the policy never waits (zero flush timeout), or the flush timer
    /// fired (`timed_out`).
    fn maybe_flush(&mut self, ctx: &mut dyn Context, timed_out: bool) {
        if self.inflight.is_some() || self.queue.is_empty() {
            return;
        }
        let target = self
            .batcher
            .target()
            .clamp(1, self.cfg.batch.max_batch.max(1));
        let due = timed_out || self.queue.len() >= target || self.cfg.batch.flush_timeout_ns == 0;
        if !due {
            if self.flush_timer.is_none() {
                self.flush_timer =
                    Some(ctx.set_timer(self.cfg.batch.flush_timeout_ns, FLUSH_TIMER));
            }
            return;
        }
        if let Some(t) = self.flush_timer.take() {
            ctx.cancel_timer(t);
        }
        let now = ctx.now();
        let take = self.queue.len().min(self.cfg.batch.max_batch.max(1));
        let mut ops = Vec::with_capacity(take);
        for _ in 0..take {
            let Some(q) = self.queue.pop_front() else {
                break;
            };
            ops.push((q.request_id, q.op, q.queued_at.unwrap_or(now)));
        }
        let Some(first) = ops.first().map(|(id, _, _)| *id) else {
            return;
        };
        let retry_timer = ctx.set_timer(self.cfg.client_retry_ns, RETRY_TIMER);
        self.inflight = Some(Inflight {
            first_request_id: first,
            ops,
            retries: 0,
            replies: BTreeMap::new(),
            retry_timer,
        });
        if take > 1 {
            ctx.emit(Event::BatchFlush {
                client: self.id.0,
                request: first.0,
                size: take as u64,
            });
        }
        // Span start: everything downstream correlates back to this
        // (client, first-request) pair.
        ctx.emit(Event::ClientSend {
            client: self.id.0,
            request: first.0,
        });
        self.send_batch(ctx);
    }

    fn signed_batch(&self) -> Option<SignedBatch> {
        let infl = self.inflight.as_ref()?;
        let batch = BatchRequest {
            ops: AomBatch {
                ops: infl.ops.iter().map(|(_, op, _)| op.clone()).collect(),
            },
            first_request_id: infl.first_request_id,
            client: self.id,
        };
        let bytes = neo_wire::encode(&batch).ok()?;
        let peers: Vec<neo_crypto::Principal> = (0..self.cfg.n as u32)
            .map(|r| neo_crypto::Principal::Replica(ReplicaId(r)))
            .collect();
        let auth = self.crypto.mac_vector(&peers, &bytes);
        Some(SignedBatch { batch, auth })
    }

    fn send_batch(&mut self, ctx: &mut dyn Context) {
        let Some(signed) = self.signed_batch() else {
            return;
        };
        let payload = self.sender.wrap(signed.to_bytes(), &self.crypto);
        ctx.send(self.sender.dest(), payload);
    }

    fn retransmit(&mut self, ctx: &mut dyn Context) {
        // Keep multicasting via aom *and* unicast to every replica
        // (§5.3).
        self.send_batch(ctx);
        let Some(signed) = self.signed_batch() else {
            return;
        };
        // Encode the unicast fallback once; fan-out is refcount bumps.
        let all: Vec<ReplicaId> = (0..self.cfg.n as u32).map(ReplicaId).collect();
        ctx.broadcast(&all, NeoMsg::RequestUnicast(signed).to_payload());
        if let Some(infl) = self.inflight.as_mut() {
            infl.retries += 1;
            infl.retry_timer = ctx.set_timer(self.cfg.client_retry_ns, RETRY_TIMER);
        }
    }

    fn on_reply(&mut self, reply: Reply, tag: neo_wire::HmacTag, ctx: &mut dyn Context) {
        let Some(infl) = self.inflight.as_mut() else {
            return;
        };
        if reply.request_id != infl.first_request_id {
            return;
        }
        if reply.results.len() != infl.ops.len() {
            return;
        }
        if reply.replica.index() >= self.cfg.n {
            return;
        }
        let Ok(bytes) = neo_wire::encode(&reply) else {
            return;
        };
        if self
            .crypto
            .verify_mac_from(Principal::Replica(reply.replica), &bytes, &tag)
            .is_err()
        {
            return;
        }
        infl.replies.insert(reply.replica, reply);
        // Quorum: 2f+1 replies matching on (view, slot, log_hash, results).
        let quorum = self.cfg.quorum();
        let mut groups: BTreeMap<(u64, u64, u64, neo_crypto::Digest, Vec<Vec<u8>>), usize> =
            BTreeMap::new();
        for r in infl.replies.values() {
            let key = (
                r.view.epoch.0,
                r.view.leader_num,
                r.slot.0,
                r.log_hash,
                r.results.clone(),
            );
            // neo-lint: allow(R5, at most n per-replica replies feed this map)
            *groups.entry(key).or_default() += 1;
        }
        if let Some((key, _)) = groups.into_iter().find(|(_, c)| *c >= quorum) {
            let Some(infl) = self.inflight.take() else {
                return;
            };
            ctx.cancel_timer(infl.retry_timer);
            let completed_at = ctx.now();
            // Span end: the 2f+1 matching-reply quorum completed.
            ctx.emit(Event::ClientCommit {
                client: self.id.0,
                request: infl.first_request_id.0,
            });
            {
                let m = ctx.metrics();
                for (_, _, queued_at) in &infl.ops {
                    m.observe("client.latency_ns", completed_at.saturating_sub(*queued_at));
                    m.incr("client.ops_completed");
                }
                if infl.retries > 0 {
                    m.add("client.retries", infl.retries as u64);
                }
            }
            // Fan the per-op results back out, in request-id order.
            for ((request_id, _, queued_at), result) in infl.ops.into_iter().zip(key.4) {
                self.completed.push(CompletedOp {
                    request_id,
                    issued_at: queued_at,
                    completed_at,
                    result,
                    retries: infl.retries,
                });
            }
            self.pump(ctx);
        }
    }
}

impl Node for ClientDriver {
    fn on_message(&mut self, _from: Addr, payload: &[u8], ctx: &mut dyn Context) {
        let Ok(Envelope::App(bytes)) = Envelope::from_bytes(payload) else {
            return;
        };
        if let Some(NeoMsg::Reply(reply, tag)) = NeoMsg::from_app_bytes(&bytes) {
            self.on_reply(reply, tag, ctx);
        }
    }

    fn on_timer(&mut self, timer: TimerId, kind: u32, ctx: &mut dyn Context) {
        match kind {
            neo_sim::sim::INIT_TIMER_KIND => {
                if self.workload.is_none() {
                    // Manual mode: poll for submitted ops. The interval
                    // trades submit-to-wire latency against timer churn.
                    let tick = self.cfg.batch.flush_timeout_ns.max(100_000);
                    ctx.set_timer(tick, PUMP_TIMER);
                }
                self.pump(ctx);
            }
            RETRY_TIMER => {
                let active = self
                    .inflight
                    .as_ref()
                    .map(|i| i.retry_timer == timer)
                    .unwrap_or(false);
                if active {
                    self.retransmit(ctx);
                }
            }
            FLUSH_TIMER => {
                let active = self.flush_timer.map(|t| t == timer).unwrap_or(false);
                if active {
                    self.flush_timer = None;
                    self.maybe_flush(ctx, true);
                }
            }
            PUMP_TIMER => {
                let tick = self.cfg.batch.flush_timeout_ns.max(100_000);
                ctx.set_timer(tick, PUMP_TIMER);
                self.pump(ctx);
            }
            _ => {}
        }
    }

    fn meter(&self) -> Option<&neo_crypto::Meter> {
        Some(self.crypto.meter())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
