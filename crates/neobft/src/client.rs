//! The NeoBFT client (§5.3).
//!
//! Closed-loop: one outstanding operation at a time. The client
//! aom-multicasts a signed request, waits for 2f+1 replies with valid
//! signatures and matching (view-id, log-slot-num, log-hash, result),
//! and falls back to unicast retransmission if replies do not arrive in
//! time — which also arms the replicas' sequencer-suspicion watchdogs.

use crate::config::NeoConfig;
use crate::messages::{NeoMsg, Reply, Request, SignedRequest};
use neo_aom::{AomSender, Envelope};
use neo_app::Workload;
use neo_crypto::{CostModel, NodeCrypto, Principal, SystemKeys};
use neo_sim::obs::Event;
use neo_sim::{Context, Node, TimerId};
use neo_wire::{Addr, ClientId, ReplicaId, RequestId};
use std::any::Any;
use std::collections::BTreeMap;

/// A completed operation record for the experiment harness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompletedOp {
    /// The request id.
    pub request_id: RequestId,
    /// Virtual time the request was first issued.
    pub issued_at: u64,
    /// Virtual time the reply quorum completed.
    pub completed_at: u64,
    /// The agreed result.
    pub result: Vec<u8>,
    /// Retries needed (0 = first transmission succeeded).
    pub retries: u32,
}

impl CompletedOp {
    /// End-to-end latency in nanoseconds.
    pub fn latency_ns(&self) -> u64 {
        self.completed_at - self.issued_at
    }
}

struct Pending {
    request_id: RequestId,
    op: Vec<u8>,
    issued_at: u64,
    retries: u32,
    /// Replies keyed by replica; the quorum check groups matching ones.
    /// BTreeMap so the quorum grouping below iterates deterministically
    /// (neo-lint R1).
    replies: BTreeMap<ReplicaId, Reply>,
    retry_timer: TimerId,
}

/// The closed-loop NeoBFT client node.
pub struct Client {
    id: ClientId,
    cfg: NeoConfig,
    crypto: NodeCrypto,
    sender: AomSender,
    workload: Box<dyn Workload>,
    next_request: u64,
    pending: Option<Pending>,
    /// Completed operations, in order.
    pub completed: Vec<CompletedOp>,
    /// Stop after this many operations (None = run forever).
    pub max_ops: Option<u64>,
}

impl Client {
    /// Build client `id` issuing operations from `workload`.
    pub fn new(
        id: ClientId,
        cfg: NeoConfig,
        keys: &SystemKeys,
        costs: CostModel,
        workload: Box<dyn Workload>,
    ) -> Self {
        let crypto = NodeCrypto::new(Principal::Client(id), keys, costs);
        let sender = AomSender::new(cfg.group);
        Client {
            id,
            cfg,
            crypto,
            sender,
            workload,
            next_request: 1,
            pending: None,
            completed: Vec::new(),
            max_ops: None,
        }
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// True if an operation is in flight.
    pub fn busy(&self) -> bool {
        self.pending.is_some()
    }

    fn issue_next(&mut self, ctx: &mut dyn Context) {
        if self.pending.is_some() {
            return;
        }
        if let Some(max) = self.max_ops {
            if self.completed.len() as u64 >= max {
                return;
            }
        }
        let op = self.workload.next_op();
        let request_id = RequestId(self.next_request);
        self.next_request += 1;
        let retry_timer = ctx.set_timer(self.cfg.client_retry_ns, 2);
        self.pending = Some(Pending {
            request_id,
            op: op.clone(),
            issued_at: ctx.now(),
            retries: 0,
            replies: BTreeMap::new(),
            retry_timer,
        });
        // Span start: everything downstream correlates back to this
        // (client, request) pair.
        ctx.emit(Event::ClientSend {
            client: self.id.0,
            request: request_id.0,
        });
        self.send_request(ctx);
    }

    fn signed_request(&self) -> Option<SignedRequest> {
        let p = self.pending.as_ref()?;
        let request = Request {
            op: p.op.clone(),
            request_id: p.request_id,
            client: self.id,
        };
        let bytes = neo_wire::encode(&request).ok()?;
        let peers: Vec<neo_crypto::Principal> = (0..self.cfg.n as u32)
            .map(|r| neo_crypto::Principal::Replica(ReplicaId(r)))
            .collect();
        let auth = self.crypto.mac_vector(&peers, &bytes);
        Some(SignedRequest { request, auth })
    }

    fn send_request(&mut self, ctx: &mut dyn Context) {
        let Some(signed) = self.signed_request() else {
            return;
        };
        let payload = self.sender.wrap(signed.to_bytes(), &self.crypto);
        ctx.send(self.sender.dest(), payload);
    }

    fn retransmit(&mut self, ctx: &mut dyn Context) {
        // Keep multicasting via aom *and* unicast to every replica
        // (§5.3).
        self.send_request(ctx);
        let Some(signed) = self.signed_request() else {
            return;
        };
        // Encode the unicast fallback once; fan-out is refcount bumps.
        let all: Vec<ReplicaId> = (0..self.cfg.n as u32).map(ReplicaId).collect();
        ctx.broadcast(&all, NeoMsg::RequestUnicast(signed).to_payload());
        if let Some(p) = self.pending.as_mut() {
            p.retries += 1;
            p.retry_timer = ctx.set_timer(self.cfg.client_retry_ns, 2);
        }
    }

    fn on_reply(&mut self, reply: Reply, tag: neo_wire::HmacTag, ctx: &mut dyn Context) {
        let Some(p) = self.pending.as_mut() else {
            return;
        };
        if reply.request_id != p.request_id {
            return;
        }
        if reply.replica.index() >= self.cfg.n {
            return;
        }
        let Ok(bytes) = neo_wire::encode(&reply) else {
            return;
        };
        if self
            .crypto
            .verify_mac_from(Principal::Replica(reply.replica), &bytes, &tag)
            .is_err()
        {
            return;
        }
        p.replies.insert(reply.replica, reply);
        // Quorum: 2f+1 replies matching on (view, slot, log_hash, result).
        let quorum = self.cfg.quorum();
        let mut groups: BTreeMap<(u64, u64, u64, neo_crypto::Digest, Vec<u8>), usize> =
            BTreeMap::new();
        for r in p.replies.values() {
            let key = (
                r.view.epoch.0,
                r.view.leader_num,
                r.slot.0,
                r.log_hash,
                r.result.clone(),
            );
            // neo-lint: allow(R5, at most n per-replica replies feed this map)
            *groups.entry(key).or_default() += 1;
        }
        if let Some((key, _)) = groups.into_iter().find(|(_, c)| *c >= quorum) {
            let Some(p) = self.pending.take() else {
                return;
            };
            ctx.cancel_timer(p.retry_timer);
            let completed_at = ctx.now();
            // Span end: the 2f+1 matching-reply quorum completed.
            ctx.emit(Event::ClientCommit {
                client: self.id.0,
                request: p.request_id.0,
            });
            {
                let m = ctx.metrics();
                m.observe(
                    "client.latency_ns",
                    completed_at.saturating_sub(p.issued_at),
                );
                m.incr("client.ops_completed");
                if p.retries > 0 {
                    m.add("client.retries", p.retries as u64);
                }
            }
            self.completed.push(CompletedOp {
                request_id: p.request_id,
                issued_at: p.issued_at,
                completed_at,
                result: key.4,
                retries: p.retries,
            });
            self.issue_next(ctx);
        }
    }
}

impl Node for Client {
    fn on_message(&mut self, _from: Addr, payload: &[u8], ctx: &mut dyn Context) {
        let Ok(Envelope::App(bytes)) = Envelope::from_bytes(payload) else {
            return;
        };
        if let Some(NeoMsg::Reply(reply, tag)) = NeoMsg::from_app_bytes(&bytes) {
            self.on_reply(reply, tag, ctx);
        }
    }

    fn on_timer(&mut self, timer: TimerId, kind: u32, ctx: &mut dyn Context) {
        match kind {
            neo_sim::sim::INIT_TIMER_KIND => self.issue_next(ctx),
            2 => {
                let active = self
                    .pending
                    .as_ref()
                    .map(|p| p.retry_timer == timer)
                    .unwrap_or(false);
                if active {
                    self.retransmit(ctx);
                }
            }
            _ => {}
        }
    }

    fn meter(&self) -> Option<&neo_crypto::Meter> {
        Some(self.crypto.meter())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
