//! NeoBFT wire messages (§5.3–§5.5, §B).
//!
//! Signed messages carry `(body, signature)` where the signature covers
//! the bincode encoding of the body. Messages the paper marks as
//! unsigned (`query`, `query-reply`, `gap-recv-message`) are unsigned
//! here too — their validity rests on the transferable authentication of
//! the enclosed ordering certificates.

use neo_aom::{AomBatch, OrderingCert};
use neo_crypto::{Digest, NodeCrypto, Principal, Signature};
use neo_wire::{encode, ClientId, EpochNum, ReplicaId, RequestId, SlotNum, ViewId};
use serde::{de::DeserializeOwned, Deserialize, Serialize};

/// Sign a message body as this node.
///
/// Encoding our own wire types cannot fail in practice; if it ever
/// does, the fallback is an empty signature that never verifies —
/// peers drop the message instead of this node panicking mid-protocol.
pub fn sign_body<T: Serialize>(body: &T, crypto: &NodeCrypto) -> Signature {
    match encode(body) {
        Ok(bytes) => crypto.sign(&bytes),
        Err(_) => Signature::empty(),
    }
}

/// Verify a message body's signature against a principal.
pub fn verify_body<T: Serialize + DeserializeOwned>(
    body: &T,
    sig: &Signature,
    signer: Principal,
    crypto: &NodeCrypto,
) -> bool {
    let Ok(bytes) = encode(body) else {
        return false;
    };
    crypto.verify(signer, &bytes, sig).is_ok()
}

/// A client batch request (§5.3 generalized): ⟨request, ops,
/// first-request-id⟩σc — many ops, one authenticator, one aom slot.
///
/// The ops occupy consecutive request ids `first_request_id ..=
/// last_request_id()`, strictly increasing per client. A batch of one is
/// the paper's original single-request fast path; there is exactly one
/// payload format on the wire either way.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BatchRequest {
    /// The batched operations, in request-id order.
    pub ops: AomBatch,
    /// Request id of `ops[0]`; op `k` has id `first_request_id + k`.
    pub first_request_id: RequestId,
    /// The issuing client.
    pub client: ClientId,
}

impl BatchRequest {
    /// A batch of one — the original closed-loop request shape.
    pub fn single(op: Vec<u8>, request_id: RequestId, client: ClientId) -> Self {
        BatchRequest {
            ops: AomBatch::single(op),
            first_request_id: request_id,
            client,
        }
    }

    /// Number of ops in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the batch carries no ops (never sent by correct clients).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Request id of the last op in the batch.
    pub fn last_request_id(&self) -> RequestId {
        RequestId(
            self.first_request_id
                .0
                .saturating_add(self.ops.len().saturating_sub(1) as u64),
        )
    }
}

/// An authenticated batch — the aom payload.
///
/// Batches carry a MAC *vector* (one entry per replica) rather than a
/// signature: integrity and ordering are already covered by the aom
/// authenticator, so the client authenticator only proves the client's
/// identity to each replica — exactly the cheap per-request
/// authentication the single-round-trip fast path needs. Signatures are
/// reserved for the rare-path protocol messages (gap agreement, view
/// changes) where transferability matters. The MAC covers the encoded
/// [`BatchRequest`], i.e. every op in the batch at once.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SignedBatch {
    /// The batch body.
    pub batch: BatchRequest,
    /// Client MAC vector: entry `i` authenticates the batch to
    /// replica `i`.
    pub auth: Vec<neo_wire::HmacTag>,
}

impl SignedBatch {
    /// Encode to aom payload bytes. Falls back to an empty payload
    /// (which no replica accepts) if encoding fails.
    pub fn to_bytes(&self) -> Vec<u8> {
        encode(self).unwrap_or_default()
    }

    /// Decode from aom payload bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        neo_wire::decode(bytes).ok()
    }
}

/// A replica's reply (§5.3 generalized to batches): ⟨reply, view-id, i,
/// log-slot-num, log-hash, first-request-id, results⟩σi. One reply and
/// one MAC per *batch*; per-op results ride inside, in request-id order.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Reply {
    /// View in which the replica executed the batch.
    pub view: ViewId,
    /// The replying replica.
    pub replica: ReplicaId,
    /// Log slot the batch occupies.
    pub slot: SlotNum,
    /// Hash chain over the log up to and including `slot` (O(1) to
    /// maintain, §5.3).
    pub log_hash: Digest,
    /// Echo of the batch's first request id; result `k` answers request
    /// `request_id + k`.
    pub request_id: RequestId,
    /// Per-op execution results, in request-id order.
    pub results: Vec<Vec<u8>>,
}

/// Body of a gap-drop message (§5.4), signed.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct GapDropBody {
    /// View of the agreement.
    pub view: ViewId,
    /// The replica reporting the drop.
    pub replica: ReplicaId,
    /// Slot under agreement.
    pub slot: SlotNum,
}

/// Leader's decision for a gap slot.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum GapDecisionBody {
    /// The message exists: here is its ordering certificate.
    Recv(OrderingCert),
    /// 2f+1 replicas report it dropped: commit a no-op.
    Drop(Vec<(GapDropBody, Signature)>),
}

/// Body of a gap-prepare / gap-commit, signed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct GapVoteBody {
    /// View of the agreement.
    pub view: ViewId,
    /// Voting replica.
    pub replica: ReplicaId,
    /// Slot under agreement.
    pub slot: SlotNum,
    /// `true` = recv, `false` = drop.
    pub recv: bool,
}

/// A gap certificate: 2f+1 gap-commits proving a slot was committed as a
/// no-op (or as a recv) — consumed by state sync and view changes.
pub type GapCert = Vec<(GapVoteBody, Signature)>;

/// One serialized log entry inside a view-change message.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum WireLogEntry {
    /// A request slot, proven by its ordering certificate.
    Request(OrderingCert),
    /// A no-op slot, proven by a gap certificate.
    NoOp(GapCert),
}

/// An epoch certificate: 2f+1 epoch-start messages with matching epoch
/// and starting slot (§5.5).
pub type EpochCert = Vec<(EpochStartBody, Signature)>;

/// Body of an epoch-start message, signed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct EpochStartBody {
    /// The epoch being started.
    pub epoch: EpochNum,
    /// First log slot of the epoch.
    pub start_slot: SlotNum,
    /// Signing replica.
    pub replica: ReplicaId,
}

/// Body of a view-change message (§B.1), signed.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ViewChangeBody {
    /// The new view being proposed.
    pub new_view: ViewId,
    /// Sender.
    pub replica: ReplicaId,
    /// Epoch certificates for every epoch the sender's log has started
    /// (beyond the initial epoch, which needs none).
    pub epoch_certs: Vec<(EpochNum, SlotNum, EpochCert)>,
    /// Absolute slot of `log[0]`. Zero unless the sender compacted its
    /// log below a certified checkpoint; entry `i` occupies slot
    /// `log_base + i`.
    pub log_base: SlotNum,
    /// The sender's held log (everything at or above `log_base`).
    pub log: Vec<WireLogEntry>,
}

/// Body of a state-sync message (§B.2), signed.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct SyncBody {
    /// Current view.
    pub view: ViewId,
    /// Sender.
    pub replica: ReplicaId,
    /// Latest log index that is a multiple of the sync interval.
    pub slot: SlotNum,
    /// Gap certificates for slots committed as no-op in this view.
    pub drops: Vec<(SlotNum, GapCert)>,
    /// Digest of the sender's checkpoint at `slot` (the full recovery
    /// state: chain hash, app snapshot, client table — see
    /// `recovery::CheckpointData`). `Digest::ZERO` when the sender makes
    /// no checkpoint claim (snapshot-less app); 2f+1 matching non-zero
    /// digests certify the checkpoint for crash recovery.
    pub state_digest: Digest,
}

/// Body of a state-transfer query, signed (peers do real work to
/// answer — snapshot serialization and log suffixes — so the asker must
/// prove it is a replica).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StateQueryBody {
    /// The recovering replica.
    pub replica: ReplicaId,
    /// Everything below this slot is already held locally; peers send a
    /// checkpoint only if theirs is newer, plus the log suffix from
    /// `max(have, checkpoint slot)`.
    pub have: SlotNum,
}

/// All NeoBFT protocol messages (transported as `Envelope::App` bytes).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum NeoMsg {
    /// Replica → client, authenticated with a per-client MAC.
    Reply(Reply, neo_wire::HmacTag),
    /// Client → replicas: unicast fallback when aom stalls (§5.3).
    RequestUnicast(SignedBatch),
    /// Non-leader → leader: recover a missing slot (§5.4). Unsigned.
    Query {
        /// Current view.
        view: ViewId,
        /// Missing slot.
        slot: SlotNum,
    },
    /// Leader → replica: the ordering certificate for a queried slot.
    /// Unsigned — the certificate authenticates itself.
    QueryReply {
        /// View of the query.
        view: ViewId,
        /// Slot recovered.
        slot: SlotNum,
        /// The certificate.
        oc: OrderingCert,
    },
    /// Leader → all: the leader itself is missing a slot.
    GapFind {
        /// View.
        view: ViewId,
        /// Slot the leader is missing.
        slot: SlotNum,
        /// Leader signature over (view, slot).
        sig: Signature,
    },
    /// Replica → leader: I have the certificate. Unsigned.
    GapRecv {
        /// View.
        view: ViewId,
        /// Slot.
        slot: SlotNum,
        /// The certificate.
        oc: OrderingCert,
    },
    /// Replica → leader: I also saw a drop-notification. Signed.
    GapDrop(GapDropBody, Signature),
    /// Leader → all: the agreement decision. Signed.
    GapDecision {
        /// View.
        view: ViewId,
        /// Slot.
        slot: SlotNum,
        /// Recv with a certificate, or Drop with 2f+1 gap-drops.
        decision: GapDecisionBody,
        /// Leader signature over (view, slot, decision digest).
        sig: Signature,
    },
    /// Replica → all: first agreement phase vote. Signed.
    GapPrepare(GapVoteBody, Signature),
    /// Replica → all: second agreement phase vote. Signed.
    GapCommit(GapVoteBody, Signature),
    /// Replica → all: view change (§B.1). Signed.
    ViewChange(ViewChangeBody, Signature),
    /// New leader → all: the merged log starting the view. Signed.
    ViewStart {
        /// The view being started.
        new_view: ViewId,
        /// The 2f+1 view-change messages justifying the merge.
        view_changes: Vec<(ViewChangeBody, Signature)>,
        /// Leader signature.
        sig: Signature,
    },
    /// Replica → all: ready to start an epoch at a slot (§B.1). Signed.
    EpochStart(EpochStartBody, Signature),
    /// Replica → all: periodic state synchronization (§B.2). Signed.
    Sync(SyncBody, Signature),
    /// Recovering replica → all: request a certified checkpoint and log
    /// suffix. Signed.
    StateQuery(StateQueryBody, Signature),
    /// Replica → recovering replica: checkpoint + suffix. Unsigned — the
    /// checkpoint certificate and the per-entry ordering/gap
    /// certificates authenticate themselves.
    StateReply {
        /// A certified checkpoint newer than the asker's `have`, if the
        /// sender holds one.
        checkpoint: Option<crate::recovery::WireCheckpoint>,
        /// Absolute slot of `suffix[0]`.
        suffix_start: SlotNum,
        /// Resolved log entries from `suffix_start` on.
        suffix: Vec<WireLogEntry>,
    },
}

impl NeoMsg {
    /// Encode as `Envelope::App` payload bytes. Falls back to an empty
    /// payload (which no peer decodes) if encoding fails.
    pub fn to_app_bytes(&self) -> Vec<u8> {
        neo_aom::Envelope::App(encode(self).unwrap_or_default()).to_bytes()
    }

    /// Encode as a shared [`neo_wire::Payload`]: the single-encode form
    /// `Context::send`/`broadcast` consume. One allocation per message,
    /// regardless of fan-out.
    pub fn to_payload(&self) -> neo_wire::Payload {
        neo_aom::Envelope::App(encode(self).unwrap_or_default()).to_payload()
    }

    /// Decode from the inner bytes of an `Envelope::App`.
    pub fn from_app_bytes(bytes: &[u8]) -> Option<Self> {
        neo_wire::decode(bytes).ok()
    }
}

/// The digest a leader signs for a gap decision: binds view, slot, and
/// the decision content without re-serializing certificates twice.
pub fn gap_decision_digest(view: ViewId, slot: SlotNum, decision: &GapDecisionBody) -> Vec<u8> {
    let mut bytes = encode(&(view, slot)).unwrap_or_default();
    bytes.extend_from_slice(neo_crypto::sha256(&encode(decision).unwrap_or_default()).as_bytes());
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_crypto::{CostModel, SystemKeys};

    fn crypto(r: u32) -> NodeCrypto {
        NodeCrypto::new(
            Principal::Replica(ReplicaId(r)),
            &SystemKeys::new(1, 4, 2),
            CostModel::FREE,
        )
    }

    #[test]
    fn sign_verify_roundtrip() {
        let c0 = crypto(0);
        let c1 = crypto(1);
        let body = GapDropBody {
            view: ViewId::INITIAL,
            replica: ReplicaId(0),
            slot: SlotNum(3),
        };
        let sig = sign_body(&body, &c0);
        assert!(verify_body(
            &body,
            &sig,
            Principal::Replica(ReplicaId(0)),
            &c1
        ));
        assert!(!verify_body(
            &body,
            &sig,
            Principal::Replica(ReplicaId(1)),
            &c1
        ));
        let mut tampered = body;
        tampered.slot = SlotNum(4);
        assert!(!verify_body(
            &tampered,
            &sig,
            Principal::Replica(ReplicaId(0)),
            &c1
        ));
    }

    #[test]
    fn neomsg_roundtrip_via_envelope() {
        let msg = NeoMsg::Query {
            view: ViewId::INITIAL,
            slot: SlotNum(7),
        };
        let bytes = msg.to_app_bytes();
        let env = neo_aom::Envelope::from_bytes(&bytes).unwrap();
        let neo_aom::Envelope::App(inner) = env else {
            panic!()
        };
        assert_eq!(NeoMsg::from_app_bytes(&inner).unwrap(), msg);
    }

    #[test]
    fn batch_payload_roundtrip() {
        let c = NodeCrypto::new(
            Principal::Client(ClientId(1)),
            &SystemKeys::new(1, 4, 2),
            CostModel::FREE,
        );
        let batch = BatchRequest {
            ops: AomBatch {
                ops: vec![b"op5".to_vec(), b"op6".to_vec(), b"op7".to_vec()],
            },
            first_request_id: RequestId(5),
            client: ClientId(1),
        };
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.last_request_id(), RequestId(7));
        let bytes = encode(&batch).expect("encodes");
        let peers: Vec<Principal> = (0..4).map(|r| Principal::Replica(ReplicaId(r))).collect();
        let signed = SignedBatch {
            auth: c.mac_vector(&peers, &bytes),
            batch,
        };
        let decoded = SignedBatch::from_bytes(&signed.to_bytes()).unwrap();
        assert_eq!(decoded, signed);
        // Replica 2 verifies its MAC-vector entry.
        let r2 = NodeCrypto::new(
            Principal::Replica(ReplicaId(2)),
            &SystemKeys::new(1, 4, 2),
            CostModel::FREE,
        );
        assert!(r2
            .verify_mac_from(Principal::Client(ClientId(1)), &bytes, &decoded.auth[2])
            .is_ok());
        assert!(
            r2.verify_mac_from(Principal::Client(ClientId(1)), &bytes, &decoded.auth[1])
                .is_err(),
            "entries are replica-specific"
        );
    }

    #[test]
    fn client_mac_covers_every_op_in_the_batch() {
        // The client MAC vector is computed over the encoded batch body,
        // so tampering with any single op breaks every replica's entry.
        let c = NodeCrypto::new(
            Principal::Client(ClientId(1)),
            &SystemKeys::new(1, 4, 2),
            CostModel::FREE,
        );
        let batch = BatchRequest {
            ops: AomBatch {
                ops: vec![b"aa".to_vec(), b"bb".to_vec()],
            },
            first_request_id: RequestId(1),
            client: ClientId(1),
        };
        let bytes = encode(&batch).expect("encodes");
        let peers: Vec<Principal> = (0..4).map(|r| Principal::Replica(ReplicaId(r))).collect();
        let auth = c.mac_vector(&peers, &bytes);
        let mut tampered = batch;
        tampered.ops.ops[1] = b"bX".to_vec();
        let tampered_bytes = encode(&tampered).expect("encodes");
        let r0 = NodeCrypto::new(
            Principal::Replica(ReplicaId(0)),
            &SystemKeys::new(1, 4, 2),
            CostModel::FREE,
        );
        assert!(r0
            .verify_mac_from(Principal::Client(ClientId(1)), &bytes, &auth[0])
            .is_ok());
        assert!(r0
            .verify_mac_from(Principal::Client(ClientId(1)), &tampered_bytes, &auth[0])
            .is_err());
    }

    #[test]
    fn single_batch_is_the_degenerate_request() {
        let b = BatchRequest::single(b"op".to_vec(), RequestId(9), ClientId(3));
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
        assert_eq!(b.first_request_id, RequestId(9));
        assert_eq!(b.last_request_id(), RequestId(9));
    }

    #[test]
    fn gap_decision_digest_binds_decision() {
        let d1 = GapDecisionBody::Drop(vec![]);
        let d2 = GapDecisionBody::Drop(vec![(
            GapDropBody {
                view: ViewId::INITIAL,
                replica: ReplicaId(1),
                slot: SlotNum(0),
            },
            Signature::empty(),
        )]);
        let a = gap_decision_digest(ViewId::INITIAL, SlotNum(0), &d1);
        let b = gap_decision_digest(ViewId::INITIAL, SlotNum(0), &d2);
        assert_ne!(a, b);
        let c = gap_decision_digest(ViewId::INITIAL, SlotNum(1), &d1);
        assert_ne!(a, c);
    }
}
