//! Typed protocol errors.
//!
//! Handler paths must never panic on Byzantine input: anything
//! malformed degrades to a dropped message, anything that violates an
//! internal invariant is surfaced as a [`ProtocolError`] and counted on
//! the `replica.protocol_errors` obs counter instead of crashing the
//! replica (neo-lint rule R2).

use neo_wire::SlotNum;
use thiserror::Error;

/// A recoverable protocol-level failure. None of these abort the
/// replica; they drop the offending message or skip the offending
/// step and increment `ReplicaStats::protocol_errors`.
#[derive(Clone, Debug, PartialEq, Eq, Error)]
pub enum ProtocolError {
    /// Serialization of an outgoing body failed (should be impossible
    /// for our own wire types, but must not panic a replica mid-vote).
    #[error("failed to encode outgoing {0}")]
    Encode(&'static str),
    /// A log slot expected to be filled has no hash yet.
    #[error("log hash missing for executed slot {0:?}")]
    MissingLogHash(SlotNum),
    /// A log fill targeted a slot whose prefix is not resolved.
    #[error("log fill rejected at slot {0:?}")]
    FillRejected(SlotNum),
    /// A gap decision claimed `recv` but carried no certificate.
    #[error("recv gap decision without a certificate at slot {0:?}")]
    MissingCertificate(SlotNum),
}
