#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

//! Property-based tests of the replica log's hash-chain invariants.

use neo_aom::{AomPacket, OrderingCert};
use neo_core::{Log, LogEntry};
use neo_wire::{AomHeader, GroupId, SeqNum, SlotNum};
use proptest::prelude::*;

fn oc(seq: u64, payload: u8) -> OrderingCert {
    let mut header = AomHeader::unstamped(GroupId(0), neo_crypto::sha256(&[payload]).0);
    header.seq = SeqNum(seq);
    header.auth = neo_wire::Authenticator::HmacVector(vec![[0u8; 8]; 4]);
    OrderingCert {
        packet: AomPacket {
            header,
            payload: vec![payload],
        },
        confirms: vec![],
    }
}

/// A build step for a log.
#[derive(Clone, Debug)]
enum Step {
    AppendRequest(u8),
    AppendPending,
    /// Resolve the oldest pending slot (if any) as a request / no-op.
    ResolveOldest(bool, u8),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        any::<u8>().prop_map(Step::AppendRequest),
        Just(Step::AppendPending),
        (any::<bool>(), any::<u8>()).prop_map(|(r, p)| Step::ResolveOldest(r, p)),
    ]
}

/// Apply steps; return the final log and the linear entry history that a
/// straight-line log would contain.
fn build(steps: &[Step]) -> Log {
    let mut log = Log::new();
    let mut seq = 1u64;
    for step in steps {
        match step {
            Step::AppendRequest(p) => {
                log.append_request(oc(seq, *p));
                seq += 1;
            }
            Step::AppendPending => {
                log.append_pending();
                seq += 1;
            }
            Step::ResolveOldest(as_request, p) => {
                if let Some(slot) = log.first_pending() {
                    let entry = if *as_request {
                        LogEntry::Request(oc(slot.0 + 1, *p))
                    } else {
                        LogEntry::NoOp(None)
                    };
                    log.fill(slot, entry).unwrap();
                }
            }
        }
    }
    log
}

proptest! {
    /// Hashes exist exactly for the resolved prefix, and the watermark
    /// equals the first pending slot (or the tail).
    #[test]
    fn watermark_matches_first_pending(steps in proptest::collection::vec(arb_step(), 0..60)) {
        let log = build(&steps);
        let prefix = log.resolved_prefix_len();
        match log.first_pending() {
            Some(p) => prop_assert_eq!(prefix, p),
            None => prop_assert_eq!(prefix, log.len()),
        }
        for i in 0..log.len().0 {
            let slot = SlotNum(i);
            if i < prefix.0 {
                prop_assert!(log.hash_at(slot).is_some());
                prop_assert!(log.entry(slot).is_some());
            } else {
                prop_assert!(log.hash_at(slot).is_none());
            }
        }
    }

    /// Two logs whose resolved prefixes contain identical entries have
    /// identical hashes there — regardless of how the entries arrived
    /// (straight appends vs. gaps resolved later).
    #[test]
    fn hash_depends_only_on_content(entries in proptest::collection::vec(any::<u8>(), 1..30)) {
        // Log A: straight-line appends.
        let mut a = Log::new();
        for (i, p) in entries.iter().enumerate() {
            a.append_request(oc(i as u64 + 1, *p));
        }
        // Log B: every slot starts pending, filled in reverse order.
        let mut b = Log::new();
        for _ in &entries {
            b.append_pending();
        }
        for (i, p) in entries.iter().enumerate().rev() {
            b.fill(SlotNum(i as u64), LogEntry::Request(oc(i as u64 + 1, *p))).unwrap();
        }
        prop_assert_eq!(a.len(), b.len());
        for i in 0..entries.len() as u64 {
            prop_assert_eq!(a.hash_at(SlotNum(i)), b.hash_at(SlotNum(i)));
        }
    }

    /// Truncation is exact: the prefix keeps its hashes, the tail is gone.
    #[test]
    fn truncate_preserves_prefix(
        entries in proptest::collection::vec(any::<u8>(), 1..30),
        cut in any::<proptest::sample::Index>(),
    ) {
        let mut log = Log::new();
        for (i, p) in entries.iter().enumerate() {
            log.append_request(oc(i as u64 + 1, *p));
        }
        let cut = SlotNum(cut.index(entries.len()) as u64);
        let expect: Vec<_> = (0..cut.0).map(|i| log.hash_at(SlotNum(i))).collect();
        log.truncate(cut);
        prop_assert_eq!(log.len(), cut);
        for i in 0..cut.0 {
            prop_assert_eq!(log.hash_at(SlotNum(i)), expect[i as usize]);
        }
    }

    /// Wire form always equals the resolved prefix.
    #[test]
    fn wire_form_is_the_resolved_prefix(steps in proptest::collection::vec(arb_step(), 0..60)) {
        let log = build(&steps);
        let wire = log.to_wire();
        prop_assert_eq!(wire.len() as u64, log.resolved_prefix_len().0);
    }
}
