//! Shared cluster harness: wires a full NeoBFT deployment (config
//! service, sequencer, replicas, clients) into the simulator.

use neo_aom::{AuthMode, ConfigService, ReceiverAuth, SequencerHw, SequencerNode};
use neo_app::{EchoApp, EchoWorkload};
use neo_core::{Client, NeoConfig, Replica};
use neo_crypto::{CostModel, SystemKeys};
use neo_sim::{CpuConfig, FaultPlan, NetConfig, SimConfig, Simulator};
use neo_wire::{Addr, ClientId, GroupId, ReplicaId};

pub const GROUP: GroupId = GroupId(0);

pub struct ClusterSpec {
    pub f: usize,
    pub n_clients: usize,
    pub ops_per_client: u64,
    pub cfg: NeoConfig,
    pub net: NetConfig,
    pub seed: u64,
    pub costs: CostModel,
}

impl ClusterSpec {
    pub fn small() -> Self {
        let cfg = NeoConfig::new(1);
        ClusterSpec {
            f: 1,
            n_clients: 1,
            ops_per_client: 10,
            cfg,
            net: NetConfig::DATACENTER,
            seed: 7,
            costs: CostModel::FREE,
        }
    }
}

pub struct Cluster {
    pub sim: Simulator,
    pub spec: ClusterSpec,
    pub keys: SystemKeys,
}

impl Cluster {
    pub fn build(spec: ClusterSpec) -> Self {
        let n = spec.cfg.n;
        let keys = SystemKeys::new(spec.seed, n, spec.n_clients);
        let mut sim = Simulator::new(SimConfig {
            net: spec.net,
            default_cpu: CpuConfig::IDEAL,
            seed: spec.seed,
            faults: FaultPlan::none(),
        });

        // Configuration service.
        let mut config = ConfigService::new();
        config.register_group(GROUP, (0..n as u32).map(ReplicaId).collect(), spec.f);
        sim.add_node(Addr::Config, Box::new(config));

        // Sequencer.
        let auth_mode = match spec.cfg.auth {
            ReceiverAuth::Hmac => AuthMode::HmacVector,
            ReceiverAuth::PublicKey => AuthMode::PublicKey,
        };
        let sequencer = SequencerNode::new(
            GROUP,
            (0..n as u32).map(ReplicaId).collect(),
            auth_mode,
            SequencerHw::Software(spec.costs),
            &keys,
        );
        sim.add_node(Addr::Sequencer(GROUP), Box::new(sequencer));

        // Replicas.
        for r in 0..n as u32 {
            let replica = Replica::new(
                ReplicaId(r),
                spec.cfg.clone(),
                &keys,
                spec.costs,
                Box::new(EchoApp::new()),
            );
            sim.add_node(Addr::Replica(ReplicaId(r)), Box::new(replica));
        }

        // Clients.
        for c in 0..spec.n_clients as u64 {
            let mut client = Client::new(
                ClientId(c),
                spec.cfg.clone(),
                &keys,
                spec.costs,
                Box::new(EchoWorkload::new(64, c + 1)),
            );
            client.max_ops = Some(spec.ops_per_client);
            sim.add_node(Addr::Client(ClientId(c)), Box::new(client));
        }

        Cluster { sim, spec, keys }
    }

    pub fn client(&self, c: u64) -> &Client {
        self.sim
            .node_ref::<Client>(Addr::Client(ClientId(c)))
            .expect("client exists")
    }

    pub fn replica(&self, r: u32) -> &Replica {
        self.sim
            .node_ref::<Replica>(Addr::Replica(ReplicaId(r)))
            .expect("replica exists")
    }

    pub fn sequencer_mut(&mut self) -> &mut SequencerNode {
        self.sim
            .node_mut::<SequencerNode>(Addr::Sequencer(GROUP))
            .expect("sequencer exists")
    }

    pub fn replica_mut(&mut self, r: u32) -> &mut Replica {
        self.sim
            .node_mut::<Replica>(Addr::Replica(ReplicaId(r)))
            .expect("replica exists")
    }

    pub fn total_completed(&self) -> u64 {
        (0..self.spec.n_clients as u64)
            .map(|c| self.client(c).completed.len() as u64)
            .sum()
    }
}
