#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic freely

//! End-to-end NeoBFT protocol tests in the simulator: the fast path, the
//! gap protocols, Byzantine participants, and sequencer failover.

mod common;

use common::{Cluster, ClusterSpec, GROUP};
use neo_aom::{Behavior, NetworkTrust};
use neo_core::replica::ReplicaBehavior;
use neo_sim::{FaultPlan, NetConfig, MILLIS, SECS};
use neo_wire::Addr;

#[test]
fn fast_path_commits_echo_ops() {
    let mut cluster = Cluster::build(ClusterSpec::small());
    cluster.sim.run_until(SECS);
    let client = cluster.client(0);
    assert_eq!(client.completed.len(), 10);
    // Echo semantics: results come back non-empty and ops completed in
    // order with strictly increasing ids.
    for (i, op) in client.completed.iter().enumerate() {
        assert_eq!(op.request_id.0, i as u64 + 1);
        assert_eq!(op.result.len(), 64);
        assert_eq!(op.retries, 0, "fast path needs no retries");
    }
    // Replicas executed everything and never entered a view change.
    for r in 0..4 {
        let replica = cluster.replica(r);
        assert_eq!(replica.stats.executed, 10);
        assert_eq!(replica.stats.view_changes, 0);
        assert_eq!(replica.stats.noops_committed, 0);
    }
}

#[test]
fn fast_path_latency_is_three_hops() {
    // With zero processing cost and zero jitter the end-to-end latency is
    // exactly client → sequencer → replica → client = 3 one-way delays.
    // (The paper counts 2 "message delays" because the sequencer is a
    // switch already on the client→replica path; the simulator models it
    // as an explicit hop.)
    let mut spec = ClusterSpec::small();
    spec.net = NetConfig {
        one_way_latency_ns: 5_000,
        jitter_ns: 0,
        ns_per_128_bytes: 0,
        drop_rate: 0.0,
    };
    let mut cluster = Cluster::build(spec);
    cluster.sim.run_until(SECS);
    let client = cluster.client(0);
    assert_eq!(client.completed.len(), 10);
    for op in &client.completed {
        assert_eq!(op.latency_ns(), 15_000, "3 hops × 5µs, no queueing");
    }
}

#[test]
fn replies_match_across_replicas() {
    let mut spec = ClusterSpec::small();
    spec.n_clients = 3;
    spec.ops_per_client = 20;
    let mut cluster = Cluster::build(spec);
    cluster.sim.run_until(SECS);
    assert_eq!(cluster.total_completed(), 60);
    // All correct replicas end with identical logs.
    let h = |r: u32| {
        let replica = cluster.replica(r);
        let len = replica.log_len();
        (len, replica.log().hash_at(neo_wire::SlotNum(len.0 - 1)))
    };
    let reference = h(0);
    for r in 1..4 {
        assert_eq!(h(r), reference, "replica {r} log diverged");
    }
}

#[test]
fn tolerates_one_mute_byzantine_replica() {
    // The Zyzzyva-F scenario: one replica goes silent. NeoBFT's fast
    // path needs only 2f+1 = 3 replies, so throughput and latency are
    // unaffected (§6.2).
    let mut spec = ClusterSpec::small();
    spec.ops_per_client = 25;
    let mut cluster = Cluster::build(spec);
    cluster.replica_mut(3).behavior = ReplicaBehavior::Mute;
    cluster.sim.run_until(SECS);
    let client = cluster.client(0);
    assert_eq!(client.completed.len(), 25);
    assert!(client.completed.iter().all(|op| op.retries == 0));
}

#[test]
fn recovers_dropped_messages_from_leader_via_query() {
    // The sequencer delivers every 3rd message only to replica 0 (the
    // leader). Followers detect the gap and recover the ordering
    // certificate with query/query-reply — no agreement, no view change.
    let mut spec = ClusterSpec::small();
    spec.ops_per_client = 15;
    let mut cluster = Cluster::build(spec);
    cluster
        .sequencer_mut()
        .set_behavior(Behavior::DropEveryAtAllButOne(3));
    cluster.sim.run_until(2 * SECS);
    let client = cluster.client(0);
    assert_eq!(client.completed.len(), 15);
    let recovered: u64 = (1..4)
        .map(|r| cluster.replica(r).stats.gaps_recovered)
        .sum();
    assert!(recovered > 0, "followers recovered certificates");
    for r in 0..4 {
        assert_eq!(cluster.replica(r).stats.view_changes, 0);
        assert_eq!(cluster.replica(r).stats.noops_committed, 0);
    }
}

#[test]
fn commits_noops_when_everyone_misses_a_message() {
    // The sequencer stamps but drops every 4th message for everyone: the
    // gap agreement must commit a no-op, and the client's retry commits
    // the operation in a later slot.
    let mut spec = ClusterSpec::small();
    spec.ops_per_client = 10;
    let mut cluster = Cluster::build(spec);
    cluster.sequencer_mut().set_behavior(Behavior::DropEvery(4));
    cluster.sim.run_until(5 * SECS);
    let client = cluster.client(0);
    assert_eq!(client.completed.len(), 10, "all ops commit despite drops");
    assert!(
        client.completed.iter().any(|op| op.retries > 0),
        "dropped requests needed retries"
    );
    let noops: u64 = (0..4)
        .map(|r| cluster.replica(r).stats.noops_committed)
        .sum();
    assert!(noops > 0, "gap agreement committed no-ops");
    // Logs still identical.
    let reference = cluster.replica(0).log_len();
    for r in 1..4 {
        assert_eq!(cluster.replica(r).log_len(), reference);
    }
}

#[test]
fn byzantine_network_mode_still_commits() {
    let mut spec = ClusterSpec::small();
    spec.cfg = spec.cfg.with_byzantine_network();
    spec.ops_per_client = 10;
    let mut cluster = Cluster::build(spec);
    cluster.sim.run_until(SECS);
    assert_eq!(cluster.client(0).completed.len(), 10);
}

#[test]
fn byzantine_network_mode_with_pk_authenticator() {
    let mut spec = ClusterSpec::small();
    spec.cfg = spec.cfg.with_pk().with_byzantine_network();
    spec.ops_per_client = 5;
    let mut cluster = Cluster::build(spec);
    cluster.sim.run_until(SECS);
    assert_eq!(cluster.client(0).completed.len(), 5);
}

#[test]
fn pk_variant_commits() {
    let mut spec = ClusterSpec::small();
    spec.cfg = spec.cfg.with_pk();
    spec.ops_per_client = 10;
    let mut cluster = Cluster::build(spec);
    cluster.sim.run_until(SECS);
    assert_eq!(cluster.client(0).completed.len(), 10);
}

#[test]
fn random_network_drops_are_survived() {
    // Figure 9's mechanism test: uniform packet loss engages drop
    // recovery but every operation still commits.
    let mut spec = ClusterSpec::small();
    spec.ops_per_client = 30;
    spec.net = NetConfig::DATACENTER.with_drop_rate(0.01);
    let mut cluster = Cluster::build(spec);
    cluster.sim.run_until(20 * SECS);
    assert_eq!(cluster.client(0).completed.len(), 30);
}

#[test]
fn equivocating_sequencer_triggers_failover_and_recovery() {
    // Byzantine-network mode with an equivocating sequencer: confirms
    // never reach quorum, clients fall back to unicast, replicas ask the
    // config service for a failover, and the new epoch commits the ops.
    // Two clients: their interleaved requests give the equivocating
    // sequencer genuinely different messages to pair under one sequence
    // number (a single closed-loop client's retry would pair with an
    // identical copy of itself and slip through).
    let mut spec = ClusterSpec::small();
    spec.cfg = spec.cfg.with_byzantine_network();
    spec.ops_per_client = 3;
    spec.n_clients = 2;
    let mut cluster = Cluster::build(spec);
    cluster.sequencer_mut().set_behavior(Behavior::Equivocate);
    cluster.sim.run_until(10 * SECS);
    assert_eq!(
        cluster.total_completed(),
        6,
        "operations commit after sequencer failover"
    );
    let client = cluster.client(0);
    assert!(
        client.completed.iter().any(|op| op.retries > 0),
        "the equivocation phase forced retries"
    );
    // The config service performed at least one failover and replicas
    // moved to a new epoch.
    let vc: u64 = (0..4).map(|r| cluster.replica(r).stats.view_changes).sum();
    assert!(vc > 0, "an epoch view change happened");
    for r in 0..4 {
        assert!(cluster.replica(r).view().epoch.0 >= 1);
    }
}

#[test]
fn muted_sequencer_triggers_failover() {
    // A crashed/muted sequencer (trusted-network mode) stalls delivery;
    // the unicast watchdog drives a failover and commits resume.
    let mut spec = ClusterSpec::small();
    spec.ops_per_client = 3;
    let mut cluster = Cluster::build(spec);
    cluster.sequencer_mut().set_behavior(Behavior::Mute);
    cluster.sim.run_until(10 * SECS);
    let client = cluster.client(0);
    assert_eq!(client.completed.len(), 3);
    for r in 0..4 {
        assert!(
            cluster.replica(r).view().epoch.0 >= 1,
            "replica {r} moved epochs"
        );
    }
}

#[test]
fn leader_crash_view_change_preserves_commits() {
    // Crash the leader (replica 0) mid-run while the sequencer drops
    // messages for everyone, forcing a gap agreement that the dead
    // leader cannot drive: the agreement timeout elects replica 1.
    let mut spec = ClusterSpec::small();
    spec.ops_per_client = 12;
    let mut cluster = Cluster::build(spec);
    cluster.sequencer_mut().set_behavior(Behavior::DropEvery(5));
    // Crash the leader at 1 ms — after the first few commits but before
    // the first sequencer drop needs gap agreement.
    *cluster.sim.faults_mut() =
        FaultPlan::none().crash(Addr::Replica(neo_wire::ReplicaId(0)), MILLIS);
    cluster.sim.run_until(20 * SECS);
    let client = cluster.client(0);
    assert_eq!(
        client.completed.len(),
        12,
        "ops commit across the view change"
    );
    let vc: u64 = (1..4).map(|r| cluster.replica(r).stats.view_changes).sum();
    assert!(vc > 0, "view change elected a new leader");
    // Surviving replicas agree on their logs.
    let reference = cluster.replica(1).log_len();
    for r in 2..4 {
        assert_eq!(cluster.replica(r).log_len(), reference);
    }
}

#[test]
fn state_sync_advances_sync_point() {
    let mut spec = ClusterSpec::small();
    spec.ops_per_client = 40;
    spec.cfg.sync_interval = 16;
    let mut cluster = Cluster::build(spec);
    cluster.sim.run_until(5 * SECS);
    assert_eq!(cluster.client(0).completed.len(), 40);
    for r in 0..4 {
        let replica = cluster.replica(r);
        assert!(
            replica.sync_point().0 >= 32,
            "replica {r} sync point {} advanced",
            replica.sync_point()
        );
        assert!(replica.stats.sync_points > 0);
    }
}

#[test]
fn runs_are_deterministic() {
    let run = |seed| {
        let mut spec = ClusterSpec::small();
        spec.seed = seed;
        spec.ops_per_client = 10;
        let mut cluster = Cluster::build(spec);
        cluster.sim.run_until(SECS);
        cluster
            .client(0)
            .completed
            .iter()
            .map(|op| (op.request_id, op.issued_at, op.completed_at))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(3), run(3));
    assert_ne!(run(3), run(4), "jitter differs across seeds");
}

#[test]
fn scales_to_f_4_thirteen_replicas() {
    let mut spec = ClusterSpec::small();
    spec.f = 4;
    spec.cfg = neo_core::NeoConfig::new(4);
    spec.ops_per_client = 5;
    spec.n_clients = 2;
    let mut cluster = Cluster::build(spec);
    cluster.sim.run_until(SECS);
    assert_eq!(cluster.total_completed(), 10);
    // Even with 13 replicas, a mute f-sized coalition is tolerated.
    let mut spec = ClusterSpec::small();
    spec.f = 4;
    spec.cfg = neo_core::NeoConfig::new(4);
    spec.ops_per_client = 5;
    let mut cluster = Cluster::build(spec);
    for r in 9..13 {
        cluster.replica_mut(r).behavior = ReplicaBehavior::Mute;
    }
    cluster.sim.run_until(SECS);
    assert_eq!(cluster.client(0).completed.len(), 5);
}

#[test]
fn sequencer_failover_latency_is_bounded() {
    // §6.4: failover completes well under a second of virtual time, with
    // the reconfiguration delay dominating.
    let mut spec = ClusterSpec::small();
    spec.ops_per_client = 2;
    let mut cluster = Cluster::build(spec);
    cluster.sequencer_mut().set_behavior(Behavior::Mute);
    cluster.sim.run_until(SECS);
    assert_eq!(cluster.client(0).completed.len(), 2);
    let last = cluster.client(0).completed.last().unwrap().completed_at;
    assert!(
        last < 500 * MILLIS,
        "failover + commit finished at {} ms",
        last / MILLIS
    );
    let _ = GROUP;
    let _ = NetworkTrust::Trusted;
}
