//! Property-based tests for the application layer — the invariants
//! NeoBFT's speculative execution depends on.

use neo_app::{App, KvApp, KvOp};
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = KvOp> {
    let key = proptest::sample::select(vec!["a", "b", "c", "d", "e"]).prop_map(|s| s.to_string());
    prop_oneof![
        key.clone().prop_map(|key| KvOp::Get { key }),
        (key.clone(), proptest::collection::vec(any::<u8>(), 0..16))
            .prop_map(|(key, value)| KvOp::Put { key, value }),
        key.clone().prop_map(|key| KvOp::Delete { key }),
        (key, 0usize..8).prop_map(|(start, limit)| KvOp::Scan { start, limit }),
    ]
}

fn snapshot(app: &KvApp) -> Vec<(String, Vec<u8>)> {
    ["a", "b", "c", "d", "e"]
        .iter()
        .filter_map(|k| app.get(k).map(|v| (k.to_string(), v.clone())))
        .collect()
}

proptest! {
    /// Undoing every executed op restores the initial state exactly.
    #[test]
    fn full_undo_restores_initial_state(ops in proptest::collection::vec(arb_op(), 0..40)) {
        let mut app = KvApp::loaded(3, 4);
        // Rename loaded keys into our alphabet? Not needed: loaded uses
        // user0..2; they are untouched controls.
        let before = snapshot(&app);
        let user0_before = app.get("user0").cloned();
        for op in &ops {
            app.execute(&op.to_bytes());
        }
        for _ in 0..ops.len() {
            app.undo();
        }
        prop_assert_eq!(snapshot(&app), before);
        prop_assert_eq!(app.get("user0").cloned(), user0_before);
        prop_assert_eq!(app.executed(), 0);
    }

    /// The rollback + re-execute cycle (gap agreement commits a no-op in
    /// the middle of a speculative suffix) converges to the same state as
    /// executing the corrected history directly.
    #[test]
    fn rollback_reexecute_equals_direct_execution(
        ops in proptest::collection::vec(arb_op(), 2..30),
        skip in any::<proptest::sample::Index>(),
    ) {
        let skip = skip.index(ops.len());
        // Path A: execute everything, roll back to `skip`, re-execute
        // without the skipped op.
        let mut a = KvApp::new();
        for op in &ops {
            a.execute(&op.to_bytes());
        }
        for _ in skip..ops.len() {
            a.undo();
        }
        for op in &ops[skip + 1..] {
            a.execute(&op.to_bytes());
        }
        // Path B: the corrected history, straight through.
        let mut b = KvApp::new();
        for (i, op) in ops.iter().enumerate() {
            if i != skip {
                b.execute(&op.to_bytes());
            }
        }
        prop_assert_eq!(snapshot(&a), snapshot(&b));
    }

    /// Execution is deterministic: same ops ⇒ same results and state
    /// (the property that makes 2f+1 matching replies meaningful).
    #[test]
    fn execution_is_deterministic(ops in proptest::collection::vec(arb_op(), 0..30)) {
        let mut a = KvApp::loaded(2, 4);
        let mut b = KvApp::loaded(2, 4);
        for op in &ops {
            let ra = a.execute(&op.to_bytes());
            let rb = b.execute(&op.to_bytes());
            prop_assert_eq!(ra, rb);
        }
        prop_assert_eq!(snapshot(&a), snapshot(&b));
    }

    /// Compaction never changes observable state, only undo depth.
    #[test]
    fn compaction_preserves_state(
        ops in proptest::collection::vec(arb_op(), 0..30),
        keep in 0u64..10,
    ) {
        let mut app = KvApp::new();
        for op in &ops {
            app.execute(&op.to_bytes());
        }
        let before = snapshot(&app);
        app.compact(keep);
        prop_assert_eq!(snapshot(&app), before);
        prop_assert!(app.executed() <= keep.max(ops.len() as u64).min(ops.len() as u64));
    }
}
