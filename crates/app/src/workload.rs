//! Client-side workload generation.

use crate::ycsb::YcsbGenerator;

/// A stream of operation payloads a closed-loop client issues.
pub trait Workload: Send {
    /// Produce the next operation payload.
    fn next_op(&mut self) -> Vec<u8>;
}

/// The echo-RPC workload of §6.2: random strings of a fixed size.
pub struct EchoWorkload {
    size: usize,
    counter: u64,
    salt: u64,
}

impl EchoWorkload {
    /// Echo payloads of `size` bytes, differentiated by `salt` so
    /// distinct clients send distinct requests.
    pub fn new(size: usize, salt: u64) -> Self {
        EchoWorkload {
            size,
            counter: 0,
            salt,
        }
    }
}

impl Workload for EchoWorkload {
    fn next_op(&mut self) -> Vec<u8> {
        self.counter += 1;
        let mut out = Vec::with_capacity(self.size);
        let mut x = self
            .salt
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.counter);
        while out.len() < self.size {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            out.extend_from_slice(&x.to_le_bytes());
        }
        out.truncate(self.size);
        out
    }
}

impl Workload for YcsbGenerator {
    fn next_op(&mut self) -> Vec<u8> {
        self.next_payload()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_ops_have_requested_size_and_vary() {
        let mut w = EchoWorkload::new(64, 1);
        let a = w.next_op();
        let b = w.next_op();
        assert_eq!(a.len(), 64);
        assert_ne!(a, b);
    }

    #[test]
    fn different_salts_produce_different_streams() {
        let mut w1 = EchoWorkload::new(32, 1);
        let mut w2 = EchoWorkload::new(32, 2);
        assert_ne!(w1.next_op(), w2.next_op());
    }

    #[test]
    fn ycsb_is_a_workload() {
        use crate::ycsb::{YcsbConfig, YcsbGenerator};
        let mut w: Box<dyn Workload> = Box::new(YcsbGenerator::new(
            YcsbConfig {
                record_count: 100,
                ..YcsbConfig::WORKLOAD_A
            },
            1,
        ));
        assert!(!w.next_op().is_empty());
    }
}
