//! Client-side workload generation.
//!
//! The trait is *batch-first*: drivers ask for up to `n` ops at once
//! ([`Workload::next_ops`]) so a batching client can fill a whole batch
//! envelope from one call, and check each per-op result as replies fan
//! back out ([`Workload::check`]). The closed-loop single-op surface
//! ([`Workload::next_op`]) is a provided method on top.

use crate::kv::{KvOp, KvResult};
use crate::ycsb::YcsbGenerator;

/// A stream of operation payloads a client issues, plus per-op result
/// validation.
pub trait Workload: Send {
    /// Produce up to `n` operation payloads. Implementations may return
    /// fewer than `n` (an empty vector means the workload is exhausted),
    /// but every returned payload must be a complete operation.
    fn next_ops(&mut self, n: usize) -> Vec<Vec<u8>>;

    /// Produce the next single operation payload (closed-loop surface).
    fn next_op(&mut self) -> Vec<u8> {
        self.next_ops(1).pop().unwrap_or_default()
    }

    /// Check one committed result against the op that produced it.
    /// Defaults to accepting anything; workloads that know the expected
    /// reply shape override this so harnesses can detect corruption.
    fn check(&self, op: &[u8], result: &[u8]) -> bool {
        let _ = (op, result);
        true
    }
}

/// The echo-RPC workload of §6.2: random strings of a fixed size.
pub struct EchoWorkload {
    size: usize,
    counter: u64,
    salt: u64,
}

impl EchoWorkload {
    /// Echo payloads of `size` bytes, differentiated by `salt` so
    /// distinct clients send distinct requests.
    pub fn new(size: usize, salt: u64) -> Self {
        EchoWorkload {
            size,
            counter: 0,
            salt,
        }
    }

    fn fill_one(&mut self) -> Vec<u8> {
        self.counter += 1;
        let mut out = Vec::with_capacity(self.size);
        let mut x = self
            .salt
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.counter);
        while out.len() < self.size {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            out.extend_from_slice(&x.to_le_bytes());
        }
        out.truncate(self.size);
        out
    }
}

impl Workload for EchoWorkload {
    fn next_ops(&mut self, n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|_| self.fill_one()).collect()
    }

    fn check(&self, op: &[u8], result: &[u8]) -> bool {
        // The echo app returns the op verbatim.
        op == result
    }
}

impl Workload for YcsbGenerator {
    fn next_ops(&mut self, n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|_| self.next_payload()).collect()
    }

    fn check(&self, op: &[u8], result: &[u8]) -> bool {
        let (Some(op), Some(result)) = (KvOp::from_bytes(op), KvResult::from_bytes(result)) else {
            return false;
        };
        matches!(
            (op, result),
            (KvOp::Get { .. }, KvResult::Value(_))
                | (KvOp::Put { .. }, KvResult::Ok)
                | (KvOp::Delete { .. }, KvResult::Ok)
                | (KvOp::Scan { .. }, KvResult::Entries(_))
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_ops_have_requested_size_and_vary() {
        let mut w = EchoWorkload::new(64, 1);
        let a = w.next_op();
        let b = w.next_op();
        assert_eq!(a.len(), 64);
        assert_ne!(a, b);
    }

    #[test]
    fn different_salts_produce_different_streams() {
        let mut w1 = EchoWorkload::new(32, 1);
        let mut w2 = EchoWorkload::new(32, 2);
        assert_ne!(w1.next_op(), w2.next_op());
    }

    #[test]
    fn batch_pull_matches_sequential_pulls() {
        let mut batched = EchoWorkload::new(48, 9);
        let mut serial = EchoWorkload::new(48, 9);
        let batch = batched.next_ops(5);
        let singles: Vec<_> = (0..5).map(|_| serial.next_op()).collect();
        assert_eq!(batch, singles, "next_ops(n) is n× next_op()");
    }

    #[test]
    fn echo_check_accepts_echo_and_rejects_tampering() {
        let mut w = EchoWorkload::new(16, 1);
        let op = w.next_op();
        assert!(w.check(&op, &op));
        let mut bad = op.clone();
        bad[0] ^= 1;
        assert!(!w.check(&op, &bad));
    }

    #[test]
    fn ycsb_is_a_workload() {
        use crate::ycsb::{YcsbConfig, YcsbGenerator};
        let mut w: Box<dyn Workload> = Box::new(YcsbGenerator::new(
            YcsbConfig {
                record_count: 100,
                ..YcsbConfig::WORKLOAD_A
            },
            1,
        ));
        assert!(!w.next_op().is_empty());
        assert_eq!(w.next_ops(4).len(), 4);
    }

    #[test]
    fn ycsb_check_validates_result_shape() {
        use crate::ycsb::{YcsbConfig, YcsbGenerator};
        let w = YcsbGenerator::new(
            YcsbConfig {
                record_count: 100,
                ..YcsbConfig::WORKLOAD_A
            },
            1,
        );
        let get = KvOp::Get {
            key: "user1".into(),
        }
        .to_bytes();
        let value = KvResult::Value(None).to_bytes();
        let ok = KvResult::Ok.to_bytes();
        assert!(Workload::check(&w, &get, &value));
        assert!(!Workload::check(&w, &get, &ok), "Get must yield Value");
        assert!(!Workload::check(&w, &get, b"junk"));
    }
}
