//! The echo-RPC application (§6.2): replies with the request bytes.
//!
//! Stateless apart from the executed counter, so undo is trivial — which
//! is exactly why the paper uses it to isolate *protocol* costs.

use crate::App;

/// Echo application.
#[derive(Debug, Default, Clone)]
pub struct EchoApp {
    executed: u64,
}

impl EchoApp {
    /// Fresh echo app.
    pub fn new() -> Self {
        Self::default()
    }
}

impl App for EchoApp {
    fn execute(&mut self, op: &[u8]) -> Vec<u8> {
        self.executed += 1;
        op.to_vec()
    }

    fn undo(&mut self) {
        assert!(self.executed > 0, "nothing to undo");
        self.executed -= 1;
    }

    fn executed(&self) -> u64 {
        self.executed
    }

    fn compact(&mut self, _keep_last: u64) {}

    fn snapshot(&self) -> Option<Vec<u8>> {
        Some(self.executed.to_le_bytes().to_vec())
    }

    fn restore(&mut self, blob: &[u8]) -> bool {
        let Ok(bytes) = <[u8; 8]>::try_from(blob) else {
            return false;
        };
        self.executed = u64::from_le_bytes(bytes);
        true
    }

    fn as_any_ref(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echoes_input() {
        let mut app = EchoApp::new();
        assert_eq!(app.execute(b"hello"), b"hello");
        assert_eq!(app.execute(b""), b"");
        assert_eq!(app.executed(), 2);
    }

    #[test]
    fn undo_decrements() {
        let mut app = EchoApp::new();
        app.execute(b"x");
        app.undo();
        assert_eq!(app.executed(), 0);
    }

    #[test]
    #[should_panic(expected = "nothing to undo")]
    fn undo_on_empty_panics() {
        EchoApp::new().undo();
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut app = EchoApp::new();
        app.execute(b"a");
        app.execute(b"b");
        let blob = app.snapshot().unwrap();
        let mut fresh = EchoApp::new();
        assert!(fresh.restore(&blob));
        assert_eq!(fresh.executed(), 2);
        assert_eq!(fresh.snapshot().unwrap(), blob);
    }

    #[test]
    fn malformed_snapshot_is_rejected() {
        let mut app = EchoApp::new();
        app.execute(b"a");
        assert!(!app.restore(b"short"));
        assert_eq!(app.executed(), 1, "failed restore leaves state alone");
    }
}
