//! The echo-RPC application (§6.2): replies with the request bytes.
//!
//! Stateless apart from the executed counter, so undo is trivial — which
//! is exactly why the paper uses it to isolate *protocol* costs.

use crate::App;

/// Echo application.
#[derive(Debug, Default, Clone)]
pub struct EchoApp {
    executed: u64,
}

impl EchoApp {
    /// Fresh echo app.
    pub fn new() -> Self {
        Self::default()
    }
}

impl App for EchoApp {
    fn execute(&mut self, op: &[u8]) -> Vec<u8> {
        self.executed += 1;
        op.to_vec()
    }

    fn undo(&mut self) {
        assert!(self.executed > 0, "nothing to undo");
        self.executed -= 1;
    }

    fn executed(&self) -> u64 {
        self.executed
    }

    fn compact(&mut self, _keep_last: u64) {}

    fn as_any_ref(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echoes_input() {
        let mut app = EchoApp::new();
        assert_eq!(app.execute(b"hello"), b"hello");
        assert_eq!(app.execute(b""), b"");
        assert_eq!(app.executed(), 2);
    }

    #[test]
    fn undo_decrements() {
        let mut app = EchoApp::new();
        app.execute(b"x");
        app.undo();
        assert_eq!(app.executed(), 0);
    }

    #[test]
    #[should_panic(expected = "nothing to undo")]
    fn undo_on_empty_panics() {
        EchoApp::new().undo();
    }
}
