//! YCSB workload generation (§6.5: "YCSB workload A with 100K records and
//! 128-bytes fields").
//!
//! Workload A is 50% reads / 50% updates over a zipfian key-popularity
//! distribution. The zipfian sampler is the standard Gray et al. rejection
//! method used by the YCSB reference implementation, computed in Q32.32
//! fixed point ([`crate::fixed`]) so the generator carries no floats
//! (neo-lint R4) and the op stream is bit-identical on every platform.

use crate::fixed::{fp_div, fp_exp2, fp_log2, fp_mul, fp_pow, fp_ratio, FRAC, ONE};
use crate::kv::KvOp;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Workload parameters. Fractions are Q32.32 fixed point (`fixed::ONE`
/// is 1.0); build them with [`crate::fixed::fp_ratio`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
pub struct YcsbConfig {
    /// Records in the table.
    pub record_count: usize,
    /// Value size in bytes.
    pub field_len: usize,
    /// Fraction of reads (the rest are updates), Q32.32. Workload A = 0.5.
    pub read_proportion: u64,
    /// Zipfian skew constant θ, Q32.32, must be < 1.0 (YCSB default 0.99).
    pub theta: u64,
}

impl YcsbConfig {
    /// YCSB workload A at the paper's scale.
    pub const WORKLOAD_A: YcsbConfig = YcsbConfig {
        record_count: 100_000,
        field_len: 128,
        read_proportion: fp_ratio(1, 2),
        theta: fp_ratio(99, 100),
    };

    /// Workload B (95% reads) for extension experiments.
    pub const WORKLOAD_B: YcsbConfig = YcsbConfig {
        record_count: 100_000,
        field_len: 128,
        read_proportion: fp_ratio(95, 100),
        theta: fp_ratio(99, 100),
    };
}

/// Deterministic YCSB operation stream.
pub struct YcsbGenerator {
    cfg: YcsbConfig,
    rng: ChaCha8Rng,
    // Zipfian sampler state (Gray's method), Q32.32.
    zeta_n: u64,
    alpha: u64,
    eta: u64,
    zeta2: u64,
}

/// Partial zeta sum `Σ_{i=1..n} 1/i^θ` in Q32.32.
fn zeta(n: usize, theta: u64) -> u64 {
    let mut sum = 0u64;
    for i in 1..=n {
        // 1/i^θ = 2^(−θ·log2 i)
        let l = fp_log2((i as u64) << FRAC) as i128;
        sum += fp_exp2((-(l * theta as i128) >> FRAC) as i64);
    }
    sum
}

impl YcsbGenerator {
    /// A generator with the given seed (same seed → same op stream).
    pub fn new(cfg: YcsbConfig, seed: u64) -> Self {
        assert!(cfg.theta < ONE, "zipfian θ must be < 1.0");
        let zeta_n = zeta(cfg.record_count, cfg.theta);
        let zeta2 = zeta(2, cfg.theta);
        let alpha = fp_div(ONE, ONE - cfg.theta);
        let num = ONE - fp_pow(fp_ratio(2, cfg.record_count as u64), ONE - cfg.theta);
        let den = ONE - fp_div(zeta2, zeta_n);
        let eta = fp_div(num, den);
        YcsbGenerator {
            cfg,
            rng: ChaCha8Rng::seed_from_u64(seed),
            zeta_n,
            alpha,
            eta,
            zeta2,
        }
    }

    /// The configuration driving this generator.
    pub fn config(&self) -> YcsbConfig {
        self.cfg
    }

    /// A uniform Q32.32 draw in [0, 1.0). One u64 from the RNG, same
    /// draw count as the old `gen::<f64>()` — seeds keep their streams.
    fn uniform(&mut self) -> u64 {
        self.rng.gen::<u64>() >> FRAC
    }

    /// Draw a zipfian-distributed record index in `[0, record_count)`.
    pub fn next_key_index(&mut self) -> usize {
        let u = self.uniform();
        let uz = fp_mul(u, self.zeta_n);
        if uz < ONE {
            return 0;
        }
        // zeta2 = 1 + 2^−θ, so this is the textbook `uz < 1 + 0.5^θ`.
        if uz < self.zeta2 {
            return 1;
        }
        // idx = n · (η·u − η + 1)^α; the base is in (0, 1], clamped away
        // from zero so log2 stays defined.
        let base = (ONE + fp_mul(self.eta, u)).saturating_sub(self.eta).max(1);
        let idx =
            ((self.cfg.record_count as u128 * fp_pow(base, self.alpha) as u128) >> FRAC) as usize;
        idx.min(self.cfg.record_count - 1)
    }

    /// Draw the next operation.
    pub fn next_op(&mut self) -> KvOp {
        let key = format!("user{}", self.next_key_index());
        if self.uniform() < self.cfg.read_proportion {
            KvOp::Get { key }
        } else {
            let mut value = vec![0u8; self.cfg.field_len];
            self.rng.fill(&mut value[..]);
            KvOp::Put { key, value }
        }
    }

    /// Draw the next operation as request-payload bytes.
    pub fn next_payload(&mut self) -> Vec<u8> {
        self.next_op().to_bytes()
    }

    /// Zeta(2, θ) in Q32.32 — exposed for the distribution tests.
    pub fn zeta2(&self) -> u64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> YcsbConfig {
        YcsbConfig {
            record_count: 1000,
            field_len: 16,
            read_proportion: fp_ratio(1, 2),
            theta: fp_ratio(99, 100),
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let ops1: Vec<_> = {
            let mut g = YcsbGenerator::new(small(), 42);
            (0..100).map(|_| g.next_payload()).collect()
        };
        let ops2: Vec<_> = {
            let mut g = YcsbGenerator::new(small(), 42);
            (0..100).map(|_| g.next_payload()).collect()
        };
        assert_eq!(ops1, ops2);
        let ops3: Vec<_> = {
            let mut g = YcsbGenerator::new(small(), 43);
            (0..100).map(|_| g.next_payload()).collect()
        };
        assert_ne!(ops1, ops3);
    }

    #[test]
    fn zipfian_tables_match_float_reference() {
        // The fixed-point sampler state vs the f64 math it replaced.
        let g = YcsbGenerator::new(small(), 1);
        let theta = 0.99f64;
        let zeta_n: f64 = (1..=1000).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2 = 1.0 + 0.5f64.powf(theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0f64 / 1000.0).powf(1.0 - theta)) / (1.0 - zeta2 / zeta_n);
        let as_f = |x: u64| x as f64 / ONE as f64;
        assert!((as_f(g.zeta_n) - zeta_n).abs() < 1e-4);
        assert!((as_f(g.zeta2) - zeta2).abs() < 1e-6);
        assert!((as_f(g.alpha) - alpha).abs() < 1e-4);
        assert!((as_f(g.eta) - eta).abs() < 1e-4);
    }

    #[test]
    fn read_write_mix_matches_proportion() {
        let mut g = YcsbGenerator::new(small(), 1);
        let n = 10_000;
        let reads = (0..n)
            .filter(|_| matches!(g.next_op(), KvOp::Get { .. }))
            .count();
        let frac = reads as f64 / n as f64;
        assert!((0.47..0.53).contains(&frac), "≈50% reads, got {frac}");
    }

    #[test]
    fn workload_b_is_read_heavy() {
        let mut g = YcsbGenerator::new(
            YcsbConfig {
                record_count: 1000,
                ..YcsbConfig::WORKLOAD_B
            },
            1,
        );
        let n = 10_000;
        let reads = (0..n)
            .filter(|_| matches!(g.next_op(), KvOp::Get { .. }))
            .count();
        assert!(reads as f64 / n as f64 > 0.92);
    }

    #[test]
    fn keys_are_zipfian_skewed() {
        let mut g = YcsbGenerator::new(small(), 7);
        let n = 50_000;
        let mut counts = vec![0u32; 1000];
        for _ in 0..n {
            counts[g.next_key_index()] += 1;
        }
        // The most popular key should dwarf the median key.
        let hottest = *counts.iter().max().unwrap();
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        let median = sorted[500];
        assert!(
            hottest > median.max(1) * 20,
            "zipfian skew: hottest {hottest} vs median {median}"
        );
        // But every index stays in range (no panic already proves ≤ 999).
        assert!(counts.iter().sum::<u32>() == n);
    }

    #[test]
    fn keys_reference_loaded_records() {
        let mut g = YcsbGenerator::new(small(), 3);
        for _ in 0..1000 {
            match g.next_op() {
                KvOp::Get { key } | KvOp::Put { key, .. } => {
                    let idx: usize = key.strip_prefix("user").unwrap().parse().unwrap();
                    assert!(idx < 1000);
                }
                other => panic!("workload A only reads/updates, got {other:?}"),
            }
        }
    }

    #[test]
    fn update_values_have_configured_length() {
        let mut g = YcsbGenerator::new(small(), 5);
        for _ in 0..100 {
            if let KvOp::Put { value, .. } = g.next_op() {
                assert_eq!(value.len(), 16);
                return;
            }
        }
        panic!("no update drawn in 100 ops");
    }
}
