//! YCSB workload generation (§6.5: "YCSB workload A with 100K records and
//! 128-bytes fields").
//!
//! Workload A is 50% reads / 50% updates over a zipfian key-popularity
//! distribution. The zipfian sampler is the standard Gray et al. rejection
//! method used by the YCSB reference implementation.

use crate::kv::KvOp;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Workload parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
pub struct YcsbConfig {
    /// Records in the table.
    pub record_count: usize,
    /// Value size in bytes.
    pub field_len: usize,
    /// Fraction of reads (the rest are updates). Workload A = 0.5.
    pub read_proportion: f64,
    /// Zipfian skew constant (YCSB default 0.99).
    pub theta: f64,
}

impl YcsbConfig {
    /// YCSB workload A at the paper's scale.
    pub const WORKLOAD_A: YcsbConfig = YcsbConfig {
        record_count: 100_000,
        field_len: 128,
        read_proportion: 0.5,
        theta: 0.99,
    };

    /// Workload B (95% reads) for extension experiments.
    pub const WORKLOAD_B: YcsbConfig = YcsbConfig {
        record_count: 100_000,
        field_len: 128,
        read_proportion: 0.95,
        theta: 0.99,
    };
}

/// Deterministic YCSB operation stream.
pub struct YcsbGenerator {
    cfg: YcsbConfig,
    rng: ChaCha8Rng,
    // Zipfian sampler state (Gray's method).
    zeta_n: f64,
    alpha: f64,
    eta: f64,
    zeta2: f64,
}

fn zeta(n: usize, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

impl YcsbGenerator {
    /// A generator with the given seed (same seed → same op stream).
    pub fn new(cfg: YcsbConfig, seed: u64) -> Self {
        let zeta_n = zeta(cfg.record_count, cfg.theta);
        let zeta2 = zeta(2, cfg.theta);
        let alpha = 1.0 / (1.0 - cfg.theta);
        let eta =
            (1.0 - (2.0 / cfg.record_count as f64).powf(1.0 - cfg.theta)) / (1.0 - zeta2 / zeta_n);
        YcsbGenerator {
            cfg,
            rng: ChaCha8Rng::seed_from_u64(seed),
            zeta_n,
            alpha,
            eta,
            zeta2,
        }
    }

    /// The configuration driving this generator.
    pub fn config(&self) -> YcsbConfig {
        self.cfg
    }

    /// Draw a zipfian-distributed record index in `[0, record_count)`.
    pub fn next_key_index(&mut self) -> usize {
        let n = self.cfg.record_count as f64;
        let u: f64 = self.rng.gen();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.cfg.theta) {
            return 1;
        }
        let idx = (n * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as usize;
        idx.min(self.cfg.record_count - 1)
    }

    /// Draw the next operation.
    pub fn next_op(&mut self) -> KvOp {
        let key = format!("user{}", self.next_key_index());
        if self.rng.gen::<f64>() < self.cfg.read_proportion {
            KvOp::Get { key }
        } else {
            let mut value = vec![0u8; self.cfg.field_len];
            self.rng.fill(&mut value[..]);
            KvOp::Put { key, value }
        }
    }

    /// Draw the next operation as request-payload bytes.
    pub fn next_payload(&mut self) -> Vec<u8> {
        self.next_op().to_bytes()
    }

    /// Zeta(2, θ) — exposed for the distribution tests.
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> YcsbConfig {
        YcsbConfig {
            record_count: 1000,
            field_len: 16,
            read_proportion: 0.5,
            theta: 0.99,
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let ops1: Vec<_> = {
            let mut g = YcsbGenerator::new(small(), 42);
            (0..100).map(|_| g.next_payload()).collect()
        };
        let ops2: Vec<_> = {
            let mut g = YcsbGenerator::new(small(), 42);
            (0..100).map(|_| g.next_payload()).collect()
        };
        assert_eq!(ops1, ops2);
        let ops3: Vec<_> = {
            let mut g = YcsbGenerator::new(small(), 43);
            (0..100).map(|_| g.next_payload()).collect()
        };
        assert_ne!(ops1, ops3);
    }

    #[test]
    fn read_write_mix_matches_proportion() {
        let mut g = YcsbGenerator::new(small(), 1);
        let n = 10_000;
        let reads = (0..n)
            .filter(|_| matches!(g.next_op(), KvOp::Get { .. }))
            .count();
        let frac = reads as f64 / n as f64;
        assert!((0.47..0.53).contains(&frac), "≈50% reads, got {frac}");
    }

    #[test]
    fn workload_b_is_read_heavy() {
        let mut g = YcsbGenerator::new(
            YcsbConfig {
                record_count: 1000,
                ..YcsbConfig::WORKLOAD_B
            },
            1,
        );
        let n = 10_000;
        let reads = (0..n)
            .filter(|_| matches!(g.next_op(), KvOp::Get { .. }))
            .count();
        assert!(reads as f64 / n as f64 > 0.92);
    }

    #[test]
    fn keys_are_zipfian_skewed() {
        let mut g = YcsbGenerator::new(small(), 7);
        let n = 50_000;
        let mut counts = vec![0u32; 1000];
        for _ in 0..n {
            counts[g.next_key_index()] += 1;
        }
        // The most popular key should dwarf the median key.
        let hottest = *counts.iter().max().unwrap();
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        let median = sorted[500];
        assert!(
            hottest > median.max(1) * 20,
            "zipfian skew: hottest {hottest} vs median {median}"
        );
        // But every index stays in range (no panic already proves ≤ 999).
        assert!(counts.iter().sum::<u32>() == n);
    }

    #[test]
    fn keys_reference_loaded_records() {
        let mut g = YcsbGenerator::new(small(), 3);
        for _ in 0..1000 {
            match g.next_op() {
                KvOp::Get { key } | KvOp::Put { key, .. } => {
                    let idx: usize = key.strip_prefix("user").unwrap().parse().unwrap();
                    assert!(idx < 1000);
                }
                other => panic!("workload A only reads/updates, got {other:?}"),
            }
        }
    }

    #[test]
    fn update_values_have_configured_length() {
        let mut g = YcsbGenerator::new(small(), 5);
        for _ in 0..100 {
            if let KvOp::Put { value, .. } = g.next_op() {
                assert_eq!(value.len(), 16);
                return;
            }
        }
        panic!("no update drawn in 100 ops");
    }
}
