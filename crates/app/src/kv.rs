//! The in-memory, B-Tree-based key-value store of §6.5, with an undo log
//! for speculative execution.

use crate::App;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A key-value operation, serialized into request payloads.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum KvOp {
    /// Read a key.
    Get {
        /// Key to read.
        key: String,
    },
    /// Insert or overwrite a key.
    Put {
        /// Key to write.
        key: String,
        /// Value to store.
        value: Vec<u8>,
    },
    /// Remove a key.
    Delete {
        /// Key to remove.
        key: String,
    },
    /// Range scan: up to `limit` entries starting at `start` (YCSB scan).
    Scan {
        /// First key (inclusive).
        start: String,
        /// Maximum entries returned.
        limit: usize,
    },
}

impl KvOp {
    /// Serialize for use as a request payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        neo_wire::encode(self).expect("kv ops encode")
    }

    /// Deserialize from a request payload.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        neo_wire::decode(bytes).ok()
    }
}

/// Result of a key-value operation.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum KvResult {
    /// Value found (Get) or entries found (Scan count).
    Value(Option<Vec<u8>>),
    /// Write acknowledged.
    Ok,
    /// Scan results (key, value) pairs.
    Entries(Vec<(String, Vec<u8>)>),
    /// Request payload was not a valid operation.
    BadRequest,
}

impl KvResult {
    /// Serialize for use as a reply payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        neo_wire::encode(self).expect("kv results encode")
    }

    /// Deserialize from a reply payload.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        neo_wire::decode(bytes).ok()
    }
}

/// Undo record: how to reverse one executed operation.
#[derive(Clone, Debug)]
enum Undo {
    /// Operation did not modify state (Get/Scan/BadRequest).
    Nothing,
    /// Restore `key` to `prior` (None = key did not exist).
    Restore { key: String, prior: Option<Vec<u8>> },
}

/// The B-Tree key-value store.
#[derive(Debug, Default)]
pub struct KvApp {
    store: BTreeMap<String, Vec<u8>>,
    undo_log: Vec<Undo>,
}

impl KvApp {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-load `n` records of `value_len`-byte values, keys `user0…`,
    /// matching the YCSB load phase.
    pub fn loaded(n: usize, value_len: usize) -> Self {
        let mut app = Self::new();
        for i in 0..n {
            app.store
                .insert(format!("user{i}"), vec![(i % 251) as u8; value_len]);
        }
        app
    }

    /// Number of records currently stored.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True if the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Direct read access (tests and verification).
    pub fn get(&self, key: &str) -> Option<&Vec<u8>> {
        self.store.get(key)
    }
}

impl App for KvApp {
    fn execute(&mut self, op: &[u8]) -> Vec<u8> {
        let Some(op) = KvOp::from_bytes(op) else {
            self.undo_log.push(Undo::Nothing);
            return KvResult::BadRequest.to_bytes();
        };
        let (undo, result) = match op {
            KvOp::Get { key } => (
                Undo::Nothing,
                KvResult::Value(self.store.get(&key).cloned()),
            ),
            KvOp::Put { key, value } => {
                let prior = self.store.insert(key.clone(), value);
                (Undo::Restore { key, prior }, KvResult::Ok)
            }
            KvOp::Delete { key } => {
                let prior = self.store.remove(&key);
                (Undo::Restore { key, prior }, KvResult::Ok)
            }
            KvOp::Scan { start, limit } => {
                let entries: Vec<(String, Vec<u8>)> = self
                    .store
                    .range(start..)
                    .take(limit)
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                (Undo::Nothing, KvResult::Entries(entries))
            }
        };
        self.undo_log.push(undo);
        result.to_bytes()
    }

    fn undo(&mut self) {
        let record = self.undo_log.pop().expect("nothing to undo");
        if let Undo::Restore { key, prior } = record {
            match prior {
                Some(v) => {
                    self.store.insert(key, v);
                }
                None => {
                    self.store.remove(&key);
                }
            }
        }
    }

    fn executed(&self) -> u64 {
        self.undo_log.len() as u64
    }

    fn compact(&mut self, keep_last: u64) {
        let keep = keep_last as usize;
        if self.undo_log.len() > keep {
            let drop_n = self.undo_log.len() - keep;
            self.undo_log.drain(..drop_n);
        }
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        // Only the B-Tree: the undo log is speculative bookkeeping that
        // differs across replicas (compaction timing) and must not leak
        // into the checkpoint digest. BTreeMap serializes in key order,
        // so equal state yields a byte-equal blob.
        neo_wire::encode(&self.store).ok()
    }

    fn restore(&mut self, blob: &[u8]) -> bool {
        let Ok(store) = neo_wire::decode::<BTreeMap<String, Vec<u8>>>(blob) else {
            return false;
        };
        self.store = store;
        self.undo_log.clear();
        true
    }

    fn as_any_ref(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(app: &mut KvApp, k: &str, v: &[u8]) -> KvResult {
        let r = app.execute(
            &KvOp::Put {
                key: k.into(),
                value: v.to_vec(),
            }
            .to_bytes(),
        );
        KvResult::from_bytes(&r).unwrap()
    }

    fn get(app: &mut KvApp, k: &str) -> Option<Vec<u8>> {
        let r = app.execute(&KvOp::Get { key: k.into() }.to_bytes());
        match KvResult::from_bytes(&r).unwrap() {
            KvResult::Value(v) => v,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let mut app = KvApp::new();
        assert_eq!(put(&mut app, "k", b"v1"), KvResult::Ok);
        assert_eq!(get(&mut app, "k"), Some(b"v1".to_vec()));
        app.execute(&KvOp::Delete { key: "k".into() }.to_bytes());
        assert_eq!(get(&mut app, "k"), None);
    }

    #[test]
    fn overwrite_returns_latest() {
        let mut app = KvApp::new();
        put(&mut app, "k", b"v1");
        put(&mut app, "k", b"v2");
        assert_eq!(get(&mut app, "k"), Some(b"v2".to_vec()));
    }

    #[test]
    fn scan_is_ordered_and_limited() {
        let mut app = KvApp::new();
        for i in 0..10 {
            put(&mut app, &format!("key{i}"), &[i as u8]);
        }
        let r = app.execute(
            &KvOp::Scan {
                start: "key3".into(),
                limit: 4,
            }
            .to_bytes(),
        );
        match KvResult::from_bytes(&r).unwrap() {
            KvResult::Entries(e) => {
                let ks: Vec<_> = e.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(ks, vec!["key3", "key4", "key5", "key6"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn undo_restores_prior_value() {
        let mut app = KvApp::new();
        put(&mut app, "k", b"v1");
        put(&mut app, "k", b"v2");
        app.undo();
        assert_eq!(app.get("k"), Some(&b"v1".to_vec()));
        app.undo();
        assert_eq!(app.get("k"), None);
    }

    #[test]
    fn undo_restores_deleted_key() {
        let mut app = KvApp::new();
        put(&mut app, "k", b"v");
        app.execute(&KvOp::Delete { key: "k".into() }.to_bytes());
        app.undo();
        assert_eq!(app.get("k"), Some(&b"v".to_vec()));
    }

    #[test]
    fn rollback_and_reexecute_converges() {
        // The exact scenario NeoBFT's gap agreement creates: execute a
        // suffix speculatively, roll it back, re-execute with one op
        // replaced by nothing (no-op).
        let mut a = KvApp::new();
        let ops: Vec<Vec<u8>> = (0..5)
            .map(|i| {
                KvOp::Put {
                    key: format!("k{}", i % 2),
                    value: vec![i as u8],
                }
                .to_bytes()
            })
            .collect();
        for op in &ops {
            a.execute(op);
        }
        // Roll back ops 2..5 and re-execute skipping op 2.
        for _ in 2..5 {
            a.undo();
        }
        for op in &ops[3..] {
            a.execute(op);
        }
        // Reference: execute 0,1,3,4 directly.
        let mut b = KvApp::new();
        for (i, op) in ops.iter().enumerate() {
            if i != 2 {
                b.execute(op);
            }
        }
        assert_eq!(a.get("k0"), b.get("k0"));
        assert_eq!(a.get("k1"), b.get("k1"));
    }

    #[test]
    fn gets_do_not_pollute_state_on_undo() {
        let mut app = KvApp::new();
        put(&mut app, "k", b"v");
        get(&mut app, "k");
        app.undo(); // undo the get: nothing changes
        assert_eq!(app.get("k"), Some(&b"v".to_vec()));
    }

    #[test]
    fn compact_limits_undo_history() {
        let mut app = KvApp::new();
        for i in 0..10 {
            put(&mut app, "k", &[i]);
        }
        app.compact(2);
        assert_eq!(app.executed(), 2);
        app.undo();
        app.undo();
        assert_eq!(app.get("k"), Some(&vec![7u8]));
    }

    #[test]
    fn loaded_matches_ycsb_load_phase() {
        let app = KvApp::loaded(1000, 128);
        assert_eq!(app.len(), 1000);
        assert_eq!(app.get("user0").map(|v| v.len()), Some(128));
        assert_eq!(app.get("user999").map(|v| v.len()), Some(128));
        assert!(app.get("user1000").is_none());
    }

    #[test]
    fn malformed_request_is_rejected_not_fatal() {
        let mut app = KvApp::new();
        let r = app.execute(&[0xFF, 0xFE]);
        assert_eq!(KvResult::from_bytes(&r).unwrap(), KvResult::BadRequest);
        app.undo(); // still undoable
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut app = KvApp::new();
        put(&mut app, "k1", b"v1");
        put(&mut app, "k2", b"v2");
        let blob = app.snapshot().unwrap();
        let mut fresh = KvApp::new();
        assert!(fresh.restore(&blob));
        assert_eq!(fresh.get("k1"), Some(&b"v1".to_vec()));
        assert_eq!(fresh.get("k2"), Some(&b"v2".to_vec()));
        // Undo history does not survive a restore.
        assert_eq!(fresh.executed(), 0);
    }

    #[test]
    fn snapshot_ignores_undo_history() {
        // Same B-Tree reached via different op sequences / compaction
        // states must produce byte-equal snapshots: the checkpoint
        // digest is compared across replicas.
        let mut a = KvApp::new();
        put(&mut a, "k", b"v2");
        let mut b = KvApp::new();
        put(&mut b, "k", b"v1");
        put(&mut b, "k", b"v2");
        b.compact(0);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn malformed_snapshot_is_rejected() {
        let mut app = KvApp::new();
        put(&mut app, "k", b"v");
        assert!(!app.restore(&[0xFF; 3]));
        assert_eq!(app.get("k"), Some(&b"v".to_vec()));
    }
}
