//! Q32.32 fixed-point arithmetic for deterministic workload math.
//!
//! neo-lint R4 bans floats in replicated/deterministic state: float
//! rounding is not portably bit-identical across platforms and
//! toolchains, and the YCSB generator's zipfian tables feed the
//! request stream every replica must agree on. Everything here is
//! integer-only — including the constants: the `exp2` table is built
//! in a `const fn` by repeated integer square roots, so no value in
//! this module ever passes through a float.
//!
//! Representation: `u64` with 32 fractional bits (`ONE == 1 << 32`);
//! logarithms/exponents use `i64` with the same scale so they can go
//! negative. Precision is ~2.3e-10 per operation — far beyond what a
//! workload sampler needs.

/// Number of fractional bits.
pub const FRAC: u32 = 32;

/// 1.0 in Q32.32.
pub const ONE: u64 = 1 << FRAC;

/// `num / den` as Q32.32, usable in `const` contexts
/// (e.g. `fp_ratio(99, 100)` for 0.99).
pub const fn fp_ratio(num: u64, den: u64) -> u64 {
    (((num as u128) << FRAC) / den as u128) as u64
}

/// Fixed-point multiply.
pub fn fp_mul(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) >> FRAC) as u64
}

/// Fixed-point divide (`b` must be nonzero).
pub fn fp_div(a: u64, b: u64) -> u64 {
    (((a as u128) << FRAC) / b as u128) as u64
}

/// Integer square root (Newton's method); `const` so the exp2 table
/// below can be built at compile time.
const fn isqrt_u128(v: u128) -> u128 {
    if v < 2 {
        return v;
    }
    let mut x = 1u128 << ((128 - v.leading_zeros()) / 2 + 1);
    loop {
        let y = (x + v / x) / 2;
        if y >= x {
            return x;
        }
        x = y;
    }
}

/// Fixed-point square root: `sqrt(x)` in Q32.32.
const fn fp_sqrt(x: u64) -> u64 {
    isqrt_u128((x as u128) << FRAC) as u64
}

/// `EXP2_TAB[k] = 2^(2^-(k+1))` in Q32.32: sqrt(2), sqrt(sqrt(2)), …
/// Built by repeated integer square roots of 2.0 — no float constants.
const EXP2_TAB: [u64; FRAC as usize] = {
    let mut t = [0u64; FRAC as usize];
    let mut prev = 2 * ONE;
    let mut k = 0;
    while k < FRAC as usize {
        prev = fp_sqrt(prev);
        t[k] = prev;
        k += 1;
    }
    t
};

/// `log2(x)` for `x > 0`, as signed Q.32 (negative for `x < 1.0`).
/// `x == 0` is clamped to the smallest positive value.
pub fn fp_log2(x: u64) -> i64 {
    let x = x.max(1);
    let msb = 63 - x.leading_zeros() as i64;
    let int_part = msb - FRAC as i64;
    // Normalize the mantissa to [1, 2) in Q32.32.
    let m = if msb >= FRAC as i64 {
        x >> (msb - FRAC as i64)
    } else {
        x << (FRAC as i64 - msb)
    };
    // Fractional bits by repeated squaring: square the mantissa; if it
    // reaches [2, 4) the next fraction bit is 1 and we renormalize.
    let mut m = m as u128;
    let mut frac: i64 = 0;
    let two = (2u128) << FRAC;
    for _ in 0..FRAC {
        m = (m * m) >> FRAC;
        frac <<= 1;
        if m >= two {
            frac |= 1;
            m >>= 1;
        }
    }
    (int_part << FRAC) + frac
}

/// `2^y` for signed Q.32 `y`, as Q32.32. Saturates at the type's range.
pub fn fp_exp2(y: i64) -> u64 {
    let int = y >> FRAC; // floor
    let frac = (y - (int << FRAC)) as u64; // in [0, ONE)
    if int >= 31 {
        return u64::MAX;
    }
    if int < -(FRAC as i64) {
        return 0;
    }
    // 2^frac: multiply in the table entry for each set fraction bit.
    let mut r: u128 = ONE as u128;
    for (k, &t) in EXP2_TAB.iter().enumerate() {
        if (frac >> (FRAC as usize - 1 - k)) & 1 == 1 {
            r = (r * t as u128) >> FRAC;
        }
    }
    if int >= 0 {
        (r << int).min(u64::MAX as u128) as u64
    } else {
        (r >> -int) as u64
    }
}

/// `x^y` for `x > 0` and non-negative exponent `y`, both Q32.32:
/// `exp2(y * log2(x))`. Handles `x < 1.0` (negative log) exactly the
/// way the zipfian rejection step needs.
pub fn fp_pow(x: u64, y: u64) -> u64 {
    let l = fp_log2(x) as i128;
    fp_exp2(((l * y as i128) >> FRAC) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests may use floats freely (neo-lint skips `#[cfg(test)]`);
    /// they pin the integer implementation against libm.
    fn close(fp: u64, f: f64, tol: f64) {
        let got = fp as f64 / ONE as f64;
        assert!(
            (got - f).abs() <= tol,
            "fixed-point {got} vs float {f} (tol {tol})"
        );
    }

    #[test]
    fn ratio_mul_div_roundtrip() {
        assert_eq!(fp_ratio(1, 2), ONE / 2);
        assert_eq!(fp_mul(fp_ratio(3, 2), 2 * ONE), 3 * ONE);
        assert_eq!(fp_div(3 * ONE, 2 * ONE), fp_ratio(3, 2));
    }

    #[test]
    fn exp2_table_is_exact_roots_of_two() {
        close(EXP2_TAB[0], 2f64.sqrt(), 1e-9);
        close(EXP2_TAB[1], 2f64.sqrt().sqrt(), 1e-9);
        close(EXP2_TAB[31], 1.0, 1e-9);
    }

    #[test]
    fn log2_matches_float() {
        for &(num, den) in &[(8u64, 1u64), (3, 1), (1, 1), (1, 4), (99, 100)] {
            let x = fp_ratio(num, den);
            let want = (num as f64 / den as f64).log2();
            let got = fp_log2(x) as f64 / ONE as f64;
            assert!(
                (got - want).abs() < 1e-8,
                "log2({num}/{den}): {got} vs {want}"
            );
        }
    }

    #[test]
    fn exp2_matches_float() {
        for &(num, den, sign) in &[(1u64, 2u64, 1i64), (3, 4, -1), (5, 1, 1), (17, 10, -1)] {
            let y = sign * fp_ratio(num, den) as i64;
            let want = 2f64.powf(sign as f64 * num as f64 / den as f64);
            close(fp_exp2(y), want, want * 1e-8 + 1e-8);
        }
    }

    #[test]
    fn pow_matches_float_in_zipfian_range() {
        // The shapes the YCSB sampler needs: x in (0, 1], big and small
        // exponents, including alpha = 100 at theta = 0.99.
        for &(xn, xd, yn, yd) in &[
            (9u64, 10u64, 100u64, 1u64),
            (999, 1000, 100, 1),
            (1, 2, 99, 100),
            (1, 50_000, 1, 100),
            (7, 8, 1, 1),
        ] {
            let want = (xn as f64 / xd as f64).powf(yn as f64 / yd as f64);
            let got = fp_pow(fp_ratio(xn, xd), fp_ratio(yn, yd));
            close(got, want, want * 1e-6 + 1e-7);
        }
    }

    #[test]
    fn exp2_saturates() {
        assert_eq!(fp_exp2(40 * ONE as i64), u64::MAX);
        assert_eq!(fp_exp2(-70 * (ONE as i64)), 0);
    }
}
