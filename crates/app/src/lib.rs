//! # neo-app
//!
//! Replicated applications and workloads:
//!
//! * [`App`] — the state-machine interface NeoBFT and the baselines
//!   replicate. Because NeoBFT executes *speculatively* (§5.3) and may
//!   have to roll back when a speculatively executed slot is later
//!   committed as a no-op (§5.4), the interface includes `undo`: every
//!   `execute` pushes an undo record; the replica unwinds and re-executes
//!   the log suffix after a rollback.
//! * [`echo`] — the echo-RPC application used for the §6.2 latency/
//!   throughput comparison.
//! * [`kv`] — the in-memory B-Tree key-value store of §6.5.
//! * [`ycsb`] — a YCSB workload generator (workload A: 50/50 read/update
//!   over a zipfian key distribution, 100 K records, 128-byte fields).
//! * [`fixed`] — Q32.32 fixed-point arithmetic backing the zipfian
//!   tables, so workload state carries no floats (neo-lint R4).

pub mod echo;
pub mod fixed;
pub mod kv;
pub mod workload;
pub mod ycsb;

pub use echo::EchoApp;
pub use kv::{KvApp, KvOp, KvResult};
pub use workload::{EchoWorkload, Workload};
pub use ycsb::{YcsbConfig, YcsbGenerator};

/// A deterministic replicated state machine with undo support.
pub trait App: Send {
    /// Execute one operation and return its result. Implementations must
    /// be deterministic: same state + same op ⇒ same result and state.
    fn execute(&mut self, op: &[u8]) -> Vec<u8>;

    /// Undo the most recently executed (not yet compacted) operation.
    ///
    /// # Panics
    /// Panics if there is nothing to undo — the replica only rolls back
    /// operations it has executed and not yet finalized.
    fn undo(&mut self);

    /// Number of operations executed and not yet undone.
    fn executed(&self) -> u64;

    /// Drop undo records for everything up to and including the
    /// `finalized` most recent... i.e. keep only the ability to undo
    /// operations executed after the sync-point (§B.2). A no-op for apps
    /// that keep unbounded undo history.
    fn compact(&mut self, keep_last: u64);

    /// Serialize the complete application state for a checkpoint.
    ///
    /// `None` means the app does not support snapshots; replicas then
    /// skip checkpoint certification and recover by full log replay.
    /// Must be deterministic: equal state ⇒ byte-equal snapshot, since
    /// checkpoint digests are compared across replicas (§B.2).
    fn snapshot(&self) -> Option<Vec<u8>> {
        None
    }

    /// Replace all state from a snapshot blob. Returns `false` on a
    /// malformed blob and leaves the state untouched — blobs arrive from
    /// disk or from peers, never panic on them. The undo history does
    /// not survive a restore: a checkpoint only covers finalized slots,
    /// which are never rolled back.
    fn restore(&mut self, _blob: &[u8]) -> bool {
        false
    }

    /// Downcast support so hosts can inspect concrete application state.
    fn as_any_ref(&self) -> &dyn std::any::Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_app_is_an_app() {
        // Object safety: protocols hold `Box<dyn App>`.
        let mut app: Box<dyn App> = Box::new(EchoApp::new());
        let r = app.execute(b"ping");
        assert_eq!(r, b"ping");
        assert_eq!(app.executed(), 1);
    }
}
