//! Pass 1 of the two-pass analyzer: parse the lexer's token stream
//! into a lightweight item model.
//!
//! The model captures exactly what the dataflow rules (R6–R8) need and
//! nothing more: functions with their `impl` owner and a block tree of
//! statements, where each statement carries its ordered call /
//! field-write / early-exit events; structs with their fields, map
//! container + key type (the R4/R5 universe), and `replicated`
//! markers. It is deliberately *not* a Rust parser — it never rejects
//! input, it just extracts a conservative skeleton from token shapes,
//! the same philosophy as the lexer.

use crate::lexer::{Lexed, Marker, Tok, TokKind};

/// Everything the dataflow pass needs to know about one file.
pub struct FileModel {
    /// Repo-relative path (forward slashes) for findings.
    pub path: String,
    /// Structs declared in the file (non-test).
    pub structs: Vec<StructModel>,
    /// Functions declared in the file (including test ones, flagged).
    pub functions: Vec<FnModel>,
}

/// A struct and its named fields.
pub struct StructModel {
    /// Type name.
    pub name: String,
    /// Declaration line.
    pub line: u32,
    /// Named fields, in declaration order.
    pub fields: Vec<FieldModel>,
}

/// One named struct field.
pub struct FieldModel {
    /// Field name.
    pub name: String,
    /// Declaration line.
    pub line: u32,
    /// `Some(key type)` when the field is a HashMap/HashSet/BTreeMap/
    /// BTreeSet; the key type is the space-joined ident list R5 uses.
    pub map_key: Option<String>,
    /// `// neo-lint: replicated` marker on this field.
    pub replicated: bool,
}

/// A function with its statement-ordered event stream.
pub struct FnModel {
    /// Function name.
    pub name: String,
    /// `impl` owner type, if the function sits inside an impl block.
    pub owner: Option<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// True when inside a `#[cfg(test)]` / `#[test]` region.
    pub is_test: bool,
    /// `// neo-lint: verified(..)` marker: inputs are pre-authenticated.
    pub verified_input: bool,
    /// Root block of the body.
    pub body: Block,
}

impl FnModel {
    /// True for message-handler entry points (`on_*` / `handle_*` /
    /// `receive*`).
    pub fn is_entry(&self) -> bool {
        self.name.starts_with("on_")
            || self.name.starts_with("handle_")
            || self.name.starts_with("receive")
    }

    /// The body's events in source (statement) order.
    pub fn linear_events(&self) -> Vec<&Event> {
        let mut out = Vec::new();
        self.body.collect_events(&mut out);
        out
    }
}

/// A `{ .. }` block: a sequence of statements.
#[derive(Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    fn collect_events<'a>(&'a self, out: &mut Vec<&'a Event>) {
        for s in &self.stmts {
            for part in &s.parts {
                match part {
                    StmtPart::Event(e) => out.push(e),
                    StmtPart::Block(b) => b.collect_events(out),
                }
            }
        }
    }
}

/// One statement: an interleaving of events and nested blocks (an `if`
/// condition's events come before its then-block, matching evaluation
/// order).
pub struct Stmt {
    /// Line the statement starts on.
    pub line: u32,
    /// Ordered contents.
    pub parts: Vec<StmtPart>,
}

/// A piece of a statement.
pub enum StmtPart {
    /// A call / write / early-exit event.
    Event(Event),
    /// A nested `{ .. }` block (branch arm, loop body, closure body…).
    Block(Block),
}

/// One dataflow-relevant event inside a function body.
#[derive(Debug, PartialEq, Eq)]
pub enum Event {
    /// A call: `name(..)`, `recv.name(..)`, or `name!(..)`.
    Call {
        /// Callee name (last path segment / method name).
        name: String,
        /// Dotted receiver chain idents, e.g. `self.aom.on_packet(..)`
        /// → `["self", "aom"]`. Empty for free/path calls.
        recv: Vec<String>,
        /// True for `name!(..)` macro invocations.
        is_macro: bool,
        /// Call line.
        line: u32,
    },
    /// A write-shaped mutation of a field: `recv.field.verb(..)` where
    /// `verb` grows/overwrites (`insert`, `push`, `extend`, `append*`,
    /// `resize`, `fill`, or `entry(..).or_*`).
    Write {
        /// The field being mutated (second-to-last chain segment).
        field: String,
        /// The mutating method name.
        verb: String,
        /// Write line.
        line: u32,
    },
    /// `return` or `?` — an early-exit point (guard recognition).
    EarlyExit {
        /// Line of the exit.
        line: u32,
    },
}

impl Event {
    /// The line an event is anchored at.
    pub fn line(&self) -> u32 {
        match self {
            Event::Call { line, .. } | Event::Write { line, .. } | Event::EarlyExit { line } => {
                *line
            }
        }
    }
}

/// Method names that grow or overwrite collection contents. `entry` is
/// handled separately (only with a following `.or_*` / `.and_modify`).
const MUT_VERBS: &[&str] = &[
    "insert",
    "push",
    "push_back",
    "push_front",
    "extend",
    "extend_from_slice",
    "append",
    "resize",
    "fill",
];

/// Reserved words that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "let", "in", "as", "ref", "mut",
    "move", "fn", "impl", "where", "pub", "use", "mod", "struct", "enum", "trait", "type", "const",
    "static", "unsafe", "async", "await", "dyn", "box",
];

/// Build the item model for one lexed file. `is_test` is the per-token
/// test mask from `test_and_attr_masks`.
pub fn parse_file(path: &str, lexed: &Lexed, is_test: &[bool]) -> FileModel {
    let toks = &lexed.toks;
    let mut structs = Vec::new();
    let mut functions = Vec::new();
    let mut i = 0usize;
    let mut owner_stack: Vec<(String, usize)> = Vec::new(); // (type, end tok)

    while i < toks.len() {
        while let Some(&(_, end)) = owner_stack.last() {
            if i >= end {
                owner_stack.pop();
            } else {
                break;
            }
        }
        let t = &toks[i];
        if t.is_ident("struct")
            && !is_test.get(i).copied().unwrap_or(false)
            && toks.get(i + 1).map(|n| n.kind == TokKind::Ident) == Some(true)
        {
            let (model, next) = parse_struct(toks, i, &lexed.markers);
            if let Some(m) = model {
                structs.push(m);
            }
            i = next;
            continue;
        }
        if t.is_ident("impl") {
            if let Some((ty, body_start, body_end)) = parse_impl_header(toks, i) {
                owner_stack.push((ty, body_end));
                i = body_start + 1; // descend into the impl body
                continue;
            }
        }
        if t.is_ident("fn") && toks.get(i + 1).map(|n| n.kind == TokKind::Ident) == Some(true) {
            let (model, next) = parse_fn(
                toks,
                i,
                owner_stack.last().map(|(ty, _)| ty.clone()),
                is_test.get(i).copied().unwrap_or(false),
                &lexed.markers,
            );
            if let Some(m) = model {
                functions.push(m);
            }
            i = next;
            continue;
        }
        i += 1;
    }

    FileModel {
        path: path.to_string(),
        structs,
        functions,
    }
}

/// True if a marker of `kind` sits on `line` or the line above.
fn has_marker(markers: &[Marker], kind: &str, line: u32) -> bool {
    markers
        .iter()
        .any(|m| m.kind == kind && (m.line == line || m.line + 1 == line))
}

/// Parse `impl [<..>] Type [for Trait]` — returns (owner type, index of
/// the body `{`, index past the matching `}`). The owner is the type
/// being implemented: the ident after `for` if present, else the first
/// type ident after `impl`.
fn parse_impl_header(toks: &[Tok], i: usize) -> Option<(String, usize, usize)> {
    let mut j = i + 1;
    let mut angle = 0i64;
    let mut first_ty: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            if j > 0 && toks[j - 1].is_punct('-') {
                // `->` arrow, not a generic close
            } else if angle > 0 {
                angle -= 1;
            }
        } else if angle == 0 {
            if t.is_punct('{') {
                let end = skip_balanced(toks, j, '{', '}');
                let ty = after_for.or(first_ty)?;
                return Some((ty, j, end));
            }
            if t.is_punct(';') {
                return None;
            }
            if t.is_ident("for") {
                saw_for = true;
            } else if t.is_ident("where") {
                // generics done; keep scanning for `{`
            } else if t.kind == TokKind::Ident && !t.is_ident("dyn") && !t.is_ident("const") {
                if saw_for && after_for.is_none() {
                    after_for = Some(t.text.clone());
                } else if first_ty.is_none() {
                    first_ty = Some(t.text.clone());
                }
            }
        }
        j += 1;
    }
    None
}

/// Parse one struct declaration starting at the `struct` keyword.
fn parse_struct(toks: &[Tok], i: usize, markers: &[Marker]) -> (Option<StructModel>, usize) {
    let name = toks[i + 1].text.clone();
    let line = toks[i].line;
    // Find the body `{` (skipping generics); `;`/`(` = unit/tuple struct.
    let mut j = i + 2;
    let mut angle = 0i64;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            if j > 0 && toks[j - 1].is_punct('-') {
            } else if angle > 0 {
                angle -= 1;
            }
        } else if angle == 0 {
            if t.is_punct('{') {
                break;
            }
            if t.is_punct(';') || t.is_punct('(') {
                return (
                    Some(StructModel {
                        name,
                        line,
                        fields: Vec::new(),
                    }),
                    j + 1,
                );
            }
        }
        j += 1;
    }
    if j >= toks.len() {
        return (None, j);
    }
    let end = skip_balanced(toks, j, '{', '}');
    let mut fields = Vec::new();
    let mut k = j + 1;
    while k < end.saturating_sub(1) {
        // Skip attributes and visibility.
        while k + 1 < end && toks[k].is_punct('#') && toks[k + 1].is_punct('[') {
            k = skip_balanced(toks, k + 1, '[', ']');
        }
        if toks[k].is_ident("pub") {
            k += 1;
            if k < end && toks[k].is_punct('(') {
                k = skip_balanced(toks, k, '(', ')');
            }
        }
        if k >= end || toks[k].kind != TokKind::Ident {
            break;
        }
        let fname = toks[k].text.clone();
        let fline = toks[k].line;
        k += 1;
        if k >= end || !toks[k].is_punct(':') {
            break;
        }
        k += 1;
        // Collect type tokens to the field-separating `,` at depth 0.
        let ty_start = k;
        let (mut a, mut p, mut b, mut c) = (0i64, 0i64, 0i64, 0i64);
        while k < end {
            let t = &toks[k];
            if t.is_punct('<') {
                a += 1;
            } else if t.is_punct('>') {
                if k > 0 && toks[k - 1].is_punct('-') {
                } else if a > 0 {
                    a -= 1;
                }
            } else if t.is_punct('(') {
                p += 1;
            } else if t.is_punct(')') {
                p -= 1;
            } else if t.is_punct('[') {
                b += 1;
            } else if t.is_punct(']') {
                b -= 1;
            } else if t.is_punct('{') {
                c += 1;
            } else if t.is_punct('}') {
                if c == 0 {
                    break;
                }
                c -= 1;
            } else if t.is_punct(',') && a == 0 && p == 0 && b == 0 && c == 0 {
                break;
            }
            k += 1;
        }
        let ty = &toks[ty_start..k.min(toks.len())];
        fields.push(FieldModel {
            map_key: map_key_of(ty),
            replicated: has_marker(markers, "replicated", fline),
            name: fname,
            line: fline,
        });
        if k < end && toks[k].is_punct(',') {
            k += 1;
        }
    }
    (Some(StructModel { name, line, fields }), end)
}

/// `Some(key type)` when the type tokens describe a map/set container.
fn map_key_of(ty: &[Tok]) -> Option<String> {
    for (k, t) in ty.iter().enumerate() {
        let is_map = match t.text.as_str() {
            "HashMap" | "BTreeMap" => true,
            "HashSet" | "BTreeSet" => false,
            _ => continue,
        };
        if t.kind != TokKind::Ident {
            continue;
        }
        // Pull the key type out of the angle brackets, R5-style.
        let rest = &ty[k + 1..];
        let mut angle = 0i64;
        let mut parts = Vec::new();
        for (j, t) in rest.iter().enumerate() {
            if t.is_punct('<') {
                angle += 1;
                if angle == 1 {
                    continue;
                }
            } else if t.is_punct('>') {
                if j > 0 && rest[j - 1].is_punct('-') {
                } else {
                    angle -= 1;
                    if angle == 0 {
                        break;
                    }
                }
            } else if t.is_punct(',') && angle == 1 && is_map {
                break;
            }
            if angle >= 1 && t.kind == TokKind::Ident {
                parts.push(t.text.clone());
            }
            if angle == 0 && j > 0 {
                break;
            }
        }
        return Some(parts.join(" "));
    }
    None
}

/// Parse one `fn` starting at the `fn` keyword; returns the model (None
/// for bodyless trait declarations) and the index to resume from.
fn parse_fn(
    toks: &[Tok],
    i: usize,
    owner: Option<String>,
    is_test: bool,
    markers: &[Marker],
) -> (Option<FnModel>, usize) {
    let name = toks[i + 1].text.clone();
    let line = toks[i].line;
    // First `{` after the signature opens the body; `;` = declaration.
    let mut j = i + 2;
    while j < toks.len() && !toks[j].is_punct('{') {
        if toks[j].is_punct(';') {
            return (None, j + 1);
        }
        j += 1;
    }
    if j >= toks.len() {
        return (None, j);
    }
    let end = skip_balanced(toks, j, '{', '}');
    let mut body = Block::default();
    parse_block(toks, j + 1, end.saturating_sub(1), &mut body);
    (
        Some(FnModel {
            verified_input: has_marker(markers, "verified", line),
            name,
            owner,
            line,
            is_test,
            body,
        }),
        end,
    )
}

/// Parse the token range `[start, end)` (inside `{ .. }`) into a block
/// tree, extracting events along the way.
fn parse_block(toks: &[Tok], start: usize, end: usize, out: &mut Block) {
    let mut stmt = Stmt {
        line: toks.get(start).map(|t| t.line).unwrap_or(0),
        parts: Vec::new(),
    };
    let mut k = start;
    while k < end.min(toks.len()) {
        let t = &toks[k];
        if t.is_punct('{') {
            let sub_end = skip_balanced(toks, k, '{', '}').min(end);
            let mut sub = Block::default();
            parse_block(toks, k + 1, sub_end.saturating_sub(1), &mut sub);
            stmt.parts.push(StmtPart::Block(sub));
            k = sub_end;
            // A block usually ends the statement unless an `else` /
            // method-chain continues it; splitting is approximate and
            // only affects grouping, never event order.
            let continues = toks
                .get(k)
                .map(|n| n.is_ident("else") || n.is_punct('.') || n.is_punct('?'))
                .unwrap_or(false);
            if !continues {
                flush_stmt(&mut stmt, out, toks, k);
            }
            continue;
        }
        if t.is_punct(';') || (t.is_punct(',') && stmt_has_content(&stmt)) {
            k += 1;
            flush_stmt(&mut stmt, out, toks, k);
            continue;
        }
        if t.is_ident("return") {
            stmt.parts
                .push(StmtPart::Event(Event::EarlyExit { line: t.line }));
            k += 1;
            continue;
        }
        if t.is_punct('?') {
            // `expr?` — but not generics (`Option<T>` never lexes `?`).
            stmt.parts
                .push(StmtPart::Event(Event::EarlyExit { line: t.line }));
            k += 1;
            continue;
        }
        if t.kind == TokKind::Ident && !NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            // `ident!(..)` macro call.
            if toks.get(k + 1).map(|n| n.is_punct('!')) == Some(true)
                && toks
                    .get(k + 2)
                    .map(|n| n.is_punct('(') || n.is_punct('[') || n.is_punct('{'))
                    == Some(true)
            {
                stmt.parts.push(StmtPart::Event(Event::Call {
                    name: t.text.clone(),
                    recv: Vec::new(),
                    is_macro: true,
                    line: t.line,
                }));
                k += 2; // the macro body is still scanned for nested events
                continue;
            }
            // `ident(..)` call — plain, path (`a::b(`), or method (`.b(`).
            if toks.get(k + 1).map(|n| n.is_punct('(')) == Some(true) {
                let recv = receiver_chain(toks, k);
                let name = t.text.clone();
                let line = t.line;
                // `.entry(..).or_*` counts as a write of the field.
                let write = write_event(toks, k, &name, &recv);
                stmt.parts.push(StmtPart::Event(Event::Call {
                    name,
                    recv,
                    is_macro: false,
                    line,
                }));
                if let Some(w) = write {
                    stmt.parts.push(StmtPart::Event(w));
                }
                k += 1; // args are scanned as part of the statement
                continue;
            }
        }
        k += 1;
    }
    flush_stmt(&mut stmt, out, toks, end);
}

fn stmt_has_content(stmt: &Stmt) -> bool {
    !stmt.parts.is_empty()
}

fn flush_stmt(stmt: &mut Stmt, out: &mut Block, toks: &[Tok], next: usize) {
    if !stmt.parts.is_empty() {
        let line = toks.get(next).map(|t| t.line).unwrap_or(stmt.line);
        let done = std::mem::replace(
            stmt,
            Stmt {
                line,
                parts: Vec::new(),
            },
        );
        out.stmts.push(done);
    } else {
        stmt.line = toks.get(next).map(|t| t.line).unwrap_or(stmt.line);
    }
}

/// Walk the dotted receiver chain backwards from a call ident at `k`:
/// `self.aom.on_packet(` → `["self", "aom"]`. Balanced `(..)` / `[..]`
/// groups in the chain (`.entry(s).or_default(`) are skipped.
fn receiver_chain(toks: &[Tok], k: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut j = k;
    loop {
        if j == 0 || !toks[j - 1].is_punct('.') {
            break;
        }
        let mut p = j - 2; // token before the `.`
        loop {
            let Some(t) = toks.get(p) else {
                break;
            };
            if t.is_punct(')') || t.is_punct(']') {
                // Skip back over the balanced group.
                let close = if t.is_punct(')') { ')' } else { ']' };
                let open = if close == ')' { '(' } else { '[' };
                let mut depth = 0i64;
                while p > 0 {
                    if toks[p].is_punct(close) {
                        depth += 1;
                    } else if toks[p].is_punct(open) {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    p -= 1;
                }
                if p == 0 {
                    break;
                }
                p -= 1;
                continue;
            }
            break;
        }
        let Some(t) = toks.get(p) else { break };
        if t.kind == TokKind::Ident {
            chain.push(t.text.clone());
            j = p;
            continue;
        }
        break;
    }
    chain.reverse();
    chain
}

/// Decide whether the call at `k` is a write of a field: a mutating
/// verb with a two-segment-or-longer receiver (`x.field.insert(..)`),
/// or `recv.field.entry(..)` followed by `.or_*` / `.and_modify`.
fn write_event(toks: &[Tok], k: usize, name: &str, recv: &[String]) -> Option<Event> {
    let field = recv.last()?;
    if recv.len() < 2 {
        // `local.push(..)` — locals aren't replicated state; aliased
        // field mutations through a local are a documented miss.
        return None;
    }
    if MUT_VERBS.contains(&name) {
        return Some(Event::Write {
            field: field.clone(),
            verb: name.to_string(),
            line: toks[k].line,
        });
    }
    if name == "entry" {
        // Lookahead past the balanced `(..)` for `.or_*`/`.and_modify`.
        let close = skip_balanced(toks, k + 1, '(', ')');
        if toks.get(close).map(|t| t.is_punct('.')) == Some(true) {
            if let Some(next) = toks.get(close + 1) {
                if next.kind == TokKind::Ident
                    && (next.text.starts_with("or_") || next.text == "and_modify")
                {
                    return Some(Event::Write {
                        field: field.clone(),
                        verb: "entry".to_string(),
                        line: toks[k].line,
                    });
                }
            }
        }
    }
    None
}

/// Skip a balanced `open .. close` region starting at the `open` token;
/// returns the index just past the matching close.
fn skip_balanced(toks: &[Tok], start: usize, open: char, close: char) -> usize {
    let mut depth = 0i64;
    let mut i = start;
    while i < toks.len() {
        if toks[i].is_punct(open) {
            depth += 1;
        } else if toks[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model(src: &str) -> FileModel {
        let lexed = lex(src);
        let is_test = vec![false; lexed.toks.len()];
        parse_file("test.rs", &lexed, &is_test)
    }

    #[test]
    fn fn_owner_and_entry_detection() {
        let src = "impl Replica { fn on_msg(&mut self) {} fn helper(&self) {} }\n\
                   impl Node for Replica { fn on_timer(&mut self) {} }\n\
                   fn free() {}";
        let m = model(src);
        let names: Vec<(&str, Option<&str>)> = m
            .functions
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("on_msg", Some("Replica")),
                ("helper", Some("Replica")),
                ("on_timer", Some("Replica")),
                ("free", None),
            ]
        );
        assert!(m.functions[0].is_entry());
        assert!(!m.functions[1].is_entry());
    }

    #[test]
    fn struct_fields_and_markers() {
        let src = "struct S {\n\
                   table: HashMap<ClientId, u64>,\n\
                   // neo-lint: replicated(delivery log)\n\
                   log: Vec<Entry>,\n\
                   n: u32,\n\
                   }";
        let m = model(src);
        assert_eq!(m.structs.len(), 1);
        let f = &m.structs[0].fields;
        assert_eq!(f.len(), 3);
        assert_eq!(f[0].map_key.as_deref(), Some("ClientId"));
        assert!(!f[0].replicated);
        assert!(f[1].replicated);
        assert!(f[1].map_key.is_none());
        assert!(!f[2].replicated);
    }

    #[test]
    fn call_events_capture_receiver_chain() {
        let src = "impl R { fn on_x(&mut self) { self.aom.on_packet(p); helper(1); } }";
        let m = model(src);
        let events = m.functions[0].linear_events();
        let calls: Vec<(&str, Vec<&str>)> = events
            .iter()
            .filter_map(|e| match e {
                Event::Call { name, recv, .. } => {
                    Some((name.as_str(), recv.iter().map(|s| s.as_str()).collect()))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            calls,
            vec![("on_packet", vec!["self", "aom"]), ("helper", vec![])]
        );
    }

    #[test]
    fn write_events_need_two_segments_and_mut_verbs() {
        let src = "impl R { fn on_x(&mut self) {\n\
                   self.table.insert(k, v);\n\
                   local.push(1);\n\
                   self.gaps.entry(s).or_default();\n\
                   self.log.entry(s);\n\
                   } }";
        let m = model(src);
        let writes: Vec<(&str, &str)> = m.functions[0]
            .linear_events()
            .into_iter()
            .filter_map(|e| match e {
                Event::Write { field, verb, .. } => Some((field.as_str(), verb.as_str())),
                _ => None,
            })
            .collect();
        // `local.push` is single-segment (skipped); bare `.entry(..)`
        // without `.or_*` is a read.
        assert_eq!(writes, vec![("table", "insert"), ("gaps", "entry")]);
    }

    #[test]
    fn early_exits_and_order_are_linear() {
        let src = "impl R { fn on_x(&mut self) {\n\
                   if !self.verify_auth(m) { return; }\n\
                   self.table.insert(k, v);\n\
                   } }";
        let m = model(src);
        let ev = m.functions[0].linear_events();
        let shapes: Vec<String> = ev
            .iter()
            .map(|e| match e {
                Event::Call { name, .. } => format!("call:{name}"),
                Event::Write { field, .. } => format!("write:{field}"),
                Event::EarlyExit { .. } => "exit".to_string(),
            })
            .collect();
        assert_eq!(
            shapes,
            vec!["call:verify_auth", "exit", "call:insert", "write:table"]
        );
    }

    #[test]
    fn macro_calls_are_flagged() {
        let src = "impl R { fn helper(&self) { panic!(\"boom\"); } }";
        let m = model(src);
        let ev = m.functions[0].linear_events();
        assert!(ev.iter().any(|e| matches!(
            e,
            Event::Call {
                name,
                is_macro: true,
                ..
            } if name == "panic"
        )));
    }

    #[test]
    fn verified_marker_applies_to_next_fn() {
        let src = "impl R {\n\
                   // neo-lint: verified(cert pre-checked)\n\
                   fn on_delivery(&mut self) {}\n\
                   fn on_other(&mut self) {}\n\
                   }";
        let m = model(src);
        assert!(m.functions[0].verified_input);
        assert!(!m.functions[1].verified_input);
    }
}
