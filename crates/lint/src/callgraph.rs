//! Workspace call graph over the item model.
//!
//! Nodes are functions (`FnRef` = file index + function index); edges
//! come from `Call` events. Resolution is name-based and deliberately
//! conservative:
//!
//! 1. a same-file function with the callee's name — preferring one in
//!    the same `impl` when the receiver starts with `self` — else
//! 2. a unique workspace-wide match.
//!
//! Ambiguous names resolve to the same-file candidate when exactly one
//! exists, otherwise the edge is dropped (no guessing). The dataflow
//! rules only traverse *same-file* edges (private helpers); the
//! workspace-wide index exists so cross-file vocabulary checks (R7) and
//! future rules see one graph.

use crate::parser::{Event, FileModel};
use std::collections::BTreeMap;

/// A function's position in the workspace model.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct FnRef {
    /// Index into the `files` slice.
    pub file: usize,
    /// Index into that file's `functions`.
    pub func: usize,
}

/// One resolved call edge.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// Calling function.
    pub caller: FnRef,
    /// Called function.
    pub callee: FnRef,
    /// Position of the call in the caller's linear event stream.
    pub event_idx: usize,
    /// Call site line.
    pub line: u32,
}

/// The workspace call graph.
pub struct CallGraph {
    /// All resolved edges, in deterministic (caller, event) order.
    pub edges: Vec<Edge>,
    by_name: BTreeMap<String, Vec<FnRef>>,
}

impl CallGraph {
    /// Build the graph over every function in `files`.
    pub fn build(files: &[FileModel]) -> CallGraph {
        let mut by_name: BTreeMap<String, Vec<FnRef>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.functions.iter().enumerate() {
                by_name
                    .entry(f.name.clone())
                    .or_default()
                    .push(FnRef { file: fi, func: gi });
            }
        }
        let mut edges = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.functions.iter().enumerate() {
                let caller = FnRef { file: fi, func: gi };
                for (ei, ev) in f.linear_events().iter().enumerate() {
                    let Event::Call {
                        name,
                        recv,
                        is_macro: false,
                        line,
                    } = ev
                    else {
                        continue;
                    };
                    let Some(callee) = resolve(&by_name, files, caller, name, recv) else {
                        continue;
                    };
                    if callee == caller {
                        continue; // self-recursion adds nothing here
                    }
                    edges.push(Edge {
                        caller,
                        callee,
                        event_idx: ei,
                        line: *line,
                    });
                }
            }
        }
        CallGraph { edges, by_name }
    }

    /// Functions named `name`, across the workspace.
    pub fn functions_named(&self, name: &str) -> &[FnRef] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Edges out of `caller`.
    pub fn callees(&self, caller: FnRef) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.caller == caller)
    }

    /// Edges into `callee`.
    pub fn callers(&self, callee: FnRef) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.callee == callee)
    }
}

/// Resolve one call to a function, or None when ambiguous/external.
fn resolve(
    by_name: &BTreeMap<String, Vec<FnRef>>,
    files: &[FileModel],
    caller: FnRef,
    name: &str,
    recv: &[String],
) -> Option<FnRef> {
    let candidates = by_name.get(name)?;
    let same_file: Vec<FnRef> = candidates
        .iter()
        .copied()
        .filter(|r| r.file == caller.file)
        .collect();
    if recv.first().map(String::as_str) == Some("self") {
        // `self.name(..)`: prefer the caller's own impl.
        let owner = files[caller.file].functions[caller.func].owner.as_deref();
        if let Some(owner) = owner {
            if let Some(hit) = same_file
                .iter()
                .find(|r| files[r.file].functions[r.func].owner.as_deref() == Some(owner))
            {
                return Some(*hit);
            }
        }
    }
    match same_file.len() {
        1 => Some(same_file[0]),
        0 if candidates.len() == 1 => Some(candidates[0]),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn models(srcs: &[(&str, &str)]) -> Vec<FileModel> {
        srcs.iter()
            .map(|(path, src)| {
                let lexed = lex(src);
                let mask = vec![false; lexed.toks.len()];
                parse_file(path, &lexed, &mask)
            })
            .collect()
    }

    fn name_of<'a>(files: &'a [FileModel], r: FnRef) -> (&'a str, &'a str) {
        (
            files[r.file].path.as_str(),
            files[r.file].functions[r.func].name.as_str(),
        )
    }

    #[test]
    fn multi_impl_file_resolves_to_own_impl_first() {
        // Two impls in one file share a helper name; `self.helper()`
        // must bind to the caller's own impl, not the other one.
        let src = "impl Alpha {\n\
                   fn on_msg(&mut self) { self.helper(); }\n\
                   fn helper(&self) {}\n\
                   }\n\
                   impl Beta {\n\
                   fn on_tick(&mut self) { self.helper(); }\n\
                   fn helper(&self) {}\n\
                   }";
        let files = models(&[("multi.rs", src)]);
        let g = CallGraph::build(&files);
        assert_eq!(g.edges.len(), 2);
        for e in &g.edges {
            let caller_owner = files[e.caller.file].functions[e.caller.func]
                .owner
                .as_deref();
            let callee_owner = files[e.callee.file].functions[e.callee.func]
                .owner
                .as_deref();
            assert_eq!(caller_owner, callee_owner, "edge crossed impl blocks");
        }
    }

    #[test]
    fn cross_file_unique_names_resolve() {
        let files = models(&[
            ("a.rs", "fn on_msg() { shared_helper(); }"),
            ("b.rs", "fn shared_helper() {}"),
        ]);
        let g = CallGraph::build(&files);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(
            name_of(&files, g.edges[0].callee),
            ("b.rs", "shared_helper")
        );
    }

    #[test]
    fn ambiguous_cross_file_names_drop_the_edge() {
        let files = models(&[
            ("a.rs", "fn on_msg() { dup(); }"),
            ("b.rs", "fn dup() {}"),
            ("c.rs", "fn dup() {}"),
        ]);
        let g = CallGraph::build(&files);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn callers_and_callees_enumerate() {
        let src = "impl R {\n\
                   fn on_a(&mut self) { self.shared(); }\n\
                   fn on_b(&mut self) { self.shared(); }\n\
                   fn shared(&mut self) {}\n\
                   }";
        let files = models(&[("r.rs", src)]);
        let g = CallGraph::build(&files);
        let shared = FnRef { file: 0, func: 2 };
        assert_eq!(g.callers(shared).count(), 2);
        assert_eq!(g.callees(FnRef { file: 0, func: 0 }).count(), 1);
    }
}
