//! Pass 2: dataflow rules over the item model + call graph.
//!
//! R6 verify-before-mutate — in a handler (`on_*`/`handle_*`/
//!    `receive*`), a storage routine (`replay_*`/`install_*` — replay
//!    and state-transfer code ingests bytes from disk or a peer and is
//!    held to the same bar), or a private helper either calls, a write
//!    to replicated state must be dominated, in statement order, by a
//!    call into the verify vocabulary (`verify_*`, `check_*auth*`, or
//!    the aom receiver's ingestion methods). Guard idioms
//!    (`if !verify { return }`, `verify()?`, let-else) are recognized
//!    because the verify call precedes the mutation in statement
//!    order. The replicated universe is the R4/R5 field universe
//!    (attacker-keyed map fields) plus `// neo-lint: replicated`
//!    markers; `// neo-lint: verified(..)` on a `fn` declares its
//!    inputs pre-authenticated (e.g. WAL replay of the replica's own
//!    checksummed records).
//! R7 verify-charges-meter — a raw verification primitive
//!    (`verify_vector_entry`, or `.verify(..)` not routed through the
//!    self-charging `NodeCrypto` façade) must be preceded by a meter
//!    charge (`charge`/`charge_serial`/`charge_parallel`/
//!    `charge_verify`) so sim benchmarks stay honest. The verify-stage
//!    vocabulary is façade-routed by construction: `VerifyPool` work
//!    (receivers named `job`/`jobs`/`task`/`work`) verifies through the
//!    `NodeCrypto` handed to it, and batch APIs (`verify_batch`,
//!    `verify_chain_links`) charge inside the façade.
//! R8 interprocedural panic reach — R2's panic ban extended one call
//!    deep: `unwrap`/`expect`/panic-macros inside a private same-file
//!    helper called from a handler.
//!
//! Known approximations (see DESIGN.md §15): domination is linear
//! statement order, not path-sensitive; helper traversal is one level
//! of same-file callees; aliased mutations through a local binding
//! (`let g = self.gaps.entry(..)`) are not tracked.

use crate::callgraph::{CallGraph, FnRef};
use crate::parser::{Event, FileModel, FnModel};
use std::collections::{BTreeMap, BTreeSet};

/// Key types whose domain is fixed by the replica set / local runtime
/// (mirrors R5).
const BOUNDED_KEYS: &[&str] = &["ReplicaId", "TimerId", "GroupId"];

/// Key types an attacker can mint fresh values of at will (mirrors R5).
const UNBOUNDED_KEYS: &[&str] = &[
    "ClientId",
    "RequestId",
    "SlotNum",
    "SeqNum",
    "EpochNum",
    "ViewId",
    "Digest",
    "u64",
    "u32",
    "usize",
    "String",
    "Vec",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented", "assert"];

const CHARGE_CALLS: &[&str] = &[
    "charge",
    "charge_serial",
    "charge_parallel",
    "charge_verify",
];

/// Files below the metering layer: they *implement* the primitives the
/// meter prices, so R7 does not apply inside them. `provider.rs` (the
/// façade) stays in scope — its raw calls must charge, and do.
fn below_meter(path: &str) -> bool {
    path.starts_with("crates/crypto/src/") && !path.ends_with("provider.rs")
}

/// Storage-vocabulary entry points: replay and state-transfer routines
/// (`replay_*`, `install_*`) apply bytes that arrived from disk or a
/// peer, so R6 analyzes them standalone exactly like message handlers —
/// they must verify (or carry a `verified(..)` marker explaining why
/// their input is pre-authenticated) before mutating replicated state.
fn is_storage_entry(name: &str) -> bool {
    name.starts_with("replay_") || name.starts_with("install_")
}

/// A call into the verify vocabulary?
fn is_verify_call(name: &str, recv: &[String]) -> bool {
    if name.starts_with("verify") {
        return true;
    }
    if name.starts_with("check") && name.contains("auth") {
        return true;
    }
    // Verify-stage dispatch: handing a packet/confirm to the verify
    // pipeline (`dispatch_packet_verify`, `submit_verify`, ..) is the
    // ingestion point — nothing is applied until the stage's verdict
    // comes back through the reorder buffer.
    if name.ends_with("_verify") {
        return true;
    }
    // The aom receiver's ingestion path authenticates everything it
    // yields (§4: the AOM primitive) — `self.aom.on_packet(..)` et al.
    // are the moral `AomReceiver::receive`.
    matches!(name, "on_packet" | "on_confirm" | "on_envelope" | "poll")
        && recv.iter().any(|s| s == "aom")
}

/// Run R6–R8 over the workspace; findings accumulate per file into
/// `out[file_index]` as `(line, rule, message)`.
pub fn run(
    files: &[FileModel],
    graph: &CallGraph,
    out: &mut [BTreeSet<(u32, &'static str, String)>],
) {
    let universes: Vec<BTreeSet<&str>> = files.iter().map(replicated_universe).collect();
    rule_r6(files, graph, &universes, out);
    rule_r7(files, out);
    rule_r8(files, graph, out);
}

/// The replicated-state field universe of one file: attacker-keyed map
/// fields (the R5 universe) plus `// neo-lint: replicated` markers.
fn replicated_universe(file: &FileModel) -> BTreeSet<&str> {
    let mut set = BTreeSet::new();
    for s in &file.structs {
        for f in &s.fields {
            if f.replicated {
                set.insert(f.name.as_str());
                continue;
            }
            let Some(key) = f.map_key.as_deref() else {
                continue;
            };
            if key.is_empty() {
                continue;
            }
            let parts: Vec<&str> = key.split(' ').collect();
            if BOUNDED_KEYS.iter().any(|b| parts.contains(b)) {
                continue;
            }
            if UNBOUNDED_KEYS.iter().any(|u| parts.contains(u)) {
                set.insert(f.name.as_str());
            }
        }
    }
    set
}

/// Writes to universe fields in `f` that no earlier verify call
/// dominates, as `(field, line)`; `prior_verify` pretends a verify
/// happened before the function body (caller-side guard).
fn unguarded_writes<'a>(
    f: &'a FnModel,
    universe: &BTreeSet<&str>,
    prior_verify: bool,
) -> Vec<(&'a str, u32)> {
    if f.verified_input || prior_verify {
        return Vec::new();
    }
    let mut verified = false;
    let mut out = Vec::new();
    for ev in f.linear_events() {
        match ev {
            Event::Call { name, recv, .. } => {
                if is_verify_call(name, recv) {
                    verified = true;
                }
            }
            Event::Write { field, line, .. } if !verified => {
                if universe.contains(field.as_str()) {
                    out.push((field.as_str(), *line));
                }
            }
            _ => {}
        }
    }
    out
}

/// Index of the first verify-vocabulary call in `f`'s linear events,
/// if any.
fn first_verify_idx(f: &FnModel) -> Option<usize> {
    f.linear_events()
        .iter()
        .position(|ev| matches!(ev, Event::Call { name, recv, .. } if is_verify_call(name, recv)))
}

/// R6 verify-before-mutate.
fn rule_r6(
    files: &[FileModel],
    graph: &CallGraph,
    universes: &[BTreeSet<&str>],
    out: &mut [BTreeSet<(u32, &'static str, String)>],
) {
    for (fi, file) in files.iter().enumerate() {
        let universe = &universes[fi];
        if universe.is_empty() {
            continue;
        }
        for (gi, f) in file.functions.iter().enumerate() {
            if f.is_test || !(f.is_entry() || is_storage_entry(&f.name)) || f.verified_input {
                continue;
            }
            let noun = if f.is_entry() {
                "handler"
            } else {
                "storage routine"
            };
            // Direct writes in the handler body.
            for (field, line) in unguarded_writes(f, universe, false) {
                out[fi].insert((
                    line,
                    "R6",
                    format!(
                        "replicated `{field}` is mutated in {noun} `{}` before any \
                         verify_*/check-auth call — NeoBFT's verify-then-apply boundary \
                         requires authentication first",
                        f.name
                    ),
                ));
            }
            // One level of same-file callees: a write inside the helper
            // is fine if the helper verifies internally OR this handler
            // verified before the call.
            let entry_ref = FnRef { file: fi, func: gi };
            let verify_at = first_verify_idx(f);
            for edge in graph.callees(entry_ref) {
                if edge.callee.file != fi {
                    continue;
                }
                let callee = &files[fi].functions[edge.callee.func];
                if callee.is_test || callee.is_entry() || is_storage_entry(&callee.name) {
                    continue; // entries are analyzed standalone
                }
                let guarded = verify_at.map(|v| v < edge.event_idx).unwrap_or(false);
                for (field, wline) in unguarded_writes(callee, universe, guarded) {
                    out[fi].insert((
                        edge.line,
                        "R6",
                        format!(
                            "{noun} `{}` calls `{}` (which mutates replicated `{field}` at \
                             line {wline}) without a prior verify_*/check-auth call in either",
                            f.name, callee.name
                        ),
                    ));
                }
            }
        }
    }
}

/// R7 verify-charges-meter.
fn rule_r7(files: &[FileModel], out: &mut [BTreeSet<(u32, &'static str, String)>]) {
    for (fi, file) in files.iter().enumerate() {
        if below_meter(&file.path) {
            continue;
        }
        for f in &file.functions {
            if f.is_test {
                continue;
            }
            let mut charged = false;
            for ev in f.linear_events() {
                let Event::Call {
                    name,
                    recv,
                    is_macro: false,
                    line,
                } = ev
                else {
                    continue;
                };
                if CHARGE_CALLS.contains(&name.as_str()) {
                    charged = true;
                    continue;
                }
                // Façade-routed receivers: the crypto façade itself, or a
                // verify-stage job/task (`VerifyJob::verify(crypto, ..)`
                // et al.) whose charges happen inside the façade it was
                // handed. Raw primitives (`seq_vk.verify`, `key.verify`)
                // stay in scope.
                let facade_routed = recv.iter().any(|s| {
                    s == "crypto" || s == "job" || s == "jobs" || s == "task" || s == "work"
                });
                let raw_verify = name == "verify_vector_entry"
                    || (name == "verify" && !recv.is_empty() && !facade_routed);
                if raw_verify && !charged {
                    out[fi].insert((
                        *line,
                        "R7",
                        format!(
                            "raw `{name}` in `{}` bypasses the self-charging NodeCrypto \
                             façade without charging the CostModel meter first — benchmarks \
                             under-count crypto; call charge_serial/charge_parallel (or route \
                             through NodeCrypto) before verifying",
                            f.name
                        ),
                    ));
                }
            }
        }
    }
}

/// R8 interprocedural panic reach.
fn rule_r8(
    files: &[FileModel],
    graph: &CallGraph,
    out: &mut [BTreeSet<(u32, &'static str, String)>],
) {
    // panic site (file, line) → (callee name, entry names reaching it)
    let mut sites: BTreeMap<(usize, u32), (String, BTreeSet<String>)> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.functions.iter().enumerate() {
            if f.is_test || !f.is_entry() {
                continue;
            }
            let entry_ref = FnRef { file: fi, func: gi };
            for edge in graph.callees(entry_ref) {
                if edge.callee.file != fi {
                    continue; // private same-file helpers only
                }
                let callee = &files[fi].functions[edge.callee.func];
                if callee.is_test || callee.is_entry() {
                    continue;
                }
                for ev in callee.linear_events() {
                    let Event::Call {
                        name,
                        recv,
                        is_macro,
                        line,
                    } = ev
                    else {
                        continue;
                    };
                    let panics = if *is_macro {
                        PANIC_MACROS.contains(&name.as_str())
                    } else {
                        (name == "unwrap" || name == "expect") && !recv.is_empty()
                    };
                    if panics {
                        sites
                            .entry((fi, *line))
                            .or_insert_with(|| (callee.name.clone(), BTreeSet::new()))
                            .1
                            .insert(f.name.clone());
                    }
                }
            }
        }
    }
    for ((fi, line), (callee, entries)) in sites {
        let first = entries.iter().next().cloned().unwrap_or_default();
        let reach = if entries.len() > 1 {
            format!("`{first}` (+{} more handlers)", entries.len() - 1)
        } else {
            format!("`{first}`")
        };
        out[fi].insert((
            line,
            "R8",
            format!(
                "panic site in `{callee}`, reachable one call deep from handler {reach} — \
                 Byzantine input must degrade to a dropped message, not a panic; return a \
                 typed error instead"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn findings(srcs: &[(&str, &str)]) -> Vec<(String, u32, &'static str, String)> {
        let files: Vec<FileModel> = srcs
            .iter()
            .map(|(p, s)| {
                let lexed = lex(s);
                let mask = vec![false; lexed.toks.len()];
                parse_file(p, &lexed, &mask)
            })
            .collect();
        let graph = CallGraph::build(&files);
        let mut out: Vec<BTreeSet<(u32, &'static str, String)>> =
            files.iter().map(|_| BTreeSet::new()).collect();
        run(&files, &graph, &mut out);
        let mut flat = Vec::new();
        for (fi, set) in out.into_iter().enumerate() {
            for (line, rule, msg) in set {
                flat.push((files[fi].path.clone(), line, rule, msg));
            }
        }
        flat
    }

    #[test]
    fn r6_flags_mutation_before_verify() {
        let src = "struct R { client_table: HashMap<ClientId, u64> }\n\
                   impl R {\n\
                   fn on_request(&mut self, m: Msg) {\n\
                   self.client_table.insert(m.c, 0);\n\
                   if !self.verify_request_auth(&m) { return; }\n\
                   } }";
        let f = findings(&[("bad.rs", src)]);
        assert_eq!(f.iter().filter(|x| x.2 == "R6").count(), 1);
        assert_eq!(f[0].1, 4);
    }

    #[test]
    fn r6_accepts_verify_guard_before_mutation() {
        let src = "struct R { client_table: HashMap<ClientId, u64> }\n\
                   impl R {\n\
                   fn on_request(&mut self, m: Msg) {\n\
                   if !self.verify_request_auth(&m) { return; }\n\
                   self.client_table.insert(m.c, 0);\n\
                   } }";
        assert!(findings(&[("good.rs", src)]).is_empty());
    }

    #[test]
    fn r6_callee_mutation_guarded_by_caller() {
        let base = "struct R { table: HashMap<ClientId, u64> }\n\
                    impl R {\n\
                    fn on_x(&mut self, m: Msg) {{ {GUARD} self.apply(m); }}\n\
                    fn apply(&mut self, m: Msg) {{ self.table.insert(m.c, 0); }}\n\
                    }";
        let good = base.replace("{GUARD}", "if !self.verify_body(&m) { return; }");
        let bad = base.replace("{GUARD}", "");
        assert!(findings(&[("good.rs", &good)]).is_empty());
        let f = findings(&[("bad.rs", &bad)]);
        assert_eq!(f.iter().filter(|x| x.2 == "R6").count(), 1);
        assert!(f[0].3.contains("apply"));
    }

    #[test]
    fn r6_replicated_marker_extends_universe() {
        let src = "struct R {\n\
                   // neo-lint: replicated(exec digests)\n\
                   digests: Vec<u64>,\n\
                   }\n\
                   impl R { fn on_x(&mut self) { self.digests.push(1); } }";
        let f = findings(&[("m.rs", src)]);
        assert_eq!(f.iter().filter(|x| x.2 == "R6").count(), 1);
    }

    #[test]
    fn r6_verified_fn_marker_suppresses() {
        let src = "struct R { table: HashMap<ClientId, u64> }\n\
                   impl R {\n\
                   // neo-lint: verified(cert authenticated by aom receive path)\n\
                   fn on_delivery(&mut self, c: Cert) { self.table.insert(c.k, 0); }\n\
                   }";
        assert!(findings(&[("v.rs", src)]).is_empty());
    }

    #[test]
    fn r6_aom_ingestion_counts_as_verify() {
        let src = "struct R { table: HashMap<ClientId, u64> }\n\
                   impl R {\n\
                   fn on_message(&mut self, pkt: Pkt) {\n\
                   self.aom.on_packet(pkt, &self.crypto);\n\
                   self.table.insert(k, 0);\n\
                   } }";
        assert!(findings(&[("aom.rs", src)]).is_empty());
    }

    #[test]
    fn r6_storage_routines_must_verify_first() {
        // `install_*` applies peer-served bytes: same bar as a handler.
        let bad = "struct R { client_table: BTreeMap<ClientId, u64> }\n\
                   impl R {\n\
                   fn install_checkpoint(&mut self, cp: Cp) {\n\
                   self.client_table.insert(cp.c, 0);\n\
                   } }";
        let f = findings(&[("st.rs", bad)]);
        assert_eq!(f.iter().filter(|x| x.2 == "R6").count(), 1);
        assert!(f[0].3.contains("storage routine"));
        let good = "struct R { client_table: BTreeMap<ClientId, u64> }\n\
                    impl R {\n\
                    fn install_checkpoint(&mut self, cp: Cp) {\n\
                    if !self.verify_checkpoint(&cp) { return; }\n\
                    self.client_table.insert(cp.c, 0);\n\
                    } }";
        assert!(findings(&[("ok.rs", good)]).is_empty());
    }

    #[test]
    fn r6_verified_marker_covers_own_wal_replay() {
        // Replaying the replica's own checksummed WAL carries a marker
        // instead of a verify call — the input never crossed trust.
        let src = "struct R { slots: BTreeMap<SlotNum, u64> }\n\
                   impl R {\n\
                   // neo-lint: verified(own WAL, checksummed by neo-store framing)\n\
                   fn replay_wal_records(&mut self, s: SlotNum) { self.slots.insert(s, 0); }\n\
                   }";
        assert!(findings(&[("wal.rs", src)]).is_empty());
    }

    #[test]
    fn r7_raw_verify_needs_charge() {
        let bad = "impl R { fn verify_cert(&self, c: &Cert) -> bool {\n\
                   self.seq_vk.verify(&input, &c.sig).is_ok()\n\
                   } }";
        let f = findings(&[("raw.rs", bad)]);
        assert_eq!(f.iter().filter(|x| x.2 == "R7").count(), 1);
        let good = "impl R { fn verify_cert(&self, c: &Cert, crypto: &NodeCrypto) -> bool {\n\
                    crypto.meter().charge_parallel(self.costs.ecdsa_verify);\n\
                    self.seq_vk.verify(&input, &c.sig).is_ok()\n\
                    } }";
        assert!(findings(&[("ok.rs", good)]).is_empty());
    }

    #[test]
    fn r7_nodecrypto_facade_is_exempt() {
        let src = "impl R { fn check(&self, m: &[u8], s: &Sig) -> bool {\n\
                   self.crypto.verify(p, m, s).is_ok()\n\
                   } }";
        assert!(findings(&[("facade.rs", src)]).is_empty());
    }

    #[test]
    fn r7_verify_jobs_are_facade_routed() {
        // `VerifyJob::verify(crypto, ..)` / pooled task work charges
        // inside the façade it is handed — not a raw primitive.
        let src = "impl Stage { fn run(&mut self, job: &mut VerifyJob) {\n\
                   job.verify(&self.crypto, self.parallel);\n\
                   } }";
        assert!(findings(&[("stage.rs", src)]).is_empty());
        // ...but a raw verifying-key verify next to the pool still needs
        // a charge.
        let raw = "impl Stage { fn drain(&mut self, m: &[u8], s: &Sig) -> bool {\n\
                   self.seq_vk.verify(m, s).is_ok()\n\
                   } }";
        assert_eq!(
            findings(&[("stage.rs", raw)])
                .iter()
                .filter(|x| x.2 == "R7")
                .count(),
            1
        );
    }

    #[test]
    fn r7_below_meter_files_are_exempt() {
        let src = "impl Key { fn check(&self, m: &[u8], t: &Tag) -> bool {\n\
                   self.key.verify(m, t).is_ok()\n\
                   } }";
        assert!(findings(&[("crates/crypto/src/mac.rs", src)]).is_empty());
        assert_eq!(findings(&[("crates/aom/src/receiver.rs", src)]).len(), 1);
    }

    #[test]
    fn r8_panic_one_call_deep() {
        let src = "impl R {\n\
                   fn on_msg(&mut self, b: &[u8]) { self.apply(b); }\n\
                   fn apply(&mut self, b: &[u8]) { let m = decode(b).unwrap(); }\n\
                   }";
        let f = findings(&[("p.rs", src)]);
        assert_eq!(f.iter().filter(|x| x.2 == "R8").count(), 1);
        assert_eq!(f[0].1, 3);
        assert!(f[0].3.contains("apply") && f[0].3.contains("on_msg"));
    }

    #[test]
    fn r8_free_fn_named_unwrap_is_not_a_panic() {
        let src = "fn on_msg(b: &[u8]) { helper(b); }\n\
                   fn helper(b: &[u8]) { let m = unwrap(b); }\n\
                   fn unwrap(b: &[u8]) -> u32 { 0 }";
        assert!(findings(&[("f.rs", src)]).is_empty());
    }

    #[test]
    fn r8_panic_macro_in_helper() {
        let src = "fn on_msg(b: &[u8]) { helper(b); }\n\
                   fn helper(b: &[u8]) { panic!(\"no\"); }";
        let f = findings(&[("m.rs", src)]);
        assert_eq!(f.iter().filter(|x| x.2 == "R8").count(), 1);
    }
}
