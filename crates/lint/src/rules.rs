//! Rule evaluation entry points.
//!
//! R1–R5 and R9 are token-stream rules (this module); R6–R8 are dataflow
//! rules over the item model + call graph (see [`crate::parser`],
//! [`crate::callgraph`], [`crate::dataflow`]). [`analyze_workspace`]
//! runs both passes over every file at once so the call graph spans
//! the workspace; [`analyze`] is the single-file convenience wrapper.
//!
//! R1 no-nondeterministic-iteration — iterating a `HashMap`/`HashSet`
//!    field of protocol state (iteration order differs across
//!    processes, a classic SMR divergence bug).
//! R2 no-panic-in-handlers — `unwrap`/`expect`/`panic!`/indexing/
//!    `unreachable!` reachable from `fn receive*`/`handle_*`/`on_*`
//!    message paths; Byzantine input must degrade to a dropped
//!    message, never a crash.
//! R3 no-wall-clock-or-ambient-rand — `SystemTime`, `Instant::now`,
//!    `thread_rng` etc. in sans-IO crates; time flows through
//!    `Context`.
//! R4 no-float-in-replicated-state — f32/f64 struct fields.
//! R5 no-unbounded-collection-growth — inserting into a map keyed by
//!    attacker-controlled data inside a handler — or a storage routine
//!    (`replay_*`/`install_*`: replayed logs and state-transfer
//!    payloads size recovery buffers) — with no bound.
//! R9 static-metric-names — `metrics.incr(..)`/`add`/`observe`/
//!    `set_gauge` called with a computed (non-literal) metric name.
//!    Dynamic names mint unbounded time series — every scrape family
//!    must be a static literal; variance belongs in bounded labels.
//!
//! All rules honor `#[cfg(test)]`/`#[test]` regions (skipped) and
//! inline `// neo-lint: allow(rule, reason)` waivers, which suppress
//! findings on the waiver's own line and the line below it.

use crate::lexer::{lex, Tok, TokKind, Waiver};
use crate::report::Finding;
use std::collections::BTreeSet;

/// Rule ids and their short names, for `--help` and docs.
pub const RULES: &[(&str, &str)] = &[
    ("R1", "no-nondeterministic-iteration"),
    ("R2", "no-panic-in-handlers"),
    ("R3", "no-wall-clock-or-ambient-rand"),
    ("R4", "no-float-in-replicated-state"),
    ("R5", "no-unbounded-collection-growth"),
    ("R6", "verify-before-mutate"),
    ("R7", "verify-charges-meter"),
    ("R8", "interprocedural-panic-reach"),
    ("R9", "static-metric-names"),
];

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "values",
    "values_mut",
    "into_values",
    "keys",
    "into_keys",
    "drain",
];

const GROW_METHODS: &[&str] = &["insert", "entry"];

/// Key types whose domain is fixed by the replica set / local runtime,
/// so maps keyed by them cannot be grown by an attacker.
const BOUNDED_KEYS: &[&str] = &["ReplicaId", "TimerId", "GroupId"];

/// Key types an attacker can mint fresh values of at will.
const UNBOUNDED_KEYS: &[&str] = &[
    "ClientId",
    "RequestId",
    "SlotNum",
    "SeqNum",
    "EpochNum",
    "ViewId",
    "Digest",
    "u64",
    "u32",
    "usize",
    "String",
    "Vec",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented", "assert"];

/// Metric-registry methods whose first argument names the series.
/// `incr` is distinctive enough to check in its one-argument form;
/// `add`/`observe`/`set_gauge` are common method names, so they are
/// only treated as registry calls in their `(name, value)` arity —
/// single-argument `Histogram::observe(v)` style calls stay exempt.
const METRIC_METHODS: &[&str] = &["incr", "add", "observe", "set_gauge"];

#[derive(Clone, Copy, PartialEq, Eq)]
enum Container {
    Hash,
    Btree,
}

struct MapField {
    name: String,
    container: Container,
    key_ty: String,
}

/// Lint one file's source. `rel` is the path recorded in findings
/// (repo-relative, forward slashes). The call graph is limited to the
/// file itself; use [`analyze_workspace`] for cross-file resolution.
pub fn analyze(rel: &str, src: &str) -> Vec<Finding> {
    analyze_workspace(&[(rel.to_string(), src.to_string())])
}

/// Lint a set of files as one workspace: token rules (R1–R5, R9) per file,
/// then the item model + call graph + dataflow rules (R6–R8) across
/// all of them. Waivers apply to both passes identically.
pub fn analyze_workspace(files: &[(String, String)]) -> Vec<Finding> {
    let mut raw: Vec<BTreeSet<(u32, &'static str, String)>> = Vec::with_capacity(files.len());
    let mut waivers = Vec::with_capacity(files.len());
    let mut models = Vec::with_capacity(files.len());
    for (rel, src) in files {
        let lexed = lex(src);
        let toks = &lexed.toks;
        let (is_test, is_attr) = test_and_attr_masks(toks);

        let mut out: BTreeSet<(u32, &'static str, String)> = BTreeSet::new();
        let fields = collect_fields(toks, &is_test, &is_attr, &mut out);
        let handlers = fn_regions(toks, &is_test, is_handler_name);
        let storage = fn_regions(toks, &is_test, is_storage_name);
        rule_r1(toks, &is_test, &is_attr, &fields, &mut out);
        rule_r2(toks, &is_attr, &handlers, &mut out);
        rule_r3(toks, &is_test, &mut out);
        rule_r5(toks, &is_attr, &handlers, &fields, "handler", &mut out);
        rule_r5(
            toks,
            &is_attr,
            &storage,
            &fields,
            "storage routine",
            &mut out,
        );
        rule_r9(toks, &is_test, &is_attr, &mut out);
        raw.push(out);

        models.push(crate::parser::parse_file(rel, &lexed, &is_test));
        waivers.push(lexed.waivers);
    }

    let graph = crate::callgraph::CallGraph::build(&models);
    crate::dataflow::run(&models, &graph, &mut raw);

    let mut findings = Vec::new();
    for (fi, set) in raw.into_iter().enumerate() {
        let rel = &files[fi].0;
        for (line, rule, message) in set {
            if is_waived(&waivers[fi], line, rule) {
                continue;
            }
            findings.push(Finding {
                rule,
                file: rel.clone(),
                line,
                message,
            });
        }
    }
    findings
}

fn is_waived(waivers: &[Waiver], line: u32, rule: &str) -> bool {
    let id = rule.to_ascii_lowercase();
    waivers
        .iter()
        .any(|w| (w.rule == "*" || w.rule == id) && (w.line == line || w.line + 1 == line))
}

/// Compute, per token, whether it sits inside a `#[cfg(test)]`/`#[test]`
/// item (skipped by every rule) or inside any `#[...]` attribute
/// (skipped by the indexing check).
fn test_and_attr_masks(toks: &[Tok]) -> (Vec<bool>, Vec<bool>) {
    let mut test = vec![false; toks.len()];
    let mut attr = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        let start = i;
        let (end, has_test) = consume_attr(toks, i);
        for m in &mut attr[start..end] {
            *m = true;
        }
        i = end;
        if !has_test {
            continue;
        }
        // Mark the attribute, any stacked attributes, and the whole
        // following item (to the matching `}` of its first top-level
        // brace, or to `;` if the item has no body).
        for m in &mut test[start..end] {
            *m = true;
        }
        while i + 1 < toks.len() && toks[i].is_punct('#') && toks[i + 1].is_punct('[') {
            let s2 = i;
            let (e2, _) = consume_attr(toks, i);
            for k in s2..e2 {
                attr[k] = true;
                test[k] = true;
            }
            i = e2;
        }
        let body_start = i;
        let mut brace = 0i64;
        let mut j = i;
        while j < toks.len() {
            if toks[j].is_punct('{') {
                brace += 1;
            } else if toks[j].is_punct('}') {
                brace -= 1;
                if brace == 0 {
                    j += 1;
                    break;
                }
            } else if toks[j].is_punct(';') && brace == 0 {
                j += 1;
                break;
            }
            j += 1;
        }
        for m in &mut test[body_start..j] {
            *m = true;
        }
        i = j;
    }
    (test, attr)
}

/// Consume `#[ ... ]` starting at the `#`; returns (index past `]`,
/// whether the attribute mentions the ident `test`).
fn consume_attr(toks: &[Tok], i: usize) -> (usize, bool) {
    let mut depth = 1i64;
    let mut j = i + 2;
    let mut has_test = false;
    while j < toks.len() && depth > 0 {
        if toks[j].is_punct('[') {
            depth += 1;
        } else if toks[j].is_punct(']') {
            depth -= 1;
        } else if toks[j].is_ident("test") {
            has_test = true;
        }
        j += 1;
    }
    (j, has_test)
}

/// Scan struct bodies and `let` bindings for HashMap/HashSet/BTreeMap/
/// BTreeSet declarations (feeding R1/R5) and emit R4 findings for
/// float-typed struct fields.
fn collect_fields(
    toks: &[Tok],
    is_test: &[bool],
    is_attr: &[bool],
    out: &mut BTreeSet<(u32, &'static str, String)>,
) -> Vec<MapField> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if is_test[i] {
            i += 1;
            continue;
        }
        if toks[i].is_ident("struct") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
            i = scan_struct(toks, i + 2, &mut fields, out);
            continue;
        }
        if toks[i].is_ident("let") {
            i = scan_let(toks, i + 1, &mut fields);
            continue;
        }
        let _ = is_attr;
        i += 1;
    }
    fields
}

/// Parse a struct body starting after the struct's name; returns the
/// index to resume scanning from.
fn scan_struct(
    toks: &[Tok],
    mut i: usize,
    fields: &mut Vec<MapField>,
    out: &mut BTreeSet<(u32, &'static str, String)>,
) -> usize {
    // Skip generics / where clause up to `{`; `;` or `(` means a unit
    // or tuple struct — no named fields to track.
    let mut angle = 0i64;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            if i > 0 && toks[i - 1].is_punct('-') {
                // `->` in a where-clause Fn bound, not a generic close.
            } else if angle > 0 {
                angle -= 1;
            }
        } else if angle == 0 {
            if t.is_punct('{') {
                break;
            }
            if t.is_punct(';') || t.is_punct('(') {
                return i + 1;
            }
        }
        i += 1;
    }
    if i >= toks.len() {
        return i;
    }
    i += 1; // past `{`
    loop {
        // Skip field attributes.
        while i + 1 < toks.len() && toks[i].is_punct('#') && toks[i + 1].is_punct('[') {
            let (e, _) = consume_attr(toks, i);
            i = e;
        }
        if i >= toks.len() || toks[i].is_punct('}') {
            return i + 1;
        }
        if toks[i].is_ident("pub") {
            i += 1;
            if i < toks.len() && toks[i].is_punct('(') {
                i = skip_balanced(toks, i, '(', ')');
            }
        }
        if i >= toks.len() || toks[i].kind != TokKind::Ident {
            // Malformed / unexpected; bail out of this struct.
            return i + 1;
        }
        let fname = toks[i].text.clone();
        let fline = toks[i].line;
        i += 1;
        if i >= toks.len() || !toks[i].is_punct(':') {
            return i + 1;
        }
        i += 1;
        // Collect the type tokens up to the field-separating `,` or the
        // struct-closing `}`.
        let ty_start = i;
        let (mut angle, mut paren, mut bracket, mut brace) = (0i64, 0i64, 0i64, 0i64);
        while i < toks.len() {
            let t = &toks[i];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                if i > 0 && toks[i - 1].is_punct('-') {
                } else if angle > 0 {
                    angle -= 1;
                }
            } else if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct('[') {
                bracket += 1;
            } else if t.is_punct(']') {
                bracket -= 1;
            } else if t.is_punct('{') {
                brace += 1;
            } else if t.is_punct('}') {
                if brace == 0 {
                    break;
                }
                brace -= 1;
            } else if t.is_punct(',') && angle == 0 && paren == 0 && bracket == 0 && brace == 0 {
                break;
            }
            i += 1;
        }
        let ty = &toks[ty_start..i.min(toks.len())];
        record_type(&fname, fline, ty, fields, Some(out));
        if i < toks.len() && toks[i].is_punct(',') {
            i += 1;
            continue;
        }
        return i + 1; // at `}` (or EOF)
    }
}

/// Track `let [mut] name: HashMap<..> = ..` and
/// `let [mut] name = HashMap::new()` local bindings.
fn scan_let(toks: &[Tok], mut i: usize, fields: &mut Vec<MapField>) -> usize {
    if i < toks.len() && toks[i].is_ident("mut") {
        i += 1;
    }
    if i >= toks.len() || toks[i].kind != TokKind::Ident {
        return i;
    }
    let name = toks[i].text.clone();
    let line = toks[i].line;
    i += 1;
    if i < toks.len() && toks[i].is_punct(':') {
        let ty_start = i + 1;
        let mut j = ty_start;
        let mut angle = 0i64;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                if j > 0 && toks[j - 1].is_punct('-') {
                } else if angle > 0 {
                    angle -= 1;
                }
            } else if angle == 0 && (t.is_punct('=') || t.is_punct(';')) {
                break;
            }
            j += 1;
        }
        record_type(
            &name,
            line,
            &toks[ty_start..j.min(toks.len())],
            fields,
            None,
        );
        return j;
    }
    if i < toks.len() && toks[i].is_punct('=') {
        // Look a few tokens ahead for `HashMap::new()` and friends.
        let end = (i + 8).min(toks.len());
        for t in &toks[i..end] {
            if t.is_punct(';') {
                break;
            }
            if t.kind == TokKind::Ident {
                let c = match t.text.as_str() {
                    "HashMap" | "HashSet" => Some(Container::Hash),
                    "BTreeMap" | "BTreeSet" => Some(Container::Btree),
                    _ => None,
                };
                if let Some(container) = c {
                    fields.push(MapField {
                        name,
                        container,
                        key_ty: String::new(),
                    });
                    return end;
                }
            }
        }
    }
    i
}

/// Inspect a type token slice: record map/set declarations and emit R4
/// float findings (struct fields only — `out` is None for locals).
fn record_type(
    name: &str,
    line: u32,
    ty: &[Tok],
    fields: &mut Vec<MapField>,
    out: Option<&mut BTreeSet<(u32, &'static str, String)>>,
) {
    if let Some(out) = out {
        for t in ty {
            if t.is_ident("f32") || t.is_ident("f64") {
                out.insert((
                    line,
                    "R4",
                    format!(
                        "field `{name}` has float type `{}` in replicated state; floats are not \
                         portably deterministic across platforms — use fixed-point or integers",
                        t.text
                    ),
                ));
                break;
            }
        }
    }
    for (k, t) in ty.iter().enumerate() {
        let (container, is_map) = match t.text.as_str() {
            "HashMap" => (Container::Hash, true),
            "HashSet" => (Container::Hash, false),
            "BTreeMap" => (Container::Btree, true),
            "BTreeSet" => (Container::Btree, false),
            _ => continue,
        };
        if t.kind != TokKind::Ident {
            continue;
        }
        let key_ty = extract_key_type(&ty[k + 1..], is_map);
        fields.push(MapField {
            name: name.to_string(),
            container,
            key_ty,
        });
        return; // outermost container wins
    }
}

/// Given tokens starting at (hopefully) `<`, pull out the key type: up
/// to the `,` at angle depth 1 for maps, to the closing `>` for sets.
fn extract_key_type(ty: &[Tok], is_map: bool) -> String {
    let mut angle = 0i64;
    let mut parts = Vec::new();
    for (j, t) in ty.iter().enumerate() {
        if t.is_punct('<') {
            angle += 1;
            if angle == 1 {
                continue;
            }
        } else if t.is_punct('>') {
            if j > 0 && ty[j - 1].is_punct('-') {
            } else {
                angle -= 1;
                if angle == 0 {
                    break;
                }
            }
        } else if t.is_punct(',') && angle == 1 && is_map {
            break;
        }
        if angle >= 1 && t.kind == TokKind::Ident {
            parts.push(t.text.clone());
        }
        if angle == 0 && j > 0 {
            break; // never saw `<` where expected
        }
    }
    parts.join(" ")
}

/// Find the token ranges of function bodies whose name satisfies
/// `pred` — message handlers (`fn on_*`, `fn handle_*`, `fn receive*`)
/// or storage routines (`fn replay_*`, `fn install_*`).
fn fn_regions(
    toks: &[Tok],
    is_test: &[bool],
    pred: fn(&str) -> bool,
) -> Vec<(usize, usize, String)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if is_test[i] || !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokKind::Ident || !pred(&name_tok.text) {
            i += 2;
            continue;
        }
        // The first `{` after the signature opens the body (braces
        // cannot appear in the signature itself).
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct('{') {
            if toks[j].is_punct(';') {
                break; // trait method declaration, no body
            }
            j += 1;
        }
        if j >= toks.len() || !toks[j].is_punct('{') {
            i = j + 1;
            continue;
        }
        let end = skip_balanced(toks, j, '{', '}');
        regions.push((j, end, name_tok.text.clone()));
        i = end;
    }
    regions
}

fn is_handler_name(name: &str) -> bool {
    name.starts_with("on_") || name.starts_with("handle_") || name.starts_with("receive")
}

/// Storage routines: replay and state-transfer code paths whose input
/// (a replayed log, a peer-served snapshot) sizes recovery buffers, so
/// R5's growth-bound discipline applies there too (mirrors the R6
/// storage-entry vocabulary in [`crate::dataflow`]).
fn is_storage_name(name: &str) -> bool {
    name.starts_with("replay_") || name.starts_with("install_")
}

/// Skip a balanced `open ... close` region starting at the `open`
/// token; returns the index just past the matching close.
fn skip_balanced(toks: &[Tok], start: usize, open: char, close: char) -> usize {
    let mut depth = 0i64;
    let mut i = start;
    while i < toks.len() {
        if toks[i].is_punct(open) {
            depth += 1;
        } else if toks[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// R1: `field.iter()/values()/keys()/drain()/...` on a Hash container,
/// and `for .. in [&[mut]] field` loops.
fn rule_r1(
    toks: &[Tok],
    is_test: &[bool],
    is_attr: &[bool],
    fields: &[MapField],
    out: &mut BTreeSet<(u32, &'static str, String)>,
) {
    let hash_names: BTreeSet<&str> = fields
        .iter()
        .filter(|f| f.container == Container::Hash)
        .map(|f| f.name.as_str())
        .collect();
    if hash_names.is_empty() {
        return;
    }
    for k in 0..toks.len() {
        if is_test[k] || is_attr[k] {
            continue;
        }
        let t = &toks[k];
        // field . method (
        if t.kind == TokKind::Ident
            && hash_names.contains(t.text.as_str())
            && k + 3 < toks.len()
            && toks[k + 1].is_punct('.')
            && toks[k + 2].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[k + 2].text.as_str())
            && toks[k + 3].is_punct('(')
        {
            // Anchor at the field token: in a multi-line method chain
            // that is the expression-start line a waiver sits above.
            out.insert((
                t.line,
                "R1",
                format!(
                    "`{}.{}()` iterates a HashMap/HashSet — iteration order is nondeterministic \
                     across processes; use BTreeMap/BTreeSet or sort before use",
                    t.text,
                    toks[k + 2].text
                ),
            ));
        }
        // for .. in <expr ending in field> {
        if t.is_ident("for") {
            let mut j = k + 1;
            let mut found_in = None;
            while j < toks.len() && j < k + 40 {
                if toks[j].is_punct('{') || toks[j].is_punct(';') {
                    break;
                }
                if toks[j].is_ident("in") {
                    found_in = Some(j);
                    break;
                }
                j += 1;
            }
            let Some(in_idx) = found_in else { continue };
            let mut last_ident: Option<&Tok> = None;
            let mut j = in_idx + 1;
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                if toks[j].kind == TokKind::Ident {
                    last_ident = Some(&toks[j]);
                }
                if toks[j].is_punct('(') {
                    // Method call in the iterable — the `.method(`
                    // pattern above owns that case.
                    last_ident = None;
                    break;
                }
                j += 1;
            }
            if let Some(id) = last_ident {
                if hash_names.contains(id.text.as_str()) {
                    out.insert((
                        id.line,
                        "R1",
                        format!(
                            "`for .. in {}` iterates a HashMap/HashSet — iteration order is \
                             nondeterministic across processes; use BTreeMap/BTreeSet or sort \
                             before use",
                            id.text
                        ),
                    ));
                }
            }
        }
    }
}

/// R2: panics reachable from handler bodies.
fn rule_r2(
    toks: &[Tok],
    is_attr: &[bool],
    handlers: &[(usize, usize, String)],
    out: &mut BTreeSet<(u32, &'static str, String)>,
) {
    for (start, end, fname) in handlers {
        for k in *start..(*end).min(toks.len()) {
            if is_attr[k] {
                continue;
            }
            let t = &toks[k];
            if t.kind == TokKind::Ident
                && (t.text == "unwrap" || t.text == "expect")
                && k > 0
                && toks[k - 1].is_punct('.')
                && k + 1 < toks.len()
                && toks[k + 1].is_punct('(')
            {
                out.insert((
                    t.line,
                    "R2",
                    format!(
                        "`.{}()` in message handler `{}` — Byzantine input must degrade to a \
                         dropped message, not a panic; return a typed error instead",
                        t.text, fname
                    ),
                ));
            }
            if t.kind == TokKind::Ident
                && PANIC_MACROS.contains(&t.text.as_str())
                && k + 1 < toks.len()
                && toks[k + 1].is_punct('!')
            {
                out.insert((
                    t.line,
                    "R2",
                    format!(
                        "`{}!` in message handler `{}` — Byzantine input must degrade to a \
                         dropped message, not a panic",
                        t.text, fname
                    ),
                ));
            }
            // Indexing / slicing: `expr[`, where expr ends in an
            // identifier, `)`, or `]`. `#[attr]` and `m![..]` are
            // excluded because their previous token is `#`/`!`.
            if t.is_punct('[')
                && k > 0
                && (toks[k - 1].kind == TokKind::Ident
                    || toks[k - 1].is_punct(')')
                    || toks[k - 1].is_punct(']'))
            {
                out.insert((
                    t.line,
                    "R2",
                    format!(
                        "indexing/slicing in message handler `{}` can panic on out-of-range \
                         input; use `.get()` and drop the message on None",
                        fname
                    ),
                ));
            }
        }
    }
}

/// R3: ambient wall-clock / randomness in sans-IO code.
fn rule_r3(toks: &[Tok], is_test: &[bool], out: &mut BTreeSet<(u32, &'static str, String)>) {
    for k in 0..toks.len() {
        if is_test[k] || toks[k].kind != TokKind::Ident {
            continue;
        }
        let t = &toks[k];
        let path_now = |base: &str| -> bool {
            t.text == base
                && k + 3 < toks.len()
                && toks[k + 1].is_punct(':')
                && toks[k + 2].is_punct(':')
                && toks[k + 3].is_ident("now")
        };
        let msg = if t.text == "SystemTime" {
            Some("`SystemTime` in sans-IO code — wall-clock time must flow through `Context`")
        } else if path_now("Instant") {
            Some("`Instant::now()` in sans-IO code — time must flow through `Context`")
        } else if path_now("Utc") || path_now("Local") {
            Some("wall-clock `now()` in sans-IO code — time must flow through `Context`")
        } else if t.text == "thread_rng" || t.text == "from_entropy" {
            Some(
                "ambient randomness in sans-IO code — replicas must be deterministic; inject \
                 seeds through `Context`",
            )
        } else if t.text == "random"
            && k >= 2
            && toks[k - 1].is_punct(':')
            && toks[k - 2].is_punct(':')
            && k >= 3
            && toks[k - 3].is_ident("rand")
        {
            Some(
                "`rand::random()` in sans-IO code — replicas must be deterministic; inject seeds \
                 through `Context`",
            )
        } else {
            None
        };
        if let Some(m) = msg {
            out.insert((t.line, "R3", m.to_string()));
        }
    }
}

/// R5: growth of attacker-keyed maps inside handlers and storage
/// routines; `noun` names the region kind in the finding message.
fn rule_r5(
    toks: &[Tok],
    is_attr: &[bool],
    regions: &[(usize, usize, String)],
    fields: &[MapField],
    noun: &str,
    out: &mut BTreeSet<(u32, &'static str, String)>,
) {
    for (start, end, fname) in regions {
        for k in *start..(*end).min(toks.len()) {
            if is_attr[k] {
                continue;
            }
            let t = &toks[k];
            if t.kind != TokKind::Ident
                || k + 3 >= toks.len()
                || !toks[k + 1].is_punct('.')
                || toks[k + 2].kind != TokKind::Ident
                || !GROW_METHODS.contains(&toks[k + 2].text.as_str())
                || !toks[k + 3].is_punct('(')
            {
                continue;
            }
            let Some(f) = fields.iter().find(|f| f.name == t.text) else {
                continue;
            };
            if f.key_ty.is_empty() {
                continue;
            }
            let bounded = BOUNDED_KEYS
                .iter()
                .any(|b| f.key_ty.split(' ').any(|p| p == *b));
            if bounded {
                continue;
            }
            let unbounded = UNBOUNDED_KEYS
                .iter()
                .any(|u| f.key_ty.split(' ').any(|p| p == *u));
            if !unbounded {
                continue;
            }
            // Anchored at the field token (see R1).
            out.insert((
                t.line,
                "R5",
                format!(
                    "`{}.{}()` in {noun} `{}` grows a map keyed by attacker-influenced \
                     `{}` without a bound; cap, window, or evict",
                    t.text,
                    toks[k + 2].text,
                    fname,
                    f.key_ty
                ),
            ));
        }
    }
}

/// R9: metric-registry calls must name their series with a string
/// literal. A computed name (`&format!("x.{peer}")`, a variable, a
/// function call) mints a fresh time series per distinct value —
/// unbounded scrape cardinality — and defeats static grep-ability of
/// the metric namespace.
fn rule_r9(
    toks: &[Tok],
    is_test: &[bool],
    is_attr: &[bool],
    out: &mut BTreeSet<(u32, &'static str, String)>,
) {
    for k in 0..toks.len() {
        if is_test[k] || is_attr[k] {
            continue;
        }
        // `.method(` with a metric-registry method name.
        if !(toks[k].is_punct('.')
            && k + 2 < toks.len()
            && toks[k + 1].kind == TokKind::Ident
            && METRIC_METHODS.contains(&toks[k + 1].text.as_str())
            && toks[k + 2].is_punct('('))
        {
            continue;
        }
        let method = toks[k + 1].text.as_str();
        // Walk the argument list: first top-level token and top-level
        // comma count (arity).
        let mut depth = 0i64;
        let mut commas = 0usize;
        let mut first: Option<&Tok> = None;
        let mut j = k + 2;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth == 1 {
                if t.is_punct(',') {
                    commas += 1;
                } else if first.is_none() {
                    first = Some(t);
                }
            }
            j += 1;
        }
        let Some(first) = first else {
            continue; // no arguments — not a registry call
        };
        let arity = commas + 1;
        let registry_shape = match method {
            "incr" => arity == 1,
            _ => arity >= 2,
        };
        if !registry_shape {
            continue;
        }
        if first.kind == TokKind::Literal && first.text.starts_with('"') {
            continue;
        }
        out.insert((
            toks[k + 1].line,
            "R9",
            format!(
                "`.{method}(..)` with a computed metric name — dynamic names mint unbounded \
                 time series; use a static string literal (put variance in a bounded label)"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        analyze("test.rs", src)
    }

    #[test]
    fn r1_flags_hashmap_iteration() {
        let src = "struct S { m: HashMap<u64, u32> }\n\
                   impl S { fn go(&self) { for (k, v) in &self.m {} let _ = self.m.values(); } }";
        let f = lint(src);
        assert_eq!(f.iter().filter(|f| f.rule == "R1").count(), 2);
    }

    #[test]
    fn r1_ignores_btreemap() {
        let src = "struct S { m: BTreeMap<u64, u32> }\n\
                   impl S { fn go(&self) { for (k, v) in &self.m {} } }";
        assert!(lint(src).iter().all(|f| f.rule != "R1"));
    }

    #[test]
    fn r2_only_in_handlers() {
        let src = "fn on_msg(x: Option<u32>) { x.unwrap(); }\n\
                   fn helper(x: Option<u32>) { x.unwrap(); }";
        let f = lint(src);
        assert_eq!(f.iter().filter(|f| f.rule == "R2").count(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn r2_indexing_but_not_attrs_or_macros() {
        let src = "#[derive(Debug)]\nfn on_msg(b: &[u8]) { let x = b[0]; let v = vec![1]; }";
        let f = lint(src);
        assert_eq!(f.iter().filter(|f| f.rule == "R2").count(), 1);
    }

    #[test]
    fn r3_wall_clock() {
        let src = "fn f() { let t = std::time::Instant::now(); let s = SystemTime::now(); }";
        let f = lint(src);
        assert_eq!(f.iter().filter(|f| f.rule == "R3").count(), 2);
    }

    #[test]
    fn r4_float_fields() {
        let src = "struct State { score: f64, n: u32 }";
        let f = lint(src);
        assert_eq!(f.iter().filter(|f| f.rule == "R4").count(), 1);
    }

    #[test]
    fn r5_unbounded_growth_in_handler() {
        let src = "struct S { table: HashMap<ClientId, u64>, peers: HashMap<ReplicaId, u64> }\n\
                   impl S { fn on_req(&mut self, c: ClientId) { self.table.insert(c, 0); \
                   self.peers.insert(r, 0); } }";
        let f = lint(src);
        let r5: Vec<_> = f.iter().filter(|f| f.rule == "R5").collect();
        assert_eq!(r5.len(), 1);
        assert!(r5[0].message.contains("table"));
    }

    #[test]
    fn r5_storage_routines_are_in_scope() {
        // Replay/state-transfer input sizes recovery buffers — same
        // growth-bound bar as a handler. Other private helpers stay out
        // of scope.
        let src = "struct S { idx: BTreeMap<SlotNum, u64> }\n\
                   impl S { fn replay_suffix(&mut self, s: SlotNum) { self.idx.insert(s, 0); }\n\
                   fn rebuild(&mut self, s: SlotNum) { self.idx.insert(s, 0); } }";
        let f = lint(src);
        let r5: Vec<_> = f.iter().filter(|f| f.rule == "R5").collect();
        assert_eq!(r5.len(), 1);
        assert!(r5[0].message.contains("replay_suffix"));
        assert!(r5[0].message.contains("storage routine"));
    }

    #[test]
    fn r9_flags_computed_metric_names() {
        let src = "fn f(m: &Metrics, peer: &str, v: u64) {\n\
                   m.incr(&format!(\"send_failed.{peer}\"));\n\
                   m.observe(name_for(peer), v);\n\
                   m.incr(\"static.name\");\n\
                   m.observe(\"lat_ns\", v);\n\
                   }";
        let f = lint(src);
        let r9: Vec<_> = f.iter().filter(|f| f.rule == "R9").collect();
        assert_eq!(r9.len(), 2, "{f:#?}");
        assert_eq!(r9[0].line, 2);
        assert_eq!(r9[1].line, 3);
    }

    #[test]
    fn r9_spares_single_arg_observe_and_add() {
        // `Histogram::observe(v)` / `checked.add(x)` shapes are not
        // registry calls; only `incr` gates in one-argument form.
        let src = "fn f(h: &Histogram, v: u64) { h.observe(v); let _ = v.add(v); \
                   g.set_gauge(depth()); }";
        assert!(lint(src).iter().all(|f| f.rule != "R9"));
    }

    #[test]
    fn r9_respects_waivers_and_test_code() {
        let src = "// neo-lint: allow(R9, fixture)\nfn f(m: &M, n: String) { m.incr(&n); }\n\
                   #[cfg(test)]\nmod t { fn g(m: &M, n: String) { m.incr(&n); } }";
        assert!(lint(src).iter().all(|f| f.rule != "R9"));
    }

    #[test]
    fn cfg_test_regions_are_skipped() {
        let src = "#[cfg(test)]\nmod tests { fn on_x(v: Option<u32>) { v.unwrap(); } }\n\
                   fn on_y(v: Option<u32>) { v.unwrap(); }";
        let f = lint(src);
        assert_eq!(f.iter().filter(|f| f.rule == "R2").count(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn waivers_suppress_same_and_next_line() {
        let src = "// neo-lint: allow(R2, fixture)\nfn on_x(v: Option<u32>) { v.unwrap(); }";
        // waiver on line 1 covers line 2
        assert!(lint(src).is_empty());
        let src2 = "fn on_x(v: Option<u32>) { v.unwrap(); } // neo-lint: allow(*, demo)";
        assert!(lint(src2).is_empty());
    }
}
