//! Finding type, text/JSON rendering, and the baseline file format.
//!
//! The baseline is a plain TSV (`rule<TAB>file<TAB>count`) rather than
//! JSON so it can be read and written with zero dependencies and diffs
//! stay one-line-per-change in review. JSON is emitted (never parsed)
//! for machine consumers; emission is hand-rolled with full string
//! escaping.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Rule id (`R1`..`R5`).
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation with a suggested fix.
    pub message: String,
}

/// Render findings as `file:line: [rule] message` lines.
pub fn to_text(findings: &[Finding]) -> String {
    let mut s = String::new();
    for f in findings {
        let _ = writeln!(s, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    s
}

/// Render the machine-readable JSON report.
pub fn to_json(findings: &[Finding], new_findings: &[String], ok: bool) -> String {
    let mut s = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            f.rule,
            esc(&f.file),
            f.line,
            esc(&f.message)
        );
    }
    if !findings.is_empty() {
        s.push('\n');
        s.push_str("  ");
    }
    s.push_str("],\n  \"summary\": {");
    let mut per_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        *per_rule.entry(f.rule).or_insert(0) += 1;
    }
    for (i, (rule, n)) in per_rule.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{rule}\": {n}");
    }
    let _ = write!(s, "}},\n  \"total\": {},\n  \"new\": [", findings.len());
    for (i, v) in new_findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\n    \"{}\"", esc(v));
    }
    if !new_findings.is_empty() {
        s.push_str("\n  ");
    }
    let _ = write!(s, "],\n  \"ok\": {ok}\n}}\n");
    s
}

/// Render a minimal SARIF 2.1.0 log, the format GitHub code scanning
/// ingests to turn findings into PR annotations. `rules` is the
/// (id, name) table ([`crate::rules::RULES`]); every finding is
/// reported at `error` level — the baseline gate, not SARIF, decides
/// pass/fail.
pub fn to_sarif(findings: &[Finding], rules: &[(&str, &str)]) -> String {
    let mut s = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"neo-lint\",\n          \
         \"informationUri\": \"https://github.com/example/neobft-rs\",\n          \
         \"rules\": [",
    );
    for (i, (id, name)) in rules.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n            {{\"id\": \"{}\", \"name\": \"{}\", \
             \"shortDescription\": {{\"text\": \"{}\"}}}}",
            esc(id),
            esc(name),
            esc(name)
        );
    }
    if !rules.is_empty() {
        s.push_str("\n          ");
    }
    s.push_str("]\n        }\n      },\n      \"results\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \
             \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [\n            \
             {{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\", \
             \"uriBaseId\": \"%SRCROOT%\"}}, \"region\": {{\"startLine\": {}}}}}}}\n          ]\n        }}",
            f.rule,
            esc(&f.message),
            esc(&f.file),
            f.line
        );
    }
    if !findings.is_empty() {
        s.push_str("\n      ");
    }
    s.push_str("]\n    }\n  ]\n}\n");
    s
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Per-(rule, file) finding counts, the unit the baseline ratchets on.
pub fn count_by_rule_file(findings: &[Finding]) -> BTreeMap<(String, String), u32> {
    let mut m = BTreeMap::new();
    for f in findings {
        *m.entry((f.rule.to_string(), f.file.clone())).or_insert(0) += 1;
    }
    m
}

/// Serialize the baseline: sorted `rule<TAB>file<TAB>count` lines.
pub fn baseline_to_string(findings: &[Finding]) -> String {
    let mut s = String::from(
        "# neo-lint baseline: accepted finding counts per (rule, file).\n\
         # Regenerate with `cargo run -p neo-lint -- --write-baseline`.\n\
         # The gate fails when any (rule, file) pair exceeds its count here.\n",
    );
    for ((rule, file), n) in count_by_rule_file(findings) {
        let _ = writeln!(s, "{rule}\t{file}\t{n}");
    }
    s
}

/// Parse a baseline file; unparseable lines are ignored so a corrupted
/// baseline degrades to a stricter gate, not a crash.
pub fn parse_baseline(s: &str) -> BTreeMap<(String, String), u32> {
    let mut m = BTreeMap::new();
    for line in s.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split('\t');
        let (Some(rule), Some(file), Some(n)) = (it.next(), it.next(), it.next()) else {
            continue;
        };
        let Ok(n) = n.trim().parse::<u32>() else {
            continue;
        };
        m.insert((rule.to_string(), file.to_string()), n);
    }
    m
}

/// Compare findings against a baseline. Returns human-readable
/// violation strings for every (rule, file) pair whose count exceeds
/// its baselined allowance (missing pairs have allowance 0).
pub fn compare_to_baseline(
    findings: &[Finding],
    baseline: &BTreeMap<(String, String), u32>,
) -> Vec<String> {
    let mut violations = Vec::new();
    for ((rule, file), n) in count_by_rule_file(findings) {
        let allowed = baseline
            .get(&(rule.clone(), file.clone()))
            .copied()
            .unwrap_or(0);
        if n > allowed {
            violations.push(format!(
                "{rule} in {file}: {n} finding(s), baseline allows {allowed}"
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message: format!("msg \"quoted\" {line}"),
        }
    }

    #[test]
    fn baseline_roundtrip() {
        let findings = vec![f("R1", "a.rs", 1), f("R1", "a.rs", 2), f("R2", "b.rs", 3)];
        let s = baseline_to_string(&findings);
        let parsed = parse_baseline(&s);
        assert_eq!(parsed.get(&("R1".into(), "a.rs".into())), Some(&2));
        assert_eq!(parsed.get(&("R2".into(), "b.rs".into())), Some(&1));
    }

    #[test]
    fn compare_detects_growth_and_tolerates_shrink() {
        let baseline = parse_baseline("R1\ta.rs\t1\nR2\tb.rs\t5\n");
        let findings = vec![f("R1", "a.rs", 1), f("R1", "a.rs", 2), f("R2", "b.rs", 3)];
        let v = compare_to_baseline(&findings, &baseline);
        assert_eq!(v.len(), 1);
        assert!(v[0].starts_with("R1 in a.rs"));
    }

    #[test]
    fn sarif_has_rules_and_locations() {
        let findings = vec![f("R6", "crates/x/src/a.rs", 7)];
        let rules = [("R6", "verify-before-mutate")];
        let s = to_sarif(&findings, &rules);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"id\": \"R6\""));
        assert!(s.contains("\"ruleId\": \"R6\""));
        assert!(s.contains("\"uri\": \"crates/x/src/a.rs\""));
        assert!(s.contains("\"startLine\": 7"));
        assert!(s.contains("msg \\\"quoted\\\" 7"));
    }

    #[test]
    fn sarif_empty_findings_is_valid_shape() {
        let s = to_sarif(&[], &[("R1", "x")]);
        assert!(s.contains("\"results\": []"));
    }

    #[test]
    fn json_is_escaped() {
        let findings = vec![f("R1", "a.rs", 1)];
        let j = to_json(&findings, &[], true);
        assert!(j.contains("msg \\\"quoted\\\" 1"));
        assert!(j.contains("\"ok\": true"));
    }
}
