//! `neo-lint` CLI.
//!
//! ```text
//! neo-lint [--root DIR] [--format text|json|sarif] [--baseline FILE]
//!          [--write-baseline] [--no-baseline] [paths...]
//! ```
//!
//! With no paths, lints the default sans-IO scope under `--root`
//! (default: current directory). Explicit paths (files or directories)
//! override the scope — used by CI to prove the gate trips on a seeded
//! violation fixture.
//!
//! Exit codes: 0 = clean or fully baselined; 1 = findings beyond the
//! baseline; 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    root: PathBuf,
    format: Format,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    no_baseline: bool,
    paths: Vec<PathBuf>,
}

#[derive(PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

/// Write to stdout, ignoring a closed pipe (`neo-lint | head` must not
/// panic — R2 applies to us too).
fn emit(s: &str) {
    use std::io::Write;
    let _ = std::io::stdout().write_all(s.as_bytes());
}

fn usage() -> String {
    let mut s = String::from(
        "neo-lint: protocol-invariant static analysis for the NeoBFT workspace\n\n\
         usage: neo-lint [--root DIR] [--format text|json|sarif] [--baseline FILE]\n\
         \x20               [--write-baseline] [--no-baseline] [paths...]\n\nrules:\n",
    );
    for (id, name) in neo_lint::rules::RULES {
        s.push_str("  ");
        s.push_str(id);
        s.push(' ');
        s.push_str(name);
        s.push('\n');
    }
    s
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        format: Format::Text,
        baseline: None,
        write_baseline: false,
        no_baseline: false,
        paths: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a value")?);
            }
            "--format" => match args.next().as_deref() {
                Some("text") => opts.format = Format::Text,
                Some("json") => opts.format = Format::Json,
                Some("sarif") => opts.format = Format::Sarif,
                _ => return Err("--format must be `text`, `json`, or `sarif`".into()),
            },
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(
                    args.next().ok_or("--baseline needs a value")?,
                ));
            }
            "--write-baseline" => opts.write_baseline = true,
            "--no-baseline" => opts.no_baseline = true,
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            if e.is_empty() {
                emit(&usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let findings = if opts.paths.is_empty() {
        neo_lint::lint_default_scope(&opts.root)
    } else {
        neo_lint::lint_paths(&opts.root, &opts.paths)
    };
    let findings = match findings {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join("lint-baseline.tsv"));

    if opts.write_baseline {
        let s = neo_lint::report::baseline_to_string(&findings);
        if let Err(e) = std::fs::write(&baseline_path, s) {
            eprintln!("error: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "wrote baseline for {} finding(s) to {}",
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if opts.no_baseline {
        Default::default()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(s) => neo_lint::report::parse_baseline(&s),
            Err(_) => Default::default(), // no baseline file: everything is new
        }
    };
    let violations = neo_lint::report::compare_to_baseline(&findings, &baseline);
    let ok = violations.is_empty();

    match opts.format {
        Format::Text => {
            emit(&neo_lint::report::to_text(&findings));
            if ok {
                eprintln!(
                    "neo-lint: {} finding(s), all within baseline",
                    findings.len()
                );
            } else {
                eprintln!("neo-lint: findings beyond baseline:");
                for v in &violations {
                    eprintln!("  {v}");
                }
            }
        }
        Format::Json => {
            emit(&neo_lint::report::to_json(&findings, &violations, ok));
        }
        Format::Sarif => {
            emit(&neo_lint::report::to_sarif(
                &findings,
                neo_lint::rules::RULES,
            ));
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
