//! `neo-lint` — protocol-invariant static analysis for the NeoBFT
//! workspace.
//!
//! NeoBFT's correctness rests on every replica processing the
//! aom-ordered stream deterministically and surviving arbitrary
//! Byzantine input without crashing. This crate checks those
//! invariants mechanically over the sans-IO protocol crates; see
//! [`rules`] for the rule set and DESIGN.md §10 for the rationale.
//!
//! Deliberately zero-dependency: the build environment for this repo
//! cannot assume a crates.io mirror, so parsing is a hand-rolled token
//! stream ([`lexer`]) rather than `syn`, and reports are emitted with
//! hand-rolled JSON ([`report`]).

pub mod callgraph;
pub mod dataflow;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;

pub use report::Finding;

use std::io;
use std::path::{Path, PathBuf};

/// Directories linted by default, relative to the workspace root: the
/// sans-IO protocol crates. `sim`/`net`/`bench` are runtime crates and
/// legitimately touch wall clocks and unordered collections.
pub const DEFAULT_SCOPE: &[&str] = &[
    "crates/app/src",
    "crates/aom/src",
    "crates/baselines/src",
    "crates/crypto/src",
    "crates/neobft/src",
    "crates/wire/src",
];

/// Recursively collect `.rs` files under `path` (or `path` itself if it
/// is a file), sorted for deterministic report and baseline output.
pub fn collect_rs_files(path: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    collect_into(path, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect_into(path: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let meta = std::fs::metadata(path)?;
    if meta.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(path)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            let name = entry.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name == ".git" {
                continue;
            }
            collect_into(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Lint every `.rs` file under each of `paths` (files or directories,
/// absolute or relative to `root`). Findings carry root-relative paths
/// with forward slashes; results are sorted by (file, line, rule).
pub fn lint_paths(root: &Path, paths: &[PathBuf]) -> io::Result<Vec<Finding>> {
    // Load everything first: the R6–R8 dataflow pass builds one call
    // graph spanning every linted file.
    let mut sources: Vec<(String, String)> = Vec::new();
    for p in paths {
        let abs = if p.is_absolute() {
            p.clone()
        } else {
            root.join(p)
        };
        for file in collect_rs_files(&abs)? {
            let src = std::fs::read_to_string(&file)?;
            let rel = rel_path(root, &file);
            if !sources.iter().any(|(r, _)| *r == rel) {
                sources.push((rel, src));
            }
        }
    }
    let mut findings = rules::analyze_workspace(&sources);
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(findings)
}

/// Lint the default sans-IO scope under `root`, skipping scope entries
/// that do not exist (so the linter still runs on partial checkouts).
pub fn lint_default_scope(root: &Path) -> io::Result<Vec<Finding>> {
    let paths: Vec<PathBuf> = DEFAULT_SCOPE
        .iter()
        .map(PathBuf::from)
        .filter(|p| root.join(p).exists())
        .collect();
    lint_paths(root, &paths)
}

/// Root-relative display path with forward slashes.
fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let s = rel.to_string_lossy();
    if std::path::MAIN_SEPARATOR == '/' {
        s.into_owned()
    } else {
        s.replace(std::path::MAIN_SEPARATOR, "/")
    }
}
