//! A minimal Rust tokenizer for `neo-lint`.
//!
//! The container this repo builds in cannot assume `syn` (or any
//! crates.io dependency) is available, so the rule engine runs over a
//! hand-rolled token stream instead of a full AST. The lexer only needs
//! to be precise about the things that would otherwise produce false
//! findings: comments (line, nested block), string literals (plain,
//! raw, byte), char literals vs. lifetimes, and line numbers. Operators
//! are emitted one character at a time — the rules match multi-char
//! sequences (`::`) as consecutive punct tokens.

/// Token kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Any literal (number, string, char, byte string).
    Literal,
    /// A lifetime (`'a`) — kept distinct so char-literal handling stays
    /// honest.
    Lifetime,
    /// Single punctuation character.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Token text (single char for punct).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True if this token is the punct character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// An inline waiver: `// neo-lint: allow(R2, reason...)`.
///
/// A waiver on line N suppresses matching findings on line N and N+1,
/// so it works both as a trailing comment and as a comment on the line
/// above the flagged expression.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// 1-based line of the comment.
    pub line: u32,
    /// Rule id, lowercase (`r1`..`r5`), or `*` for all rules.
    pub rule: String,
    /// Free-text justification (required, may be empty only for `*`).
    pub reason: String,
}

/// An inline annotation marker consumed by the dataflow rules.
///
/// Two kinds exist:
/// - `// neo-lint: replicated(note)` before a struct field adds that
///   field to the replicated-state universe R6 protects, even when the
///   field's type alone would not qualify it.
/// - `// neo-lint: verified(note)` before a `fn` declares the
///   function's inputs pre-authenticated (e.g. an `OrderingCert` that
///   only exists because `AomReceiver::on_packet` verified it), so R6
///   treats the function body as verify-dominated from its first
///   statement.
///
/// Like waivers, a marker on line N applies to an item starting on
/// line N or N+1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Marker {
    /// 1-based line of the comment.
    pub line: u32,
    /// `"replicated"` or `"verified"`.
    pub kind: String,
    /// Free-text justification.
    pub note: String,
}

/// Lexer output: tokens plus the waivers and markers found in comments.
pub struct Lexed {
    /// The token stream.
    pub toks: Vec<Tok>,
    /// Inline waivers.
    pub waivers: Vec<Waiver>,
    /// Inline `replicated`/`verified` markers.
    pub markers: Vec<Marker>,
}

/// Tokenize `src`. Never fails: unrecognized bytes are skipped so the
/// linter degrades gracefully on exotic input instead of crashing.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut toks = Vec::new();
    let mut waivers = Vec::new();
    let mut markers = Vec::new();

    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also doc comments).
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            let start = i;
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            parse_waivers(&text, line, &mut waivers);
            parse_markers(&text, line, &mut markers);
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            let text: String = b[start..i.min(b.len())].iter().collect();
            parse_waivers(&text, start_line, &mut waivers);
            parse_markers(&text, start_line, &mut markers);
            continue;
        }
        // Raw / byte string prefixes: r", r#", br", b", br#".
        if (c == 'r' || c == 'b') && is_string_prefix(&b, i) {
            let (ni, nl) = consume_prefixed_string(&b, i, line);
            toks.push(Tok {
                kind: TokKind::Literal,
                text: String::from("\"…\""),
                line,
            });
            i = ni;
            line = nl;
            continue;
        }
        // Plain string.
        if c == '"' {
            let (ni, nl) = consume_string(&b, i, line);
            toks.push(Tok {
                kind: TokKind::Literal,
                text: String::from("\"…\""),
                line,
            });
            i = ni;
            line = nl;
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            if is_lifetime(&b, i) {
                let start = i;
                i += 1;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[start..i].iter().collect(),
                    line,
                });
            } else {
                // Char literal: consume to the closing quote, honoring
                // escapes.
                i += 1;
                while i < b.len() {
                    if b[i] == '\\' {
                        i += 2;
                    } else if b[i] == '\'' {
                        i += 1;
                        break;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::from("'…'"),
                    line,
                });
            }
            continue;
        }
        // Number literal (handles `1..n`: the dot is consumed only when
        // followed by a digit).
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < b.len() {
                let d = b[i];
                if d.is_alphanumeric() || d == '_' {
                    i += 1;
                } else if d == '.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                    i += 2;
                } else {
                    break;
                }
            }
            toks.push(Tok {
                kind: TokKind::Literal,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Single punctuation char.
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    Lexed {
        toks,
        waivers,
        markers,
    }
}

/// True if position `i` (at 'r' or 'b') starts a raw/byte string.
fn is_string_prefix(b: &[char], i: usize) -> bool {
    let c = b[i];
    let next = |k: usize| b.get(i + k).copied().unwrap_or('\0');
    match c {
        'r' => next(1) == '"' || (next(1) == '#' && (next(2) == '#' || next(2) == '"')),
        'b' => next(1) == '"' || (next(1) == 'r' && (next(2) == '"' || next(2) == '#')),
        _ => false,
    }
}

/// Consume `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` starting at `i`.
/// Returns (next index, next line).
fn consume_prefixed_string(b: &[char], mut i: usize, mut line: u32) -> (usize, u32) {
    let mut raw = false;
    if b[i] == 'b' {
        i += 1;
    }
    if i < b.len() && b[i] == 'r' {
        raw = true;
        i += 1;
    }
    let mut hashes = 0usize;
    while raw && i < b.len() && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i < b.len() && b[i] == '"' {
        i += 1;
    }
    if raw {
        // Scan for `"` followed by `hashes` hash marks; no escapes.
        while i < b.len() {
            if b[i] == '\n' {
                line += 1;
                i += 1;
                continue;
            }
            if b[i] == '"' {
                let mut k = 0usize;
                while k < hashes && b.get(i + 1 + k) == Some(&'#') {
                    k += 1;
                }
                if k == hashes {
                    return (i + 1 + hashes, line);
                }
            }
            i += 1;
        }
        (i, line)
    } else {
        consume_string_body(b, i, line)
    }
}

/// Consume a plain string starting at the opening quote at `i`.
fn consume_string(b: &[char], i: usize, line: u32) -> (usize, u32) {
    consume_string_body(b, i + 1, line)
}

/// Consume a (non-raw) string body starting just after the opening
/// quote; handles `\"` and `\\` escapes and multi-line strings.
fn consume_string_body(b: &[char], mut i: usize, mut line: u32) -> (usize, u32) {
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '"' => return (i + 1, line),
            '\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, line)
}

/// Distinguish `'a` (lifetime) from `'a'` (char literal) at a `'`.
fn is_lifetime(b: &[char], i: usize) -> bool {
    let first = match b.get(i + 1) {
        Some(c) => *c,
        None => return false,
    };
    if !(first.is_alphabetic() || first == '_') {
        return false; // '\n', '0', etc.: char literal
    }
    // `'x'` is a char literal; `'x` followed by anything else is a
    // lifetime. `'static` has more letters before any quote.
    b.get(i + 2) != Some(&'\'')
}

/// Extract `neo-lint: allow(rule, reason)` waivers from comment text.
fn parse_waivers(comment: &str, first_line: u32, out: &mut Vec<Waiver>) {
    for (off, text) in comment.lines().enumerate() {
        let line = first_line + off as u32;
        let mut rest = text;
        while let Some(pos) = rest.find("neo-lint:") {
            rest = &rest[pos + "neo-lint:".len()..];
            let trimmed = rest.trim_start();
            let Some(args) = trimmed.strip_prefix("allow(") else {
                continue;
            };
            let Some(end) = args.find(')') else {
                continue;
            };
            let inner = &args[..end];
            let (rule, reason) = match inner.split_once(',') {
                Some((r, why)) => (r.trim(), why.trim()),
                None => (inner.trim(), ""),
            };
            if !rule.is_empty() {
                out.push(Waiver {
                    line,
                    rule: rule.to_ascii_lowercase(),
                    reason: reason.to_string(),
                });
            }
            rest = &args[end..];
        }
    }
}

/// Extract `neo-lint: replicated(note)` / `neo-lint: verified(note)`
/// markers from comment text. The parenthesized note is optional.
fn parse_markers(comment: &str, first_line: u32, out: &mut Vec<Marker>) {
    for (off, text) in comment.lines().enumerate() {
        let line = first_line + off as u32;
        let mut rest = text;
        while let Some(pos) = rest.find("neo-lint:") {
            rest = &rest[pos + "neo-lint:".len()..];
            let trimmed = rest.trim_start();
            let Some(kind) = ["replicated", "verified"]
                .iter()
                .find(|k| trimmed.starts_with(**k))
            else {
                continue;
            };
            let after = &trimmed[kind.len()..];
            let note = after
                .strip_prefix('(')
                .and_then(|a| a.find(')').map(|end| a[..end].trim().to_string()))
                .unwrap_or_default();
            out.push(Marker {
                line,
                kind: kind.to_string(),
                note,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_and_puncts() {
        let l = lex("fn foo(x: u32) { x.iter() }");
        let idents: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["fn", "foo", "x", "u32", "x", "iter"]);
    }

    #[test]
    fn comments_and_strings_are_skipped() {
        let l = lex("let s = \"iter() // not code\"; // .unwrap()\n/* .expect( */ let t = 1;");
        assert!(!l.toks.iter().any(|t| t.is_ident("iter")));
        assert!(!l.toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(!l.toks.iter().any(|t| t.is_ident("expect")));
        assert!(l.toks.iter().any(|t| t.is_ident("t")));
    }

    #[test]
    fn raw_strings_and_chars() {
        let l = lex("let r = r#\"has \"quotes\" and .unwrap()\"#; let c = '\\''; let lt: &'static str = \"x\";");
        assert!(!l.toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Lifetime));
    }

    #[test]
    fn line_numbers_advance() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn waivers_parse() {
        let l = lex("x(); // neo-lint: allow(R2, bounded by quorum math)\n// neo-lint: allow(*, test scaffolding)\n");
        assert_eq!(l.waivers.len(), 2);
        assert_eq!(l.waivers[0].rule, "r2");
        assert_eq!(l.waivers[0].reason, "bounded by quorum math");
        assert_eq!(l.waivers[0].line, 1);
        assert_eq!(l.waivers[1].rule, "*");
    }

    #[test]
    fn markers_parse() {
        let l = lex("// neo-lint: replicated(exec-digest fold)\nfield: u64,\n\
             // neo-lint: verified(cert checked by aom on_packet)\nfn on_x() {}\n\
             // neo-lint: replicated\nother: u32,\n");
        assert_eq!(l.markers.len(), 3);
        assert_eq!(l.markers[0].kind, "replicated");
        assert_eq!(l.markers[0].note, "exec-digest fold");
        assert_eq!(l.markers[0].line, 1);
        assert_eq!(l.markers[1].kind, "verified");
        assert_eq!(l.markers[1].line, 3);
        assert_eq!(l.markers[2].kind, "replicated");
        assert_eq!(l.markers[2].note, "");
    }

    #[test]
    fn numeric_ranges_do_not_eat_dots() {
        let l = lex("for i in 0..n {}");
        assert!(l.toks.iter().any(|t| t.text == "0"));
        assert!(l.toks.iter().any(|t| t.is_ident("n")));
        let dots = l.toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }
}
