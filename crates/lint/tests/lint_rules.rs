//! Fixture-based tests: one intentionally-bad fixture per rule under
//! `tests/fixtures/`, asserting exact finding counts, plus a fixture
//! proving waivers suppress.

use std::path::{Path, PathBuf};

fn fixture(name: &str) -> Vec<neo_lint::Finding> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    neo_lint::lint_paths(&dir, &[PathBuf::from(name)]).expect("fixture lints")
}

fn count(findings: &[neo_lint::Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn r1_fixture_has_exact_findings() {
    let f = fixture("r1_hashmap_iter.rs");
    assert_eq!(count(&f, "R1"), 3, "findings: {f:#?}");
    assert_eq!(f.len(), 3, "no other rules should fire: {f:#?}");
}

#[test]
fn r2_fixture_has_exact_findings() {
    let f = fixture("r2_panics.rs");
    assert_eq!(count(&f, "R2"), 5, "findings: {f:#?}");
    assert_eq!(f.len(), 5, "no other rules should fire: {f:#?}");
    // The non-handler `helper` unwrap must not be flagged.
    assert!(f.iter().all(|x| x.message.contains("on_message")));
}

#[test]
fn r3_fixture_has_exact_findings() {
    let f = fixture("r3_wall_clock.rs");
    assert_eq!(count(&f, "R3"), 3, "findings: {f:#?}");
    assert_eq!(f.len(), 3, "no other rules should fire: {f:#?}");
}

#[test]
fn r4_fixture_has_exact_findings() {
    let f = fixture("r4_floats.rs");
    assert_eq!(count(&f, "R4"), 2, "findings: {f:#?}");
    assert_eq!(f.len(), 2, "no other rules should fire: {f:#?}");
}

#[test]
fn r5_fixture_has_exact_findings() {
    let f = fixture("r5_unbounded.rs");
    assert_eq!(count(&f, "R5"), 2, "findings: {f:#?}");
    assert_eq!(f.len(), 2, "no other rules should fire: {f:#?}");
    // The ReplicaId-keyed map must not be flagged.
    assert!(f.iter().all(|x| !x.message.contains("per_replica")));
}

#[test]
fn waivers_suppress_all_findings() {
    let f = fixture("waived.rs");
    assert!(f.is_empty(), "waived fixture must be clean: {f:#?}");
}

#[test]
fn findings_are_sorted_and_stable() {
    let f = fixture("r2_panics.rs");
    let mut sorted = f.clone();
    sorted
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    assert_eq!(f, sorted);
    // Deterministic across runs — the report is baseline input.
    assert_eq!(f, fixture("r2_panics.rs"));
}
