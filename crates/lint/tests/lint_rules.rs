//! Fixture-based tests: one intentionally-bad fixture per rule under
//! `tests/fixtures/`, asserting exact finding counts, plus a fixture
//! proving waivers suppress.

use std::path::{Path, PathBuf};

fn fixture(name: &str) -> Vec<neo_lint::Finding> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    neo_lint::lint_paths(&dir, &[PathBuf::from(name)]).expect("fixture lints")
}

fn count(findings: &[neo_lint::Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn r1_fixture_has_exact_findings() {
    let f = fixture("r1_hashmap_iter.rs");
    assert_eq!(count(&f, "R1"), 3, "findings: {f:#?}");
    assert_eq!(f.len(), 3, "no other rules should fire: {f:#?}");
}

#[test]
fn r2_fixture_has_exact_findings() {
    let f = fixture("r2_panics.rs");
    assert_eq!(count(&f, "R2"), 5, "findings: {f:#?}");
    assert_eq!(f.len(), 5, "no other rules should fire: {f:#?}");
    // The non-handler `helper` unwrap must not be flagged.
    assert!(f.iter().all(|x| x.message.contains("on_message")));
}

#[test]
fn r3_fixture_has_exact_findings() {
    let f = fixture("r3_wall_clock.rs");
    assert_eq!(count(&f, "R3"), 3, "findings: {f:#?}");
    assert_eq!(f.len(), 3, "no other rules should fire: {f:#?}");
}

#[test]
fn r4_fixture_has_exact_findings() {
    let f = fixture("r4_floats.rs");
    assert_eq!(count(&f, "R4"), 2, "findings: {f:#?}");
    assert_eq!(f.len(), 2, "no other rules should fire: {f:#?}");
}

#[test]
fn r5_fixture_has_exact_findings() {
    let f = fixture("r5_unbounded.rs");
    assert_eq!(count(&f, "R5"), 2, "findings: {f:#?}");
    assert_eq!(f.len(), 2, "no other rules should fire: {f:#?}");
    // The ReplicaId-keyed map must not be flagged.
    assert!(f.iter().all(|x| !x.message.contains("per_replica")));
}

#[test]
fn r6_fixture_has_exact_findings() {
    let f = fixture("r6_verify_order.rs");
    assert_eq!(count(&f, "R6"), 3, "findings: {f:#?}");
    // The unbounded client_table inserts legitimately trip R5 too; no
    // other rules may fire.
    assert_eq!(count(&f, "R5"), 2, "findings: {f:#?}");
    assert_eq!(f.len(), 5, "no other rules should fire: {f:#?}");
    // The acceptance case: a handler that mutates client_table before
    // verify_request_auth is flagged...
    assert!(f.iter().any(|x| x.rule == "R6"
        && x.message.contains("client_table")
        && x.message.contains("on_request")));
    // ...while the verify-first twin, the verified-marker handler, and
    // the waived write all pass.
    for clean in [
        "on_request_checked",
        "on_sync_checked",
        "on_delivery",
        "on_local_restore",
    ] {
        assert!(
            f.iter()
                .all(|x| x.rule != "R6" || !x.message.contains(clean)),
            "{clean} must be clean: {f:#?}"
        );
    }
    // The interprocedural edge names both the handler and the helper.
    assert!(f.iter().any(|x| x.rule == "R6"
        && x.message.contains("on_sync")
        && x.message.contains("apply_sync")));
}

#[test]
fn storage_recovery_fixture_has_exact_findings() {
    let f = fixture("storage_recovery.rs");
    assert_eq!(count(&f, "R6"), 2, "findings: {f:#?}");
    assert_eq!(count(&f, "R5"), 2, "findings: {f:#?}");
    assert_eq!(f.len(), 4, "no other rules should fire: {f:#?}");
    // Both bad storage routines are flagged under both rules and named
    // as storage routines, not handlers.
    for flagged in ["install_checkpoint", "replay_suffix"] {
        for rule in ["R5", "R6"] {
            assert!(
                f.iter()
                    .any(|x| x.rule == rule && x.message.contains(flagged)),
                "expected {rule} in {flagged}: {f:#?}"
            );
        }
    }
    assert!(f.iter().all(|x| x.message.contains("storage routine")));
    // The verify-first twin and the marker-verified WAL replay are clean.
    for clean in ["install_checkpoint_checked", "replay_wal"] {
        assert!(
            f.iter().all(|x| !x.message.contains(clean)),
            "{clean} must be clean: {f:#?}"
        );
    }
}

#[test]
fn r7_fixture_has_exact_findings() {
    let f = fixture("r7_meter.rs");
    assert_eq!(count(&f, "R7"), 2, "findings: {f:#?}");
    assert_eq!(f.len(), 2, "no other rules should fire: {f:#?}");
    // Metered, façade-routed, and waived verifies are all clean.
    for clean in [
        "verify_cert_metered",
        "verify_entry_metered",
        "verify_via_facade",
        "verify_unmetered_shim",
    ] {
        assert!(
            f.iter().all(|x| !x.message.contains(clean)),
            "{clean} must be clean: {f:#?}"
        );
    }
}

#[test]
fn r7_pool_fixture_has_exact_findings() {
    let f = fixture("r7_pool.rs");
    assert_eq!(count(&f, "R7"), 2, "findings: {f:#?}");
    assert_eq!(f.len(), 2, "no other rules should fire: {f:#?}");
    // The VerifyPool/verify_batch vocabulary is façade-routed: job
    // verifies, batch verifies, and dispatch plumbing are all clean.
    for clean in [
        "run_packet_job",
        "run_confirm_jobs",
        "submit_work",
        "absorb_metered",
    ] {
        assert!(
            f.iter().all(|x| !x.message.contains(clean)),
            "{clean} must be clean: {f:#?}"
        );
    }
    // Raw primitives beside the pool are still in scope.
    for flagged in ["absorb_completed", "precheck_entry"] {
        assert!(
            f.iter()
                .any(|x| x.rule == "R7" && x.message.contains(flagged)),
            "expected R7 in {flagged}: {f:#?}"
        );
    }
}

#[test]
fn r8_fixture_has_exact_findings() {
    let f = fixture("r8_helper_panics.rs");
    assert_eq!(count(&f, "R8"), 3, "findings: {f:#?}");
    // The direct `.unwrap()` in a handler body stays R2's territory.
    assert_eq!(count(&f, "R2"), 1, "findings: {f:#?}");
    assert_eq!(f.len(), 4, "no other rules should fire: {f:#?}");
    // Each R8 is anchored at the helper's panic site and names the handler.
    for (helper, handler) in [
        ("decode_strict", "on_message"),
        ("apply", "on_message"),
        ("commit", "on_commit"),
    ] {
        assert!(
            f.iter().any(|x| x.rule == "R8"
                && x.message.contains(helper)
                && x.message.contains(handler)),
            "expected R8 for {helper} via {handler}: {f:#?}"
        );
    }
    // Uncalled helpers, site-waived panics, and the free decoder named
    // `unwrap` must not be flagged.
    for clean in ["offline_tool", "checked_slot", "on_raw"] {
        assert!(
            f.iter().all(|x| !x.message.contains(clean)),
            "{clean} must be clean: {f:#?}"
        );
    }
}

#[test]
fn r9_fixture_has_exact_findings() {
    let f = fixture("r9_metrics.rs");
    assert_eq!(count(&f, "R9"), 4, "findings: {f:#?}");
    assert_eq!(f.len(), 4, "no other rules should fire: {f:#?}");
    // Every finding sits in `record`; the static names, the
    // single-argument value calls, and the waived site are all clean.
    assert!(f.iter().all(|x| (18..=22).contains(&x.line)), "{f:#?}");
}

#[test]
fn waivers_suppress_all_findings() {
    let f = fixture("waived.rs");
    assert!(f.is_empty(), "waived fixture must be clean: {f:#?}");
}

#[test]
fn findings_are_sorted_and_stable() {
    let f = fixture("r2_panics.rs");
    let mut sorted = f.clone();
    sorted
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    assert_eq!(f, sorted);
    // Deterministic across runs — the report is baseline input.
    assert_eq!(f, fixture("r2_panics.rs"));
}
