//! Workspace self-run: lint the real protocol crates and hold the
//! result to the checked-in baseline — and hold `neobft`/`aom` handler
//! paths to a stricter bar (no R1/R2 at all, baselined or not), plus a
//! ratchet that keeps `Vec<u8>` out of `Context` send signatures now
//! that payloads are shared `neo_wire::Payload` buffers.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn baseline_matches_workspace() {
    let root = workspace_root();
    let findings = neo_lint::lint_default_scope(&root).expect("lint workspace");
    let baseline_src =
        std::fs::read_to_string(root.join("lint-baseline.tsv")).expect("lint-baseline.tsv exists");
    let baseline = neo_lint::report::parse_baseline(&baseline_src);
    let counts = neo_lint::report::count_by_rule_file(&findings);
    assert_eq!(
        counts, baseline,
        "workspace findings drifted from lint-baseline.tsv; if the change is intentional, \
         regenerate with `cargo run -p neo-lint -- --write-baseline` and review the diff"
    );
}

#[test]
fn neobft_and_aom_handler_paths_have_no_r1_r2() {
    let root = workspace_root();
    let findings = neo_lint::lint_paths(
        &root,
        &[
            PathBuf::from("crates/neobft/src"),
            PathBuf::from("crates/aom/src"),
        ],
    )
    .expect("lint neobft + aom");
    let bad: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "R1" || f.rule == "R2")
        .collect();
    assert!(
        bad.is_empty(),
        "R1/R2 findings in neobft/aom must be fixed, not baselined: {bad:#?}"
    );
}

#[test]
fn workspace_is_clean_under_dataflow_rules() {
    // Ratchet: R6/R7/R8 hold at zero across the whole default scope —
    // the verify-then-apply boundary, meter accounting, and
    // handler-reachable panic freedom are invariants, not baselines.
    let root = workspace_root();
    let findings = neo_lint::lint_default_scope(&root).expect("lint workspace");
    let bad: Vec<_> = findings
        .iter()
        .filter(|f| matches!(f.rule, "R6" | "R7" | "R8"))
        .collect();
    assert!(
        bad.is_empty(),
        "R6/R7/R8 findings must be fixed (or carry a reviewed waiver/marker), \
         never baselined: {bad:#?}"
    );
}

#[test]
fn workspace_metric_names_are_static() {
    // Ratchet: R9 holds at zero across the default scope — every metric
    // family in protocol code is a static literal, so the Prometheus
    // namespace is grep-able and scrape cardinality stays bounded.
    let root = workspace_root();
    let findings = neo_lint::lint_default_scope(&root).expect("lint workspace");
    let bad: Vec<_> = findings.iter().filter(|f| f.rule == "R9").collect();
    assert!(
        bad.is_empty(),
        "computed metric names must be fixed (or carry a reviewed waiver), never baselined: \
         {bad:#?}"
    );
}

/// Extract the signature text (whitespace stripped, up to the body `{`
/// or declaration `;`) of every `fn send` / `fn send_after` /
/// `fn broadcast` in `src`.
fn send_signatures(src: &str) -> Vec<(&'static str, String)> {
    let mut out = Vec::new();
    for target in ["send", "send_after", "broadcast"] {
        let needle = format!("fn {target}");
        let mut from = 0;
        while let Some(pos) = src[from..].find(&needle) {
            let abs = from + pos;
            from = abs + needle.len();
            // Only the fn itself: `fn send` inside `fn send_after` is
            // filtered because the next char is not `(`.
            let rest = &src[from..];
            if rest.starts_with('(') {
                let end = rest.find(['{', ';']).unwrap_or(rest.len());
                let sig: String = rest[..end].split_whitespace().collect::<Vec<_>>().join("");
                out.push((target, sig));
            }
        }
    }
    out
}

#[test]
fn context_send_signatures_take_payload_not_vec_u8() {
    // Ratchet: every send-shaped signature in the workspace — the
    // `Context` trait, its implementations, and test probes — must carry
    // `Payload`, never `Vec<u8>`. A `Vec<u8>` send reintroduces a
    // per-destination byte copy on broadcast fan-out.
    let root = workspace_root();
    let files = neo_lint::collect_rs_files(&root).expect("collect workspace sources");
    let mut violations = Vec::new();
    for file in &files {
        if file.components().any(|c| c.as_os_str() == "fixtures") {
            continue; // lint fixtures are deliberately bad code
        }
        let src = std::fs::read_to_string(file).expect("read source file");
        for (name, sig) in send_signatures(&src) {
            if sig.contains("Vec<u8>") {
                violations.push(format!("{}: fn {name}: {sig}", file.display()));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "`Vec<u8>` crept back into Context send signatures: {violations:#?}"
    );
}
