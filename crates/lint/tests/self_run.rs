//! Workspace self-run: lint the real protocol crates and hold the
//! result to the checked-in baseline — and hold `neobft`/`aom` handler
//! paths to a stricter bar (no R1/R2 at all, baselined or not).

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn baseline_matches_workspace() {
    let root = workspace_root();
    let findings = neo_lint::lint_default_scope(&root).expect("lint workspace");
    let baseline_src =
        std::fs::read_to_string(root.join("lint-baseline.tsv")).expect("lint-baseline.tsv exists");
    let baseline = neo_lint::report::parse_baseline(&baseline_src);
    let counts = neo_lint::report::count_by_rule_file(&findings);
    assert_eq!(
        counts, baseline,
        "workspace findings drifted from lint-baseline.tsv; if the change is intentional, \
         regenerate with `cargo run -p neo-lint -- --write-baseline` and review the diff"
    );
}

#[test]
fn neobft_and_aom_handler_paths_have_no_r1_r2() {
    let root = workspace_root();
    let findings = neo_lint::lint_paths(
        &root,
        &[
            PathBuf::from("crates/neobft/src"),
            PathBuf::from("crates/aom/src"),
        ],
    )
    .expect("lint neobft + aom");
    let bad: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "R1" || f.rule == "R2")
        .collect();
    assert!(
        bad.is_empty(),
        "R1/R2 findings in neobft/aom must be fixed, not baselined: {bad:#?}"
    );
}
