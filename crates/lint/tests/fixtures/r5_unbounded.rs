// Fixture for R5 no-unbounded-collection-growth. Expected: exactly 2
// R5 findings (client-keyed HashMap insert, client-keyed BTreeMap
// entry — determinism does not make growth bounded); the
// ReplicaId-keyed insert is clean because the replica set is fixed.
// This file is lint input, never compiled.
use std::collections::{BTreeMap, HashMap};

struct Replica {
    client_table: HashMap<u64, u32>,
    buffered: BTreeMap<u64, u32>,
    per_replica: HashMap<ReplicaId, u32>,
}

impl Replica {
    fn on_request(&mut self, from: u64, r: ReplicaId) {
        // Verified up front so this fixture exercises R5 only, not R6.
        if !self.verify_request_auth(from) {
            return;
        }
        self.client_table.insert(from, 0);
        self.buffered.entry(from).or_insert(0);
        self.per_replica.insert(r, 0);
    }
}
