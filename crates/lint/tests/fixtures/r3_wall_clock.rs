// Fixture for R3 no-wall-clock-or-ambient-rand. Expected: exactly 3 R3
// findings (Instant::now, SystemTime, thread_rng). This file is lint
// input, never compiled.
fn timestamp() -> u64 {
    let _t = std::time::Instant::now();
    let _s = std::time::SystemTime::now();
    0
}

fn jitter() -> u32 {
    let _rng = thread_rng();
    0
}
