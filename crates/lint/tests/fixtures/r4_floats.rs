// Fixture for R4 no-float-in-replicated-state. Expected: exactly 2 R4
// findings (the f64 and f32 fields); the integer field is clean. This
// file is lint input, never compiled.
struct ReplicatedState {
    balance: f64,
    ratio: f32,
    count: u64,
}
