// Fixture for R7 verify-charges-meter. Expected: exactly 2 R7 findings —
// (1) a raw `.verify(` on a stored verifying key with no meter charge,
// (2) a raw `verify_vector_entry` call with no meter charge.
// The mirrored good paths (charge first, NodeCrypto façade, waiver) are
// clean. This file is lint input, never compiled.

struct Receiver {
    seq_vk: VerifyingKey,
    crypto: NodeCrypto,
    costs: CostModel,
}

impl Receiver {
    // BAD (1): raw signature verify, meter never charged — the sim
    // benchmark under-counts this replica's crypto time.
    fn verify_cert_free(&mut self, input: &[u8], cert: &Cert) -> bool {
        self.seq_vk.verify(input, &cert.sig).is_ok()
    }

    // BAD (2): raw vector-MAC entry verify, same problem.
    fn verify_entry_free(&mut self, pkt: &Packet) -> bool {
        verify_vector_entry(&self.key, pkt)
    }

    // GOOD: serial lane charged before the raw verify.
    fn verify_cert_metered(&mut self, input: &[u8], cert: &Cert) -> bool {
        self.crypto.meter().charge_serial(self.costs.ecdsa_verify_ns);
        self.seq_vk.verify(input, &cert.sig).is_ok()
    }

    // GOOD: parallel lane charged before the raw verify.
    fn verify_entry_metered(&mut self, pkt: &Packet) -> bool {
        self.crypto.meter().charge_parallel(self.costs.halfsiphash_ns);
        verify_vector_entry(&self.key, pkt)
    }

    // GOOD: the NodeCrypto façade charges internally.
    fn verify_via_facade(&self, m: &[u8], s: &Sig) -> bool {
        self.crypto.verify(Principal::Sequencer, m, s).is_ok()
    }

    // GOOD: waived (e.g. a test-support shim kept out of benchmarks).
    fn verify_unmetered_shim(&self, input: &[u8], cert: &Cert) -> bool {
        // neo-lint: allow(R7, debug shim, never run under the benchmark harness)
        self.seq_vk.verify(input, &cert.sig).is_ok()
    }
}
