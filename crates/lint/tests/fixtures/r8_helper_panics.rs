// Fixture for R8 interprocedural-panic-reach. Expected: exactly 3 R8
// findings, all anchored in helpers one call below a handler —
// (1) `decode_strict` unwraps, reached from `on_message`,
// (2) `apply` hits a panic! macro, reached from `on_message`,
// (3) `commit` expects, reached from `on_commit`.
// Clean paths: the free function named `unwrap` (a decoder, not
// Option::unwrap), a helper never called from a handler, a panic waived
// at its site, and R2 still owning panics directly in handler bodies
// (the direct `.unwrap()` in `on_direct` is R2, not R8). This file is
// lint input, never compiled.

struct Node {
    log: Vec<u64>,
}

impl Node {
    fn on_message(&mut self, bytes: &[u8]) {
        let m = self.decode_strict(bytes);
        self.apply(m);
    }

    fn on_commit(&mut self, seq: u64) {
        self.commit(seq);
    }

    // Direct panics in handler bodies stay R2's territory (1 R2 here).
    fn on_direct(&mut self, v: Option<u32>) {
        let _ = v.unwrap();
    }

    // BAD (1): Byzantine bytes reach this unwrap one call deep.
    fn decode_strict(&self, bytes: &[u8]) -> u64 {
        decode(bytes).unwrap()
    }

    // BAD (2): macro panic in a handler-reachable helper.
    fn apply(&mut self, m: u64) {
        if m == 0 {
            panic!("zero message");
        }
        self.log.push(m);
    }

    // BAD (3): expect in a handler-reachable helper.
    fn commit(&mut self, seq: u64) {
        let v = self.log.get(seq as usize).expect("dense log");
        let _ = v;
    }

    // CLEAN: never called from any handler; R8 does not reach it.
    fn offline_tool(&self, v: Option<u32>) -> u32 {
        v.unwrap()
    }

    // CLEAN: waived at the panic site (the helper is the anchor).
    fn checked_slot(&self, seq: u64) -> u64 {
        // neo-lint: allow(R8, slot existence is established by the caller's bounds check)
        *self.log.get(seq as usize).unwrap()
    }
}

impl Node {
    fn on_waived(&mut self, seq: u64) {
        let _ = self.checked_slot(seq);
    }
}

// CLEAN: a free decoder *named* unwrap is not Option::unwrap.
fn on_raw(bytes: &[u8]) {
    let _ = unwrap(bytes);
}

fn unwrap(bytes: &[u8]) -> u64 {
    bytes.len() as u64
}
