// Fixture for R6 verify-before-mutate. Expected: exactly 3 R6 findings —
// (1) `on_request` writes `client_table` before `verify_request_auth`,
// (2) `on_sync` calls `apply_sync` (which writes `log_digests`) without a
//     verify in either function,
// (3) `on_gossip` writes the `replicated`-marked `exec_digests` field with
//     no verify at all.
// The mirrored good handlers (verify first / verified marker / callee
// guarded at the call site / waived write) are clean. This file is lint
// input, never compiled.
use std::collections::{BTreeMap, HashMap};

struct Replica {
    client_table: HashMap<ClientId, u64>,
    log_digests: BTreeMap<SeqNum, Digest>,
    // neo-lint: replicated(exec digest fold, compared across replicas)
    exec_digests: Vec<u64>,
}

impl Replica {
    // BAD (1): mutation precedes authentication.
    fn on_request(&mut self, m: Request) {
        self.client_table.insert(m.client, 0);
        if !self.verify_request_auth(&m) {
            return;
        }
    }

    // GOOD: the early-return guard dominates the write.
    fn on_request_checked(&mut self, m: Request) {
        if !self.verify_request_auth(&m) {
            return;
        }
        self.client_table.insert(m.client, 0);
    }

    // BAD (2): helper mutates one call deep, nobody verifies.
    fn on_sync(&mut self, m: SyncMsg) {
        self.apply_sync(m);
    }

    // GOOD: same helper, but the handler authenticates before the call.
    fn on_sync_checked(&mut self, m: SyncMsg) {
        self.verify_sig(&m)?;
        self.apply_sync(m);
    }

    fn apply_sync(&mut self, m: SyncMsg) {
        self.log_digests.insert(m.seq, m.digest);
    }

    // BAD (3): marker-annotated replicated state written unverified.
    fn on_gossip(&mut self, d: u64) {
        self.exec_digests.push(d);
    }

    // GOOD: the verified marker declares inputs pre-authenticated
    // (e.g. certs straight from the aom receiver's delivery queue).
    // neo-lint: verified(delivered certs were authenticated upstream)
    fn on_delivery(&mut self, d: u64) {
        self.exec_digests.push(d);
    }

    // GOOD: an explicit waiver suppresses the finding at the write.
    fn on_local_restore(&mut self, d: u64) {
        // neo-lint: allow(R6, restoring from the replica's own checkpoint)
        self.exec_digests.push(d);
    }
}
