// Fixture for the R5/R6 storage vocabulary: replay and state-transfer
// routines (`replay_*` / `install_*`) ingest bytes from disk or a peer
// and are held to the same verify-before-mutate and bounded-growth bar
// as message handlers. Expected: exactly 2 R6 and 2 R5 findings —
//   R6 (1) `install_checkpoint` writes `client_table` with no verify,
//   R6 (2) `replay_suffix` writes `slot_index` before `verify_entry_cert`,
//   R5 (1) the same `client_table` insert grows a ClientId-keyed map,
//   R5 (2) the same `slot_index` insert grows a SlotNum-keyed map.
// The twins — certificate-checked install with a waived bounded rebuild,
// and marker-verified replay of the replica's own WAL — are clean. This
// file is lint input, never compiled.
use std::collections::BTreeMap;

struct Replica {
    client_table: BTreeMap<ClientId, u64>,
    slot_index: BTreeMap<SlotNum, Digest>,
}

impl Replica {
    // BAD: installs a peer-served snapshot without checking its
    // certificate first.
    fn install_checkpoint(&mut self, cp: Checkpoint) {
        self.client_table.insert(cp.client, 0);
    }

    // GOOD twin: the 2f+1 certificate check dominates the write, and
    // the rebuild is bounded by the certified cluster state.
    fn install_checkpoint_checked(&mut self, cp: Checkpoint) {
        if !self.verify_checkpoint_cert(&cp) {
            return;
        }
        // neo-lint: allow(R5, rebuilt from a 2f+1-certified checkpoint — bounded by certified cluster state)
        self.client_table.insert(cp.client, 0);
    }

    // BAD: applies a peer-served log suffix entry before its
    // certificate check.
    fn replay_suffix(&mut self, e: Entry) {
        self.slot_index.insert(e.slot, e.digest);
        if !self.verify_entry_cert(&e) {
            return;
        }
    }

    // GOOD twin: the replica's own checksummed WAL never crossed a
    // trust boundary, so a marker (with its why) replaces the verify.
    // neo-lint: verified(records come from this replica's own WAL — written by itself pre-crash, checksummed by neo-store framing)
    fn replay_wal(&mut self, e: Entry) {
        // neo-lint: allow(R5, replay is bounded by the on-disk log the replica wrote itself)
        self.slot_index.insert(e.slot, e.digest);
    }
}
