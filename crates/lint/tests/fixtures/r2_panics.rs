// Fixture for R2 no-panic-in-handlers. Expected: exactly 5 R2 findings
// inside `on_message` (unwrap, expect, indexing, panic!, unreachable!);
// the same unwrap in the non-handler `helper` is clean. This file is
// lint input, never compiled.
struct Node;

impl Node {
    fn on_message(&mut self, data: Option<u32>, buf: &[u8]) {
        let v = data.unwrap();
        let w = data.expect("present");
        if buf[0] == 0 {
            panic!("zero tag");
        }
        let _ = (v, w);
        unreachable!();
    }

    fn helper(&self, data: Option<u32>) -> u32 {
        data.unwrap()
    }
}
