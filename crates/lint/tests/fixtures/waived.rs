// Fixture for waiver handling. Every violation below carries a
// `neo-lint: allow(...)` waiver (same line or the line above), so the
// expected finding count is exactly 0. This file is lint input, never
// compiled.
use std::collections::HashMap;

struct S {
    m: HashMap<u64, u32>,
}

impl S {
    fn on_tick(&mut self, v: Option<u32>) {
        // neo-lint: allow(R2, fixture demonstrates waivers)
        let _x = v.unwrap();
        let _n = self.m.values().count(); // neo-lint: allow(R1, fixture demonstrates waivers)
        // neo-lint: allow(R5, fixture demonstrates waivers) neo-lint: allow(R6, fixture demonstrates waivers)
        self.m.insert(0, 0);
    }
}
