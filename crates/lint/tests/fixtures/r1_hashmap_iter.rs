// Fixture for R1 no-nondeterministic-iteration. Expected: exactly 3 R1
// findings (two HashMap/HashSet loops, one `.values()` call); the
// BTreeMap loop is clean. This file is lint input, never compiled.
use std::collections::{HashMap, HashSet};

struct State {
    slots: HashMap<u64, u32>,
    peers: HashSet<u32>,
    ordered: std::collections::BTreeMap<u64, u32>,
}

impl State {
    fn scan(&self) -> u32 {
        let mut acc = 0;
        for (_k, v) in &self.slots {
            acc += v;
        }
        for p in self.peers.iter() {
            acc += p;
        }
        acc += self.slots.values().sum::<u32>();
        for (_k, v) in &self.ordered {
            acc += v;
        }
        acc
    }
}
