//! R9 fixture: computed metric names mint unbounded time series.

struct Metrics;

impl Metrics {
    fn incr(&self, _name: &str) {}
    fn add(&self, _name: &str, _v: u64) {}
    fn observe(&self, _name: &str, _v: u64) {}
    fn set_gauge(&self, _name: &str, _v: i64) {}
}

fn series_for(peer: &str) -> String {
    format!("runtime.send_failed.{peer}")
}

fn record(m: &Metrics, peer: &str, v: u64) {
    // Bad: per-peer family names — one fresh series per distinct peer.
    m.incr(&format!("runtime.send_failed.{peer}"));
    m.observe(&series_for(peer), v);
    let name = series_for(peer);
    m.add(&name, v);
    m.set_gauge(name.as_str(), v as i64);

    // Good: static names; variance goes into bounded labels or values.
    m.incr("runtime.send_failed");
    m.observe("runtime.handler_ns", v);
    m.add("runtime.retries", v);
    m.set_gauge("runtime.queue_depth", v as i64);
}

struct Histogram;

impl Histogram {
    fn observe(&self, _v: u64) {}
}

fn plain_value_calls(h: &Histogram, v: u64) {
    // Single-argument observe/add shapes are not registry calls.
    h.observe(v);
    let _ = v.checked_add(v);
}

fn waived(m: &Metrics, suffix: &str) {
    // neo-lint: allow(R9, cardinality bounded by the fixed role set)
    m.incr(&format!("runtime.role.{suffix}"));
}
