// Fixture for R7 verify-charges-meter, VerifyPool vocabulary.
// Expected: exactly 2 R7 findings — raw verifies smuggled in next to
// the pool plumbing without a meter charge. The pool vocabulary itself
// (`job.verify(crypto, ..)`, `crypto.verify_batch`, dispatch/absorb
// plumbing) is façade-routed and clean. This file is lint input, never
// compiled.

struct VerifyStage {
    pool: VerifyPool,
    reorder: ReorderBuffer,
    crypto: NodeCrypto,
    seq_vk: VerifyingKey,
    costs: CostModel,
}

impl VerifyStage {
    // GOOD: a verify job runs through the NodeCrypto façade handed to
    // it — every authenticator check inside charges the meter.
    fn run_packet_job(&mut self, job: &mut VerifyJob) {
        job.verify(&self.crypto, true);
    }

    // GOOD: batched replica-signature verification charges per item
    // inside the façade.
    fn run_confirm_jobs(&mut self, jobs: &mut [ConfirmJob]) {
        let items = collect_batch_items(jobs);
        let results = self.crypto.verify_batch(&items);
        for (job, res) in jobs.iter_mut().zip(results) {
            job.set_verified(res.is_ok());
        }
    }

    // GOOD: pool dispatch and in-order re-injection never touch raw
    // primitives.
    fn submit_work(&mut self, task: PoolVerifyTask) {
        let ticket = self.reorder.issue();
        self.pool.submit(ticket, Box::new(task));
    }

    // BAD (1): a raw signature verify on the drain path, no charge —
    // pooled work must still route through the façade.
    fn absorb_completed(&mut self, input: &[u8], sig: &Sig) -> bool {
        self.seq_vk.verify(input, sig).is_ok()
    }

    // BAD (2): raw vector-MAC entry verify smuggled in beside the
    // pool, same problem.
    fn precheck_entry(&mut self, pkt: &Packet) -> bool {
        verify_vector_entry(&self.key, pkt)
    }

    // GOOD: a charge-first raw verify stays allowed next to the pool.
    fn absorb_metered(&mut self, input: &[u8], sig: &Sig) -> bool {
        self.crypto.meter().charge_parallel(self.costs.ed25519_verify_ns);
        self.seq_vk.verify(input, sig).is_ok()
    }
}
