//! Property-based tests for the cryptographic building blocks.

use neo_crypto::{chain, sha256, Digest, HashChain, HmacKey, SignKeyPair};
use proptest::prelude::*;

proptest! {
    #[test]
    fn sha256_is_deterministic_and_sensitive(a in any::<Vec<u8>>(), b in any::<Vec<u8>>()) {
        prop_assert_eq!(sha256(&a), sha256(&a));
        if a != b {
            prop_assert_ne!(sha256(&a), sha256(&b));
        }
    }

    #[test]
    fn hash_chain_incremental_equals_fold(items in proptest::collection::vec(any::<Vec<u8>>(), 0..20)) {
        let mut hc = HashChain::new();
        for i in &items {
            hc.push(i);
        }
        let folded = items.iter().fold(Digest::ZERO, |acc, i| chain(acc, i));
        prop_assert_eq!(hc.head(), folded);
        prop_assert_eq!(hc.len(), items.len() as u64);
    }

    #[test]
    fn chain_is_prefix_sensitive(
        items in proptest::collection::vec(any::<Vec<u8>>(), 1..10),
        idx in any::<proptest::sample::Index>(),
        tweak in any::<u8>(),
    ) {
        let i = idx.index(items.len());
        let mut mutated = items.clone();
        mutated[i].push(tweak);
        let head = |v: &[Vec<u8>]| v.iter().fold(Digest::ZERO, |acc, x| chain(acc, x));
        prop_assert_ne!(head(&items), head(&mutated));
    }

    #[test]
    fn mac_verifies_iff_key_and_message_match(
        key_a in any::<[u8; 16]>(),
        key_b in any::<[u8; 16]>(),
        msg_a in any::<Vec<u8>>(),
        msg_b in any::<Vec<u8>>(),
    ) {
        let ka = HmacKey(key_a);
        let kb = HmacKey(key_b);
        let tag = ka.tag(&msg_a);
        prop_assert!(ka.verify(&msg_a, &tag).is_ok());
        if key_a != key_b {
            prop_assert!(kb.verify(&msg_a, &tag).is_err());
        }
        if msg_a != msg_b {
            prop_assert!(ka.verify(&msg_b, &tag).is_err());
        }
    }

    #[test]
    fn signatures_bind_message_and_signer(
        seed_a in any::<[u8; 32]>(),
        seed_b in any::<[u8; 32]>(),
        msg in any::<Vec<u8>>(),
        other in any::<Vec<u8>>(),
    ) {
        let a = SignKeyPair::from_seed(seed_a);
        let sig = a.sign(&msg);
        prop_assert!(a.verify_key().verify(&msg, &sig).is_ok());
        if msg != other {
            prop_assert!(a.verify_key().verify(&other, &sig).is_err());
        }
        if seed_a != seed_b {
            let b = SignKeyPair::from_seed(seed_b);
            prop_assert!(b.verify_key().verify(&msg, &sig).is_err());
        }
    }

    #[test]
    fn tampered_signatures_never_verify(
        seed in any::<[u8; 32]>(),
        msg in any::<Vec<u8>>(),
        flip_byte in 0usize..64,
        flip_bit in 0u8..8,
    ) {
        let kp = SignKeyPair::from_seed(seed);
        let mut sig = kp.sign(&msg);
        sig.0[flip_byte] ^= 1 << flip_bit;
        prop_assert!(kp.verify_key().verify(&msg, &sig).is_err());
    }
}
