//! Keyed MACs.
//!
//! The in-switch design (§4.3) computes HalfSipHash over
//! digest ‖ sequence-number with a per-receiver secret key. In software we
//! use full SipHash-2-4 (same construction family, 64-bit tag), which is
//! what the paper's own software sequencer uses for the EC2 evaluation.

use neo_wire::{HmacTag, HMAC_TAG_LEN};
use serde::{Deserialize, Serialize};
use siphasher::sip::SipHasher24;
use std::hash::Hasher;
use thiserror::Error;

/// MAC verification failure.
#[derive(Debug, Error, PartialEq, Eq)]
pub enum MacError {
    /// The tag did not verify under the expected key.
    #[error("MAC tag mismatch")]
    Mismatch,
    /// The HMAC vector does not have an entry for this receiver.
    #[error("HMAC vector has {got} entries, receiver index is {index}")]
    MissingEntry {
        /// Receiver's position in the group membership.
        index: usize,
        /// Entries actually present.
        got: usize,
    },
}

/// A 128-bit SipHash key shared between the sequencer and one receiver
/// (established via the key-exchange protocol run through the
/// configuration service, §4.3).
#[derive(Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HmacKey(pub [u8; 16]);

impl std::fmt::Debug for HmacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "HmacKey(..)")
    }
}

impl HmacKey {
    /// Compute the 64-bit SipHash-2-4 tag of `msg`.
    pub fn tag(&self, msg: &[u8]) -> HmacTag {
        let mut h = SipHasher24::new_with_key(&self.0);
        h.write(msg);
        let v = h.finish();
        let mut out = [0u8; HMAC_TAG_LEN];
        out.copy_from_slice(&v.to_le_bytes());
        out
    }

    /// Constant-shape verification of a tag.
    pub fn verify(&self, msg: &[u8], tag: &HmacTag) -> Result<(), MacError> {
        // Compare without early exit; tags are only 8 bytes so a branchless
        // fold is cheap and avoids a remote timing oracle.
        let expect = self.tag(msg);
        let mut diff = 0u8;
        for (a, b) in expect.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        if diff == 0 {
            Ok(())
        } else {
            Err(MacError::Mismatch)
        }
    }
}

/// Compute the full HMAC vector for a message: one tag per receiver key,
/// in membership order. This is what the switch's folded pipeline produces
/// (§4.3); in subgroups of four in hardware, all at once in software.
pub fn hmac_vector(keys: &[HmacKey], msg: &[u8]) -> Vec<HmacTag> {
    keys.iter().map(|k| k.tag(msg)).collect()
}

/// Verify one entry of an HMAC vector as receiver `index`.
pub fn verify_vector_entry(
    key: &HmacKey,
    index: usize,
    vector: &[HmacTag],
    msg: &[u8],
) -> Result<(), MacError> {
    let tag = vector.get(index).ok_or(MacError::MissingEntry {
        index,
        got: vector.len(),
    })?;
    key.verify(msg, tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: u8) -> HmacKey {
        HmacKey([b; 16])
    }

    #[test]
    fn tag_roundtrip() {
        let k = key(1);
        let t = k.tag(b"message");
        assert!(k.verify(b"message", &t).is_ok());
    }

    #[test]
    fn tag_rejects_wrong_message() {
        let k = key(1);
        let t = k.tag(b"message");
        assert_eq!(k.verify(b"other", &t), Err(MacError::Mismatch));
    }

    #[test]
    fn tag_rejects_wrong_key() {
        let t = key(1).tag(b"message");
        assert_eq!(key(2).verify(b"message", &t), Err(MacError::Mismatch));
    }

    #[test]
    fn vector_has_one_entry_per_key() {
        let keys: Vec<_> = (0..7u8).map(key).collect();
        let v = hmac_vector(&keys, b"m");
        assert_eq!(v.len(), 7);
        for (i, k) in keys.iter().enumerate() {
            assert!(verify_vector_entry(k, i, &v, b"m").is_ok());
        }
    }

    #[test]
    fn vector_entries_are_receiver_specific() {
        let keys: Vec<_> = (0..4u8).map(key).collect();
        let v = hmac_vector(&keys, b"m");
        // Receiver 1 cannot pass off receiver 0's entry as its own.
        assert_eq!(
            keys[1].verify(b"m", &v[0]),
            Err(MacError::Mismatch),
            "entries are bound to the per-receiver key"
        );
    }

    #[test]
    fn out_of_range_index_is_reported() {
        let keys: Vec<_> = (0..2u8).map(key).collect();
        let v = hmac_vector(&keys, b"m");
        assert_eq!(
            verify_vector_entry(&keys[0], 5, &v, b"m"),
            Err(MacError::MissingEntry { index: 5, got: 2 })
        );
    }

    #[test]
    fn keys_do_not_leak_via_debug() {
        assert_eq!(format!("{:?}", key(0x41)), "HmacKey(..)");
    }
}
