//! # neo-crypto
//!
//! All cryptography used by the NeoBFT stack, implemented with real
//! primitives (nothing is mocked):
//!
//! * [`digest`] — SHA-256 digests and the hash-chaining helpers used both
//!   by the aom-pk signing-ratio scheme (§4.4) and by NeoBFT's O(1)
//!   reply log-hash (§5.3);
//! * [`mac`] — SipHash-2-4 keyed MACs (the software stand-in for the
//!   in-switch HalfSipHash of §4.3) and HMAC vectors;
//! * [`sign`] — Ed25519 signatures for replica/client messages and
//!   secp256k1 ECDSA for the sequencer, matching the paper's curve;
//! * [`keys`] — key material for a whole deployment (replicas, clients,
//!   sequencer, pairwise MAC keys), generated from a seed so simulations
//!   are reproducible;
//! * [`meter`] — the cost meter: every operation both performs the real
//!   computation and records a calibrated virtual-time cost, which the
//!   discrete-event simulator charges to the node's CPU;
//! * [`pool`] — the parallel verification stage: a bounded worker pool
//!   ([`VerifyPool`]) plus the [`ReorderBuffer`] that re-injects
//!   completions in dispatch order — the real-runtime counterpart of
//!   the meter's parallel lane;
//! * [`provider`] — [`provider::NodeCrypto`], the per-node façade protocol
//!   code uses: sign/verify, MAC/MAC-vector, digest — all metered.

pub mod digest;
pub mod halfsiphash;
pub mod keys;
pub mod mac;
pub mod meter;
pub mod pool;
pub mod provider;
pub mod sign;

pub use digest::{chain, sha256, Digest, HashChain};
pub use halfsiphash::HalfSipKey;
pub use keys::{KeyStore, Principal, SystemKeys};
pub use mac::{HmacKey, MacError};
pub use meter::{CostModel, Meter};
pub use pool::{ReorderBuffer, VerifyDone, VerifyPool, VerifyTask};
pub use provider::NodeCrypto;
pub use sign::{SequencerKeyPair, SequencerVerifyKey, SigError, SignKeyPair, Signature, VerifyKey};
