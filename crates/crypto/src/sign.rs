//! Public-key signatures.
//!
//! Two schemes, mirroring the paper's deployment:
//!
//! * **Ed25519** for end-host message signatures (client requests, replica
//!   replies, gap/view-change protocol messages);
//! * **secp256k1 ECDSA** for the sequencer's aom-pk authenticator — the
//!   exact curve the FPGA coprocessor implements (§4.4).
//!
//! Both are wrapped in small owned types so that key material stays out of
//! wire structs and `Debug` output.

use k256::ecdsa::signature::{Signer as _, Verifier as _};
use serde::{Deserialize, Serialize};
use thiserror::Error;

/// Signature verification failure.
#[derive(Debug, Error, PartialEq, Eq)]
pub enum SigError {
    /// The signature bytes are malformed.
    #[error("malformed signature encoding")]
    Malformed,
    /// The signature does not verify under the given key.
    #[error("signature verification failed")]
    Invalid,
}

/// A detached signature (Ed25519: 64 bytes; secp256k1: 64-byte fixed
/// encoding). Kept as bytes on the wire; parsed at verification time.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize, Hash)]
pub struct Signature(pub Vec<u8>);

impl Signature {
    /// An empty placeholder signature; never verifies. Useful for faulty
    /// node injection in tests.
    pub fn empty() -> Self {
        Signature(Vec::new())
    }
}

/// An Ed25519 signing key pair for an end host.
#[derive(Clone)]
pub struct SignKeyPair {
    key: ed25519_dalek::SigningKey,
}

/// An Ed25519 verification key.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VerifyKey {
    key: ed25519_dalek::VerifyingKey,
}

impl std::fmt::Debug for SignKeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SignKeyPair(..)")
    }
}

impl SignKeyPair {
    /// Derive a key pair deterministically from 32 bytes of seed material.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        SignKeyPair {
            key: ed25519_dalek::SigningKey::from_bytes(&seed),
        }
    }

    /// The corresponding verification key.
    pub fn verify_key(&self) -> VerifyKey {
        VerifyKey {
            key: self.key.verifying_key(),
        }
    }

    /// Sign a byte string.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        Signature(self.key.sign(msg).to_bytes().to_vec())
    }
}

impl VerifyKey {
    /// Verify a detached signature.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> Result<(), SigError> {
        let bytes: &[u8; 64] = sig
            .0
            .as_slice()
            .try_into()
            .map_err(|_| SigError::Malformed)?;
        let sig = ed25519_dalek::Signature::from_bytes(bytes);
        self.key.verify(msg, &sig).map_err(|_| SigError::Invalid)
    }

    /// Stable byte encoding (for key distribution via the config service).
    pub fn to_bytes(&self) -> [u8; 32] {
        self.key.to_bytes()
    }

    /// Decode from bytes.
    pub fn from_bytes(bytes: &[u8; 32]) -> Result<Self, SigError> {
        ed25519_dalek::VerifyingKey::from_bytes(bytes)
            .map(|key| VerifyKey { key })
            .map_err(|_| SigError::Malformed)
    }
}

/// The sequencer's secp256k1 key pair (aom-pk, §4.4).
#[derive(Clone)]
pub struct SequencerKeyPair {
    key: k256::ecdsa::SigningKey,
}

/// The sequencer's secp256k1 verification key, distributed to receivers by
/// the configuration service.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SequencerVerifyKey {
    key: k256::ecdsa::VerifyingKey,
}

impl std::fmt::Debug for SequencerKeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SequencerKeyPair(..)")
    }
}

impl SequencerKeyPair {
    /// Derive deterministically from seed material.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        // Rejection-free: the probability that a 32-byte seed is not a
        // valid scalar is ~2^-128; nudge the last byte until it is.
        let mut s = seed;
        loop {
            if let Ok(key) = k256::ecdsa::SigningKey::from_bytes((&s).into()) {
                return SequencerKeyPair { key };
            }
            s[31] = s[31].wrapping_add(1);
        }
    }

    /// The corresponding verification key.
    pub fn verify_key(&self) -> SequencerVerifyKey {
        SequencerVerifyKey {
            key: *self.key.verifying_key(),
        }
    }

    /// ECDSA-sign a byte string (the coprocessor SHA-256-hashes it first;
    /// `k256` does the same internally).
    pub fn sign(&self, msg: &[u8]) -> Signature {
        let sig: k256::ecdsa::Signature = self.key.sign(msg);
        Signature(sig.to_bytes().to_vec())
    }
}

impl SequencerVerifyKey {
    /// Verify a sequencer signature.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> Result<(), SigError> {
        let sig = k256::ecdsa::Signature::from_slice(&sig.0).map_err(|_| SigError::Malformed)?;
        self.key.verify(msg, &sig).map_err(|_| SigError::Invalid)
    }

    /// SEC1-compressed encoding for distribution.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.key.to_sec1_bytes().to_vec()
    }

    /// Decode from SEC1 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SigError> {
        k256::ecdsa::VerifyingKey::from_sec1_bytes(bytes)
            .map(|key| SequencerVerifyKey { key })
            .map_err(|_| SigError::Malformed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ed25519_roundtrip() {
        let kp = SignKeyPair::from_seed([7u8; 32]);
        let sig = kp.sign(b"hello");
        assert!(kp.verify_key().verify(b"hello", &sig).is_ok());
    }

    #[test]
    fn ed25519_rejects_tampered_message() {
        let kp = SignKeyPair::from_seed([7u8; 32]);
        let sig = kp.sign(b"hello");
        assert_eq!(
            kp.verify_key().verify(b"hellp", &sig),
            Err(SigError::Invalid)
        );
    }

    #[test]
    fn ed25519_rejects_wrong_signer() {
        let a = SignKeyPair::from_seed([1u8; 32]);
        let b = SignKeyPair::from_seed([2u8; 32]);
        let sig = a.sign(b"msg");
        assert_eq!(b.verify_key().verify(b"msg", &sig), Err(SigError::Invalid));
    }

    #[test]
    fn ed25519_rejects_malformed_signature() {
        let kp = SignKeyPair::from_seed([7u8; 32]);
        assert_eq!(
            kp.verify_key().verify(b"m", &Signature(vec![1, 2, 3])),
            Err(SigError::Malformed)
        );
        assert_eq!(
            kp.verify_key().verify(b"m", &Signature::empty()),
            Err(SigError::Malformed)
        );
    }

    #[test]
    fn ed25519_key_encoding_roundtrip() {
        let kp = SignKeyPair::from_seed([9u8; 32]);
        let vk = kp.verify_key();
        let decoded = VerifyKey::from_bytes(&vk.to_bytes()).unwrap();
        assert!(decoded.verify(b"x", &kp.sign(b"x")).is_ok());
    }

    #[test]
    fn secp256k1_roundtrip() {
        let kp = SequencerKeyPair::from_seed([3u8; 32]);
        let sig = kp.sign(b"aom packet");
        assert!(kp.verify_key().verify(b"aom packet", &sig).is_ok());
    }

    #[test]
    fn secp256k1_rejects_tampered() {
        let kp = SequencerKeyPair::from_seed([3u8; 32]);
        let sig = kp.sign(b"aom packet");
        assert_eq!(
            kp.verify_key().verify(b"aom packe!", &sig),
            Err(SigError::Invalid)
        );
    }

    #[test]
    fn secp256k1_key_encoding_roundtrip() {
        let kp = SequencerKeyPair::from_seed([4u8; 32]);
        let vk = kp.verify_key();
        let decoded = SequencerVerifyKey::from_bytes(&vk.to_bytes()).unwrap();
        assert!(decoded.verify(b"x", &kp.sign(b"x")).is_ok());
        assert!(SequencerVerifyKey::from_bytes(&[1, 2, 3]).is_err());
    }

    #[test]
    fn deterministic_from_seed() {
        let a = SignKeyPair::from_seed([5u8; 32]);
        let b = SignKeyPair::from_seed([5u8; 32]);
        assert_eq!(a.verify_key().to_bytes(), b.verify_key().to_bytes());
        let sa = SequencerKeyPair::from_seed([6u8; 32]);
        let sb = SequencerKeyPair::from_seed([6u8; 32]);
        assert_eq!(sa.verify_key().to_bytes(), sb.verify_key().to_bytes());
    }
}
