//! HalfSipHash-2-4 — the hash the switch data plane actually computes
//! (§4.3, via Yoo & Chen's in-switch implementation).
//!
//! HalfSipHash is SipHash restructured over 32-bit words, which is what
//! makes it implementable in a Tofino ALU: each SipRound is four 32-bit
//! add/xor/rotate groups, and the unrolled 2-4 variant needs 12 pipeline
//! passes (matching `neo_switch::TofinoModel::passes_per_hmac`).
//!
//! This is a faithful software implementation of the reference
//! `halfsiphash.c` (64-bit-key, 32- or 64-bit output). The wire protocol
//! uses full SipHash-2-4 (`crate::mac`) — the software sequencer's
//! choice — while this module exists for fidelity with the hardware
//! design and for the switch-model tests.

/// A HalfSipHash key: 64 bits (two 32-bit words), the size that fits the
/// switch's per-receiver register pair.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct HalfSipKey(pub [u8; 8]);

impl std::fmt::Debug for HalfSipKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HalfSipKey(..)")
    }
}

#[inline]
fn sipround(v: &mut [u32; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(5);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(16);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(8);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(7);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(16);
}

impl HalfSipKey {
    /// HalfSipHash-2-4 with 32-bit output.
    pub fn hash32(&self, msg: &[u8]) -> u32 {
        self.run(msg, false)[0]
    }

    /// HalfSipHash-2-4 with 64-bit output (two finalization passes).
    pub fn hash64(&self, msg: &[u8]) -> u64 {
        let out = self.run(msg, true);
        (out[0] as u64) | ((out[1] as u64) << 32)
    }

    fn run(&self, msg: &[u8], wide: bool) -> [u32; 2] {
        let k0 = u32::from_le_bytes(self.0[0..4].try_into().expect("4 bytes"));
        let k1 = u32::from_le_bytes(self.0[4..8].try_into().expect("4 bytes"));
        let mut v: [u32; 4] = [k0, k1, 0x6c79_6765 ^ k0, 0x7465_6462 ^ k1];
        if wide {
            v[1] ^= 0xee;
        }

        let mut chunks = msg.chunks_exact(4);
        for chunk in &mut chunks {
            let m = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
            v[3] ^= m;
            sipround(&mut v);
            sipround(&mut v);
            v[0] ^= m;
        }
        // Last block: remaining bytes plus the length in the top byte.
        let rem = chunks.remainder();
        let mut b = (msg.len() as u32 & 0xff) << 24;
        for (i, byte) in rem.iter().enumerate() {
            b |= (*byte as u32) << (8 * i);
        }
        v[3] ^= b;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= b;

        v[2] ^= if wide { 0xee } else { 0xff };
        sipround(&mut v);
        sipround(&mut v);
        sipround(&mut v);
        sipround(&mut v);
        let first = v[1] ^ v[3];
        if !wide {
            return [first, 0];
        }
        v[1] ^= 0xdd;
        sipround(&mut v);
        sipround(&mut v);
        sipround(&mut v);
        sipround(&mut v);
        [first, v[1] ^ v[3]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> HalfSipKey {
        HalfSipKey([0, 1, 2, 3, 4, 5, 6, 7])
    }

    /// Reference vectors from the SipHash repository's `vectors.h`
    /// (`hsiphash` with the key 0x03020100/0x07060504 over the byte
    /// sequence 0, 1, 2, …).
    #[test]
    fn reference_vectors_hash32() {
        let k = key();
        let input: Vec<u8> = (0u8..8).collect();
        let expect: [u32; 8] = [
            u32::from_le_bytes([0xa9, 0x35, 0x9f, 0x5b]),
            u32::from_le_bytes([0x27, 0x47, 0x5a, 0xb8]),
            u32::from_le_bytes([0xfa, 0x62, 0xa6, 0x03]),
            u32::from_le_bytes([0x8a, 0xfe, 0xe7, 0x04]),
            u32::from_le_bytes([0x2a, 0x6e, 0x46, 0x89]),
            u32::from_le_bytes([0xc5, 0xfa, 0xb6, 0x69]),
            u32::from_le_bytes([0x58, 0x63, 0xfc, 0x23]),
            u32::from_le_bytes([0x8b, 0xcf, 0x63, 0xc5]),
        ];
        for (len, want) in expect.iter().enumerate() {
            assert_eq!(
                k.hash32(&input[..len]),
                *want,
                "hsiphash-2-4/32 vector at length {len}"
            );
        }
    }

    #[test]
    fn deterministic_and_key_sensitive() {
        let a = HalfSipKey([1; 8]);
        let b = HalfSipKey([2; 8]);
        assert_eq!(a.hash32(b"msg"), a.hash32(b"msg"));
        assert_ne!(a.hash32(b"msg"), b.hash32(b"msg"));
        assert_ne!(a.hash64(b"msg"), b.hash64(b"msg"));
    }

    #[test]
    fn message_sensitive() {
        let k = key();
        assert_ne!(k.hash32(b"msg-a"), k.hash32(b"msg-b"));
        assert_ne!(k.hash32(b""), k.hash32(b"\0"));
        // Length is folded in: a zero byte is not a no-op.
        assert_ne!(k.hash32(b"ab"), k.hash32(b"ab\0"));
    }

    #[test]
    fn wide_output_extends_narrow() {
        // The 64-bit variant is a distinct PRF, not a concatenation.
        let k = key();
        let narrow = k.hash32(b"packet");
        let wide = k.hash64(b"packet");
        assert_ne!(wide as u32, narrow);
    }

    #[test]
    fn avalanche_smoke() {
        // Flipping one input bit flips roughly half the output bits.
        let k = key();
        let a = k.hash64(b"0123456789abcdef");
        let b = k.hash64(b"1123456789abcdef");
        let flipped = (a ^ b).count_ones();
        assert!(
            (16..=48).contains(&flipped),
            "avalanche: {flipped} bits flipped"
        );
    }
}
