//! Per-node metered crypto façade.
//!
//! Protocol state machines never touch raw keys: they hold a
//! [`NodeCrypto`], which performs the real operation *and* charges the
//! node's [`Meter`] the calibrated virtual-time cost. This is the one
//! place where the paper's "authenticator complexity" becomes measurable
//! simulation time.

use crate::digest::{sha256, Digest};
use crate::keys::{KeyStore, Principal, SystemKeys};
use crate::mac::{HmacKey, MacError};
use crate::meter::{CostModel, Meter};
use crate::sign::{SigError, SignKeyPair, Signature};
use neo_wire::HmacTag;

/// A node's metered view of the system's cryptography.
#[derive(Clone, Debug)]
pub struct NodeCrypto {
    me: Principal,
    sign_key: SignKeyPair,
    store: KeyStore,
    system: SystemKeys,
    costs: CostModel,
    meter: Meter,
}

impl NodeCrypto {
    /// Build the crypto view for `me` out of the deployment key material.
    pub fn new(me: Principal, system: &SystemKeys, costs: CostModel) -> Self {
        NodeCrypto {
            me,
            sign_key: system.sign_key(me),
            store: system.key_store(),
            system: system.clone(),
            costs,
            meter: Meter::new(),
        }
    }

    /// The principal this provider signs as.
    pub fn me(&self) -> Principal {
        self.me
    }

    /// The meter the simulator drains.
    pub fn meter(&self) -> &Meter {
        &self.meter
    }

    /// The cost model in force (exported so experiment reports can record
    /// their inputs).
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// SHA-256 digest, charged serially (hashing happens inline with
    /// packet processing).
    pub fn digest(&self, bytes: &[u8]) -> Digest {
        self.meter.charge_serial(self.costs.sha256(bytes.len()));
        sha256(bytes)
    }

    /// Ed25519-sign a message (charged to the worker pool).
    pub fn sign(&self, msg: &[u8]) -> Signature {
        self.meter.charge_parallel(self.costs.ed25519_sign);
        self.sign_key.sign(msg)
    }

    /// Verify `signer`'s Ed25519 signature (charged to the worker pool).
    /// Unknown principals fail closed.
    pub fn verify(&self, signer: Principal, msg: &[u8], sig: &Signature) -> Result<(), SigError> {
        self.meter.charge_parallel(self.costs.ed25519_verify);
        match self.store.verify_key(signer) {
            Some(vk) => vk.verify(msg, sig),
            None => Err(SigError::Invalid),
        }
    }

    /// Compute the pairwise MAC authenticating `msg` from `self` to `peer`
    /// (charged serially — MACs are cheap enough to run on the dispatch
    /// core, exactly why PBFT prefers them).
    pub fn mac_for(&self, peer: Principal, msg: &[u8]) -> HmacTag {
        self.meter.charge_serial(self.costs.siphash);
        self.pairwise(peer).tag(msg)
    }

    /// Verify a pairwise MAC sent by `peer`.
    pub fn verify_mac_from(
        &self,
        peer: Principal,
        msg: &[u8],
        tag: &HmacTag,
    ) -> Result<(), MacError> {
        self.meter.charge_serial(self.costs.siphash);
        self.pairwise(peer).verify(msg, tag)
    }

    /// Compute a full authenticator vector: one MAC per peer in `peers`,
    /// in order. This is PBFT's O(N) per-message authenticator.
    pub fn mac_vector(&self, peers: &[Principal], msg: &[u8]) -> Vec<HmacTag> {
        self.meter
            .charge_serial(self.costs.siphash * peers.len() as u64);
        peers.iter().map(|p| self.pairwise(*p).tag(msg)).collect()
    }

    fn pairwise(&self, peer: Principal) -> HmacKey {
        self.system.pairwise_hmac_key(self.me, peer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_wire::{ClientId, ReplicaId};

    fn setup() -> (NodeCrypto, NodeCrypto) {
        let sys = SystemKeys::new(11, 4, 2);
        let a = NodeCrypto::new(
            Principal::Replica(ReplicaId(0)),
            &sys,
            CostModel::CALIBRATED,
        );
        let b = NodeCrypto::new(Principal::Client(ClientId(1)), &sys, CostModel::CALIBRATED);
        (a, b)
    }

    #[test]
    fn cross_node_signature_verifies() {
        let (a, b) = setup();
        let sig = a.sign(b"msg");
        assert!(b.verify(a.me(), b"msg", &sig).is_ok());
        assert!(b.verify(b.me(), b"msg", &sig).is_err(), "wrong signer");
    }

    #[test]
    fn unknown_principal_fails_closed() {
        let (a, _) = setup();
        let sig = a.sign(b"m");
        assert_eq!(
            a.verify(Principal::Replica(ReplicaId(99)), b"m", &sig),
            Err(SigError::Invalid)
        );
    }

    #[test]
    fn pairwise_macs_agree_between_the_two_parties() {
        let (a, b) = setup();
        let tag = a.mac_for(b.me(), b"hello");
        assert!(b.verify_mac_from(a.me(), b"hello", &tag).is_ok());
        assert!(b.verify_mac_from(a.me(), b"other", &tag).is_err());
    }

    #[test]
    fn mac_vector_entries_verify_per_peer() {
        let sys = SystemKeys::new(3, 4, 0);
        let sender = NodeCrypto::new(Principal::Replica(ReplicaId(0)), &sys, CostModel::FREE);
        let peers: Vec<Principal> = (1..4).map(|i| Principal::Replica(ReplicaId(i))).collect();
        let v = sender.mac_vector(&peers, b"broadcast");
        for (i, p) in peers.iter().enumerate() {
            let peer = NodeCrypto::new(*p, &sys, CostModel::FREE);
            assert!(peer
                .verify_mac_from(sender.me(), b"broadcast", &v[i])
                .is_ok());
        }
    }

    #[test]
    fn meter_charges_costs() {
        let (a, _) = setup();
        a.meter().drain();
        let _ = a.sign(b"x");
        let (s, p) = a.meter().drain();
        assert_eq!(s, 0);
        assert_eq!(p, vec![CostModel::CALIBRATED.ed25519_sign]);
        let _ = a.digest(b"payload");
        let (s, _) = a.meter().drain();
        assert!(s > 0, "digest is charged serially");
    }

    #[test]
    fn mac_vector_charges_linear_cost() {
        let sys = SystemKeys::new(3, 8, 0);
        let a = NodeCrypto::new(
            Principal::Replica(ReplicaId(0)),
            &sys,
            CostModel::CALIBRATED,
        );
        let peers: Vec<Principal> = (1..8).map(|i| Principal::Replica(ReplicaId(i))).collect();
        a.meter().drain();
        let _ = a.mac_vector(&peers, b"m");
        let (s, _) = a.meter().drain();
        assert_eq!(s, CostModel::CALIBRATED.siphash * 7);
    }
}
