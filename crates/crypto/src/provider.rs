//! Per-node metered crypto façade.
//!
//! Protocol state machines never touch raw keys: they hold a
//! [`NodeCrypto`], which performs the real operation *and* charges the
//! node's [`Meter`] the calibrated virtual-time cost. This is the one
//! place where the paper's "authenticator complexity" becomes measurable
//! simulation time.

use crate::digest::{chain, sha256, Digest};
use crate::keys::{KeyStore, Principal, SystemKeys};
use crate::mac::{HmacKey, MacError};
use crate::meter::{CostModel, Meter};
use crate::sign::{SigError, SignKeyPair, Signature};
use neo_wire::HmacTag;

/// A node's metered view of the system's cryptography.
#[derive(Clone, Debug)]
pub struct NodeCrypto {
    me: Principal,
    sign_key: SignKeyPair,
    store: KeyStore,
    system: SystemKeys,
    costs: CostModel,
    meter: Meter,
}

impl NodeCrypto {
    /// Build the crypto view for `me` out of the deployment key material.
    pub fn new(me: Principal, system: &SystemKeys, costs: CostModel) -> Self {
        NodeCrypto {
            me,
            sign_key: system.sign_key(me),
            store: system.key_store(),
            system: system.clone(),
            costs,
            meter: Meter::new(),
        }
    }

    /// The principal this provider signs as.
    pub fn me(&self) -> Principal {
        self.me
    }

    /// The meter the simulator drains.
    pub fn meter(&self) -> &Meter {
        &self.meter
    }

    /// The cost model in force (exported so experiment reports can record
    /// their inputs).
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// SHA-256 digest, charged serially (hashing happens inline with
    /// packet processing).
    pub fn digest(&self, bytes: &[u8]) -> Digest {
        self.meter.charge_serial(self.costs.sha256(bytes.len()));
        sha256(bytes)
    }

    /// Ed25519-sign a message (charged to the worker pool).
    pub fn sign(&self, msg: &[u8]) -> Signature {
        self.meter.charge_parallel(self.costs.ed25519_sign);
        self.sign_key.sign(msg)
    }

    /// Verify `signer`'s Ed25519 signature (charged to the worker pool).
    /// Unknown principals fail closed.
    pub fn verify(&self, signer: Principal, msg: &[u8], sig: &Signature) -> Result<(), SigError> {
        self.meter.charge_parallel(self.costs.ed25519_verify);
        match self.store.verify_key(signer) {
            Some(vk) => vk.verify(msg, sig),
            None => Err(SigError::Invalid),
        }
    }

    /// Verify a batch of Ed25519 signatures in one call, charging the
    /// parallel lane per item. This is the API seam the [`crate::pool`]
    /// verification stage feeds whole confirm batches through: one task
    /// dispatch covers the batch, and a future switch to multi-scalar
    /// batch verification (ed25519-dalek's `batch` feature) changes only
    /// this method. Per-item results, in input order; unknown principals
    /// fail closed.
    pub fn verify_batch(
        &self,
        items: &[(Principal, &[u8], &Signature)],
    ) -> Vec<Result<(), SigError>> {
        let mut out = Vec::with_capacity(items.len());
        for (signer, msg, sig) in items {
            self.meter.charge_parallel(self.costs.ed25519_verify);
            out.push(match self.store.verify_key(*signer) {
                Some(vk) => vk.verify(msg, sig),
                None => Err(SigError::Invalid),
            });
        }
        out
    }

    /// Amortized aom-pk hash-chain check across a batch of parked
    /// packets (§4.4: receivers "verify the entire batch by validating
    /// the hash chain"). `links` pairs each packet's expected head (the
    /// successor's `prev_hash`) with that packet's chaining input, in
    /// walk order; returns how many leading links verify. One serial
    /// charge covers the whole walk — the SHA-256 call base is paid once
    /// per batch instead of once per packet.
    pub fn verify_chain_links(&self, links: &[(Digest, &[u8])]) -> usize {
        if links.is_empty() {
            return 0;
        }
        let blocks: u64 = links
            .iter()
            .map(|(_, input)| input.len() as u64 / 64 + 1)
            .sum();
        self.meter
            .charge_serial(self.costs.sha256_base + self.costs.sha256_per_block * blocks);
        let mut ok = 0;
        for (expected, input) in links {
            if chain(Digest::ZERO, input) == *expected {
                ok += 1;
            } else {
                break;
            }
        }
        ok
    }

    /// Compute the pairwise MAC authenticating `msg` from `self` to `peer`
    /// (charged serially — MACs are cheap enough to run on the dispatch
    /// core, exactly why PBFT prefers them).
    pub fn mac_for(&self, peer: Principal, msg: &[u8]) -> HmacTag {
        self.meter.charge_serial(self.costs.siphash);
        self.pairwise(peer).tag(msg)
    }

    /// Verify a pairwise MAC sent by `peer`.
    pub fn verify_mac_from(
        &self,
        peer: Principal,
        msg: &[u8],
        tag: &HmacTag,
    ) -> Result<(), MacError> {
        self.meter.charge_serial(self.costs.siphash);
        self.pairwise(peer).verify(msg, tag)
    }

    /// Compute a full authenticator vector: one MAC per peer in `peers`,
    /// in order. This is PBFT's O(N) per-message authenticator.
    pub fn mac_vector(&self, peers: &[Principal], msg: &[u8]) -> Vec<HmacTag> {
        self.meter
            .charge_serial(self.costs.siphash * peers.len() as u64);
        peers.iter().map(|p| self.pairwise(*p).tag(msg)).collect()
    }

    fn pairwise(&self, peer: Principal) -> HmacKey {
        self.system.pairwise_hmac_key(self.me, peer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_wire::{ClientId, ReplicaId};

    fn setup() -> (NodeCrypto, NodeCrypto) {
        let sys = SystemKeys::new(11, 4, 2);
        let a = NodeCrypto::new(
            Principal::Replica(ReplicaId(0)),
            &sys,
            CostModel::CALIBRATED,
        );
        let b = NodeCrypto::new(Principal::Client(ClientId(1)), &sys, CostModel::CALIBRATED);
        (a, b)
    }

    #[test]
    fn cross_node_signature_verifies() {
        let (a, b) = setup();
        let sig = a.sign(b"msg");
        assert!(b.verify(a.me(), b"msg", &sig).is_ok());
        assert!(b.verify(b.me(), b"msg", &sig).is_err(), "wrong signer");
    }

    #[test]
    fn unknown_principal_fails_closed() {
        let (a, _) = setup();
        let sig = a.sign(b"m");
        assert_eq!(
            a.verify(Principal::Replica(ReplicaId(99)), b"m", &sig),
            Err(SigError::Invalid)
        );
    }

    #[test]
    fn pairwise_macs_agree_between_the_two_parties() {
        let (a, b) = setup();
        let tag = a.mac_for(b.me(), b"hello");
        assert!(b.verify_mac_from(a.me(), b"hello", &tag).is_ok());
        assert!(b.verify_mac_from(a.me(), b"other", &tag).is_err());
    }

    #[test]
    fn mac_vector_entries_verify_per_peer() {
        let sys = SystemKeys::new(3, 4, 0);
        let sender = NodeCrypto::new(Principal::Replica(ReplicaId(0)), &sys, CostModel::FREE);
        let peers: Vec<Principal> = (1..4).map(|i| Principal::Replica(ReplicaId(i))).collect();
        let v = sender.mac_vector(&peers, b"broadcast");
        for (i, p) in peers.iter().enumerate() {
            let peer = NodeCrypto::new(*p, &sys, CostModel::FREE);
            assert!(peer
                .verify_mac_from(sender.me(), b"broadcast", &v[i])
                .is_ok());
        }
    }

    #[test]
    fn meter_charges_costs() {
        let (a, _) = setup();
        a.meter().drain();
        let _ = a.sign(b"x");
        let (s, p) = a.meter().drain();
        assert_eq!(s, 0);
        assert_eq!(p, vec![CostModel::CALIBRATED.ed25519_sign]);
        let _ = a.digest(b"payload");
        let (s, _) = a.meter().drain();
        assert!(s > 0, "digest is charged serially");
    }

    #[test]
    fn verify_batch_matches_per_item_verify_and_charges_per_item() {
        let (a, b) = setup();
        let sig0 = a.sign(b"zero");
        let sig1 = a.sign(b"one");
        a.meter().drain();
        let items: Vec<(Principal, &[u8], &Signature)> = vec![
            (a.me(), b"zero", &sig0),
            (a.me(), b"one", &sig1),
            (b.me(), b"zero", &sig0),                         // wrong signer
            (Principal::Replica(ReplicaId(99)), b"x", &sig0), // unknown: fails closed
        ];
        let res = a.verify_batch(&items);
        assert!(res[0].is_ok() && res[1].is_ok());
        assert!(res[2].is_err() && res[3].is_err());
        let (_, p) = a.meter().drain();
        assert_eq!(
            p,
            vec![CostModel::CALIBRATED.ed25519_verify; 4],
            "every item is charged to the parallel lane"
        );
    }

    #[test]
    fn verify_chain_links_counts_leading_valid_links_with_one_base_charge() {
        let (a, _) = setup();
        let good1 = crate::chain(Digest::ZERO, b"pkt1");
        let good2 = crate::chain(Digest::ZERO, b"pkt2");
        a.meter().drain();
        let links: Vec<(Digest, &[u8])> = vec![
            (good1, b"pkt1"),
            (good2, b"pkt2"),
            (good1, b"tampered"), // broken link stops the walk
            (good2, b"pkt2"),     // never reached
        ];
        assert_eq!(a.verify_chain_links(&links), 2);
        let (s, _) = a.meter().drain();
        let blocks: u64 = links.iter().map(|(_, i)| i.len() as u64 / 64 + 1).sum();
        assert_eq!(
            s,
            CostModel::CALIBRATED.sha256_base + CostModel::CALIBRATED.sha256_per_block * blocks,
            "one amortized serial charge for the whole batch"
        );
        assert_eq!(a.verify_chain_links(&[]), 0);
    }

    #[test]
    fn mac_vector_charges_linear_cost() {
        let sys = SystemKeys::new(3, 8, 0);
        let a = NodeCrypto::new(
            Principal::Replica(ReplicaId(0)),
            &sys,
            CostModel::CALIBRATED,
        );
        let peers: Vec<Principal> = (1..8).map(|i| Principal::Replica(ReplicaId(i))).collect();
        a.meter().drain();
        let _ = a.mac_vector(&peers, b"m");
        let (s, _) = a.meter().drain();
        assert_eq!(s, CostModel::CALIBRATED.siphash * 7);
    }
}
