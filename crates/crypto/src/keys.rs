//! Deployment key material.
//!
//! In a real deployment the configuration service distributes keys over
//! TLS (§4.1); here [`SystemKeys`] plays that role: it derives every key in
//! the system deterministically from a seed, so a simulation (or a test)
//! can hand each node exactly the key view the config service would give
//! it. The derivation uses SHA-256 as a KDF over (seed, role, index),
//! which keeps all key material reproducible and independent.

use crate::digest::sha256;
use crate::mac::HmacKey;
use crate::sign::{SequencerKeyPair, SignKeyPair, VerifyKey};
use neo_wire::{ClientId, EpochNum, GroupId, ReplicaId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A signing identity in the system.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize, PartialOrd, Ord)]
pub enum Principal {
    /// A replica.
    Replica(ReplicaId),
    /// A client.
    Client(ClientId),
}

impl fmt::Display for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Principal::Replica(r) => write!(f, "{r}"),
            Principal::Client(c) => write!(f, "{c}"),
        }
    }
}

fn derive_seed(root: &[u8; 32], tag: &str, a: u64, b: u64) -> [u8; 32] {
    let mut input = Vec::with_capacity(32 + tag.len() + 16);
    input.extend_from_slice(root);
    input.extend_from_slice(tag.as_bytes());
    input.extend_from_slice(&a.to_le_bytes());
    input.extend_from_slice(&b.to_le_bytes());
    sha256(&input).0
}

/// All key material for one deployment, derived from a root seed.
#[derive(Clone, Debug)]
pub struct SystemKeys {
    root: [u8; 32],
    n_replicas: usize,
    n_clients: usize,
}

impl SystemKeys {
    /// Derive keys for `n_replicas` replicas and `n_clients` clients.
    pub fn new(root_seed: u64, n_replicas: usize, n_clients: usize) -> Self {
        let mut root = [0u8; 32];
        root[..8].copy_from_slice(&root_seed.to_le_bytes());
        SystemKeys {
            root,
            n_replicas,
            n_clients,
        }
    }

    /// Number of replicas this deployment was derived for.
    pub fn n_replicas(&self) -> usize {
        self.n_replicas
    }

    /// Number of clients this deployment was derived for.
    pub fn n_clients(&self) -> usize {
        self.n_clients
    }

    /// Ed25519 key pair of a principal.
    pub fn sign_key(&self, p: Principal) -> SignKeyPair {
        let seed = match p {
            Principal::Replica(r) => derive_seed(&self.root, "ed/replica", r.0 as u64, 0),
            Principal::Client(c) => derive_seed(&self.root, "ed/client", c.0, 0),
        };
        SignKeyPair::from_seed(seed)
    }

    /// The sequencer's secp256k1 key pair for a given epoch (a failover
    /// installs a new switch and thus a new key, §4.2).
    pub fn sequencer_key(&self, group: GroupId, epoch: EpochNum) -> SequencerKeyPair {
        SequencerKeyPair::from_seed(derive_seed(
            &self.root,
            "ecdsa/sequencer",
            group.0 as u64,
            epoch.0,
        ))
    }

    /// Pairwise SipHash key between the sequencer (group, epoch) and one
    /// receiver — the §4.3 key-exchange outcome.
    pub fn sequencer_hmac_key(
        &self,
        group: GroupId,
        epoch: EpochNum,
        receiver: ReplicaId,
    ) -> HmacKey {
        let d = derive_seed(
            &self.root,
            "hmac/seq",
            (group.0 as u64) << 32 | receiver.0 as u64,
            epoch.0,
        );
        let mut k = [0u8; 16];
        k.copy_from_slice(&d[..16]);
        HmacKey(k)
    }

    /// Pairwise SipHash key between two principals (used by the MAC-based
    /// baselines, e.g. PBFT's authenticators). Symmetric in its arguments.
    pub fn pairwise_hmac_key(&self, a: Principal, b: Principal) -> HmacKey {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let ab = principal_code(lo);
        let bb = principal_code(hi);
        let d = derive_seed(&self.root, "hmac/pair", ab, bb);
        let mut k = [0u8; 16];
        k.copy_from_slice(&d[..16]);
        HmacKey(k)
    }

    /// Build the verification-key view a node needs: every principal's
    /// Ed25519 verify key.
    pub fn key_store(&self) -> KeyStore {
        let mut verify = HashMap::new();
        for r in 0..self.n_replicas {
            let p = Principal::Replica(ReplicaId(r as u32));
            verify.insert(p, self.sign_key(p).verify_key());
        }
        for c in 0..self.n_clients {
            let p = Principal::Client(ClientId(c as u64));
            verify.insert(p, self.sign_key(p).verify_key());
        }
        KeyStore { verify }
    }
}

fn principal_code(p: Principal) -> u64 {
    match p {
        Principal::Replica(r) => r.0 as u64,
        Principal::Client(c) => (1u64 << 48) | c.0,
    }
}

/// Public-key directory distributed by the configuration service.
#[derive(Clone, Debug, Default)]
pub struct KeyStore {
    verify: HashMap<Principal, VerifyKey>,
}

impl KeyStore {
    /// Look up a principal's Ed25519 verification key.
    pub fn verify_key(&self, p: Principal) -> Option<&VerifyKey> {
        self.verify.get(&p)
    }

    /// Number of registered principals.
    pub fn len(&self) -> usize {
        self.verify.len()
    }

    /// True if the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.verify.is_empty()
    }

    /// Register a principal (used by tests that add ad-hoc identities).
    pub fn insert(&mut self, p: Principal, k: VerifyKey) {
        self.verify.insert(p, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        let a = SystemKeys::new(42, 4, 2);
        let b = SystemKeys::new(42, 4, 2);
        let p = Principal::Replica(ReplicaId(1));
        assert_eq!(
            a.sign_key(p).verify_key().to_bytes(),
            b.sign_key(p).verify_key().to_bytes()
        );
    }

    #[test]
    fn distinct_principals_get_distinct_keys() {
        let k = SystemKeys::new(1, 4, 4);
        let r0 = k.sign_key(Principal::Replica(ReplicaId(0)));
        let r1 = k.sign_key(Principal::Replica(ReplicaId(1)));
        let c0 = k.sign_key(Principal::Client(ClientId(0)));
        assert_ne!(r0.verify_key().to_bytes(), r1.verify_key().to_bytes());
        assert_ne!(r0.verify_key().to_bytes(), c0.verify_key().to_bytes());
    }

    #[test]
    fn sequencer_key_changes_across_epochs() {
        let k = SystemKeys::new(1, 4, 0);
        let e0 = k.sequencer_key(GroupId(0), EpochNum(0));
        let e1 = k.sequencer_key(GroupId(0), EpochNum(1));
        assert_ne!(e0.verify_key().to_bytes(), e1.verify_key().to_bytes());
    }

    #[test]
    fn pairwise_key_is_symmetric() {
        let k = SystemKeys::new(1, 4, 4);
        let a = Principal::Replica(ReplicaId(0));
        let b = Principal::Client(ClientId(3));
        assert_eq!(k.pairwise_hmac_key(a, b), k.pairwise_hmac_key(b, a));
        assert_ne!(
            k.pairwise_hmac_key(a, b),
            k.pairwise_hmac_key(a, Principal::Client(ClientId(4)))
        );
    }

    #[test]
    fn key_store_covers_everyone() {
        let k = SystemKeys::new(7, 4, 3);
        let store = k.key_store();
        assert_eq!(store.len(), 7);
        let p = Principal::Replica(ReplicaId(2));
        let sig = k.sign_key(p).sign(b"m");
        assert!(store.verify_key(p).unwrap().verify(b"m", &sig).is_ok());
        assert!(store.verify_key(Principal::Replica(ReplicaId(9))).is_none());
    }

    #[test]
    fn sequencer_hmac_keys_differ_per_receiver() {
        let k = SystemKeys::new(1, 4, 0);
        let k0 = k.sequencer_hmac_key(GroupId(0), EpochNum(0), ReplicaId(0));
        let k1 = k.sequencer_hmac_key(GroupId(0), EpochNum(0), ReplicaId(1));
        assert_ne!(k0, k1);
    }
}
