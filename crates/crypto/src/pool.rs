//! Parallel verification stage: a bounded worker pool plus the reorder
//! buffer that re-injects completions in submission order.
//!
//! The paper's replica is latency-optimal because authenticator
//! verification is the only work on the critical path, and its FPGA
//! evaluation assumes that work scales across cores. The simulator models
//! this with [`crate::Meter::charge_parallel`]; the real tokio runtime
//! gets the same shape from a [`VerifyPool`]: dedicated worker threads
//! behind a bounded queue pair. Protocol code never talks to the pool
//! directly — it hands out self-contained [`VerifyTask`]s (which carry a
//! [`crate::NodeCrypto`] clone, so the shared meter still gets charged)
//! and re-applies them in ticket order through a [`ReorderBuffer`].
//!
//! Invariants:
//!
//! * **Every submitted task completes.** Worker panics are caught with
//!   `catch_unwind`; the task comes back with `panicked = true` and the
//!   pool is flagged [`VerifyPool::poisoned`], so a crashing verifier
//!   degrades to a rejected message plus a typed runtime error — never a
//!   hung node.
//! * **Bounded memory.** The submission queue holds at most
//!   `queue_bound` tasks; `submit` applies backpressure by blocking the
//!   dispatch thread, which in turn bounds the completion side because
//!   each submission yields exactly one completion.
//! * **In-order re-injection.** [`ReorderBuffer`] releases completions
//!   strictly in the order their tickets were issued (the dispatch
//!   order), so the protocol observes the same interleaving the serial
//!   executor would have produced.

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// A unit of verification work the pool can run on any worker thread.
///
/// Implementations carry everything they need (packet bytes, key
/// material, a [`crate::NodeCrypto`] clone) and record their verdict in
/// their own state; the submitter downcasts the box back via
/// [`VerifyTask::into_any`] when the completion is collected.
pub trait VerifyTask: Send + Any {
    /// Perform the verification. Runs on a worker thread; must not touch
    /// shared protocol state.
    fn run(&mut self);
    /// Recover the concrete task type from a completed box.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// A completed task, handed back to the submitter.
pub struct VerifyDone {
    /// The ticket passed to [`VerifyPool::submit`].
    pub ticket: u64,
    /// The task, with its verdict recorded (unless `panicked`).
    pub task: Box<dyn VerifyTask>,
    /// The task panicked mid-run; its verdict is unreliable and the
    /// submitter must treat the input as unverified.
    pub panicked: bool,
}

struct PoolState {
    jobs: VecDeque<(u64, Box<dyn VerifyTask>)>,
    done: Vec<VerifyDone>,
    wake: Option<Arc<dyn Fn() + Send + Sync>>,
    closed: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    not_empty: Condvar,
    not_full: Condvar,
    poisoned: AtomicBool,
    in_flight: AtomicUsize,
}

impl PoolShared {
    fn lock(&self) -> MutexGuard<'_, PoolState> {
        // A worker that panicked inside `run` was under `catch_unwind`,
        // so the mutex can only be poisoned by a panic in this module's
        // own (straight-line) critical sections; the state is still
        // consistent.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn finish(&self, ticket: u64, task: Box<dyn VerifyTask>, panicked: bool) {
        if panicked {
            self.poisoned.store(true, Ordering::Relaxed);
        }
        let wake = {
            let mut st = self.lock();
            st.done.push(VerifyDone {
                ticket,
                task,
                panicked,
            });
            st.wake.clone()
        };
        if let Some(wake) = wake {
            wake();
        }
    }
}

/// Dedicated verification worker threads behind a bounded queue pair.
pub struct VerifyPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    queue_bound: usize,
}

impl std::fmt::Debug for VerifyPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifyPool")
            .field("workers", &self.workers)
            .field("queue_bound", &self.queue_bound)
            .field("in_flight", &self.in_flight())
            .field("poisoned", &self.poisoned())
            .finish()
    }
}

impl VerifyPool {
    /// Default submission-queue bound: one aom receive window's worth of
    /// packets is more than any honest burst between two collect calls.
    pub const DEFAULT_QUEUE_BOUND: usize = 1024;

    /// Spawn `workers` verification threads (clamped to at least one)
    /// with the default queue bound.
    pub fn new(workers: usize) -> Self {
        Self::with_queue_bound(workers, Self::DEFAULT_QUEUE_BOUND)
    }

    /// Spawn `workers` verification threads with an explicit submission
    /// queue bound (clamped to at least one slot).
    pub fn with_queue_bound(workers: usize, queue_bound: usize) -> Self {
        let workers = workers.max(1);
        let queue_bound = queue_bound.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                done: Vec::new(),
                wake: None,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            poisoned: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("neo-verify-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .unwrap_or_else(|e| {
                        // Pool construction happens at node startup, not
                        // on the message path; an OS refusing threads
                        // there is a deployment error worth stopping on.
                        panic!("failed to spawn verify worker {i}: {e}")
                    })
            })
            .collect();
        VerifyPool {
            shared,
            handles,
            workers,
            queue_bound,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Submission-queue capacity.
    pub fn queue_bound(&self) -> usize {
        self.queue_bound
    }

    /// Submit a task under `ticket`. Blocks (backpressure) while the
    /// submission queue is full. Exactly one [`VerifyDone`] with this
    /// ticket will eventually appear in [`VerifyPool::drain_completed`].
    pub fn submit(&self, ticket: u64, task: Box<dyn VerifyTask>) {
        self.shared.in_flight.fetch_add(1, Ordering::Relaxed);
        let mut st = self.shared.lock();
        while st.jobs.len() >= self.queue_bound && !st.closed {
            st = self
                .shared
                .not_full
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
        if st.closed {
            // Shutdown raced the submit: run inline so the completion
            // still materializes and no collector hangs.
            drop(st);
            let mut task = task;
            let panicked = catch_unwind(AssertUnwindSafe(|| task.run())).is_err();
            self.shared.finish(ticket, task, panicked);
            return;
        }
        st.jobs.push_back((ticket, task));
        drop(st);
        self.shared.not_empty.notify_one();
    }

    /// Move all completions into `out`; returns how many were drained.
    /// Non-blocking — pair with [`VerifyPool::set_wake_hook`] to learn
    /// when calling again is worthwhile.
    pub fn drain_completed(&self, out: &mut Vec<VerifyDone>) -> usize {
        let n = {
            let mut st = self.shared.lock();
            let n = st.done.len();
            out.append(&mut st.done);
            n
        };
        self.shared.in_flight.fetch_sub(n, Ordering::Relaxed);
        n
    }

    /// Tasks submitted but not yet drained (queued + running + done).
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Relaxed)
    }

    /// Tasks waiting in the submission queue right now.
    pub fn queue_depth(&self) -> usize {
        self.shared.lock().jobs.len()
    }

    /// True once any task has panicked on a worker. The pool keeps
    /// running (panicked tasks still complete, flagged), but the host
    /// should surface a typed error.
    pub fn poisoned(&self) -> bool {
        self.shared.poisoned.load(Ordering::Relaxed)
    }

    /// Install a hook called (from a worker thread) after each completion
    /// is queued — e.g. a `tokio::sync::Notify` wake so the event loop's
    /// idle wait ends as soon as verified work is ready.
    pub fn set_wake_hook(&self, hook: Arc<dyn Fn() + Send + Sync>) {
        self.shared.lock().wake = Some(hook);
    }
}

impl Drop for VerifyPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.closed = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for h in std::mem::take(&mut self.handles) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let (ticket, mut task) = {
            let mut st = shared.lock();
            loop {
                if let Some(job) = st.jobs.pop_front() {
                    shared.not_full.notify_one();
                    break job;
                }
                if st.closed {
                    return;
                }
                st = shared.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        let panicked = catch_unwind(AssertUnwindSafe(|| task.run())).is_err();
        shared.finish(ticket, task, panicked);
    }
}

/// Restores dispatch order on the collect side of the pool.
///
/// Tickets are issued densely at submission time; completions arrive in
/// whatever order the workers finish and are released strictly in ticket
/// order. Because every submission completes (worker panics included),
/// the release cursor never deadlocks. The stall a completion spends
/// waiting for its predecessors is reported so hosts can feed a
/// `verify.reorder_stall_ns` histogram.
#[derive(Debug, Default)]
pub struct ReorderBuffer<T> {
    next_ticket: u64,
    release: u64,
    pending: BTreeMap<u64, (T, u64)>,
}

impl<T> ReorderBuffer<T> {
    /// Empty buffer; the first issued ticket is 0.
    pub fn new() -> Self {
        ReorderBuffer {
            next_ticket: 0,
            release: 0,
            pending: BTreeMap::new(),
        }
    }

    /// Issue the next submission ticket.
    pub fn issue(&mut self) -> u64 {
        let t = self.next_ticket;
        self.next_ticket += 1;
        t
    }

    /// A completion for `ticket` arrived at `now_ns`. Tickets never
    /// issued or already released are ignored.
    pub fn accept(&mut self, ticket: u64, value: T, now_ns: u64) {
        if ticket >= self.release && ticket < self.next_ticket {
            self.pending.insert(ticket, (value, now_ns));
        }
    }

    /// Release the next completion in ticket order, if it has arrived.
    /// Returns the value and how long it stalled (`now_ns` minus its
    /// arrival time) waiting for slower predecessors.
    pub fn pop_ready(&mut self, now_ns: u64) -> Option<(T, u64)> {
        let (value, arrived) = self.pending.remove(&self.release)?;
        self.release += 1;
        Some((value, now_ns.saturating_sub(arrived)))
    }

    /// Tickets issued but not yet released.
    pub fn outstanding(&self) -> u64 {
        self.next_ticket - self.release
    }

    /// Completions buffered out of order, waiting for predecessors.
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    struct CountTask {
        hits: Arc<AtomicU64>,
        panic_on_run: bool,
    }

    impl VerifyTask for CountTask {
        fn run(&mut self) {
            if self.panic_on_run {
                panic!("verifier crashed");
            }
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        fn into_any(self: Box<Self>) -> Box<dyn Any> {
            self
        }
    }

    fn collect(pool: &VerifyPool, want: usize) -> Vec<VerifyDone> {
        let mut done = Vec::new();
        let mut spins = 0u64;
        while done.len() < want {
            pool.drain_completed(&mut done);
            std::thread::yield_now();
            spins += 1;
            assert!(spins < 50_000_000, "pool never completed {want} tasks");
        }
        done
    }

    #[test]
    fn every_submission_completes_with_its_ticket() {
        let pool = VerifyPool::new(2);
        let hits = Arc::new(AtomicU64::new(0));
        for t in 0..8 {
            pool.submit(
                t,
                Box::new(CountTask {
                    hits: Arc::clone(&hits),
                    panic_on_run: false,
                }),
            );
        }
        let done = collect(&pool, 8);
        let mut tickets: Vec<u64> = done.iter().map(|d| d.ticket).collect();
        tickets.sort_unstable();
        assert_eq!(tickets, (0..8).collect::<Vec<_>>());
        assert!(done.iter().all(|d| !d.panicked));
        assert_eq!(hits.load(Ordering::Relaxed), 8);
        assert_eq!(pool.in_flight(), 0);
        assert!(!pool.poisoned());
    }

    #[test]
    fn panicking_task_completes_flagged_and_poisons_the_pool() {
        let pool = VerifyPool::new(1);
        let hits = Arc::new(AtomicU64::new(0));
        pool.submit(
            0,
            Box::new(CountTask {
                hits: Arc::clone(&hits),
                panic_on_run: true,
            }),
        );
        let done = collect(&pool, 1);
        assert!(done[0].panicked, "panic must surface on the completion");
        assert!(pool.poisoned());
        // The worker survives the panic and keeps serving.
        pool.submit(
            1,
            Box::new(CountTask {
                hits: Arc::clone(&hits),
                panic_on_run: false,
            }),
        );
        let done = collect(&pool, 1);
        assert!(!done[0].panicked);
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn bounded_queue_applies_backpressure_without_losing_tasks() {
        let pool = VerifyPool::with_queue_bound(1, 2);
        let hits = Arc::new(AtomicU64::new(0));
        for t in 0..16 {
            pool.submit(
                t,
                Box::new(CountTask {
                    hits: Arc::clone(&hits),
                    panic_on_run: false,
                }),
            );
        }
        let done = collect(&pool, 16);
        assert_eq!(done.len(), 16);
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn wake_hook_fires_on_completion() {
        let pool = VerifyPool::new(1);
        let wakes = Arc::new(AtomicU64::new(0));
        let w = Arc::clone(&wakes);
        pool.set_wake_hook(Arc::new(move || {
            w.fetch_add(1, Ordering::Relaxed);
        }));
        let hits = Arc::new(AtomicU64::new(0));
        pool.submit(
            0,
            Box::new(CountTask {
                hits,
                panic_on_run: false,
            }),
        );
        collect(&pool, 1);
        assert!(wakes.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn completed_task_downcasts_back_to_its_concrete_type() {
        let pool = VerifyPool::new(1);
        let hits = Arc::new(AtomicU64::new(0));
        pool.submit(
            7,
            Box::new(CountTask {
                hits: Arc::clone(&hits),
                panic_on_run: false,
            }),
        );
        let done = collect(&pool, 1).pop().expect("one completion");
        let task = done
            .task
            .into_any()
            .downcast::<CountTask>()
            .expect("concrete type round-trips");
        assert!(!task.panic_on_run);
    }

    #[test]
    fn reorder_buffer_releases_strictly_in_ticket_order() {
        let mut buf: ReorderBuffer<&'static str> = ReorderBuffer::new();
        let t0 = buf.issue();
        let t1 = buf.issue();
        let t2 = buf.issue();
        buf.accept(t2, "c", 100);
        buf.accept(t0, "a", 200);
        assert_eq!(buf.buffered(), 2);
        assert_eq!(buf.pop_ready(250), Some(("a", 50)));
        // t1 has not arrived: t2 must wait even though it is buffered.
        assert_eq!(buf.pop_ready(250), None);
        buf.accept(t1, "b", 300);
        assert_eq!(buf.pop_ready(300), Some(("b", 0)));
        assert_eq!(buf.pop_ready(400), Some(("c", 300)));
        assert_eq!(buf.outstanding(), 0);
        assert_eq!(buf.buffered(), 0);
    }

    #[test]
    fn reorder_buffer_ignores_foreign_tickets() {
        let mut buf: ReorderBuffer<u32> = ReorderBuffer::new();
        buf.accept(5, 1, 0); // never issued
        assert_eq!(buf.buffered(), 0);
        let t = buf.issue();
        buf.accept(t, 2, 10);
        assert_eq!(buf.pop_ready(10), Some((2, 0)));
        buf.accept(t, 3, 20); // already released
        assert_eq!(buf.buffered(), 0);
        assert_eq!(buf.pop_ready(20), None);
    }
}
