//! SHA-256 digests and hash chains.

use neo_wire::DIGEST_LEN;
use serde::{Deserialize, Serialize};
use sha2::{Digest as _, Sha256};
use std::fmt;

/// A SHA-256 digest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// The all-zero digest, used as the root of hash chains.
    pub const ZERO: Digest = Digest([0u8; DIGEST_LEN]);

    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Digest({:02x}{:02x}{:02x}{:02x}…)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0[..8] {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// SHA-256 of a byte string.
pub fn sha256(bytes: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(bytes);
    Digest(h.finalize().into())
}

/// One hash-chain step: `H(prev ‖ item)`.
///
/// Used by NeoBFT replicas for the O(1) log-hash in replies (§5.3) and by
/// the aom-pk coprocessor's packet chaining (§4.4).
pub fn chain(prev: Digest, item: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(prev.0);
    h.update(item);
    Digest(h.finalize().into())
}

/// An incrementally maintained hash chain.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct HashChain {
    head: Digest,
    len: u64,
}

impl HashChain {
    /// Empty chain rooted at [`Digest::ZERO`].
    pub fn new() -> Self {
        HashChain {
            head: Digest::ZERO,
            len: 0,
        }
    }

    /// Append an item, returning the new head.
    pub fn push(&mut self, item: &[u8]) -> Digest {
        self.head = chain(self.head, item);
        self.len += 1;
        self.head
    }

    /// Current head of the chain.
    pub fn head(&self) -> Digest {
        self.head
    }

    /// Number of items appended.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reset to a known (head, len) pair — used when a replica rolls back
    /// its log during gap agreement or view change and recomputes the
    /// suffix.
    pub fn reset_to(&mut self, head: Digest, len: u64) {
        self.head = head;
        self.len = len;
    }
}

/// Verify that `items` re-hashed from `root` reproduces `expected_head`.
///
/// This is the receiver-side batch verification of the aom-pk hash chain:
/// "receivers wait until the next signed packet and verify the entire batch
/// by validating the hash chain in the reverse order" (§4.4). Verification
/// here walks forward, which is equivalent and allocation-free.
pub fn verify_chain(root: Digest, items: &[&[u8]], expected_head: Digest) -> bool {
    let mut d = root;
    for item in items {
        d = chain(d, item);
    }
    d == expected_head
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_known_vector() {
        // SHA-256("abc")
        let d = sha256(b"abc");
        assert_eq!(
            d.0[..4],
            [0xba, 0x78, 0x16, 0xbf],
            "matches FIPS 180-2 test vector prefix"
        );
    }

    #[test]
    fn digests_differ_on_different_input() {
        assert_ne!(sha256(b"a"), sha256(b"b"));
        assert_ne!(sha256(b""), Digest::ZERO);
    }

    #[test]
    fn chain_is_order_sensitive() {
        let ab = chain(chain(Digest::ZERO, b"a"), b"b");
        let ba = chain(chain(Digest::ZERO, b"b"), b"a");
        assert_ne!(ab, ba);
    }

    #[test]
    fn hash_chain_incremental_matches_manual() {
        let mut hc = HashChain::new();
        assert!(hc.is_empty());
        let h1 = hc.push(b"one");
        let h2 = hc.push(b"two");
        assert_eq!(hc.len(), 2);
        assert_eq!(h1, chain(Digest::ZERO, b"one"));
        assert_eq!(h2, chain(h1, b"two"));
        assert_eq!(hc.head(), h2);
    }

    #[test]
    fn verify_chain_accepts_and_rejects() {
        let items: Vec<&[u8]> = vec![b"p1", b"p2", b"p3"];
        let mut hc = HashChain::new();
        for i in &items {
            hc.push(i);
        }
        assert!(verify_chain(Digest::ZERO, &items, hc.head()));
        let tampered: Vec<&[u8]> = vec![b"p1", b"pX", b"p3"];
        assert!(!verify_chain(Digest::ZERO, &tampered, hc.head()));
        assert!(!verify_chain(sha256(b"wrong root"), &items, hc.head()));
    }

    #[test]
    fn reset_to_supports_rollback() {
        let mut hc = HashChain::new();
        hc.push(b"a");
        let (head, len) = (hc.head(), hc.len());
        hc.push(b"b");
        hc.reset_to(head, len);
        let after = hc.push(b"b2");
        assert_eq!(after, chain(head, b"b2"));
        assert_eq!(hc.len(), 2);
    }
}
