//! The crypto cost meter.
//!
//! In the discrete-event simulator, time is virtual, yet the *relative*
//! cost of protocol designs is dominated by cryptography (Table 1's
//! authenticator complexity). Every operation performed through
//! [`crate::NodeCrypto`] therefore records a calibrated virtual-time cost
//! into a [`Meter`], which the simulator drains after each event and
//! charges to the node's CPU model.
//!
//! Costs are split into two pools, mirroring a multi-core server:
//!
//! * **serial** — work on the node's dispatch core (packet handling, MAC
//!   computation inline with dispatch);
//! * **parallel** — work that the implementation farms out to worker cores
//!   (bulk signing/verification), charged to the node's core pool.
//!
//! Default costs below were calibrated with
//! `cargo bench -p neo-bench --bench crypto` on the build machine and are
//! in the right ballpark for any recent x86 server. They are *inputs* to
//! the simulation, recorded in experiment output for transparency.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Calibrated nanosecond costs for each primitive operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Fixed cost of one SHA-256 invocation.
    pub sha256_base: u64,
    /// Additional SHA-256 cost per 64-byte block.
    pub sha256_per_block: u64,
    /// One SipHash-2-4 MAC over a short input.
    pub siphash: u64,
    /// Ed25519 signature generation.
    pub ed25519_sign: u64,
    /// Ed25519 signature verification.
    pub ed25519_verify: u64,
    /// secp256k1 ECDSA signature generation (software; the FPGA model has
    /// its own pipeline timing).
    pub ecdsa_sign: u64,
    /// secp256k1 ECDSA signature verification.
    pub ecdsa_verify: u64,
}

impl CostModel {
    /// Calibrated defaults (see module docs).
    pub const CALIBRATED: CostModel = CostModel {
        sha256_base: 120,
        sha256_per_block: 60,
        siphash: 40,
        ed25519_sign: 15_000,
        ed25519_verify: 40_000,
        ecdsa_sign: 30_000,
        ecdsa_verify: 50_000,
    };

    /// A zero-cost model: useful in unit tests that assert protocol logic
    /// without caring about timing.
    pub const FREE: CostModel = CostModel {
        sha256_base: 0,
        sha256_per_block: 0,
        siphash: 0,
        ed25519_sign: 0,
        ed25519_verify: 0,
        ecdsa_sign: 0,
        ecdsa_verify: 0,
    };

    /// Cost of hashing `len` bytes.
    pub fn sha256(&self, len: usize) -> u64 {
        self.sha256_base + self.sha256_per_block * (len as u64 / 64 + 1)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::CALIBRATED
    }
}

/// Thread-safe accumulator of charged virtual time.
///
/// Cloning shares the underlying counters; the simulator keeps one clone
/// per node and drains it after each event handler returns. Serial work
/// accumulates as a single sum; parallel work is recorded as *individual
/// tasks* so the CPU model can spread them across worker cores (one
/// signature verification is one task — a batch of 16 verifications uses
/// 16 cores, not one core 16 times as long).
#[derive(Clone, Debug, Default)]
pub struct Meter {
    serial_ns: Arc<AtomicU64>,
    parallel_tasks: Arc<Mutex<Vec<u64>>>,
}

impl Meter {
    /// Fresh meter with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge serial (dispatch-core) work.
    pub fn charge_serial(&self, ns: u64) {
        self.serial_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Charge one parallel (worker-pool) task.
    pub fn charge_parallel(&self, ns: u64) {
        if ns > 0 {
            self.parallel_tasks.lock().push(ns);
        }
    }

    /// Take and reset the accumulated serial nanoseconds and the parallel
    /// task list.
    pub fn drain(&self) -> (u64, Vec<u64>) {
        (
            self.serial_ns.swap(0, Ordering::Relaxed),
            std::mem::take(&mut *self.parallel_tasks.lock()),
        )
    }

    /// Peek totals without resetting: (serial, sum of parallel tasks).
    pub fn peek(&self) -> (u64, u64) {
        (
            self.serial_ns.load(Ordering::Relaxed),
            self.parallel_tasks.lock().iter().sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_and_drain() {
        let m = Meter::new();
        m.charge_serial(10);
        m.charge_serial(5);
        m.charge_parallel(100);
        m.charge_parallel(50);
        assert_eq!(m.peek(), (15, 150));
        assert_eq!(m.drain(), (15, vec![100, 50]));
        assert_eq!(m.drain(), (0, vec![]));
    }

    #[test]
    fn clones_share_counters() {
        let m = Meter::new();
        let m2 = m.clone();
        m2.charge_serial(7);
        assert_eq!(m.peek(), (7, 0));
    }

    #[test]
    fn sha256_cost_scales_with_length() {
        let c = CostModel::CALIBRATED;
        assert!(c.sha256(0) > 0);
        assert!(c.sha256(4096) > c.sha256(64));
    }

    #[test]
    fn free_model_is_zero() {
        let c = CostModel::FREE;
        assert_eq!(c.sha256(1_000_000), 0);
        assert_eq!(c.ed25519_sign, 0);
    }
}
