//! Byzantine node adapters.
//!
//! A [`ByzantineNode`] wraps any [`Node`] and perturbs its *outgoing*
//! traffic at the transport boundary — the inner state machine runs
//! unmodified, but what the network sees is adversarial. This models a
//! compromised host whose protocol stack is intact but whose NIC-level
//! output is controlled by the attacker; it composes with any protocol
//! node without protocol-specific knowledge.
//!
//! Strategies (all counter-based, so runs stay deterministic):
//!
//! * [`ByzStrategy::Equivocate`] — flip a byte in every second send, so a
//!   broadcast delivers *different* payloads to different destinations
//!   (the classic equivocation shape; correct receivers must treat the
//!   corrupted variant as absent or invalid).
//! * [`ByzStrategy::ReplayStale`] — remember a bounded history of past
//!   sends and periodically re-send a stale payload to the current
//!   destination (at-most-once and idempotency machinery must absorb it).
//! * [`ByzStrategy::SilenceTowards`] — suppress every send to a chosen
//!   destination set (selective silence: the node looks alive to some
//!   peers and crashed to others).

use crate::node::{Context, Node, TimerId};
use crate::time::{Duration, Time};
use neo_wire::{Addr, Payload};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::VecDeque;

/// Maximum number of past sends [`ByzStrategy::ReplayStale`] remembers.
const REPLAY_HISTORY: usize = 64;

/// How a [`ByzantineNode`] perturbs its wrapped node's output.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ByzStrategy {
    /// Flip one byte of every second outgoing payload: broadcasts become
    /// equivocations (different destinations see different bytes).
    Equivocate,
    /// Every `every`-th send additionally re-sends a stale payload from
    /// the node's own past output to the same destination.
    ReplayStale {
        /// Replay period in sends (0 is treated as 1).
        every: u64,
    },
    /// Suppress all sends to these destinations.
    SilenceTowards(Vec<Addr>),
}

/// Counters describing what the adapter actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ByzStats {
    /// Payloads mutated before sending (equivocation).
    pub mutated: u64,
    /// Stale payloads re-sent.
    pub replayed: u64,
    /// Sends suppressed (selective silence).
    pub suppressed: u64,
}

/// A wrapper that makes any [`Node`] Byzantine at the transport boundary.
pub struct ByzantineNode {
    inner: Box<dyn Node>,
    strategy: ByzStrategy,
    sends_seen: u64,
    history: VecDeque<(Addr, Payload)>,
    stats: ByzStats,
}

impl ByzantineNode {
    /// Wrap `inner` with the given misbehaviour strategy.
    pub fn new(inner: Box<dyn Node>, strategy: ByzStrategy) -> Self {
        ByzantineNode {
            inner,
            strategy,
            sends_seen: 0,
            history: VecDeque::new(),
            stats: ByzStats::default(),
        }
    }

    /// What the adapter has done so far.
    pub fn stats(&self) -> ByzStats {
        self.stats
    }

    /// Immutable view of the wrapped node's concrete state.
    pub fn inner_ref<T: 'static>(&self) -> Option<&T> {
        self.inner.as_any().downcast_ref::<T>()
    }

    /// Mutable view of the wrapped node's concrete state.
    pub fn inner_mut<T: 'static>(&mut self) -> Option<&mut T> {
        self.inner.as_any_mut().downcast_mut::<T>()
    }
}

/// Context wrapper that applies the strategy to outgoing sends and
/// forwards everything else to the real executor context.
struct ByzCtx<'a> {
    inner: &'a mut dyn Context,
    strategy: &'a ByzStrategy,
    sends_seen: &'a mut u64,
    history: &'a mut VecDeque<(Addr, Payload)>,
    stats: &'a mut ByzStats,
}

impl Context for ByzCtx<'_> {
    fn now(&self) -> Time {
        self.inner.now()
    }
    fn me(&self) -> Addr {
        self.inner.me()
    }
    fn send_after(&mut self, to: Addr, payload: Payload, extra_delay: Duration) {
        *self.sends_seen += 1;
        match self.strategy {
            ByzStrategy::Equivocate => {
                let payload = if *self.sends_seen % 2 == 0 && !payload.is_empty() {
                    self.stats.mutated += 1;
                    let mut bytes = payload.to_vec();
                    let mid = bytes.len() / 2;
                    bytes[mid] ^= 0x01;
                    Payload::from(bytes)
                } else {
                    payload
                };
                self.inner.send_after(to, payload, extra_delay);
            }
            ByzStrategy::ReplayStale { every } => {
                let every = (*every).max(1);
                if self.history.len() == REPLAY_HISTORY {
                    self.history.pop_front();
                }
                self.history.push_back((to, payload.clone()));
                self.inner.send_after(to, payload, extra_delay);
                if *self.sends_seen % every == 0 && !self.history.is_empty() {
                    let idx = (*self.sends_seen as usize) % self.history.len();
                    if let Some((_, stale)) = self.history.get(idx) {
                        self.stats.replayed += 1;
                        self.inner.send_after(to, stale.clone(), extra_delay);
                    }
                }
            }
            ByzStrategy::SilenceTowards(silenced) => {
                if silenced.contains(&to) {
                    self.stats.suppressed += 1;
                } else {
                    self.inner.send_after(to, payload, extra_delay);
                }
            }
        }
    }
    fn set_timer(&mut self, delay: Duration, kind: u32) -> TimerId {
        self.inner.set_timer(delay, kind)
    }
    fn cancel_timer(&mut self, timer: TimerId) {
        self.inner.cancel_timer(timer)
    }
    fn charge(&mut self, ns: u64) {
        self.inner.charge(ns)
    }
    fn metrics(&self) -> &crate::obs::Metrics {
        self.inner.metrics()
    }
}

impl Node for ByzantineNode {
    fn on_message(&mut self, from: Addr, payload: &[u8], ctx: &mut dyn Context) {
        let ByzantineNode {
            inner,
            strategy,
            sends_seen,
            history,
            stats,
        } = self;
        let mut bctx = ByzCtx {
            inner: ctx,
            strategy,
            sends_seen,
            history,
            stats,
        };
        inner.on_message(from, payload, &mut bctx);
    }

    fn on_timer(&mut self, timer: TimerId, kind: u32, ctx: &mut dyn Context) {
        let ByzantineNode {
            inner,
            strategy,
            sends_seen,
            history,
            stats,
        } = self;
        let mut bctx = ByzCtx {
            inner: ctx,
            strategy,
            sends_seen,
            history,
            stats,
        };
        inner.on_timer(timer, kind, &mut bctx);
    }

    fn meter(&self) -> Option<&neo_crypto::Meter> {
        self.inner.meter()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_wire::ReplicaId;

    const PEERS: [ReplicaId; 3] = [ReplicaId(1), ReplicaId(2), ReplicaId(3)];

    /// Broadcasts a fixed payload to its peers on every message.
    struct Chatter;
    impl Node for Chatter {
        fn on_message(&mut self, _: Addr, payload: &[u8], ctx: &mut dyn Context) {
            ctx.broadcast(&PEERS, Payload::copy_from_slice(payload));
        }
        fn on_timer(&mut self, _: TimerId, _: u32, _: &mut dyn Context) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Records outgoing sends.
    struct Capture {
        sends: Vec<(Addr, Vec<u8>)>,
    }
    impl Context for Capture {
        fn now(&self) -> Time {
            0
        }
        fn me(&self) -> Addr {
            Addr::Replica(ReplicaId(0))
        }
        fn send_after(&mut self, to: Addr, payload: Payload, _: Duration) {
            self.sends.push((to, payload.to_vec()));
        }
        fn set_timer(&mut self, _: Duration, _: u32) -> TimerId {
            TimerId(0)
        }
        fn cancel_timer(&mut self, _: TimerId) {}
        fn charge(&mut self, _: u64) {}
    }

    fn drive(node: &mut ByzantineNode, rounds: usize) -> Capture {
        let mut cap = Capture { sends: vec![] };
        for _ in 0..rounds {
            node.on_message(Addr::Config, &[9, 9, 9], &mut cap);
        }
        cap
    }

    #[test]
    fn equivocate_sends_different_payloads_to_different_destinations() {
        let mut byz = ByzantineNode::new(Box::new(Chatter), ByzStrategy::Equivocate);
        let cap = drive(&mut byz, 1);
        assert_eq!(cap.sends.len(), 3);
        let payloads: Vec<&Vec<u8>> = cap.sends.iter().map(|(_, p)| p).collect();
        assert_ne!(payloads[0], payloads[1], "equivocation across peers");
        assert_eq!(payloads[0], payloads[2]);
        assert_eq!(byz.stats().mutated, 1);
    }

    #[test]
    fn replay_resends_stale_payloads() {
        let mut byz = ByzantineNode::new(Box::new(Chatter), ByzStrategy::ReplayStale { every: 3 });
        let cap = drive(&mut byz, 2);
        // 6 genuine sends plus replays at sends 3 and 6.
        assert_eq!(byz.stats().replayed, 2);
        assert_eq!(cap.sends.len(), 8);
    }

    #[test]
    fn silence_towards_suppresses_selected_destinations_only() {
        let silenced = vec![Addr::Replica(ReplicaId(2))];
        let mut byz = ByzantineNode::new(Box::new(Chatter), ByzStrategy::SilenceTowards(silenced));
        let cap = drive(&mut byz, 2);
        assert_eq!(cap.sends.len(), 4, "one of three peers silenced");
        assert!(cap
            .sends
            .iter()
            .all(|(to, _)| *to != Addr::Replica(ReplicaId(2))));
        assert_eq!(byz.stats().suppressed, 2);
    }

    #[test]
    fn inner_state_stays_reachable_through_the_wrapper() {
        struct Counting(u64);
        impl Node for Counting {
            fn on_message(&mut self, _: Addr, _: &[u8], _: &mut dyn Context) {
                self.0 += 1;
            }
            fn on_timer(&mut self, _: TimerId, _: u32, _: &mut dyn Context) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut byz = ByzantineNode::new(Box::new(Counting(0)), ByzStrategy::Equivocate);
        let mut cap = Capture { sends: vec![] };
        byz.on_message(Addr::Config, &[1], &mut cap);
        assert_eq!(byz.inner_ref::<Counting>().unwrap().0, 1);
        byz.inner_mut::<Counting>().unwrap().0 = 7;
        assert_eq!(byz.inner_ref::<Counting>().unwrap().0, 7);
    }
}
