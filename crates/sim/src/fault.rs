//! Targeted fault injection.
//!
//! Beyond the uniform random drop rate in [`crate::NetConfig`], experiments
//! need *surgical* faults: kill the sequencer at t=10s (§6.4), drop every
//! packet from a given replica (Zyzzyva-F), partition a node, etc. A
//! [`FaultPlan`] is a set of declarative rules the simulator consults for
//! every packet.
//!
//! The adversary model goes beyond drops: [`FaultRule::Duplicate`] delivers
//! extra copies of a packet (each with its own jitter draw, so copies
//! reorder), [`FaultRule::DelaySpike`] holds a packet long enough to reorder
//! it past the fabric's jitter window, [`FaultRule::Tamper`] flips a byte of
//! the payload in flight (exercising authenticator rejection paths), and
//! [`FaultRule::Partition`] splits the cluster into a named island that
//! heals at a fixed time. Rules are plain data (`serde`-serializable) so a
//! failing chaos seed can print its exact plan for one-command reproduction.

use crate::time::Time;
use neo_wire::Addr;
use serde::{Deserialize, Serialize};

/// Sentinel "end of window" meaning *forever* (inclusive of `u64::MAX`).
pub const FOREVER: Time = u64::MAX;

/// True when `t` falls inside `[from, until)`, where `until == FOREVER`
/// means the window never closes (a packet stamped at exactly `u64::MAX`
/// is still inside it).
fn in_window(t: Time, from: Time, until: Time) -> bool {
    t >= from && (until == FOREVER || t < until)
}

/// One fault rule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultRule {
    /// Drop every packet whose source matches, within the time window.
    SilenceSource {
        /// Source address to silence.
        addr: Addr,
        /// Window start (inclusive).
        from: Time,
        /// Window end (exclusive); [`FOREVER`] = forever.
        until: Time,
    },
    /// Drop every packet whose destination matches, within the window.
    Isolate {
        /// Destination to isolate.
        addr: Addr,
        /// Window start (inclusive).
        from: Time,
        /// Window end (exclusive).
        until: Time,
    },
    /// Drop packets between a specific pair (directional).
    CutLink {
        /// Source address.
        src: Addr,
        /// Destination address.
        dst: Addr,
        /// Window start (inclusive).
        from: Time,
        /// Window end (exclusive).
        until: Time,
    },
    /// Deliver `copies` copies of every packet from `src` (the network
    /// duplicated the frame). Each copy draws its own jitter, so copies
    /// arrive reordered relative to each other and to later packets.
    Duplicate {
        /// Source whose packets are duplicated.
        src: Addr,
        /// Total number of delivered copies (≥ 1; 1 = no-op).
        copies: u32,
        /// Window start (inclusive).
        from: Time,
        /// Window end (exclusive).
        until: Time,
    },
    /// Hold every packet from `src` for an extra `extra_ns` before it
    /// enters the fabric — long spikes reorder packets past the jitter
    /// window (packets sent *after* the window arrive first).
    DelaySpike {
        /// Source whose packets are delayed.
        src: Addr,
        /// Extra hold time in nanoseconds (added before normal latency).
        extra_ns: u64,
        /// Window start (inclusive).
        from: Time,
        /// Window end (exclusive).
        until: Time,
    },
    /// Flip one byte of every packet from `src` (in-flight corruption of
    /// payload or authenticator). Which byte/bit is chosen by the
    /// simulator's seeded RNG, so runs stay deterministic.
    Tamper {
        /// Source whose packets are corrupted.
        src: Addr,
        /// Window start (inclusive).
        from: Time,
        /// Window end (exclusive).
        until: Time,
    },
    /// Network partition: within the window, packets crossing the island
    /// boundary (either direction) are dropped. Heals at `until`.
    Partition {
        /// The island: nodes on one side of the split.
        island: Vec<Addr>,
        /// Window start (inclusive).
        from: Time,
        /// Heal time (exclusive); [`FOREVER`] = never heals.
        until: Time,
    },
    /// Crash-restart: the node is down (packets to and from it dropped)
    /// from `crash_at` until `restart_at`, then rejoins from whatever its
    /// durable store holds. The drop window is the fabric-level half; the
    /// chaos runner additionally removes the node object at `crash_at`
    /// and re-adds a fresh one over the same store at `restart_at`.
    CrashRestart {
        /// The crashing node.
        addr: Addr,
        /// Crash time (inclusive).
        crash_at: Time,
        /// Restart time (exclusive end of the down window).
        restart_at: Time,
    },
}

/// What the fault plan decided for a single packet: the simulator applies
/// these effects in [`crate::Simulator`]'s transmit path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PacketFate {
    /// Drop the packet entirely.
    pub drop: bool,
    /// Number of copies to deliver (1 = normal).
    pub copies: u32,
    /// Extra delay added before fabric latency, in nanoseconds.
    pub extra_delay_ns: u64,
    /// Flip one byte of the payload in flight.
    pub tamper: bool,
}

impl Default for PacketFate {
    fn default() -> Self {
        PacketFate {
            drop: false,
            copies: 1,
            extra_delay_ns: 0,
            tamper: false,
        }
    }
}

/// A collection of fault rules.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (no targeted faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// Add a rule.
    pub fn with(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Silence `addr` as a sender from `from` onwards (crash fault).
    pub fn crash(self, addr: Addr, from: Time) -> Self {
        self.with(FaultRule::SilenceSource {
            addr,
            from,
            until: FOREVER,
        })
        .with(FaultRule::Isolate {
            addr,
            from,
            until: FOREVER,
        })
    }

    /// Duplicate every packet from `src` within the window.
    pub fn duplicate(self, src: Addr, copies: u32, from: Time, until: Time) -> Self {
        self.with(FaultRule::Duplicate {
            src,
            copies,
            from,
            until,
        })
    }

    /// Delay every packet from `src` by `extra_ns` within the window.
    pub fn delay_spike(self, src: Addr, extra_ns: u64, from: Time, until: Time) -> Self {
        self.with(FaultRule::DelaySpike {
            src,
            extra_ns,
            from,
            until,
        })
    }

    /// Corrupt every packet from `src` within the window.
    pub fn tamper(self, src: Addr, from: Time, until: Time) -> Self {
        self.with(FaultRule::Tamper { src, from, until })
    }

    /// Partition `island` from the rest of the cluster until `until`.
    pub fn partition(self, island: Vec<Addr>, from: Time, until: Time) -> Self {
        self.with(FaultRule::Partition {
            island,
            from,
            until,
        })
    }

    /// Crash `addr` at `crash_at` and bring it back at `restart_at`.
    pub fn crash_restart(self, addr: Addr, crash_at: Time, restart_at: Time) -> Self {
        self.with(FaultRule::CrashRestart {
            addr,
            crash_at,
            restart_at,
        })
    }

    /// Decide the fate of the packet `src → dst` departing at time `t`.
    pub fn fate(&self, src: Addr, dst: Addr, t: Time) -> PacketFate {
        let mut fate = PacketFate::default();
        for r in &self.rules {
            match r {
                FaultRule::SilenceSource { addr, from, until } => {
                    if *addr == src && in_window(t, *from, *until) {
                        fate.drop = true;
                    }
                }
                FaultRule::Isolate { addr, from, until } => {
                    if *addr == dst && in_window(t, *from, *until) {
                        fate.drop = true;
                    }
                }
                FaultRule::CutLink {
                    src: s,
                    dst: d,
                    from,
                    until,
                } => {
                    if *s == src && *d == dst && in_window(t, *from, *until) {
                        fate.drop = true;
                    }
                }
                FaultRule::Duplicate {
                    src: s,
                    copies,
                    from,
                    until,
                } => {
                    if *s == src && in_window(t, *from, *until) {
                        fate.copies = fate.copies.max((*copies).max(1));
                    }
                }
                FaultRule::DelaySpike {
                    src: s,
                    extra_ns,
                    from,
                    until,
                } => {
                    if *s == src && in_window(t, *from, *until) {
                        fate.extra_delay_ns = fate.extra_delay_ns.max(*extra_ns);
                    }
                }
                FaultRule::Tamper {
                    src: s,
                    from,
                    until,
                } => {
                    if *s == src && in_window(t, *from, *until) {
                        fate.tamper = true;
                    }
                }
                FaultRule::Partition {
                    island,
                    from,
                    until,
                } => {
                    if in_window(t, *from, *until) && island.contains(&src) != island.contains(&dst)
                    {
                        fate.drop = true;
                    }
                }
                FaultRule::CrashRestart {
                    addr,
                    crash_at,
                    restart_at,
                } => {
                    if (*addr == src || *addr == dst) && in_window(t, *crash_at, *restart_at) {
                        fate.drop = true;
                    }
                }
            }
        }
        fate
    }

    /// The crash-restart windows in this plan, as `(addr, crash_at,
    /// restart_at)` — the runner half of [`FaultRule::CrashRestart`].
    pub fn crash_restarts(&self) -> Vec<(Addr, Time, Time)> {
        self.rules
            .iter()
            .filter_map(|r| match r {
                FaultRule::CrashRestart {
                    addr,
                    crash_at,
                    restart_at,
                } => Some((*addr, *crash_at, *restart_at)),
                _ => None,
            })
            .collect()
    }

    /// Should the packet `src → dst` at time `t` be dropped?
    pub fn drops(&self, src: Addr, dst: Addr, t: Time) -> bool {
        self.fate(src, dst, t).drop
    }

    /// The rules in this plan (read-only, for reporting/coverage).
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// True if the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_wire::{ClientId, GroupId, ReplicaId};

    const R0: Addr = Addr::Replica(ReplicaId(0));
    const R1: Addr = Addr::Replica(ReplicaId(1));
    const R2: Addr = Addr::Replica(ReplicaId(2));
    const C0: Addr = Addr::Client(ClientId(0));
    const SEQ: Addr = Addr::Sequencer(GroupId(0));

    #[test]
    fn empty_plan_drops_nothing() {
        let p = FaultPlan::none();
        assert!(!p.drops(R0, R1, 0));
        assert_eq!(p.fate(R0, R1, 0), PacketFate::default());
        assert!(p.is_empty());
    }

    #[test]
    fn silence_source_is_directional_and_windowed() {
        let p = FaultPlan::none().with(FaultRule::SilenceSource {
            addr: R0,
            from: 100,
            until: 200,
        });
        assert!(!p.drops(R0, R1, 99));
        assert!(p.drops(R0, R1, 100));
        assert!(p.drops(R0, SEQ, 150));
        assert!(!p.drops(R0, R1, 200));
        assert!(!p.drops(R1, R0, 150), "only the source direction");
    }

    #[test]
    fn crash_cuts_both_directions_forever() {
        let p = FaultPlan::none().crash(SEQ, 1000);
        assert!(!p.drops(SEQ, R0, 999));
        assert!(p.drops(SEQ, R0, 1000));
        assert!(p.drops(R0, SEQ, u64::MAX - 1));
    }

    #[test]
    fn forever_crash_is_inclusive_of_the_last_instant() {
        // A "forever" window must not exclude t == u64::MAX: the old
        // strict `t < until` check let a packet stamped at exactly the
        // end of time slip through a crash.
        let p = FaultPlan::none().crash(SEQ, 1000);
        assert!(p.drops(SEQ, R0, u64::MAX));
        assert!(p.drops(R0, SEQ, u64::MAX));
        // Finite windows stay end-exclusive.
        let q = FaultPlan::none().with(FaultRule::SilenceSource {
            addr: R0,
            from: 0,
            until: u64::MAX - 1,
        });
        assert!(!q.drops(R0, R1, u64::MAX - 1));
    }

    #[test]
    fn cut_link_is_pairwise() {
        let p = FaultPlan::none().with(FaultRule::CutLink {
            src: R0,
            dst: R1,
            from: 0,
            until: u64::MAX,
        });
        assert!(p.drops(R0, R1, 5));
        assert!(!p.drops(R1, R0, 5));
        assert!(!p.drops(R0, SEQ, 5));
    }

    #[test]
    fn duplicate_sets_copy_count_inside_window() {
        let p = FaultPlan::none().duplicate(SEQ, 3, 100, 200);
        assert_eq!(p.fate(SEQ, R0, 150).copies, 3);
        assert_eq!(p.fate(SEQ, R0, 99).copies, 1);
        assert_eq!(p.fate(SEQ, R0, 200).copies, 1);
        assert_eq!(p.fate(R0, SEQ, 150).copies, 1, "source-directional");
        // Overlapping rules take the max, and copies is floored at 1.
        let q = FaultPlan::none()
            .duplicate(SEQ, 0, 0, 1000)
            .duplicate(SEQ, 2, 0, 1000);
        assert_eq!(q.fate(SEQ, R0, 10).copies, 2);
    }

    #[test]
    fn delay_spike_adds_hold_time() {
        let p = FaultPlan::none().delay_spike(R0, 5_000, 10, 20);
        assert_eq!(p.fate(R0, R1, 15).extra_delay_ns, 5_000);
        assert_eq!(p.fate(R0, R1, 9).extra_delay_ns, 0);
        assert_eq!(p.fate(R1, R0, 15).extra_delay_ns, 0);
    }

    #[test]
    fn tamper_marks_packets_inside_window() {
        let p = FaultPlan::none().tamper(SEQ, 0, 100);
        assert!(p.fate(SEQ, R0, 50).tamper);
        assert!(!p.fate(SEQ, R0, 100).tamper);
        assert!(!p.fate(R0, SEQ, 50).tamper);
    }

    #[test]
    fn partition_cuts_the_boundary_both_ways_and_heals() {
        let p = FaultPlan::none().partition(vec![R0, R1], 100, 200);
        // Across the boundary, both directions.
        assert!(p.drops(R0, R2, 150));
        assert!(p.drops(R2, R1, 150));
        assert!(p.drops(R0, SEQ, 150));
        // Within an island traffic flows.
        assert!(!p.drops(R0, R1, 150));
        assert!(!p.drops(R2, C0, 150), "both outside the island");
        // Heals at `until`.
        assert!(!p.drops(R0, R2, 200));
    }

    #[test]
    fn fates_combine_across_rules() {
        let p = FaultPlan::none()
            .duplicate(R0, 2, 0, 1000)
            .delay_spike(R0, 9_000, 0, 1000)
            .tamper(R0, 0, 1000);
        let f = p.fate(R0, R1, 10);
        assert_eq!(
            f,
            PacketFate {
                drop: false,
                copies: 2,
                extra_delay_ns: 9_000,
                tamper: true,
            }
        );
    }

    #[test]
    fn crash_restart_downs_the_node_then_heals() {
        let p = FaultPlan::none().crash_restart(R1, 100, 200);
        assert!(!p.drops(R1, R0, 99));
        assert!(p.drops(R1, R0, 100), "outbound dropped while down");
        assert!(p.drops(R0, R1, 150), "inbound dropped while down");
        assert!(!p.drops(R0, R1, 200), "heals at restart");
        assert!(!p.drops(R0, R2, 150), "other links unaffected");
        assert_eq!(p.crash_restarts(), vec![(R1, 100, 200)]);
        assert!(FaultPlan::none().crash(SEQ, 0).crash_restarts().is_empty());
    }

    #[test]
    fn plans_round_trip_through_serde() {
        let p = FaultPlan::none()
            .crash(SEQ, 500)
            .duplicate(R0, 3, 0, 100)
            .delay_spike(R1, 2_000, 10, 90)
            .tamper(SEQ, 5, 50)
            .crash_restart(R2, 100, 400)
            .partition(vec![R0, C0], 0, FOREVER);
        let json = serde_json::to_string(&p).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(p, back);
    }
}
