//! Targeted fault injection.
//!
//! Beyond the uniform random drop rate in [`crate::NetConfig`], experiments
//! need *surgical* faults: kill the sequencer at t=10s (§6.4), drop every
//! packet from a given replica (Zyzzyva-F), partition a node, etc. A
//! [`FaultPlan`] is a set of declarative rules the simulator consults for
//! every packet.

use crate::time::Time;
use neo_wire::Addr;

/// One fault rule.
#[derive(Clone, Debug)]
pub enum FaultRule {
    /// Drop every packet whose source matches, within the time window.
    SilenceSource {
        /// Source address to silence.
        addr: Addr,
        /// Window start (inclusive).
        from: Time,
        /// Window end (exclusive); `u64::MAX` = forever.
        until: Time,
    },
    /// Drop every packet whose destination matches, within the window.
    Isolate {
        /// Destination to isolate.
        addr: Addr,
        /// Window start (inclusive).
        from: Time,
        /// Window end (exclusive).
        until: Time,
    },
    /// Drop packets between a specific pair (directional).
    CutLink {
        /// Source address.
        src: Addr,
        /// Destination address.
        dst: Addr,
        /// Window start (inclusive).
        from: Time,
        /// Window end (exclusive).
        until: Time,
    },
}

/// A collection of fault rules.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (no targeted faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// Add a rule.
    pub fn with(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Silence `addr` as a sender from `from` onwards (crash fault).
    pub fn crash(self, addr: Addr, from: Time) -> Self {
        self.with(FaultRule::SilenceSource {
            addr,
            from,
            until: u64::MAX,
        })
        .with(FaultRule::Isolate {
            addr,
            from,
            until: u64::MAX,
        })
    }

    /// Should the packet `src → dst` at time `t` be dropped?
    pub fn drops(&self, src: Addr, dst: Addr, t: Time) -> bool {
        self.rules.iter().any(|r| match *r {
            FaultRule::SilenceSource { addr, from, until } => addr == src && t >= from && t < until,
            FaultRule::Isolate { addr, from, until } => addr == dst && t >= from && t < until,
            FaultRule::CutLink {
                src: s,
                dst: d,
                from,
                until,
            } => s == src && d == dst && t >= from && t < until,
        })
    }

    /// True if the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_wire::{GroupId, ReplicaId};

    const R0: Addr = Addr::Replica(ReplicaId(0));
    const R1: Addr = Addr::Replica(ReplicaId(1));
    const SEQ: Addr = Addr::Sequencer(GroupId(0));

    #[test]
    fn empty_plan_drops_nothing() {
        let p = FaultPlan::none();
        assert!(!p.drops(R0, R1, 0));
        assert!(p.is_empty());
    }

    #[test]
    fn silence_source_is_directional_and_windowed() {
        let p = FaultPlan::none().with(FaultRule::SilenceSource {
            addr: R0,
            from: 100,
            until: 200,
        });
        assert!(!p.drops(R0, R1, 99));
        assert!(p.drops(R0, R1, 100));
        assert!(p.drops(R0, SEQ, 150));
        assert!(!p.drops(R0, R1, 200));
        assert!(!p.drops(R1, R0, 150), "only the source direction");
    }

    #[test]
    fn crash_cuts_both_directions_forever() {
        let p = FaultPlan::none().crash(SEQ, 1000);
        assert!(!p.drops(SEQ, R0, 999));
        assert!(p.drops(SEQ, R0, 1000));
        assert!(p.drops(R0, SEQ, u64::MAX - 1));
    }

    #[test]
    fn cut_link_is_pairwise() {
        let p = FaultPlan::none().with(FaultRule::CutLink {
            src: R0,
            dst: R1,
            from: 0,
            until: u64::MAX,
        });
        assert!(p.drops(R0, R1, 5));
        assert!(!p.drops(R1, R0, 5));
        assert!(!p.drops(R0, SEQ, 5));
    }
}
