//! Network-level counters.

use serde::{Deserialize, Serialize};

/// Counters the simulator maintains about the fabric.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the network by nodes.
    pub sent: u64,
    /// Messages delivered to a node's handler.
    pub delivered: u64,
    /// Messages dropped by the random loss process.
    pub dropped_random: u64,
    /// Messages dropped by targeted fault rules.
    pub dropped_fault: u64,
    /// Messages addressed to an unregistered node.
    pub dropped_unroutable: u64,
    /// Total payload bytes delivered.
    pub bytes_delivered: u64,
    /// Extra copies injected by `Duplicate` fault rules (each copy is
    /// also counted in `sent`, so conservation holds).
    pub duplicated: u64,
    /// Packets corrupted in flight by `Tamper` fault rules.
    pub tampered: u64,
    /// Packets held back by `DelaySpike` fault rules.
    pub delay_spiked: u64,
}

impl NetStats {
    /// All drops combined.
    pub fn dropped(&self) -> u64 {
        self.dropped_random + self.dropped_fault + self.dropped_unroutable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropped_sums_categories() {
        let s = NetStats {
            dropped_random: 2,
            dropped_fault: 3,
            dropped_unroutable: 5,
            ..Default::default()
        };
        assert_eq!(s.dropped(), 10);
    }
}
