//! The discrete-event simulation engine.

use crate::cpu::{CpuConfig, CpuState};
use crate::fault::FaultPlan;
use crate::net::NetConfig;
use crate::node::{Context, Node, TimerId};
use crate::obs::{
    EventKind, EventRecord, FlightDump, HealthReport, Metrics, MetricsSnapshot, NodeFlight,
    ObsConfig, ObsStreamLine,
};
use crate::stats::NetStats;
use crate::time::{Duration, Time};
use neo_wire::{Addr, Payload};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

/// Timer kind every node receives once at t = 0 (bootstrap convention:
/// nodes use it to arm their own timers or send their first messages).
pub const INIT_TIMER_KIND: u32 = 0;

/// Top-level simulation parameters.
#[derive(Clone, Debug, Default)]
pub struct SimConfig {
    /// Fabric model.
    pub net: NetConfig,
    /// CPU model applied to nodes added without an explicit override.
    pub default_cpu: CpuConfig,
    /// RNG seed: same seed → identical run.
    pub seed: u64,
    /// Targeted fault rules.
    pub faults: FaultPlan,
}

#[derive(Debug)]
enum Event {
    Deliver {
        to: Addr,
        from: Addr,
        payload: Payload,
    },
    Timer {
        node: Addr,
        id: TimerId,
        kind: u32,
    },
}

/// The simulator: owns the nodes, the clock, and the event queue.
pub struct Simulator {
    cfg: SimConfig,
    obs: ObsConfig,
    nodes: HashMap<Addr, Slot>,
    queue: BinaryHeap<Reverse<(Time, u64)>>,
    events: HashMap<u64, Event>,
    next_seq: u64,
    next_timer: u64,
    cancelled: HashSet<TimerId>,
    rng: ChaCha8Rng,
    stats: NetStats,
    now: Time,
}

struct Slot {
    node: Box<dyn Node>,
    cpu: CpuState,
    metrics: Arc<Metrics>,
}

struct SimCtx {
    now: Time,
    me: Addr,
    sends: Vec<(Addr, Payload, Duration)>,
    timers: Vec<(Duration, u32, TimerId)>,
    cancels: Vec<TimerId>,
    charge: u64,
    next_timer: u64,
    metrics: Arc<Metrics>,
}

impl Context for SimCtx {
    fn now(&self) -> Time {
        self.now
    }
    fn me(&self) -> Addr {
        self.me
    }
    fn send_after(&mut self, to: Addr, payload: Payload, extra_delay: Duration) {
        self.sends.push((to, payload, extra_delay));
    }
    fn set_timer(&mut self, delay: Duration, kind: u32) -> TimerId {
        let id = TimerId(self.next_timer);
        self.next_timer += 1;
        self.timers.push((delay, kind, id));
        id
    }
    fn cancel_timer(&mut self, timer: TimerId) {
        self.cancels.push(timer);
    }
    fn charge(&mut self, ns: u64) {
        self.charge += ns;
    }
    fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}

impl Simulator {
    /// Build an empty simulation.
    pub fn new(cfg: SimConfig) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        Simulator {
            cfg,
            obs: ObsConfig::default(),
            nodes: HashMap::new(),
            queue: BinaryHeap::new(),
            events: HashMap::new(),
            next_seq: 0,
            next_timer: 1, // 0 is reserved for the bootstrap timer
            cancelled: HashSet::new(),
            rng,
            stats: NetStats::default(),
            now: 0,
        }
    }

    /// Register a node under `addr` with the default CPU model and
    /// schedule its bootstrap timer at t = 0.
    pub fn add_node(&mut self, addr: Addr, node: Box<dyn Node>) {
        self.add_node_with_cpu(addr, node, self.cfg.default_cpu);
    }

    /// Observability configuration applied to nodes added *after* this
    /// call (each node's registry is created at registration time).
    /// Defaults to metrics on, trace off.
    pub fn set_obs(&mut self, obs: ObsConfig) {
        self.obs = obs;
    }

    /// Register a node with an explicit CPU model.
    pub fn add_node_with_cpu(&mut self, addr: Addr, node: Box<dyn Node>, cpu: CpuConfig) {
        self.nodes.insert(
            addr,
            Slot {
                node,
                cpu: CpuState::new(cpu),
                metrics: Arc::new(Metrics::new(self.obs)),
            },
        );
        self.push_event(
            self.now,
            Event::Timer {
                node: addr,
                id: TimerId(0),
                kind: INIT_TIMER_KIND,
            },
        );
    }

    /// Remove a node (e.g. permanently crash it). Queued events to it are
    /// dropped on delivery.
    pub fn remove_node(&mut self, addr: Addr) -> Option<Box<dyn Node>> {
        self.nodes.remove(&addr).map(|s| s.node)
    }

    /// Inject a message from outside the simulation (the harness plays an
    /// unmodelled actor, e.g. an operator console). The message traverses
    /// the network like any other: it experiences latency and loss.
    pub fn post(&mut self, from: Addr, to: Addr, payload: impl Into<Payload>, at: Time) {
        self.transmit(from, to, payload.into(), at.max(self.now));
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Network counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// The live fault plan (mutable so experiments can add rules mid-run).
    pub fn faults_mut(&mut self) -> &mut FaultPlan {
        &mut self.cfg.faults
    }

    /// Mutable access to the network config (Figure 9 adjusts drop rates
    /// between runs; failover experiments adjust latency).
    pub fn net_mut(&mut self) -> &mut NetConfig {
        &mut self.cfg.net
    }

    /// Immutable view of a node's concrete state.
    pub fn node_ref<T: 'static>(&self, addr: Addr) -> Option<&T> {
        self.nodes
            .get(&addr)
            .and_then(|s| s.node.as_any().downcast_ref::<T>())
    }

    /// Mutable view of a node's concrete state.
    pub fn node_mut<T: 'static>(&mut self, addr: Addr) -> Option<&mut T> {
        self.nodes
            .get_mut(&addr)
            .and_then(|s| s.node.as_any_mut().downcast_mut::<T>())
    }

    /// A node's live metrics registry (counters keep moving as the
    /// simulation runs).
    pub fn metrics(&self, addr: Addr) -> Option<&Metrics> {
        self.nodes.get(&addr).map(|s| &*s.metrics)
    }

    /// Snapshot one node's metrics.
    pub fn metrics_snapshot(&self, addr: Addr) -> Option<MetricsSnapshot> {
        self.nodes.get(&addr).map(|s| s.metrics.snapshot())
    }

    /// Merge every node's metrics into one cluster-wide snapshot.
    pub fn aggregate_metrics(&self) -> MetricsSnapshot {
        let mut agg = MetricsSnapshot::default();
        for slot in self.nodes.values() {
            agg.merge(&slot.metrics.snapshot());
        }
        agg
    }

    /// Drain every node's event-trace ring into one merged timeline,
    /// sorted by time then node (the sort is stable, so each node's
    /// records keep their ring order). The span assembler consumes this
    /// once at the end of a run.
    pub fn take_traces(&mut self) -> Vec<EventRecord> {
        let mut all: Vec<EventRecord> = self
            .nodes
            .values()
            .flat_map(|s| s.metrics.take_trace())
            .collect();
        all.sort_by_key(|r| (r.at, r.node));
        all
    }

    /// Emit one live-exporter line per node: its metrics snapshot plus
    /// the events accumulated since the previous call (each call drains
    /// the trace rings, so successive lines concatenate into a complete
    /// bounded-loss event log). Nodes are sorted for a deterministic
    /// stream.
    pub fn obs_stream_lines(&mut self) -> Vec<ObsStreamLine> {
        let now = self.now;
        let mut lines: Vec<ObsStreamLine> = self
            .nodes
            .iter()
            .map(|(addr, slot)| ObsStreamLine {
                at: now,
                node: *addr,
                snapshot: slot.metrics.snapshot(),
                events: slot.metrics.take_trace(),
            })
            .collect();
        lines.sort_by(|a, b| a.node.cmp(&b.node));
        lines
    }

    /// Copy every node's event-trace ring into one merged timeline
    /// without draining — the non-destructive sibling of
    /// [`Simulator::take_traces`], for observers that only hold `&self`
    /// (e.g. the harness collecting a report mid-inspection).
    pub fn trace_records(&self) -> Vec<EventRecord> {
        let mut all: Vec<EventRecord> = self
            .nodes
            .values()
            .flat_map(|s| s.metrics.trace_snapshot())
            .collect();
        all.sort_by_key(|r| (r.at, r.node));
        all
    }

    /// Freeze every node's recent history into a flight-recorder dump
    /// (without draining the rings — the run can continue). Nodes are
    /// sorted by address so the artifact is deterministic.
    pub fn flight_dump(&self, reason: &str) -> FlightDump {
        let mut nodes: Vec<NodeFlight> = self
            .nodes
            .iter()
            .map(|(addr, slot)| slot.metrics.flight(*addr))
            .collect();
        nodes.sort_by(|a, b| a.node.cmp(&b.node));
        FlightDump {
            reason: reason.to_string(),
            at: self.now,
            violations: Vec::new(),
            context: std::collections::BTreeMap::new(),
            nodes,
        }
    }

    /// Publish every node's current metrics snapshot and self-reported
    /// health into `hub`, keyed by address. Slice-driven harnesses call
    /// this at slice boundaries so a
    /// [`TelemetryServer`](crate::telemetry::TelemetryServer) over the
    /// hub serves fresh `/metrics` and `/health` while the run advances.
    /// Verification is inline under the simulator, so the verify-pool
    /// fields stay zero.
    pub fn publish_telemetry(&self, hub: &crate::telemetry::TelemetryHub) {
        for (addr, slot) in &self.nodes {
            let snapshot = slot.metrics.snapshot();
            let protocol = slot.node.health();
            let healthy = protocol
                .as_ref()
                .and_then(|p| p.recovery_phase.as_deref())
                .is_none_or(|phase| phase == "active");
            let report = HealthReport {
                node: addr.to_string(),
                healthy,
                committed: snapshot.event(EventKind::Commit),
                verify_queue_depth: 0,
                verify_in_flight: 0,
                verify_poisoned: false,
                fsync_p99_ns: snapshot
                    .histograms
                    .get("store.fsync_ns")
                    .map_or(0, |h| h.p99),
                protocol,
            };
            hub.publish(&addr.to_string(), snapshot, report);
        }
    }

    /// Serial CPU busy time of a node so far (utilization reporting).
    pub fn cpu_busy(&self, addr: Addr) -> Option<(u64, u64)> {
        self.nodes
            .get(&addr)
            .map(|s| (s.cpu.busy_serial(), s.cpu.busy_parallel()))
    }

    /// Process events until the queue is empty or `deadline` is passed.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: Time) -> u64 {
        let mut n = 0;
        while let Some(&Reverse((t, _))) = self.queue.peek() {
            if t > deadline {
                break;
            }
            self.step();
            n += 1;
        }
        self.now = self.now.max(deadline);
        n
    }

    /// Run for a span of virtual time from now.
    pub fn run_for(&mut self, span: Duration) -> u64 {
        let deadline = self.now + span;
        self.run_until(deadline)
    }

    /// Process a single event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse((t, seq))) = self.queue.pop() else {
            return false;
        };
        self.now = self.now.max(t);
        let event = self.events.remove(&seq).expect("event body");
        match event {
            Event::Deliver { to, from, payload } => self.handle_deliver(t, to, from, payload),
            Event::Timer { node, id, kind } => self.handle_timer(t, node, id, kind),
        }
        true
    }

    fn handle_deliver(&mut self, t: Time, to: Addr, from: Addr, payload: Payload) {
        let Some(slot) = self.nodes.get_mut(&to) else {
            self.stats.dropped_unroutable += 1;
            return;
        };
        self.stats.delivered += 1;
        self.stats.bytes_delivered += payload.len() as u64;
        // Flight recorder: digest the payload as delivered (i.e. after
        // any in-flight tampering), so a dump shows what the node saw.
        slot.metrics.record_packet(t, from, to, &payload);
        let recv_bytes = payload.len() as u64;
        let start = slot_start(slot, t);
        let mut ctx = SimCtx {
            now: start,
            me: to,
            sends: Vec::new(),
            timers: Vec::new(),
            cancels: Vec::new(),
            charge: 0,
            next_timer: self.next_timer,
            metrics: slot.metrics.clone(),
        };
        slot.node.on_message(from, &payload, &mut ctx);
        self.finish_handler(to, t, false, recv_bytes, ctx);
    }

    fn handle_timer(&mut self, t: Time, node: Addr, id: TimerId, kind: u32) {
        if self.cancelled.remove(&id) {
            return;
        }
        let Some(slot) = self.nodes.get_mut(&node) else {
            return;
        };
        let start = slot_start(slot, t);
        let mut ctx = SimCtx {
            now: start,
            me: node,
            sends: Vec::new(),
            timers: Vec::new(),
            cancels: Vec::new(),
            charge: 0,
            next_timer: self.next_timer,
            metrics: slot.metrics.clone(),
        };
        slot.node.on_timer(id, kind, &mut ctx);
        self.finish_handler(node, t, true, 0, ctx);
    }

    fn finish_handler(
        &mut self,
        addr: Addr,
        arrival: Time,
        is_timer: bool,
        recv_bytes: u64,
        ctx: SimCtx,
    ) {
        self.next_timer = ctx.next_timer;
        let slot = self.nodes.get_mut(&addr).expect("node present");
        let (serial_m, parallel_tasks) = slot
            .node
            .meter()
            .map(|m| m.drain())
            .unwrap_or((0, Vec::new()));
        let send_bytes: u64 = ctx.sends.iter().map(|(_, p, _)| p.len() as u64).sum();
        // Durability: flush the node's write-ahead buffer before its sends
        // depart. The modeled fsync is charged to the serial core, so the
        // replies this handler produced are timestamped *after* the flush —
        // the write-ahead-of-acknowledgment ordering the tokio runtime
        // enforces with a real fsync.
        let mut fsync_ns = 0u64;
        if let Some(store) = slot.node.store() {
            if store.dirty() {
                let bytes = store.flush();
                fsync_ns = store.fsync_model_ns();
                if slot.metrics.enabled() {
                    slot.metrics.observe("store.fsync_ns", fsync_ns);
                    slot.metrics.add("store.flushed_bytes", bytes);
                    slot.metrics.incr("store.flushes");
                }
            }
        }
        let (start, ready) = slot.cpu.admit(
            arrival,
            serial_m + ctx.charge + fsync_ns,
            &parallel_tasks,
            ctx.sends.len(),
            recv_bytes + send_bytes,
            is_timer,
        );
        for id in ctx.cancels {
            self.cancelled.insert(id);
        }
        for (delay, kind, id) in ctx.timers {
            self.push_event(
                start + delay,
                Event::Timer {
                    node: addr,
                    id,
                    kind,
                },
            );
        }
        for (to, payload, extra) in ctx.sends {
            self.transmit(addr, to, payload, ready + extra);
        }
    }

    fn transmit(&mut self, from: Addr, to: Addr, payload: Payload, departure: Time) {
        self.stats.sent += 1;
        // Multicast group addresses route to the group's sequencer — the
        // sender never learns receiver identities (§3.2).
        let resolved = match to {
            Addr::Multicast(g) => Addr::Sequencer(g),
            other => other,
        };
        let fate = self.cfg.faults.fate(from, resolved, departure);
        if fate.drop {
            self.stats.dropped_fault += 1;
            return;
        }
        if self.cfg.net.drop_rate > 0.0 && self.rng.gen_bool(self.cfg.net.drop_rate) {
            self.stats.dropped_random += 1;
            return;
        }
        let payload = if fate.tamper {
            self.stats.tampered += 1;
            self.tamper(payload)
        } else {
            payload
        };
        if fate.copies > 1 {
            // Extra copies count as sent too, so conservation
            // (delivered + dropped == sent) keeps holding.
            let extra = u64::from(fate.copies) - 1;
            self.stats.sent += extra;
            self.stats.duplicated += extra;
        }
        if fate.extra_delay_ns > 0 {
            self.stats.delay_spiked += 1;
        }
        for _ in 0..fate.copies {
            let jitter = if self.cfg.net.jitter_ns > 0 {
                self.rng.next_u64() % self.cfg.net.jitter_ns
            } else {
                0
            };
            let arrival = departure
                .saturating_add(fate.extra_delay_ns)
                .saturating_add(self.cfg.net.delay(payload.len(), jitter));
            self.push_event(
                arrival,
                Event::Deliver {
                    to: resolved,
                    from,
                    payload: payload.clone(),
                },
            );
        }
    }

    /// Flip one deterministic-random byte of the payload (in-flight
    /// corruption). Empty payloads pass through untouched.
    fn tamper(&mut self, payload: Payload) -> Payload {
        if payload.is_empty() {
            return payload;
        }
        let mut bytes = payload.to_vec();
        let idx = (self.rng.next_u64() as usize) % bytes.len();
        let bit = 1u8 << (self.rng.next_u64() % 8);
        bytes[idx] ^= bit;
        Payload::from(bytes)
    }

    fn push_event(&mut self, t: Time, e: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse((t, seq)));
        self.events.insert(seq, e);
    }
}

fn slot_start(slot: &Slot, arrival: Time) -> Time {
    // Mirrors CpuState::admit's start computation so the handler observes
    // the same `now` that admit will charge from.
    slot.cpu.next_start(arrival)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neo_wire::ReplicaId;
    use std::any::Any;

    /// Echoes every message back to its sender after doubling the byte.
    struct Echo {
        got: Vec<(Addr, Vec<u8>)>,
    }
    impl Node for Echo {
        fn on_message(&mut self, from: Addr, payload: &[u8], ctx: &mut dyn Context) {
            self.got.push((from, payload.to_vec()));
            ctx.send(
                from,
                payload.iter().map(|b| b * 2).collect::<Vec<u8>>().into(),
            );
        }
        fn on_timer(&mut self, _: TimerId, _: u32, _: &mut dyn Context) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Sends a message to the echo node at bootstrap and records replies.
    struct Pinger {
        peer: Addr,
        replies: Vec<(Time, Vec<u8>)>,
    }
    impl Node for Pinger {
        fn on_message(&mut self, _: Addr, payload: &[u8], ctx: &mut dyn Context) {
            self.replies.push((ctx.now(), payload.to_vec()));
        }
        fn on_timer(&mut self, _: TimerId, kind: u32, ctx: &mut dyn Context) {
            if kind == INIT_TIMER_KIND {
                ctx.send(self.peer, vec![21].into());
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    const A: Addr = Addr::Replica(ReplicaId(0));
    const B: Addr = Addr::Replica(ReplicaId(1));

    fn ideal_sim(seed: u64) -> Simulator {
        Simulator::new(SimConfig {
            net: NetConfig {
                one_way_latency_ns: 1_000,
                jitter_ns: 0,
                ns_per_128_bytes: 0,
                drop_rate: 0.0,
            },
            default_cpu: CpuConfig::IDEAL,
            seed,
            faults: FaultPlan::none(),
        })
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut sim = ideal_sim(1);
        sim.add_node(
            A,
            Box::new(Pinger {
                peer: B,
                replies: vec![],
            }),
        );
        sim.add_node(B, Box::new(Echo { got: vec![] }));
        sim.run_until(10_000);
        let pinger = sim.node_ref::<Pinger>(A).unwrap();
        assert_eq!(pinger.replies.len(), 1);
        let (t, bytes) = &pinger.replies[0];
        assert_eq!(bytes, &vec![42]);
        assert_eq!(*t, 2_000, "two one-way hops at 1µs each");
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed| {
            let mut sim = Simulator::new(SimConfig {
                net: NetConfig {
                    one_way_latency_ns: 1_000,
                    jitter_ns: 500,
                    ns_per_128_bytes: 0,
                    drop_rate: 0.2,
                },
                default_cpu: CpuConfig::IDEAL,
                seed,
                faults: FaultPlan::none(),
            });
            sim.add_node(B, Box::new(Echo { got: vec![] }));
            for i in 0..100u8 {
                sim.post(A, B, vec![i], i as u64 * 10);
            }
            sim.run_until(100_000);
            let echo = sim.node_ref::<Echo>(B).unwrap();
            (echo.got.clone(), sim.stats())
        };
        assert_eq!(run(7), run(7), "same seed, same trace");
        let (a, _) = run(7);
        let (b, _) = run(8);
        assert_ne!(a, b, "different seeds see different losses");
    }

    #[test]
    fn drop_rate_loses_packets() {
        let mut sim = Simulator::new(SimConfig {
            net: NetConfig {
                one_way_latency_ns: 0,
                jitter_ns: 0,
                ns_per_128_bytes: 0,
                drop_rate: 0.5,
            },
            default_cpu: CpuConfig::IDEAL,
            seed: 3,
            faults: FaultPlan::none(),
        });
        sim.add_node(B, Box::new(Echo { got: vec![] }));
        for i in 0..1000u64 {
            sim.post(A, B, vec![0], i);
        }
        sim.run_until(1_000_000);
        let got = sim.node_ref::<Echo>(B).unwrap().got.len();
        assert!(got > 350 && got < 650, "~half delivered, got {got}");
        let s = sim.stats();
        assert_eq!(
            s.sent,
            1000 + got as u64,
            "posts plus one echo per delivery"
        );
        // Replies go to the unregistered address A: they are either
        // randomly dropped or counted unroutable. Conservation holds.
        assert_eq!(s.dropped() + s.delivered, s.sent, "conservation");
    }

    #[test]
    fn fault_plan_silences_a_node() {
        let mut sim = ideal_sim(1);
        *sim.faults_mut() = FaultPlan::none().crash(B, 0);
        sim.add_node(
            A,
            Box::new(Pinger {
                peer: B,
                replies: vec![],
            }),
        );
        sim.add_node(B, Box::new(Echo { got: vec![] }));
        sim.run_until(10_000);
        assert!(sim.node_ref::<Pinger>(A).unwrap().replies.is_empty());
        assert_eq!(sim.stats().dropped_fault, 1);
    }

    #[test]
    fn duplicate_fault_delivers_extra_copies() {
        let mut sim = ideal_sim(1);
        *sim.faults_mut() = FaultPlan::none().duplicate(A, 3, 0, u64::MAX);
        sim.add_node(B, Box::new(Echo { got: vec![] }));
        sim.post(A, B, vec![7], 0);
        sim.run_until(10_000);
        assert_eq!(sim.node_ref::<Echo>(B).unwrap().got.len(), 3);
        let s = sim.stats();
        assert_eq!(s.duplicated, 2);
        assert_eq!(s.dropped() + s.delivered, s.sent, "conservation");
    }

    #[test]
    fn delay_spike_reorders_past_later_packets() {
        const C: Addr = Addr::Replica(ReplicaId(2));
        let mut sim = ideal_sim(1);
        // A's packet is held 5µs; C's packet sent 2µs later overtakes it.
        *sim.faults_mut() = FaultPlan::none().delay_spike(A, 5_000, 0, u64::MAX);
        sim.add_node(B, Box::new(Echo { got: vec![] }));
        sim.post(A, B, vec![1], 0);
        sim.post(C, B, vec![2], 2_000);
        sim.run_until(10_000);
        let got: Vec<Addr> = sim
            .node_ref::<Echo>(B)
            .unwrap()
            .got
            .iter()
            .map(|(from, _)| *from)
            .collect();
        assert_eq!(got, vec![C, A], "spiked packet arrives last");
        assert_eq!(sim.stats().delay_spiked, 1);
    }

    #[test]
    fn tamper_flips_exactly_one_bit() {
        let mut sim = ideal_sim(1);
        *sim.faults_mut() = FaultPlan::none().tamper(A, 0, u64::MAX);
        sim.add_node(B, Box::new(Echo { got: vec![] }));
        sim.post(A, B, vec![0xAA, 0xBB], 0);
        sim.run_until(10_000);
        let echo = sim.node_ref::<Echo>(B).unwrap();
        assert_eq!(echo.got.len(), 1);
        let (_, bytes) = &echo.got[0];
        assert_eq!(bytes.len(), 2, "length preserved");
        let diff = (bytes[0] ^ 0xAA).count_ones() + (bytes[1] ^ 0xBB).count_ones();
        assert_eq!(diff, 1, "exactly one bit flipped");
        assert_eq!(sim.stats().tampered, 1);
    }

    #[test]
    fn partition_heals_and_traffic_resumes() {
        let mut sim = ideal_sim(1);
        *sim.faults_mut() = FaultPlan::none().partition(vec![A], 0, 5_000);
        sim.add_node(B, Box::new(Echo { got: vec![] }));
        sim.post(A, B, vec![1], 100);
        sim.post(A, B, vec![2], 6_000);
        sim.run_until(20_000);
        assert_eq!(sim.node_ref::<Echo>(B).unwrap().got.len(), 1);
        assert_eq!(sim.stats().dropped_fault, 1);
    }

    #[test]
    fn unroutable_messages_are_counted() {
        let mut sim = ideal_sim(1);
        sim.post(A, B, vec![1], 0);
        sim.run_until(1_000);
        assert_eq!(sim.stats().dropped_unroutable, 1);
    }

    #[test]
    fn cpu_queueing_delays_replies() {
        let mut sim = Simulator::new(SimConfig {
            net: NetConfig::IDEAL,
            default_cpu: CpuConfig {
                dispatch_ns: 1_000,
                send_ns: 0,
                ns_per_kb: 0,
                cores: 1,
            },
            seed: 1,
            faults: FaultPlan::none(),
        });
        sim.add_node(B, Box::new(Echo { got: vec![] }));
        // Two messages arriving at once: the second is processed 1µs later.
        sim.post(A, B, vec![1], 0);
        sim.post(A, B, vec![2], 0);
        sim.run_until(10_000);
        let (busy, _) = sim.cpu_busy(B).unwrap();
        assert_eq!(busy, 2_000);
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        struct T {
            fired: Vec<u32>,
            cancel_me: Option<TimerId>,
        }
        impl Node for T {
            fn on_message(&mut self, _: Addr, _: &[u8], _: &mut dyn Context) {}
            fn on_timer(&mut self, _: TimerId, kind: u32, ctx: &mut dyn Context) {
                if kind == INIT_TIMER_KIND {
                    ctx.set_timer(100, 1);
                    let c = ctx.set_timer(200, 2);
                    ctx.set_timer(300, 3);
                    self.cancel_me = Some(c);
                } else {
                    self.fired.push(kind);
                    if kind == 1 {
                        ctx.cancel_timer(self.cancel_me.unwrap());
                    }
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = ideal_sim(1);
        sim.add_node(
            A,
            Box::new(T {
                fired: vec![],
                cancel_me: None,
            }),
        );
        sim.run_until(1_000);
        assert_eq!(sim.node_ref::<T>(A).unwrap().fired, vec![1, 3]);
    }

    #[test]
    fn multicast_routes_to_sequencer() {
        use neo_wire::GroupId;
        let mut sim = ideal_sim(1);
        let seq_addr = Addr::Sequencer(GroupId(9));
        sim.add_node(seq_addr, Box::new(Echo { got: vec![] }));
        sim.post(A, Addr::Multicast(GroupId(9)), vec![5], 0);
        sim.run_until(10_000);
        assert_eq!(sim.node_ref::<Echo>(seq_addr).unwrap().got.len(), 1);
    }

    #[test]
    fn per_node_metrics_are_recorded_and_aggregated() {
        use crate::obs::EventKind;

        /// Counts deliveries into its registry and emits a Commit event.
        struct Metered;
        impl Node for Metered {
            fn on_message(&mut self, _: Addr, payload: &[u8], ctx: &mut dyn Context) {
                ctx.metrics().incr("test.delivered");
                ctx.metrics().observe("test.len", payload.len() as u64);
                ctx.emit(crate::obs::Event::Commit {
                    slot: 1,
                    client: 0,
                    request: 1,
                });
            }
            fn on_timer(&mut self, _: TimerId, _: u32, _: &mut dyn Context) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut sim = ideal_sim(1);
        sim.add_node(A, Box::new(Metered));
        sim.add_node(B, Box::new(Metered));
        sim.post(Addr::Config, A, vec![1, 2], 0);
        sim.post(Addr::Config, A, vec![3], 0);
        sim.post(Addr::Config, B, vec![4], 0);
        sim.run_until(10_000);

        let a = sim.metrics_snapshot(A).unwrap();
        assert_eq!(a.counters["test.delivered"], 2);
        assert_eq!(a.event(EventKind::Commit), 2);
        assert_eq!(a.histograms["test.len"].count, 2);
        let agg = sim.aggregate_metrics();
        assert_eq!(agg.counters["test.delivered"], 3);
        assert_eq!(agg.event(EventKind::Commit), 3);
        assert_eq!(agg.histograms["test.len"].count, 3);
    }

    #[test]
    fn disabled_obs_records_nothing() {
        struct M;
        impl Node for M {
            fn on_message(&mut self, _: Addr, _: &[u8], ctx: &mut dyn Context) {
                ctx.metrics().incr("test.delivered");
            }
            fn on_timer(&mut self, _: TimerId, _: u32, _: &mut dyn Context) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = ideal_sim(1);
        sim.set_obs(ObsConfig::disabled());
        sim.add_node(A, Box::new(M));
        sim.post(B, A, vec![1], 0);
        sim.run_until(10_000);
        assert_eq!(sim.metrics_snapshot(A).unwrap(), MetricsSnapshot::default());
    }

    #[test]
    fn flight_dump_captures_packets_and_merged_trace() {
        let mut sim = ideal_sim(1);
        sim.set_obs(ObsConfig::flight_recorder());
        sim.add_node(
            A,
            Box::new(Pinger {
                peer: B,
                replies: vec![],
            }),
        );
        sim.add_node(B, Box::new(Echo { got: vec![] }));
        sim.run_until(10_000);
        let dump = sim.flight_dump("test");
        assert_eq!(dump.reason, "test");
        assert_eq!(dump.at, 10_000);
        assert_eq!(dump.nodes.len(), 2);
        assert!(
            dump.nodes.windows(2).all(|w| w[0].node < w[1].node),
            "nodes sorted by address"
        );
        // B received the ping, A received the echo; digests are recorded
        // at delivery.
        let b = dump.nodes.iter().find(|n| n.node == B).unwrap();
        assert_eq!(b.packets.len(), 1);
        assert_eq!(b.packets[0].from, A);
        assert_eq!(b.packets[0].len, 1);
        assert_eq!(b.packets[0].digest, crate::obs::fnv1a(&[21]));
        let a = dump.nodes.iter().find(|n| n.node == A).unwrap();
        assert_eq!(a.packets.len(), 1);
        assert_eq!(a.packets[0].digest, crate::obs::fnv1a(&[42]));
    }

    #[test]
    fn take_traces_merges_and_drains() {
        use crate::obs::Event;

        struct Emitter;
        impl Node for Emitter {
            fn on_message(&mut self, _: Addr, payload: &[u8], ctx: &mut dyn Context) {
                ctx.emit(Event::SpeculativeExecute {
                    slot: payload[0] as u64,
                });
            }
            fn on_timer(&mut self, _: TimerId, _: u32, _: &mut dyn Context) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = ideal_sim(1);
        sim.set_obs(ObsConfig::default().with_trace(16));
        sim.add_node(A, Box::new(Emitter));
        sim.add_node(B, Box::new(Emitter));
        sim.post(Addr::Config, A, vec![1], 0);
        sim.post(Addr::Config, B, vec![2], 0);
        sim.post(Addr::Config, A, vec![3], 500);
        sim.run_until(10_000);
        let trace = sim.take_traces();
        assert_eq!(trace.len(), 3);
        assert!(
            trace.windows(2).all(|w| w[0].at <= w[1].at),
            "merged trace is time-sorted"
        );
        assert!(sim.take_traces().is_empty(), "draining");
    }

    #[test]
    fn remove_node_stops_delivery() {
        let mut sim = ideal_sim(1);
        sim.add_node(B, Box::new(Echo { got: vec![] }));
        sim.remove_node(B);
        sim.post(A, B, vec![1], 0);
        sim.run_until(1_000);
        assert_eq!(sim.stats().dropped_unroutable, 1);
    }
}
