//! Virtual time.
//!
//! Time is a `u64` count of nanoseconds since simulation start. Protocol
//! code never consults a wall clock; it reads [`crate::Context::now`].

/// A point in virtual time (nanoseconds since simulation start).
pub type Time = u64;

/// A span of virtual time (nanoseconds).
pub type Duration = u64;

/// One microsecond in [`Time`] units.
pub const MICROS: u64 = 1_000;

/// One millisecond in [`Time`] units.
pub const MILLIS: u64 = 1_000_000;

/// One second in [`Time`] units.
pub const SECS: u64 = 1_000_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_relationships() {
        assert_eq!(MILLIS, 1000 * MICROS);
        assert_eq!(SECS, 1000 * MILLIS);
    }
}
