//! Per-node CPU model: one serial dispatch core plus a worker-core pool.
//!
//! Saturation throughput of every protocol in Figure 7 is set by queueing
//! at the bottleneck replica. We model the replica process the way the
//! paper's implementation works: a dispatch thread that receives packets,
//! runs the protocol state machine, and sends replies; and a pool of
//! worker threads that perform bulk cryptography.

use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// CPU parameters for one node.
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
pub struct CpuConfig {
    /// Serial cost to receive + dispatch one message (syscall, parse,
    /// state-machine bookkeeping).
    pub dispatch_ns: u64,
    /// Serial cost to emit one message.
    pub send_ns: u64,
    /// Serial cost per kilobyte moved in or out (serialization, memcpy,
    /// NIC descriptor work) — what makes large batched messages and big
    /// KV values expensive (Figure 10).
    pub ns_per_kb: u64,
    /// Worker cores available for parallel (crypto) work.
    pub cores: usize,
}

impl CpuConfig {
    /// The paper's replica machines: 32 physical cores, kernel UDP stack.
    pub const SERVER: CpuConfig = CpuConfig {
        dispatch_ns: 1_100,
        send_ns: 650,
        ns_per_kb: 400,
        cores: 30,
    };

    /// Client machines (20 cores).
    pub const CLIENT: CpuConfig = CpuConfig {
        dispatch_ns: 1_100,
        send_ns: 650,
        ns_per_kb: 400,
        cores: 18,
    };

    /// Infinitely fast CPU for logic-only tests.
    pub const IDEAL: CpuConfig = CpuConfig {
        dispatch_ns: 0,
        send_ns: 0,
        ns_per_kb: 0,
        cores: 1,
    };
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig::SERVER
    }
}

/// Queueing state of one node's CPU.
#[derive(Debug)]
pub struct CpuState {
    config: CpuConfig,
    /// When the dispatch core becomes free.
    dispatch_free: Time,
    /// Min-heap of worker-core free times.
    workers: BinaryHeap<Reverse<Time>>,
    /// Total serial busy nanoseconds (for utilization reporting).
    busy_serial: u64,
    /// Total worker busy nanoseconds.
    busy_parallel: u64,
}

impl CpuState {
    /// Fresh, idle CPU.
    pub fn new(config: CpuConfig) -> Self {
        let mut workers = BinaryHeap::with_capacity(config.cores);
        for _ in 0..config.cores.max(1) {
            workers.push(Reverse(0));
        }
        CpuState {
            config,
            dispatch_free: 0,
            workers,
            busy_serial: 0,
            busy_parallel: 0,
        }
    }

    /// The configuration this CPU runs with.
    pub fn config(&self) -> CpuConfig {
        self.config
    }

    /// The time at which a job arriving at `arrival` would begin
    /// processing (the handler's observed `now`).
    pub fn next_start(&self, arrival: Time) -> Time {
        arrival.max(self.dispatch_free)
    }

    /// Admit a message-handling job that arrived at `arrival`, consuming
    /// `serial_extra` serial ns (metered crypto + explicit charges) plus
    /// one worker-pool task per entry of `parallel_tasks`, and emitting
    /// `sends` messages.
    ///
    /// Returns `(handler_start, effects_ready)`: the virtual time at which
    /// the handler logically ran, and the time at which its outputs hit
    /// the wire (after the slowest of its parallel tasks completes).
    pub fn admit(
        &mut self,
        arrival: Time,
        serial_extra: u64,
        parallel_tasks: &[u64],
        sends: usize,
        bytes_moved: u64,
        is_timer: bool,
    ) -> (Time, Time) {
        let start = arrival.max(self.dispatch_free);
        let dispatch = if is_timer { 0 } else { self.config.dispatch_ns };
        let serial = dispatch
            + serial_extra
            + self.config.send_ns * sends as u64
            + self.config.ns_per_kb * bytes_moved / 1024;
        let serial_done = start + serial;
        self.busy_serial += serial;
        self.dispatch_free = serial_done;

        let mut ready = serial_done;
        for &task in parallel_tasks {
            let Reverse(core_free) = self.workers.pop().unwrap_or(Reverse(0));
            let core_start = serial_done.max(core_free);
            let core_done = core_start + task;
            self.workers.push(Reverse(core_done));
            self.busy_parallel += task;
            ready = ready.max(core_done);
        }
        (start, ready)
    }

    /// Serial busy time accumulated so far.
    pub fn busy_serial(&self) -> u64 {
        self.busy_serial
    }

    /// Worker busy time accumulated so far.
    pub fn busy_parallel(&self) -> u64 {
        self.busy_parallel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_jobs_queue_fifo() {
        let cfg = CpuConfig {
            dispatch_ns: 100,
            send_ns: 10,
            ns_per_kb: 0,
            cores: 1,
        };
        let mut cpu = CpuState::new(cfg);
        let (s1, r1) = cpu.admit(0, 0, &[], 1, 0, false);
        assert_eq!((s1, r1), (0, 110));
        // Arrives while busy: waits for the dispatch core.
        let (s2, r2) = cpu.admit(50, 0, &[], 0, 0, false);
        assert_eq!(s2, 110);
        assert_eq!(r2, 210);
    }

    #[test]
    fn idle_gap_is_not_charged() {
        let mut cpu = CpuState::new(CpuConfig {
            dispatch_ns: 100,
            send_ns: 0,
            ns_per_kb: 0,
            cores: 1,
        });
        cpu.admit(0, 0, &[], 0, 0, false);
        let (s, _) = cpu.admit(1_000_000, 0, &[], 0, 0, false);
        assert_eq!(s, 1_000_000, "CPU idles between arrivals");
        assert_eq!(cpu.busy_serial(), 200);
    }

    #[test]
    fn parallel_work_uses_multiple_cores() {
        let mut cpu = CpuState::new(CpuConfig {
            dispatch_ns: 0,
            send_ns: 0,
            ns_per_kb: 0,
            cores: 2,
        });
        // Three 1000ns crypto jobs, back to back, on 2 cores.
        let (_, r1) = cpu.admit(0, 0, &[1000], 0, 0, false);
        let (_, r2) = cpu.admit(0, 0, &[1000], 0, 0, false);
        let (_, r3) = cpu.admit(0, 0, &[1000], 0, 0, false);
        assert_eq!(r1, 1000);
        assert_eq!(r2, 1000, "second core absorbs the second job");
        assert_eq!(r3, 2000, "third job waits for a core");
    }

    #[test]
    fn timers_skip_dispatch_cost() {
        let mut cpu = CpuState::new(CpuConfig {
            dispatch_ns: 500,
            send_ns: 0,
            ns_per_kb: 0,
            cores: 1,
        });
        let (_, r) = cpu.admit(0, 0, &[], 0, 0, true);
        assert_eq!(r, 0, "timer handler with no work is free");
    }

    #[test]
    fn explicit_serial_charge_extends_occupancy() {
        let mut cpu = CpuState::new(CpuConfig::IDEAL);
        let (_, r) = cpu.admit(10, 777, &[], 0, 0, false);
        assert_eq!(r, 10 + 777);
    }
}
