//! The sans-IO node abstraction.
//!
//! Every protocol participant — NeoBFT replicas and clients, baseline
//! protocol nodes, the software aom sequencer, the configuration service —
//! implements [`Node`]. A node reacts to exactly two stimuli (a message or
//! a timer) and expresses all side effects through the [`Context`]. The
//! same state machines run unchanged under the simulator and under the
//! real tokio/UDP transport.

use neo_wire::{Addr, Payload, ReplicaId};
use std::any::Any;

/// Handle for a pending timer, scoped to the node that set it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub u64);

/// The effect interface a node drives.
pub trait Context {
    /// Current virtual (or real) time in nanoseconds.
    fn now(&self) -> crate::time::Time;

    /// The address this node is registered under.
    fn me(&self) -> Addr;

    /// Send `payload` to a logical destination. Multicast addresses route
    /// to the group's sequencer.
    ///
    /// Payloads are shared buffers ([`Payload`]): sending the same
    /// message to many destinations clones a refcount, never the bytes.
    fn send(&mut self, to: Addr, payload: Payload) {
        self.send_after(to, payload, 0);
    }

    /// Send `payload` after an extra fixed delay beyond normal processing
    /// — used by the switch models to represent pipeline latency that does
    /// not occupy the node's CPU.
    fn send_after(&mut self, to: Addr, payload: Payload, extra_delay: crate::time::Duration);

    /// Send one payload to every replica in `to`: the single-encode
    /// broadcast invariant. Each destination costs one refcount bump;
    /// the message bytes are encoded (and allocated) exactly once by the
    /// caller, regardless of fan-out.
    fn broadcast(&mut self, to: &[ReplicaId], payload: Payload) {
        let Some((last, rest)) = to.split_last() else {
            return;
        };
        for r in rest {
            self.send(Addr::Replica(*r), payload.clone());
        }
        // The final destination consumes the caller's reference.
        self.send(Addr::Replica(*last), payload);
    }

    /// Arm a timer that fires after `delay` with the caller-chosen `kind`
    /// discriminant.
    fn set_timer(&mut self, delay: crate::time::Duration, kind: u32) -> TimerId;

    /// Cancel a previously armed timer. Cancelling an already-fired or
    /// unknown timer is a no-op.
    fn cancel_timer(&mut self, timer: TimerId);

    /// Charge extra serial CPU time beyond what the crypto meter records
    /// (e.g. MinBFT's USIG round trip into the trusted component).
    fn charge(&mut self, ns: u64);

    /// This node's metrics registry. Executors that carry per-node
    /// registries (the simulator, the tokio runtime) override this; the
    /// default returns a process-wide disabled registry whose operations
    /// are no-ops, so `Context` impls that predate observability compile
    /// unchanged and pay nothing.
    fn metrics(&self) -> &crate::obs::Metrics {
        crate::obs::Metrics::disabled()
    }

    /// Emit a structured protocol event: counted per
    /// [`crate::obs::EventKind`], and appended to the bounded trace when
    /// tracing is enabled.
    fn emit(&mut self, ev: crate::obs::Event) {
        let at = self.now();
        let me = self.me();
        self.metrics().record_event(at, me, ev);
    }
}

/// A protocol state machine.
///
/// `Send` so the same node can be moved onto a dedicated thread by the
/// real (tokio/UDP) transport.
pub trait Node: Any + Send {
    /// A message arrived from `from`.
    fn on_message(&mut self, from: Addr, payload: &[u8], ctx: &mut dyn Context);

    /// A timer armed with `kind` fired.
    fn on_timer(&mut self, timer: TimerId, kind: u32, ctx: &mut dyn Context);

    /// The crypto meter the simulator drains after each handler, if this
    /// node performs metered cryptography.
    fn meter(&self) -> Option<&neo_crypto::Meter> {
        None
    }

    /// Collect asynchronous completions (e.g. pooled verification): the
    /// real runtime calls this whenever the node's [`Self::verify_pool`]
    /// signals finished work, and the node re-injects completions into
    /// its protocol state. Returns the number of completions processed
    /// (so the executor can count them as batch events). The simulator
    /// never calls this — sim nodes verify inline, keeping virtual time
    /// deterministic.
    fn on_async(&mut self, _ctx: &mut dyn Context) -> u64 {
        0
    }

    /// The verify pool whose completions [`Self::on_async`] collects, if
    /// this node dispatches verification to worker threads. The executor
    /// installs its wake hook here and watches for poisoning.
    fn verify_pool(&self) -> Option<std::sync::Arc<neo_crypto::VerifyPool>> {
        None
    }

    /// The node's durability device, if it owns one. The executor flushes
    /// it after each handler (simulator, charging the store's modeled
    /// fsync to virtual time) or before releasing buffered sends (tokio
    /// runtime, a real fsync) — so acknowledgments never outrun the
    /// write-ahead log. Stateless nodes keep the default.
    fn store(&mut self) -> Option<&mut dyn crate::store::Store> {
        None
    }

    /// The node's self-reported protocol health, published by the
    /// executors through the telemetry plane's `/health` endpoint.
    /// Stateless nodes keep the default.
    fn health(&self) -> Option<crate::obs::NodeHealth> {
        None
    }

    /// Downcast support (the experiment harness inspects node state, e.g.
    /// to read a client's completed-operation records).
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe(u32);
    impl Node for Probe {
        fn on_message(&mut self, _: Addr, _: &[u8], _: &mut dyn Context) {
            self.0 += 1;
        }
        fn on_timer(&mut self, _: TimerId, _: u32, _: &mut dyn Context) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// A Context that overrides nothing observability-related: the default
    /// `metrics`/`emit` must compile and stay inert.
    struct BareCtx;
    impl Context for BareCtx {
        fn now(&self) -> crate::time::Time {
            42
        }
        fn me(&self) -> Addr {
            Addr::Config
        }
        fn send_after(&mut self, _: Addr, _: Payload, _: crate::time::Duration) {}
        fn set_timer(&mut self, _: crate::time::Duration, _: u32) -> TimerId {
            TimerId(0)
        }
        fn cancel_timer(&mut self, _: TimerId) {}
        fn charge(&mut self, _: u64) {}
    }

    #[test]
    fn default_observability_is_inert() {
        let mut ctx = BareCtx;
        assert!(!ctx.metrics().enabled());
        ctx.emit(crate::obs::Event::RequestReceived { slot: None });
        ctx.metrics().incr("ignored");
        assert_eq!(ctx.metrics().counter("ignored"), 0);
        assert_eq!(
            ctx.metrics()
                .event_count(crate::obs::EventKind::RequestReceived),
            0
        );
    }

    #[test]
    fn downcasting_reaches_concrete_state() {
        let mut n: Box<dyn Node> = Box::new(Probe(7));
        assert_eq!(n.as_any().downcast_ref::<Probe>().unwrap().0, 7);
        n.as_any_mut().downcast_mut::<Probe>().unwrap().0 = 9;
        assert_eq!(n.as_any().downcast_ref::<Probe>().unwrap().0, 9);
    }
}
