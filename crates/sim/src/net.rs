//! Network link model.

use serde::{Deserialize, Serialize};

/// Parameters of the simulated data-center fabric.
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
pub struct NetConfig {
    /// Base one-way latency between any two hosts, in nanoseconds. The
    /// paper's testbed is a single rack behind one Tofino: ~5 µs one-way.
    pub one_way_latency_ns: u64,
    /// Uniform jitter added on top of the base latency: `U[0, jitter)`.
    pub jitter_ns: u64,
    /// Serialization delay per byte (ns). 100 Gbps ≈ 0.08 ns/B; we charge
    /// it in integer picosecond-free form as ns per 128 bytes.
    pub ns_per_128_bytes: u64,
    /// Independent per-packet drop probability (Figure 9 sweeps this).
    pub drop_rate: f64,
}

impl NetConfig {
    /// The paper's testbed fabric: 100 Gbps links, one switch hop.
    pub const DATACENTER: NetConfig = NetConfig {
        one_way_latency_ns: 5_000,
        jitter_ns: 500,
        ns_per_128_bytes: 10,
        drop_rate: 0.0,
    };

    /// A perfect, zero-latency network — for unit tests that assert
    /// protocol logic only.
    pub const IDEAL: NetConfig = NetConfig {
        one_way_latency_ns: 0,
        jitter_ns: 0,
        ns_per_128_bytes: 0,
        drop_rate: 0.0,
    };

    /// Delay experienced by a packet of `len` bytes, given a jitter draw.
    pub fn delay(&self, len: usize, jitter_draw: u64) -> u64 {
        self.one_way_latency_ns + jitter_draw + self.ns_per_128_bytes * (len as u64 / 128)
    }

    /// Same fabric with a different drop rate.
    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::DATACENTER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_components_add_up() {
        let c = NetConfig {
            one_way_latency_ns: 1000,
            jitter_ns: 100,
            ns_per_128_bytes: 10,
            drop_rate: 0.0,
        };
        assert_eq!(c.delay(0, 0), 1000);
        assert_eq!(c.delay(256, 50), 1000 + 50 + 20);
    }

    #[test]
    fn ideal_network_is_instant() {
        assert_eq!(NetConfig::IDEAL.delay(10_000, 0), 0);
    }

    #[test]
    fn with_drop_rate_only_changes_drop_rate() {
        let c = NetConfig::DATACENTER.with_drop_rate(0.01);
        assert_eq!(c.drop_rate, 0.01);
        assert_eq!(
            c.one_way_latency_ns,
            NetConfig::DATACENTER.one_way_latency_ns
        );
    }
}
