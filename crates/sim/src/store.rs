//! The sans-IO durability effect.
//!
//! A node that wants crash durability owns a [`Store`]: an append-only
//! write-ahead log of opaque records plus a single checkpoint blob. The
//! node *appends*; the executor *flushes* — after every handler in the
//! simulator (charging a modeled fsync to virtual time) and before the
//! coalesced send flush in the tokio runtime (a real `fdatasync`, so
//! every reply is write-ahead of its own durability point). Keeping the
//! flush on the executor side is what lets one state machine be
//! deterministic under simulation and genuinely durable on disk.
//!
//! Records are opaque bytes: framing, checksums, and torn-tail recovery
//! belong to the implementations (`neo-store`), not to the protocol.

/// A write-ahead log + checkpoint device owned by one node.
///
/// Implementations must uphold crash semantics: records that were
/// appended but never [`flush`](Store::flush)ed may vanish on a crash;
/// flushed records and the last completed [`put_checkpoint`] survive.
pub trait Store: Send {
    /// Buffer one opaque record for the write-ahead log. Cheap: no I/O
    /// happens until [`flush`](Store::flush).
    fn append(&mut self, record: &[u8]);

    /// True when buffered appends are awaiting a flush.
    fn dirty(&self) -> bool;

    /// Make every buffered append durable (one batched fsync). Returns
    /// the number of bytes made durable by this call.
    fn flush(&mut self) -> u64;

    /// Atomically replace the checkpoint blob. Durable on return (a
    /// crash sees either the old blob or the new one, never a mix).
    fn put_checkpoint(&mut self, blob: &[u8]);

    /// The durable checkpoint blob, if one was ever written.
    fn checkpoint(&self) -> Option<Vec<u8>>;

    /// Every durable log record, oldest first.
    fn log_records(&self) -> Vec<Vec<u8>>;

    /// Rewrite the durable log to exactly `records` (compaction below
    /// the stable checkpoint: the caller keeps only the suffix it still
    /// needs). Atomic like [`put_checkpoint`]; buffered appends are
    /// carried over, still unflushed.
    fn reset_log(&mut self, records: &[Vec<u8>]);

    /// Modeled fsync latency the simulator charges per flush, in
    /// nanoseconds. Real-file implementations return 0 (their cost is
    /// wall-clock, measured by the runtime's histogram instead).
    fn fsync_model_ns(&self) -> u64 {
        0
    }
}
