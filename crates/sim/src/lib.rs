//! # neo-sim
//!
//! A deterministic discrete-event network simulator that drives sans-IO
//! protocol nodes. It stands in for the paper's hardware testbed: nodes
//! are [`node::Node`] state machines; the simulator provides virtual time,
//! message delivery with configurable latency/jitter/loss, per-node CPU
//! models (a serial dispatch core plus a worker-core pool for
//! cryptography), timers, and fault injection.
//!
//! Everything is seeded: the same scenario replays byte-for-byte, which is
//! what makes the paper's figures regenerable as `cargo bench` targets.
//!
//! ## Model
//!
//! * **Links.** Every unicast message experiences
//!   `one_way_latency + U[0, jitter) + len × per_byte` of delay and is
//!   dropped with probability `drop_rate` (plus any targeted
//!   [`fault::FaultPlan`] rules).
//! * **CPU.** Each node has one dispatch core that serially pays
//!   `dispatch_ns` per received message, `send_ns` per sent message, and
//!   any serially-metered crypto; bulk crypto is charged to a pool of
//!   `cores` workers (multi-server queue). This reproduces the queueing
//!   behaviour that determines each protocol's saturation throughput.
//! * **Routing.** Logical [`Addr`]esses map to registered nodes;
//!   `Addr::Multicast(g)` routes to the node registered as
//!   `Addr::Sequencer(g)` — exactly the paper's "senders only specify the
//!   group address" (§3.2).

pub mod byz;
pub mod cpu;
pub mod fault;
pub mod net;
pub mod node;
pub mod obs;
pub mod sim;
pub mod stats;
pub mod store;
pub mod telemetry;
pub mod time;

pub use byz::{ByzStats, ByzStrategy, ByzantineNode};
pub use cpu::CpuConfig;
pub use fault::{FaultPlan, FaultRule, PacketFate, FOREVER};
pub use net::NetConfig;
pub use node::{Context, Node, TimerId};
pub use obs::{
    render_prometheus, Event, EventKind, EventRecord, FlightDump, HealthReport, Metrics,
    MetricsSnapshot, NodeFlight, NodeHealth, ObsConfig, ObsStreamLine, PacketRecord,
};
pub use sim::{SimConfig, Simulator};
pub use stats::NetStats;
pub use store::Store;
pub use telemetry::{TelemetryHub, TelemetryProvider, TelemetryServer};
pub use time::{Duration, Time, MICROS, MILLIS, SECS};
